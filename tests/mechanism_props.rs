//! Property-based tests over the baseline mechanisms: privacy
//! certificates, unbiasedness, and cross-mechanism dominance relations
//! that must hold for arbitrary parameters, not just the paper's grid.

use ldp::core::audit::analytic_audit;
use ldp::core::{variance, LdpMechanism};
use ldp::mechanisms::{
    fourier::Fourier, hadamard::hadamard_strategy, hierarchical::hierarchical_strategy,
    randomized_response::randomized_response_strategy, subset_selection,
};
use ldp::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every strategy-matrix baseline satisfies exactly its declared ε
    /// (not more, not less) for arbitrary domain sizes and budgets.
    #[test]
    fn baselines_satisfy_declared_epsilon(n in 2usize..24, eps in 0.2..4.0f64) {
        let rr = randomized_response_strategy(n, eps);
        prop_assert!((analytic_audit(&rr).epsilon - eps).abs() < 1e-9);

        let had = hadamard_strategy(n, eps);
        prop_assert!((analytic_audit(&had).epsilon - eps).abs() < 1e-9);

        let hier = hierarchical_strategy(n.max(2), 4, eps);
        prop_assert!(analytic_audit(&hier).epsilon <= eps + 1e-9);
    }

    /// Fourier with any support size is ε-LDP and carries exactly 2|F|
    /// outputs.
    #[test]
    fn fourier_structure(d in 2usize..6, k in 1usize..4, eps in 0.2..3.0f64) {
        let k = k.min(d);
        let f = Fourier::up_to(d, k, eps);
        let s = f.strategy();
        prop_assert_eq!(s.num_outputs(), 2 * f.support_size());
        prop_assert!((analytic_audit(&s).epsilon - eps).abs() < 1e-9);
    }

    /// Subset selection with any feasible subset size is ε-LDP and its
    /// recommended size shrinks as ε grows.
    #[test]
    fn subset_selection_structure(n in 3usize..10, d in 1usize..4, eps in 0.2..3.0f64) {
        let d = d.min(n - 1);
        let s = subset_selection::subset_selection_strategy(n, d, eps);
        prop_assert!((analytic_audit(&s).epsilon - eps).abs() < 1e-9);
        let r1 = subset_selection::recommended_subset_size(n, 0.3);
        let r2 = subset_selection::recommended_subset_size(n, 3.0);
        prop_assert!(r1 >= r2);
    }

    /// All full-rank baselines produce exactly unbiased estimates on any
    /// data (via expected responses — no sampling noise).
    #[test]
    fn baselines_unbiased(
        n in 3usize..10,
        eps in 0.5..3.0f64,
        counts in prop::collection::vec(0.0..50.0f64, 16),
    ) {
        let gram = Matrix::identity(n);
        let data = DataVector::from_counts(counts[..n].to_vec());
        for mech in [
            randomized_response(n, eps, &gram).unwrap(),
            hadamard_response(n, eps, &gram).unwrap(),
            hierarchical(n.max(2), eps, &gram).unwrap(),
        ] {
            let ey = mech.expected_responses(&data);
            let xhat = mech.reconstruction().matvec(&ey);
            for (a, b) in xhat.iter().zip(data.counts()) {
                prop_assert!((a - b).abs() < 1e-6 * (1.0 + b), "{} biased", mech.name());
            }
        }
    }

    /// Monotonicity in ε: more privacy budget never hurts any baseline's
    /// worst-case variance on any workload Gram.
    #[test]
    fn more_budget_never_hurts(n in 3usize..10, eps in 0.3..2.0f64) {
        let w = Prefix::new(n);
        let gram = w.gram();
        for build in [randomized_response, hadamard_response] {
            let lo = build(n, eps, &gram).unwrap();
            let hi = build(n, eps * 1.5, &gram).unwrap();
            let v_lo = lo.worst_case_variance(&gram, 1.0);
            let v_hi = hi.worst_case_variance(&gram, 1.0);
            prop_assert!(v_hi <= v_lo * (1.0 + 1e-9), "{}: {} vs {}", lo.name(), v_hi, v_lo);
        }
    }

    /// The optimal reconstruction (Theorem 3.10) is optimal: perturbing K
    /// while keeping unbiasedness never reduces the trace objective.
    /// (Perturb within the null space of Qᵀ, which preserves K·Q.)
    #[test]
    fn theorem_3_10_optimality(n in 3usize..7, eps in 0.5..2.0f64, seed in 0u64..100) {
        use rand::{Rng, SeedableRng};
        let strategy = hadamard_strategy(n, eps); // m > n: non-trivial null space
        let k = variance::optimal_reconstruction(&strategy);
        let gram = Matrix::identity(n);
        let base = variance::trace_objective(&strategy, &k, &gram);

        // Random direction E (n × m) projected onto null(Q·): E ← E − E·Q·Q†.
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let m = strategy.num_outputs();
        let e = Matrix::from_fn(n, m, |_, _| rng.gen_range(-1.0..1.0f64));
        let q = strategy.matrix();
        let q_pinv = q.pinv();
        // E_null = E(I − Q Q†) : preserves K Q when added to K.
        let correction = e.matmul(q).matmul(&q_pinv);
        let e_null = &e - &correction;
        let k_perturbed = &k + &e_null.scaled(0.1);
        // Same unbiasedness...
        let residual = variance::rowspace_residual(&strategy, &k_perturbed, &gram);
        prop_assume!(residual < 1e-6);
        // ...but no better objective.
        let perturbed = variance::trace_objective(&strategy, &k_perturbed, &gram);
        prop_assert!(perturbed >= base - 1e-9 * base.abs());
    }
}
