//! End-to-end integration tests across crates: the full
//! declare-workload → optimize → collect → estimate → post-process
//! pipeline, and the paper's headline cross-mechanism comparisons at
//! laptop scale.

use ldp::core::variance;
use ldp::estimation::{simulated_normalized_variance, Postprocess};
use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds the seven Figure-1 mechanisms at small n via the bench harness.
fn all_mechanisms(
    workload: &dyn Workload,
    gram: &ldp::linalg::Gram,
    epsilon: f64,
) -> Vec<Box<dyn LdpMechanism>> {
    use ldp_bench::cells::{build_mechanism, Effort, ALL_MECHANISMS};
    ALL_MECHANISMS
        .iter()
        .map(|&kind| build_mechanism(kind, workload, gram, epsilon, Effort::quick(), 9))
        .collect()
}

/// Figure 1's qualitative claim at n=16, ε=1: the optimized mechanism has
/// the lowest sample complexity of all seven mechanisms on every paper
/// workload (up to a small slack for the quick-effort optimizer).
#[test]
fn optimized_wins_on_every_workload() {
    let n = 16;
    let epsilon = 1.0;
    for workload in ldp::workloads::paper_suite(n) {
        let gram = workload.gram();
        let p = workload.num_queries();
        let mechanisms = all_mechanisms(workload.as_ref(), &gram, epsilon);
        let mut best_other = f64::INFINITY;
        let mut optimized = f64::INFINITY;
        for mech in &mechanisms {
            let sc = mech.sample_complexity(&gram, p, 0.01);
            assert!(
                sc.is_finite() && sc > 0.0,
                "{} on {}",
                mech.name(),
                workload.name()
            );
            if mech.name() == "Optimized" {
                optimized = sc;
            } else {
                best_other = best_other.min(sc);
            }
        }
        assert!(
            optimized <= best_other * 1.10,
            "Optimized ({optimized:.1}) should be best on {} (best other {best_other:.1})",
            workload.name()
        );
    }
}

/// Figure 1's high-ε limit: randomized response is near-optimal at large
/// ε and the optimized mechanism matches it. At ε=5 the random-init
/// landscape is sharp, so we use the paper's alternative initialization
/// (warm start from an existing mechanism, §4), which guarantees
/// never-worse-than-baseline.
#[test]
fn high_epsilon_matches_randomized_response() {
    let n = 16;
    let epsilon = 5.0;
    let w = Histogram::new(n);
    let gram = w.gram();
    let rr = randomized_response(n, epsilon, &gram).unwrap();
    let config = OptimizerConfig::new(1)
        .with_iterations(150)
        .with_warm_start(rr.strategy().clone())
        .with_env_algorithm();
    let opt = optimized_mechanism(&gram, epsilon, &config).unwrap();
    let sc_rr = rr.sample_complexity(&gram, n, 0.01);
    let sc_opt = opt.sample_complexity(&gram, n, 0.01);
    assert!(
        sc_opt <= sc_rr * 1.01,
        "optimized {sc_opt} should at least match RR {sc_rr} at eps=5"
    );
}

/// Run the full protocol on each paper workload and verify the measured
/// error agrees with the analytic variance (Theorem 3.4) within Monte
/// Carlo tolerance — mechanism execution and analysis must be two views
/// of the same object.
#[test]
fn measured_error_matches_analytic_variance() {
    let n = 8;
    let epsilon = 1.0;
    let data = DataVector::from_counts(vec![200.0, 100.0, 50.0, 150.0, 0.0, 80.0, 20.0, 400.0]);
    for workload in ldp::workloads::paper_suite(n) {
        let gram = workload.gram();
        let mech = optimized_mechanism(
            &gram,
            epsilon,
            &OptimizerConfig::quick(4).with_env_algorithm(),
        )
        .unwrap();
        let analytic = mech.data_variance(&gram, &data);

        let mut rng = StdRng::seed_from_u64(31);
        let trials = 200;
        let mut total = 0.0;
        for _ in 0..trials {
            let xhat = mech.run(&data, &mut rng);
            total += workload.total_squared_error(data.counts(), &xhat);
        }
        let empirical = total / trials as f64;
        let rel = (empirical - analytic).abs() / analytic;
        assert!(
            rel < 0.25,
            "{}: empirical {empirical:.1} vs analytic {analytic:.1} (rel {rel:.3})",
            workload.name()
        );
    }
}

/// Figure 4's claim end-to-end: WNNLS reduces simulated variance for the
/// optimized mechanism in the low-data regime on every paper workload.
#[test]
fn wnnls_helps_in_low_data_regime() {
    let n = 16;
    let epsilon = 1.0;
    let data = ldp::data::hepth_shape(n).sample(500, &mut StdRng::seed_from_u64(2));
    for workload in ldp::workloads::paper_suite(n) {
        let gram = workload.gram();
        let mech = optimized_mechanism(
            &gram,
            epsilon,
            &OptimizerConfig::quick(6).with_env_algorithm(),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let base = simulated_normalized_variance(
            workload.as_ref(),
            &mech,
            &data,
            40,
            Postprocess::None,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(3);
        let post = simulated_normalized_variance(
            workload.as_ref(),
            &mech,
            &data,
            40,
            Postprocess::Wnnls(WnnlsOptions::default()),
            &mut rng,
        );
        assert!(
            post <= base * 1.02,
            "{}: WNNLS {post:.4e} vs default {base:.4e}",
            workload.name()
        );
    }
}

/// The strategy returned by the optimizer is a genuinely private,
/// executable mechanism: its epsilon certificate holds and the variance
/// analysis is consistent between the trace objective and the profile.
#[test]
fn optimizer_output_is_coherent() {
    let w = AllRange::new(16);
    let gram = w.gram();
    let eps = 1.5;
    let result =
        ldp::opt::optimize_strategy(&gram, eps, &OptimizerConfig::quick(8).with_env_algorithm())
            .unwrap();
    // Privacy certificate.
    result
        .strategy
        .check_ldp(eps)
        .expect("optimized strategy is eps-LDP");
    // Objective consistency (Theorem 3.11 vs Theorem 3.9 with optimal V).
    let k = variance::optimal_reconstruction(&result.strategy);
    let via_trace = variance::trace_objective(&result.strategy, &k, &gram);
    assert!(
        (via_trace - result.objective).abs() < 1e-5 * result.objective,
        "{via_trace} vs {}",
        result.objective
    );
    // The worst-case variance derived from the profile matches the
    // Lavg/objective relation sandwich of Theorem 5.1.
    let profile = variance::variance_profile(&result.strategy, &k, &gram);
    let n_users = 1000.0;
    let lavg = variance::average_case_variance(&profile, n_users);
    let identity = n_users / 16.0 * (via_trace - gram.trace());
    assert!((lavg - identity).abs() < 1e-6 * lavg.max(1.0));
}

/// Dataset generators integrate with the mechanism stack: data-dependent
/// sample complexity on every synthetic dataset is no worse than the
/// worst case and in its vicinity (Section 6.4's observation).
#[test]
fn data_dependent_complexity_close_to_worst_case() {
    let n = 32;
    let epsilon = 1.0;
    let w = Prefix::new(n);
    let gram = w.gram();
    let mech = optimized_mechanism(
        &gram,
        epsilon,
        &OptimizerConfig::quick(12).with_env_algorithm(),
    )
    .unwrap();
    let p = w.num_queries();
    let worst = mech.sample_complexity(&gram, p, 0.01);
    for shape in [
        ldp::data::hepth_shape(n),
        ldp::data::medcost_shape(n),
        ldp::data::nettrace_shape(n),
    ] {
        let data = shape.expected(10_000.0);
        let dd = mech.data_sample_complexity(&gram, &data, p, 0.01);
        assert!(
            dd <= worst * (1.0 + 1e-9),
            "data-dependent above worst case"
        );
        assert!(
            dd >= worst * 0.3,
            "data-dependent {dd} suspiciously far below worst case {worst}"
        );
    }
}
