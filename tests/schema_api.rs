//! Cross-attribute conformance suite for the schema-first query API:
//!
//! 1. **Structured Gram correctness** — a schema workload's
//!    SumOp-of-Kronecker-chains Gram matches the dense reference
//!    `WᵀW` on multi-attribute domains, and stays an implicit operator
//!    (never a dense matrix) at any size.
//! 2. **Ad-hoc answers vs the full matrix** — `Estimate::answer` /
//!    `Deployment::answer` / `StreamIngestor::answer` are bit-identical
//!    to evaluating the explicit workload matrix at the query's row, and
//!    the attached variance agrees with the Theorem 3.4 machinery run on
//!    the single-query Gram `wwᵀ`.
//! 3. **Registry warm starts** — a schema workload deployed twice
//!    through `optimized_cached` hits the `StrategyRegistry`
//!    (`CacheOutcome::Warm`) with a bit-identical strategy, because
//!    `Workload::fingerprint` is stable across instances.
//! 4. **Large domains stay implicit** — at |Ω| = 10⁴ and 10⁶ the
//!    workload layer (Gram probes, fingerprints, ad-hoc answers) runs in
//!    `O(n)` per operation; this suite exercises it directly.

use std::sync::Arc;

use ldp::prelude::*;
use ldp_core::variance;
use ldp_linalg::RankOneOp;
use ldp_parallel::set_thread_override;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ldp-schema-api-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

fn small_schema() -> Schema {
    Schema::new([("age", 10), ("sex", 2), ("state", 6)]) // |Ω| = 120
}

fn small_queries() -> Vec<Query> {
    vec![
        Query::marginal(["age", "sex"]),
        Query::range("age", 2..8),
        Query::equals("sex", 1).and_values("state", [0, 3, 5]),
        Query::total(),
    ]
}

/// The structured Gram equals the dense reference `matrix().gram()` on a
/// 3-attribute domain, and is never carried as a dense matrix.
#[test]
fn schema_gram_matches_dense_reference_across_attributes() {
    let workload = SchemaWorkload::new(Arc::new(small_schema()), &small_queries()).unwrap();
    let gram = workload.gram();
    assert!(
        gram.op().as_dense().is_none(),
        "schema Grams must stay structured"
    );
    let dense = workload.matrix().gram();
    let diff = gram.to_dense().max_abs_diff(&dense);
    assert!(diff < 1e-9, "gram mismatch: {diff:.3e}");
    // Structured trace and Frobenius agree too.
    assert!((gram.trace() - dense.trace()).abs() < 1e-9);
    assert!((workload.frobenius_sq() - dense.trace()).abs() < 1e-9);
}

/// End-to-end acceptance scenario: a 3-attribute schema workload deploys
/// through `Pipeline::for_schema(...).queries(...)` with a structured
/// Gram; `answer()` is bit-identical to full-matrix evaluation; a repeat
/// deployment is a registry warm hit with a bit-identical mechanism.
#[test]
fn schema_deployment_answers_and_warm_starts() {
    let dir = unique_dir("warm");
    let registry = StrategyRegistry::open(&dir).unwrap();
    let config = OptimizerConfig {
        iterations: 20,
        search_iterations: 4,
        ..OptimizerConfig::quick(13)
    }
    .with_env_algorithm();
    let deploy = |registry: &StrategyRegistry| {
        Pipeline::for_schema(small_schema())
            .queries(small_queries())
            .epsilon(1.0)
            .optimized_cached(&config, registry)
            .unwrap()
    };

    let (cold, outcome) = deploy(&registry);
    assert_eq!(outcome, CacheOutcome::Cold);
    assert!(
        cold.gram().op().as_dense().is_none(),
        "deployment must hold the structured Gram operator"
    );

    // Repeat deployment: the schema workload's fingerprint is stable, so
    // the registry warm path is hit and PGD is skipped — bit-identical
    // mechanism, at any thread count.
    for threads in [1usize, 4] {
        set_thread_override(Some(threads));
        let (warm, outcome) = deploy(&registry);
        assert_eq!(
            outcome,
            CacheOutcome::Warm,
            "repeat schema deployment must warm-start ({threads} threads)"
        );
        assert_eq!(
            warm.mechanism().reconstruction_matrix().as_slice(),
            cold.mechanism().reconstruction_matrix().as_slice(),
            "warm deployment must be bit-identical ({threads} threads)"
        );
    }
    set_thread_override(None);

    // Collect data, then check every serving surface against the
    // explicit matrix.
    let client = cold.client();
    let mut agg = cold.aggregator();
    let mut rng = StdRng::seed_from_u64(2);
    for u in 0..120usize {
        for _ in 0..((u % 7) + 1) {
            agg.ingest(client.respond(u, &mut rng)).unwrap();
        }
    }
    let estimate = cold.estimate(&agg);
    let reference = cold.workload().matrix().matvec(estimate.data_vector());
    let p = cold.workload().num_queries();
    assert_eq!(reference.len(), p);

    // Scalar ad-hoc queries: rows 20 (range), 21 (equals+values), 22
    // (total) of the deployed workload (after the 10×2 marginal cells).
    let scalars = [
        (20, Query::range("age", 2..8)),
        (21, Query::equals("sex", 1).and_values("state", [0, 3, 5])),
        (22, Query::total()),
    ];
    for (row, query) in &scalars {
        let answer = estimate.answer(query).unwrap();
        assert_eq!(
            answer.value.to_bits(),
            reference[*row].to_bits(),
            "answer() must be bit-identical to the matrix path at row {row}"
        );
        assert!(answer.variance.is_finite() && answer.variance >= 0.0);
        assert_eq!(answer.stddev, answer.variance.sqrt());
        // Deployment::answer is the same path.
        assert_eq!(cold.answer(&agg, query).unwrap(), answer);
    }

    // answers_into extracts the full workload identically to answers().
    let mut buf = Vec::new();
    estimate.answers_into(&mut buf);
    assert_eq!(buf, estimate.answers());
    for (i, v) in buf.iter().enumerate() {
        assert_eq!(v.to_bits(), reference[i].to_bits(), "row {i}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The per-query variance attached to an ad-hoc answer agrees with the
/// Theorem 3.4 variance machinery evaluated on the single-query Gram
/// `wwᵀ` — `answer()` is a specialization, not a new estimator.
#[test]
fn answer_variance_matches_theorem_3_4_on_rank_one_gram() {
    let deployment = Pipeline::for_schema(Schema::new([("a", 4), ("b", 3)]))
        .queries([Query::marginal(["a"]), Query::total()])
        .epsilon(1.5)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let client = deployment.client();
    let mut agg = deployment.aggregator();
    let mut rng = StdRng::seed_from_u64(7);
    for u in 0..12usize {
        for _ in 0..30 {
            agg.ingest(client.respond(u, &mut rng)).unwrap();
        }
    }
    let estimate = deployment.estimate(&agg);

    let query = Query::range("a", 1..3).and_equals("b", 2);
    let answer = estimate.answer(&query).unwrap();

    // Reference: T_u profile on gram wwᵀ, worst case at the report count.
    let mut w = vec![0.0; 12];
    query
        .resolve(deployment.schema().unwrap())
        .unwrap()
        .fill_row(0, &mut w);
    let mechanism = deployment.mechanism();
    let strategy = mechanism.strategy().unwrap();
    let profile = variance::variance_profile(
        strategy,
        mechanism.reconstruction_matrix(),
        &RankOneOp::new(w),
    );
    let reference = variance::worst_case_variance(&profile, 360.0);
    assert!(
        (answer.variance - reference).abs() <= 1e-9 * reference.max(1.0),
        "variance {} vs Theorem 3.4 reference {reference}",
        answer.variance
    );
}

/// Live streams answer ad-hoc queries mid-collection, and the answers
/// track the stream's current state.
#[test]
fn stream_serving_tracks_live_state() {
    let deployment = Pipeline::for_schema(Schema::new([("kind", 8)]))
        .queries([Query::marginal(["kind"])])
        .epsilon(1.0)
        .baseline(Baseline::HadamardResponse)
        .unwrap();
    let mut stream = deployment.stream();
    stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
    let early = stream.answer(&Query::total()).unwrap();
    stream.ingest_batch(&[4, 5, 6, 7, 8, 0]).unwrap();
    let late = stream.answer(&Query::total()).unwrap();
    assert_eq!(early, {
        // Recomputing from a fresh identical stream gives the same bits.
        let mut replay = deployment.stream();
        replay.ingest_batch(&[0, 1, 2, 3]).unwrap();
        replay.answer(&Query::total()).unwrap()
    });
    assert_ne!(early.value.to_bits(), late.value.to_bits());
}

/// |Ω| = 10⁴ and |Ω| = 10⁶: schema workloads stay implicit — Gram
/// construction, fingerprints, and ad-hoc answers are all `O(n)` or
/// better per operation, so this test is fast even at a million types.
#[test]
fn large_domains_serve_ad_hoc_answers_implicitly() {
    // age × sex × state, |Ω| = 10⁴.
    let census = Arc::new(Schema::new([("age", 100), ("sex", 2), ("state", 50)]));
    let workload = SchemaWorkload::new(
        Arc::clone(&census),
        &[
            Query::marginal(["age", "sex"]),
            Query::range("age", 18..65),
            Query::total(),
        ],
    )
    .unwrap();
    assert_eq!(workload.domain_size(), 10_000);
    assert_eq!(workload.num_queries(), 202);
    let gram = workload.gram();
    assert!(gram.op().as_dense().is_none());
    // Fingerprints (one Gram probe each) are stable across instances —
    // what keys the strategy registry at this scale.
    let again = SchemaWorkload::new(
        Arc::clone(&census),
        &[
            Query::marginal(["age", "sex"]),
            Query::range("age", 18..65),
            Query::total(),
        ],
    )
    .unwrap();
    assert_eq!(workload.fingerprint(), again.fingerprint());

    // Ad-hoc answers against a synthetic estimate.
    let x: Vec<f64> = (0..10_000).map(|u| (u % 13) as f64).collect();
    let adults = census.answer(&Query::range("age", 18..65), &x).unwrap();
    let by_hand: f64 = (0..10_000)
        .filter(|u| (18..65).contains(&(u / 100)))
        .map(|u| (u % 13) as f64)
        .sum();
    assert!((adults - by_hand).abs() < 1e-6 * by_hand.abs().max(1.0));

    // 4 attributes, |Ω| = 10⁶.
    let wide = Arc::new(Schema::new([
        ("age", 100),
        ("income", 50),
        ("state", 50),
        ("group", 4),
    ]));
    assert_eq!(wide.domain_size(), 1_000_000);
    let w6 = SchemaWorkload::new(
        Arc::clone(&wide),
        &[Query::range("income", 10..40), Query::total()],
    )
    .unwrap();
    assert!(w6.gram().op().as_dense().is_none());
    assert_eq!(w6.gram().shape(), (1_000_000, 1_000_000));
    let ones = vec![1.0; 1_000_000];
    let mut scratch = Vec::new();
    let v = wide
        .answer_with(
            &Query::range("income", 10..40).and_equals("group", 2),
            &ones,
            &mut scratch,
        )
        .unwrap();
    assert_eq!(v, 100.0 * 30.0 * 50.0);
}

/// The schema workload's Gram drives the optimizer exactly like any flat
/// workload: optimizing against it equals optimizing against its
/// materialized dense Gram, bit for bit.
#[test]
fn optimizer_treats_schema_gram_like_dense() {
    let workload = SchemaWorkload::new(
        Arc::new(Schema::new([("a", 4), ("b", 3)])),
        &[Query::marginal(["a"]), Query::range("b", 0..2)],
    )
    .unwrap();
    let config = OptimizerConfig {
        iterations: 15,
        search_iterations: 3,
        ..OptimizerConfig::quick(3)
    }
    .with_env_algorithm();
    let structured = optimize_strategy(&workload.gram(), 1.0, &config).unwrap();
    let dense = optimize_strategy(&workload.gram().to_dense(), 1.0, &config).unwrap();
    assert_eq!(structured.objective, dense.objective);
    assert_eq!(
        structured.strategy.matrix().as_slice(),
        dense.strategy.matrix().as_slice()
    );
}
