//! Integration tests for the repository's extension surface beyond the
//! paper's core: product workloads, the client/aggregator protocol,
//! privacy auditing, and quantile read-out — exercised together the way
//! an application would.

use ldp::core::audit::{analytic_audit, empirical_audit};
use ldp::estimation::quantiles_from_estimate;
use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// 2-D range workload end-to-end: optimize, verify the privacy budget,
/// collect via the protocol, and check accuracy against the analytic
/// variance.
#[test]
fn two_d_ranges_end_to_end() {
    let side = 4;
    let workload = Product::new(Box::new(AllRange::new(side)), Box::new(AllRange::new(side)));
    let gram = workload.gram();
    let eps = 1.0;
    let mech = optimized_mechanism(&gram, eps, &OptimizerConfig::quick(3)).unwrap();
    assert!(mech.strategy().epsilon() <= eps + 1e-6);

    // The optimized 2-D strategy should beat RR here too.
    let rr = randomized_response(workload.domain_size(), eps, &gram).unwrap();
    let p = workload.num_queries();
    assert!(mech.sample_complexity(&gram, p, 0.01) < rr.sample_complexity(&gram, p, 0.01));

    // Protocol collection matches direct run in expectation.
    let data = DataVector::from_counts(
        (0..workload.domain_size())
            .map(|i| ((i * 13) % 7) as f64 * 20.0)
            .collect(),
    );
    let client = Client::new(mech.strategy().clone());
    let mut agg = Aggregator::new(&mech);
    let mut rng = StdRng::seed_from_u64(7);
    for (u, c) in data.nonzero() {
        for _ in 0..c as u64 {
            agg.ingest(client.respond(u, &mut rng)).unwrap();
        }
    }
    assert_eq!(agg.reports() as f64, data.total());
    let answers = workload.evaluate(&agg.estimate());
    assert_eq!(answers.len(), p);
    // Total-population query (the full rectangle) is estimated exactly:
    // column sums of Q are 1, so K preserves totals.
    let full_rect_index = {
        // Ordering: (a1,b1) lexicographic x (a2,b2); the full rectangle is
        // query ((0, side-1), (0, side-1)).
        let p2 = AllRange::new(side).num_queries();
        (side - 1) * p2 + (side - 1)
    };
    assert!((answers[full_rect_index] - data.total()).abs() < 1e-6);
}

/// The optimized mechanism passes both audits at its declared budget.
#[test]
fn optimized_mechanism_passes_audits() {
    let w = Prefix::new(12);
    let gram = w.gram();
    let eps = 1.2;
    let mech = optimized_mechanism(&gram, eps, &OptimizerConfig::quick(9)).unwrap();

    let analytic = analytic_audit(mech.strategy());
    assert!(
        analytic.epsilon <= eps + 1e-6,
        "analytic loss {}",
        analytic.epsilon
    );

    let mut rng = StdRng::seed_from_u64(11);
    let empirical = empirical_audit(mech.strategy(), eps, 150_000, &mut rng);
    assert!(
        empirical.consistent,
        "observed {}",
        empirical.observed_epsilon
    );
}

/// CDF-to-quantile pipeline: quantiles recovered from a private Prefix
/// estimate are within a few bins of the truth at a generous budget.
#[test]
fn private_quantiles_are_accurate() {
    let n = 32;
    let w = Prefix::new(n);
    let gram = w.gram();
    let mech = optimized_mechanism(&gram, 2.0, &OptimizerConfig::quick(13)).unwrap();
    let data = ldp::data::medcost_shape(n).sample(40_000, &mut StdRng::seed_from_u64(1));

    let mut rng = StdRng::seed_from_u64(2);
    let xhat = wnnls(&gram, &mech.run(&data, &mut rng), &WnnlsOptions::default());
    let cdf_est = w.evaluate(&xhat);
    let cdf_true = w.evaluate(data.counts());

    let qs = [0.25, 0.5, 0.75, 0.9];
    let est = quantiles_from_estimate(&cdf_est, data.total(), &qs);
    let truth = quantiles_from_estimate(&cdf_true, data.total(), &qs);
    for ((q, e), (_, t)) in est.iter().zip(&truth) {
        let err = (*e as i64 - *t as i64).abs();
        assert!(err <= 2, "quantile {q}: estimated bin {e}, true bin {t}");
    }
}

/// Stacked + weighted workloads steer the optimizer: tripling the weight
/// of one sub-workload reduces its share of the error.
#[test]
fn weights_steer_error_allocation() {
    let n = 16;
    let eps = 1.0;
    let prefix_gram = Prefix::new(n).gram();
    let hist_gram = Histogram::new(n).gram();

    let balanced = Stacked::weighted(vec![
        (
            1.0,
            Box::new(Prefix::new(n)) as Box<dyn Workload + Send + Sync>,
        ),
        (1.0, Box::new(Histogram::new(n))),
    ]);
    let hist_heavy = Stacked::weighted(vec![
        (
            1.0,
            Box::new(Prefix::new(n)) as Box<dyn Workload + Send + Sync>,
        ),
        (10.0, Box::new(Histogram::new(n))),
    ]);

    let mech_bal = optimized_mechanism(&balanced.gram(), eps, &OptimizerConfig::quick(5)).unwrap();
    let mech_heavy =
        optimized_mechanism(&hist_heavy.gram(), eps, &OptimizerConfig::quick(5)).unwrap();

    // Evaluate both strategies on the *unweighted* histogram part: the
    // histogram-heavy strategy must serve Histogram better...
    let hist_bal = mech_bal.worst_case_variance(&hist_gram, 1.0);
    let hist_heavy_v = mech_heavy.worst_case_variance(&hist_gram, 1.0);
    assert!(
        hist_heavy_v < hist_bal,
        "histogram-weighted strategy should favor histogram ({hist_heavy_v} vs {hist_bal})"
    );
    // ...at some cost on Prefix.
    let prefix_bal = mech_bal.worst_case_variance(&prefix_gram, 1.0);
    let prefix_heavy = mech_heavy.worst_case_variance(&prefix_gram, 1.0);
    assert!(prefix_heavy > prefix_bal * 0.9, "no free lunch expected");
}
