//! The determinism contract, extended to open domains: sparse
//! aggregation state, checkpoint bytes, and every downstream answer
//! must be byte-equal regardless of how reports were sharded, which
//! kernel backend is active, and whether the run was interrupted.
//!
//! Counts are exact `u64`s and the canonical export is a sorted merge,
//! so — exactly as for dense `AggregatorShard`s — the number of shards
//! (threads, connections, machines) is unobservable in durable state.
//! CI runs this suite at `LDP_THREADS ∈ {1, 4}`; the backend sweep here
//! covers the kernel axis in-process.

use ldp::prelude::*;
use ldp::sparse::{decode_sparse_checkpoint, encode_sparse_checkpoint, SparseCheckpoint};
use ldp_linalg::kernels::{with_backend, Backend};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A deterministic report stream: hot keys, a warm key, and a long
/// cold tail, from both oracle families.
fn reports(dep: &SparseDeployment, n: usize) -> Vec<u64> {
    let client = dep.client();
    let mut rng = StdRng::seed_from_u64(0x5eed);
    (0..n)
        .map(|i| {
            let key = match i % 5 {
                0 | 1 => "alpha".to_string(),
                2 => "beta".to_string(),
                _ => format!("tail/{i}"),
            };
            client.respond(&key, &mut rng)
        })
        .collect()
}

fn deployments() -> Vec<SparseDeployment> {
    vec![
        SparseDeployment::olh("url", 2.0).unwrap(),
        SparseDeployment::hadamard("url", 2.0, 10).unwrap(),
    ]
}

/// Everything observable downstream of an ingestor, as exact bits.
fn answer_bits(dep: &SparseDeployment, ingestor: &mut SparseIngestor) -> Vec<u64> {
    let candidates = [key_hash("alpha"), key_hash("beta"), key_hash("never-sent")];
    let mut bits = vec![ingestor.reports(), ingestor.batches(), ingestor.epoch()];
    let pairs: Vec<(u64, u64)> = ingestor.pairs().to_vec();
    for kh in candidates {
        bits.push(dep.point(&pairs, kh).to_bits());
    }
    for h in dep.heavy_hitters(&pairs, &candidates, 2, 3.0) {
        bits.push(h.key_hash);
        bits.push(h.estimate.to_bits());
        bits.push(h.stddev.to_bits());
    }
    bits
}

/// Ingests `all` (as 12 logical batches) through `shards` concurrent
/// shards — batch `b` lands on shard `b % shards`, exactly how
/// connections shard a live daemon — and returns (checkpoint bytes,
/// answer bits). Batch accounting is per *submitted batch*, so the
/// metadata, like the counts, must not see the sharding.
fn sharded_run(dep: &SparseDeployment, all: &[u64], shards: usize) -> (Vec<u8>, Vec<u64>) {
    let batches: Vec<&[u64]> = all.chunks(all.len().div_ceil(12)).collect();
    let mut parts: Vec<(SparseShard, u64)> = (0..shards).map(|_| (SparseShard::new(), 0)).collect();
    for (b, batch) in batches.iter().enumerate() {
        let (shard, absorbed) = &mut parts[b % shards];
        shard.absorb_batch(batch);
        *absorbed += 1;
    }
    let mut ingestor = dep.ingestor();
    // Deliberately absorb in reverse shard order: merge must commute.
    for (shard, absorbed) in parts.iter_mut().rev() {
        ingestor.absorb(shard, *absorbed);
    }
    let (epoch, batches, binding, pairs) = ingestor.checkpoint();
    let bytes = encode_sparse_checkpoint(&SparseCheckpoint {
        epoch,
        batches,
        binding,
        reports: pairs.iter().map(|&(_, c)| c).sum(),
        pairs,
    });
    (bytes, answer_bits(dep, &mut ingestor))
}

#[test]
fn shard_count_is_unobservable_in_state_and_answers() {
    for dep in deployments() {
        let all = reports(&dep, 600);
        let (ref_bytes, ref_bits) = sharded_run(&dep, &all, 1);
        for shards in [2usize, 4] {
            let (bytes, bits) = sharded_run(&dep, &all, shards);
            assert_eq!(
                bytes,
                ref_bytes,
                "[{}] checkpoint bytes differ at {shards} shards",
                dep.oracle().name()
            );
            assert_eq!(
                bits,
                ref_bits,
                "[{}] answers differ at {shards} shards",
                dep.oracle().name()
            );
        }
    }
}

#[test]
fn answers_are_backend_independent() {
    for dep in deployments() {
        let all = reports(&dep, 600);
        let reference = sharded_run(&dep, &all, 3);
        for backend in Backend::available() {
            let under = with_backend(backend, || sharded_run(&dep, &all, 3));
            assert_eq!(
                under,
                reference,
                "[{}] sparse state or answers drifted under the {backend} backend",
                dep.oracle().name()
            );
        }
    }
}

/// Checkpoint → crash → resume → keep ingesting is byte-equal to a run
/// that never stopped, at every interruption point.
#[test]
fn resume_at_any_batch_boundary_is_byte_equal() {
    for dep in deployments() {
        let all = reports(&dep, 500);
        let batches: Vec<&[u64]> = all.chunks(100).collect();

        // The uninterrupted reference.
        let mut reference = dep.ingestor();
        for batch in &batches {
            let mut shard = SparseShard::new();
            shard.absorb_batch(batch);
            reference.absorb_shard(&mut shard);
        }
        let ref_bits = answer_bits(&dep, &mut reference);

        for stop in 0..batches.len() {
            let mut first = dep.ingestor();
            for batch in &batches[..stop] {
                let mut shard = SparseShard::new();
                shard.absorb_batch(batch);
                first.absorb_shard(&mut shard);
            }
            let (epoch, n_batches, binding, pairs) = first.checkpoint();
            let bytes = encode_sparse_checkpoint(&SparseCheckpoint {
                epoch,
                batches: n_batches,
                binding,
                reports: first.reports(),
                pairs,
            });
            drop(first); // the crash

            let cp = decode_sparse_checkpoint(&bytes, dep.binding()).unwrap();
            let mut resumed = SparseIngestor::resume(cp.binding, cp.epoch, cp.batches, &cp.pairs);
            assert_eq!(resumed.reports(), 100 * stop as u64);
            for batch in &batches[stop..] {
                let mut shard = SparseShard::new();
                shard.absorb_batch(batch);
                resumed.absorb_shard(&mut shard);
            }
            // The epoch advanced by the checkpoint barrier; everything
            // else — counts, batches, answers — must be bit-identical.
            let mut bits = answer_bits(&dep, &mut resumed);
            assert_eq!(bits[2], 1, "resumed epoch records the barrier");
            bits[2] = ref_bits[2];
            assert_eq!(
                bits,
                ref_bits,
                "[{}] resume at batch {stop} is not byte-equal",
                dep.oracle().name()
            );
        }
    }
}
