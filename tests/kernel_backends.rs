//! Cross-backend agreement of the dispatched compute kernels.
//!
//! The determinism contract is *per backend*: within one backend results
//! are bit-identical at every thread count (`tests/parallel_determinism.rs`
//! sweeps that under every available backend). *Across* backends the
//! contract deliberately weakens to ulp-level agreement for
//! floating-point kernels — AVX2's FMA contracts `a·b + c` into a single
//! rounding, so scalar and vector results legitimately differ in the
//! last bits — while integer kernels (`add_u64`, `max_usize`, shard
//! merges) and pure add/sub kernels (the FWHT butterfly) must agree
//! exactly.
//!
//! This suite property-tests those two tiers over odd and remainder
//! shapes — lengths that are not multiples of the 4-wide AVX2 lane
//! count, dimensions that straddle the `MR`/`KC`/`NC` block edges — so
//! every tail path in `crates/linalg/src/simd.rs` is exercised against
//! the scalar reference. On hosts without AVX2, `Backend::available()`
//! is just `[Scalar]` and the comparisons degenerate to self-identity
//! (the suite still runs; it simply cannot disagree).
//!
//! Inputs are kept strictly positive so no dot product suffers
//! catastrophic cancellation and ulp distance is a meaningful metric.

use ldp::prelude::*;
use ldp_linalg::kernels::with_backend;
use ldp_linalg::{fwht, Backend, Cholesky};
use proptest::prelude::*;

/// Ulps between two finite same-sign doubles.
fn ulp_distance(a: f64, b: f64) -> u64 {
    assert!(a.is_finite() && b.is_finite() && (a >= 0.0) == (b >= 0.0));
    (a.to_bits() as i64).abs_diff(b.to_bits() as i64)
}

/// Tight cross-backend tolerance for elementwise kernels: each output
/// element is one length-k reduction; with positive inputs the FMA
/// rounding differences stay within a few ulps per step, far below this.
const MAX_ULPS: u64 = 512;

fn assert_close(label: &str, reference: &[f64], got: &[f64]) {
    assert_eq!(reference.len(), got.len(), "{label}: length");
    for (i, (r, g)) in reference.iter().zip(got).enumerate() {
        let ulps = ulp_distance(*r, *g);
        assert!(
            ulps <= MAX_ULPS,
            "{label}[{i}]: scalar {r} vs {g} differ by {ulps} ulps"
        );
    }
}

/// A strictly positive matrix with no structure the blocking could hide
/// behind.
fn positive(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 31 + j * 17 + salt * 7) % 23) as f64 * 0.11 + 0.25
    })
}

fn positive_vec(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 13 + salt * 5) % 19) as f64 * 0.07 + 0.5)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `dot` agrees across backends at every remainder length (the AVX2
    /// kernel processes 4 lanes per step; lengths 1..129 hit every tail
    /// size and the empty-body cases).
    #[test]
    fn dot_agrees_across_backends(len in 1usize..129, salt in 0usize..1000) {
        let a = positive_vec(len, salt);
        let b = positive_vec(len, salt + 1);
        let reference = with_backend(Backend::Scalar, || ldp_linalg::dot(&a, &b));
        for backend in Backend::available() {
            let got = with_backend(backend, || ldp_linalg::dot(&a, &b));
            assert_close("dot", &[reference], &[got]);
        }
    }

    /// `axpy` agrees across backends at every remainder length.
    #[test]
    fn axpy_agrees_across_backends(len in 1usize..129, salt in 0usize..1000) {
        let x = positive_vec(len, salt);
        let y0 = positive_vec(len, salt + 2);
        let alpha = 0.75;
        let reference = with_backend(Backend::Scalar, || {
            let mut y = y0.clone();
            ldp_linalg::axpy(alpha, &x, &mut y);
            y
        });
        for backend in Backend::available() {
            let got = with_backend(backend, || {
                let mut y = y0.clone();
                ldp_linalg::axpy(alpha, &x, &mut y);
                y
            });
            assert_close("axpy", &reference, &got);
        }
    }

    /// The three dense products agree across backends on small odd
    /// shapes — every combination of partial micro-panels (rows % 4),
    /// partial column strips (cols % 8), and scalar column tails.
    #[test]
    fn products_agree_across_backends(
        m in 1usize..18,
        k in 1usize..18,
        n in 1usize..18,
        salt in 0usize..1000,
    ) {
        let a = positive(m, k, salt);
        let b = positive(k, n, salt + 1);
        let bt = positive(n, k, salt + 2);
        let at = positive(k, m, salt + 3);
        let reference = with_backend(Backend::Scalar, || {
            (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt))
        });
        for backend in Backend::available() {
            let got = with_backend(backend, || {
                (a.matmul(&b), at.t_matmul(&b), a.matmul_t(&bt))
            });
            assert_close("matmul", reference.0.as_slice(), got.0.as_slice());
            assert_close("t_matmul", reference.1.as_slice(), got.1.as_slice());
            assert_close("matmul_t", reference.2.as_slice(), got.2.as_slice());
        }
    }

    /// The FWHT butterfly is adds and subtracts only — no FMA anywhere —
    /// so cross-backend agreement is exact bit equality, at any
    /// power-of-two length including the sub-lane ones (1, 2).
    #[test]
    fn fwht_bit_identical_across_backends(log_n in 0u32..11, salt in 0usize..1000) {
        let base = positive_vec(1 << log_n, salt);
        let reference = with_backend(Backend::Scalar, || {
            let mut data = base.clone();
            fwht(&mut data);
            data
        });
        for backend in Backend::available() {
            let got = with_backend(backend, || {
                let mut data = base.clone();
                fwht(&mut data);
                data
            });
            assert_eq!(reference, got, "fwht must be bit-identical on {backend}");
        }
    }
}

/// Larger odd shapes that cross the `MR`/`KC`/`NC` block boundaries
/// (103 > 2·MR·8, 131 > KC, 517 > NC) so the full blocked loop nest —
/// interior panels, remainder rows, 8-wide, 4-wide, and scalar column
/// strips — runs in one product.
#[test]
fn blocked_products_agree_across_backends_on_large_odd_shapes() {
    let a = positive(103, 131, 1);
    let b = positive(131, 517, 2);
    let at = positive(131, 103, 3);
    let reference = with_backend(Backend::Scalar, || (a.matmul(&b), at.t_matmul(&b)));
    for backend in Backend::available() {
        let got = with_backend(backend, || (a.matmul(&b), at.t_matmul(&b)));
        assert_close("matmul large", reference.0.as_slice(), got.0.as_slice());
        assert_close("t_matmul large", reference.1.as_slice(), got.1.as_slice());
    }
}

/// Cholesky drives `dot` through factor and solve; cross-backend
/// agreement on the solution is relative-tolerance (conditioning
/// amplifies the per-dot ulp differences, so elementwise ulp bounds do
/// not apply verbatim).
#[test]
fn cholesky_solutions_agree_across_backends() {
    let raw = positive(67, 53, 4);
    let mut gram = raw.gram();
    for i in 0..53 {
        gram[(i, i)] += 1.0; // well-conditioned SPD
    }
    let rhs = positive_vec(53, 5);
    let reference = with_backend(Backend::Scalar, || {
        Cholesky::new(&gram).expect("SPD").solve(&rhs)
    });
    for backend in Backend::available() {
        let got = with_backend(backend, || Cholesky::new(&gram).expect("SPD").solve(&rhs));
        for (r, g) in reference.iter().zip(&got) {
            assert!(
                (r - g).abs() <= 1e-12 * r.abs().max(1.0),
                "cholesky solve on {backend}: {r} vs {g}"
            );
        }
    }
}

/// Integer ingestion paths are exact on every backend: shard merges and
/// batch validation produce identical results and identical errors.
#[test]
fn ingestion_is_exact_across_backends() {
    let reports: Vec<usize> = (0..10_007).map(|i| (i * 7 + 3) % 64).collect();
    let reference = with_backend(Backend::Scalar, || {
        let mut a = AggregatorShard::new(64);
        let mut b = AggregatorShard::new(64);
        a.ingest_batch(&reports[..5_003]).expect("valid");
        b.ingest_batch(&reports[5_003..]).expect("valid");
        a.merge(b).expect("same width").into_counts()
    });
    for backend in Backend::available() {
        let got = with_backend(backend, || {
            let mut a = AggregatorShard::new(64);
            let mut b = AggregatorShard::new(64);
            a.ingest_batch(&reports[..5_003]).expect("valid");
            b.ingest_batch(&reports[5_003..]).expect("valid");
            a.merge(b).expect("same width").into_counts()
        });
        assert_eq!(reference, got, "shard merge must be exact on {backend}");

        // Batch validation rejects identically, naming the first
        // offender even when the vectorized max fast-path trips.
        with_backend(backend, || {
            let mut bad = reports.clone();
            bad[7_001] = 9_999;
            bad[9_002] = 8_888;
            let mut shard = AggregatorShard::new(64);
            let err = shard.ingest_batch(&bad);
            assert!(
                matches!(err, Err(LdpError::DimensionMismatch { actual: 9_999, .. })),
                "first offender must be named on {backend}"
            );
            assert_eq!(shard.counts(), vec![0u64; 64], "rejected batch uncounted");
        });
    }
}

/// `LDP_KERNEL`-style pinning composes with the pool: a backend override
/// set on the caller is inherited by spawned workers, so a pinned
/// multi-threaded product is bit-identical to the pinned serial one.
#[test]
fn pinned_backend_reaches_pool_workers() {
    let a = positive(103, 101, 6);
    let b = positive(101, 107, 7);
    for backend in Backend::available() {
        with_backend(backend, || {
            ldp_parallel::with_thread_override(Some(1), || a.matmul(&b));
            let serial = ldp_parallel::with_thread_override(Some(1), || a.matmul(&b));
            let threaded = ldp_parallel::with_thread_override(Some(4), || a.matmul(&b));
            assert_eq!(
                serial.as_slice(),
                threaded.as_slice(),
                "pinned {backend} must be thread-invariant"
            );
        });
    }
}
