//! Statistical acceptance for open-domain top-k: on a Zipf-distributed
//! million-key domain at ε = 2, the sparse Hadamard oracle recovers the
//! true top-10 with recall ≥ 0.9, and the variance-aware admission
//! threshold keeps never-sent decoy keys out.
//!
//! The dataset is deterministic (expected Zipf counts, fixed-seed
//! randomization), so this is a pinned regression test, not a flaky
//! Monte-Carlo bound: the analytic numbers say recall 10/10 with σ ≈
//! 1.9k against a rank-10 count of ≈ 24k, and the asserted 0.9 floor
//! leaves one adjacent-rank swap of slack.

use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const DOMAIN: usize = 1_000_000;
const TOTAL: u64 = 2_000_000;
const ZIPF_S: f64 = 1.5;
const K: usize = 10;

fn key(i: usize) -> String {
    format!("https://example.com/item/{i}")
}

/// Expected Zipf(s) counts over the full domain, rounded to integers —
/// the deterministic "dataset". Only the head survives rounding (the
/// tail's expected counts fall below one half), which is exactly the
/// regime frequency oracles exist for.
fn true_counts() -> Vec<(usize, u64)> {
    let h: f64 = (1..=DOMAIN).map(|i| (i as f64).powf(-ZIPF_S)).sum();
    (1..=DOMAIN)
        .filter_map(|i| {
            let expected = TOTAL as f64 * (i as f64).powf(-ZIPF_S) / h;
            let count = expected.round() as u64;
            (count > 0).then_some((i, count))
        })
        .collect()
}

#[test]
fn zipf_million_key_top_k_recall_and_false_positive_bound() {
    let dep = SparseDeployment::hadamard("url", 2.0, 21).unwrap();
    let client = dep.client();
    let counts = true_counts();

    // Randomize one report per (key, unit of count), sharded to prove
    // the statistical path rides on the deterministic merge.
    let mut rng = StdRng::seed_from_u64(0x21f5);
    let mut shard = SparseShard::new();
    let mut ingested = 0u64;
    for &(i, c) in &counts {
        let kh = key_hash(&key(i));
        for _ in 0..c {
            shard.absorb(client.respond_hashed(kh, &mut rng));
            ingested += 1;
        }
    }
    let mut ingestor = dep.ingestor();
    ingestor.absorb_shard(&mut shard);
    assert_eq!(ingestor.reports(), ingested);
    let pairs: Vec<(u64, u64)> = ingestor.pairs().to_vec();

    // Candidates: the 100k keys a tracker would plausibly watch — a
    // 7× superset of every key whose expected count survives rounding
    // (~13k). Ground truth is the Zipf head, ranks 1..=10. The
    // candidate list is bounded deliberately: a zero-count candidate
    // whose bucket aliases a head key's bucket ties its estimate
    // exactly (the known false-positive mode of hashing oracles), and
    // the expected alias count is candidates · k / buckets — ≈ 0.5
    // here versus ≈ 5 if all 10^6 domain keys were scored at once.
    let candidates: Vec<u64> = (1..=DOMAIN / 10).map(|i| key_hash(&key(i))).collect();
    let truth: Vec<u64> = (1..=K).map(|i| key_hash(&key(i))).collect();

    let hitters = dep.heavy_hitters(&pairs, &candidates, K, 3.0);
    assert_eq!(hitters.len(), K, "the head clears 3σ with huge margin");
    let hits = truth
        .iter()
        .filter(|kh| hitters.iter().any(|h| h.key_hash == **kh))
        .count();
    let recall = hits as f64 / K as f64;
    assert!(
        recall >= 0.9,
        "recall@{K} = {recall} (got {hits}/{K} of the true head)"
    );

    // Admitted estimates carry honest error bars: each admitted true
    // hitter's estimate is within 6σ of its exact count.
    let sigma = dep.oracle().stddev(ingested);
    for h in &hitters {
        if let Some(rank) = (1..=K).find(|&i| key_hash(&key(i)) == h.key_hash) {
            let exact = counts[rank - 1].1 as f64;
            assert!(
                (h.estimate - exact).abs() <= 6.0 * sigma,
                "rank {rank}: estimate {} vs exact {exact} (σ = {sigma})",
                h.estimate
            );
        }
    }

    // False-positive bound: 1000 decoy keys that were never reported
    // must not clear a 5σ admission threshold, even when they are the
    // only candidates on offer.
    let decoys: Vec<u64> = (0..1000).map(|i| key_hash(&format!("decoy/{i}"))).collect();
    let admitted = dep.heavy_hitters(&pairs, &decoys, decoys.len(), 5.0);
    assert!(
        admitted.is_empty(),
        "{} decoys cleared the 5σ threshold: {:?}",
        admitted.len(),
        admitted
    );
}

/// The same contract for OLH at focused-candidate scale (its heavy-
/// hitter path scans distinct reports per candidate, so the million-key
/// sweep belongs to Hadamard — the crate README spells out the trade).
#[test]
fn olh_top_k_recall_on_a_focused_candidate_set() {
    let dep = SparseDeployment::olh("url", 2.0).unwrap();
    let client = dep.client();
    let mut rng = StdRng::seed_from_u64(0x01f4);

    // 40 candidate keys with linearly decaying counts; the top 5 are
    // well-separated from the rest.
    let counts: Vec<(usize, u64)> = (1..=40).map(|i| (i, 4000 / i as u64)).collect();
    let mut shard = SparseShard::new();
    for &(i, c) in &counts {
        let kh = key_hash(&key(i));
        for _ in 0..c {
            shard.absorb(client.respond_hashed(kh, &mut rng));
        }
    }
    let mut ingestor = dep.ingestor();
    ingestor.absorb_shard(&mut shard);
    let pairs: Vec<(u64, u64)> = ingestor.pairs().to_vec();

    let candidates: Vec<u64> = (1..=40).map(|i| key_hash(&key(i))).collect();
    let hitters = dep.heavy_hitters(&pairs, &candidates, 5, 3.0);
    assert_eq!(hitters.len(), 5);
    let truth: Vec<u64> = (1..=5).map(|i| key_hash(&key(i))).collect();
    let hits = truth
        .iter()
        .filter(|kh| hitters.iter().any(|h| h.key_hash == **kh))
        .count();
    assert!(hits >= 4, "OLH recall@5 = {}/5", hits);

    // Decoys stay out here too.
    let decoys: Vec<u64> = (0..200)
        .map(|i| key_hash(&format!("olh-decoy/{i}")))
        .collect();
    assert!(dep
        .heavy_hitters(&pairs, &decoys, decoys.len(), 5.0)
        .is_empty());
}
