//! Integration tests for the paper's theoretical results (Section 5),
//! checked across mechanisms and workloads, including property-based
//! tests over random strategies.

use ldp::core::{bounds, complexity, variance, DataVector, StrategyMatrix};
use ldp::prelude::*;
use proptest::prelude::*;

/// Builds a random column-stochastic strategy matrix from proptest input.
fn strategy_from_raw(raw: &[f64], m: usize, n: usize) -> StrategyMatrix {
    let mut q = Matrix::zeros(m, n);
    for u in 0..n {
        let col = &raw[u * m..(u + 1) * m];
        let total: f64 = col.iter().sum();
        for o in 0..m {
            q[(o, u)] = col[o] / total;
        }
    }
    StrategyMatrix::new(q).expect("normalized columns")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Theorem 5.1: Lavg ≤ Lworst ≤ e^ε (Lavg + (N/n)·‖W‖²_F) for any
    /// factorization of any workload by any valid strategy.
    #[test]
    fn theorem_5_1_sandwich(
        raw in prop::collection::vec(0.05..1.0f64, 8 * 4),
        w_raw in prop::collection::vec(-2.0..2.0f64, 3 * 4),
    ) {
        let (m, n, p) = (8usize, 4usize, 3usize);
        let s = strategy_from_raw(&raw, m, n);
        let eps = s.epsilon();
        prop_assume!(eps.is_finite() && eps > 1e-6);
        let w = Matrix::from_vec(p, n, w_raw);
        let gram = w.gram();
        let k = variance::optimal_reconstruction(&s);
        // Only meaningful when the workload is answerable.
        prop_assume!(variance::rowspace_residual(&s, &k, &gram) < 1e-6 * gram.max_abs().max(1.0));
        let profile = variance::variance_profile(&s, &k, &gram);
        let n_users = 100.0;
        let lworst = variance::worst_case_variance(&profile, n_users);
        let lavg = variance::average_case_variance(&profile, n_users);
        let frob = gram.trace();
        prop_assert!(lavg <= lworst * (1.0 + 1e-9) + 1e-9);
        let upper = eps.exp() * (lavg + n_users / n as f64 * frob);
        prop_assert!(
            lworst <= upper * (1.0 + 1e-9) + 1e-9,
            "Lworst {} exceeds e^eps (Lavg + N/n ||W||_F^2) = {}", lworst, upper
        );
    }

    /// Theorem 5.6: the SVD bound lower-bounds L(Q) for every valid
    /// strategy at its own epsilon.
    #[test]
    fn theorem_5_6_lower_bound(
        raw in prop::collection::vec(0.05..1.0f64, 10 * 4),
        w_raw in prop::collection::vec(-2.0..2.0f64, 4 * 4),
    ) {
        let (m, n, p) = (10usize, 4usize, 4usize);
        let s = strategy_from_raw(&raw, m, n);
        let eps = s.epsilon();
        prop_assume!(eps.is_finite() && eps > 1e-6);
        let w = Matrix::from_vec(p, n, w_raw);
        let gram = w.gram();
        let objective = variance::strategy_objective(&s, &gram);
        let bound = bounds::svd_bound_objective(&gram, eps);
        prop_assert!(
            bound <= objective * (1.0 + 1e-6) + 1e-9,
            "bound {} > objective {}", bound, objective
        );
    }

    /// Unbiasedness: K·Q·x = x for full-rank strategies (the mechanism's
    /// estimates are exactly unbiased, Definition 3.2's premise).
    #[test]
    fn reconstruction_unbiased(
        raw in prop::collection::vec(0.05..1.0f64, 12 * 5),
        counts in prop::collection::vec(0.0..100.0f64, 5),
    ) {
        let (m, n) = (12usize, 5usize);
        let s = strategy_from_raw(&raw, m, n);
        let k = variance::optimal_reconstruction(&s);
        let gram = Matrix::identity(n);
        prop_assume!(variance::rowspace_residual(&s, &k, &gram) < 1e-7);
        let x = DataVector::from_counts(counts);
        let y = s.matrix().matvec(x.counts());
        let xhat = k.matvec(&y);
        for (a, b) in xhat.iter().zip(x.counts()) {
            prop_assert!((a - b).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Sample complexity is exactly proportional to worst-case variance
    /// (Corollary 5.4's proportionality remark).
    #[test]
    fn complexity_proportional_to_variance(
        raw in prop::collection::vec(0.05..1.0f64, 8 * 3),
    ) {
        let (m, n) = (8usize, 3usize);
        let s = strategy_from_raw(&raw, m, n);
        let k = variance::optimal_reconstruction(&s);
        let gram = Matrix::identity(n);
        prop_assume!(variance::rowspace_residual(&s, &k, &gram) < 1e-7);
        let profile = variance::variance_profile(&s, &k, &gram);
        let alpha = 0.02;
        let p = 7usize;
        let sc = complexity::sample_complexity(&profile, p, alpha);
        let lworst_at_1 = variance::worst_case_variance(&profile, 1.0);
        prop_assert!((sc - lworst_at_1 / (p as f64 * alpha)).abs() < 1e-9 * (1.0 + sc));
    }
}

/// Example 5.8 at paper scale: the histogram lower bound is essentially
/// independent of n while RR's cost is linear in n (Section 5.3's
/// comparison).
#[test]
fn histogram_bound_flat_rr_linear() {
    let eps = 1.0;
    let alpha = 0.01;
    let mut bound_small = 0.0;
    let mut bound_large = 0.0;
    let mut rr_small = 0.0;
    let mut rr_large = 0.0;
    for (n, bound_slot, rr_slot) in [
        (16usize, &mut bound_small, &mut rr_small),
        (256, &mut bound_large, &mut rr_large),
    ] {
        let gram = Matrix::identity(n);
        *bound_slot = bounds::sample_complexity_bound(&gram, eps, n, alpha);
        let rr = randomized_response(n, eps, &gram).unwrap();
        *rr_slot = rr.sample_complexity(&gram, n, alpha);
    }
    // Lower bound moves by < 25% over a 16x domain growth (exactly
    // (1/e − 1/256)/(1/e − 1/16) ≈ 1.19 per Example 5.8)...
    assert!((bound_large / bound_small - 1.0).abs() < 0.25);
    // ...while randomized response degrades by an order of magnitude.
    assert!(rr_large / rr_small > 8.0);
}

/// Theorem 5.1's bound is attained with equality for RR on Histogram
/// (Example 3.7: Lworst = Lavg).
#[test]
fn rr_histogram_worst_equals_avg() {
    let n = 9;
    let gram = Matrix::identity(n);
    let rr = randomized_response(n, 1.0, &gram).unwrap();
    let worst = rr.worst_case_variance(&gram, 100.0);
    let avg = rr.average_case_variance(&gram, 100.0);
    assert!((worst - avg).abs() < 1e-8 * worst);
}

/// The optimized strategy respects both the privacy constraint and the
/// SVD bound across epsilons, and its objective decreases as epsilon
/// grows (more budget can never hurt).
#[test]
fn optimized_monotone_in_epsilon() {
    let w = Prefix::new(8);
    let gram = w.gram();
    let mut previous = f64::INFINITY;
    for eps in [0.5, 1.0, 2.0] {
        let result = ldp::opt::optimize_strategy(&gram, eps, &OptimizerConfig::quick(5)).unwrap();
        assert!(result.strategy.epsilon() <= eps + 1e-6);
        let bound = bounds::svd_bound_objective(&gram, eps);
        assert!(result.objective >= bound * (1.0 - 1e-9));
        assert!(
            result.objective <= previous * 1.2,
            "objective should not grow materially with epsilon"
        );
        previous = result.objective;
    }
}
