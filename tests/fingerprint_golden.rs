//! Golden fingerprints: the committed identity of every workload family
//! and of the optimizer configuration.
//!
//! `Workload::fingerprint` is load-bearing far beyond display: it keys
//! the `StrategyRegistry` warm path, binds snapshots to the workload
//! they were optimized for, and anchors checkpoint compatibility across
//! restarts. A silent change to the hash — a reordered field, a renamed
//! canonical description, a different Gram probe — would quietly orphan
//! every cache entry and checkpoint in the field. This suite pins the
//! exact `u64` for one representative of each family so any drift fails
//! loudly, in review, with instructions.

use std::sync::Arc;

use ldp::prelude::*;
use ldp_workloads::{
    AllMarginals, AllRange, Dense, Histogram, KWayMarginals, Parity, Prefix, Product, Stacked,
    Total, WidthRange,
};

/// One representative instance per workload family, in catalog order.
///
/// Kept deliberately small (n = 16, d = 3) — fingerprints hash identity
/// plus an `O(n)` Gram probe, so small instances pin the same code paths
/// the big ones use.
fn observed() -> Vec<(&'static str, u64)> {
    let dense = Dense::new(Matrix::from_rows(&[
        &[1.0, 0.0, 1.0, 0.0],
        &[0.0, 2.0, 0.0, 2.0],
    ]));
    // Inexact weights (0.11·k + 0.25 is not a dyadic rational), so the
    // WᵀW materialization actually rounds: if Dense's Gram assembly ever
    // ran under the ambient backend, FMA contraction would flip result
    // bits and the backend-independence sweep below would catch it. The
    // exact-integer `dense` above can never detect that — every product
    // is exactly representable, so FMA changes nothing.
    let dense_inexact = Dense::new(Matrix::from_fn(6, 8, |i, j| {
        (i * 8 + j) as f64 * 0.11 + 0.25
    }));
    let product = Product::new(Box::new(Histogram::new(4)), Box::new(Prefix::new(4)));
    let stacked = Stacked::new(vec![Box::new(Histogram::new(16)), Box::new(Total::new(16))]);
    let schema = Arc::new(Schema::new([("age", 8), ("sex", 2)]));
    let schema_workload = SchemaWorkload::new(
        Arc::clone(&schema),
        &[
            Query::marginal(["age"]),
            Query::range("age", 2..6).and_equals("sex", 1),
            Query::total(),
        ],
    )
    .expect("valid query set");

    vec![
        ("Histogram(16)", Histogram::new(16).fingerprint()),
        ("Prefix(16)", Prefix::new(16).fingerprint()),
        ("AllRange(16)", AllRange::new(16).fingerprint()),
        ("Total(16)", Total::new(16).fingerprint()),
        ("WidthRange(16,4)", WidthRange::new(16, 4).fingerprint()),
        ("AllMarginals(3)", AllMarginals::new(3).fingerprint()),
        ("KWayMarginals(3,2)", KWayMarginals::new(3, 2).fingerprint()),
        ("Parity(3,<=2)", Parity::up_to(3, 2).fingerprint()),
        ("Dense(2x4)", dense.fingerprint()),
        ("Dense(6x8,inexact)", dense_inexact.fingerprint()),
        ("Product(Hist4 x Prefix4)", product.fingerprint()),
        ("Stacked(Hist16 + Total16)", stacked.fingerprint()),
        ("SchemaWorkload(age8 x sex2)", schema_workload.fingerprint()),
        (
            "OptimizerConfig::quick(42)",
            OptimizerConfig::quick(42).fingerprint(),
        ),
        // The `/2` extended block: selecting L-BFGS or any stopping rule
        // must re-key the registry (the iterate stream changes), while
        // the all-default configs above keep their pre-`/2` hashes.
        (
            "OptimizerConfig::lbfgs(42)",
            OptimizerConfig::lbfgs(42).fingerprint(),
        ),
        (
            "OptimizerConfig::quick(42)+stopping",
            OptimizerConfig::quick(42)
                .with_gradient_tol(Some(1e-7))
                .with_plateau_window(Some(9))
                .fingerprint(),
        ),
        (
            "OptimizerConfig::lbfgs(42)+target",
            OptimizerConfig::lbfgs(42)
                .with_target_objective(Some(512.0))
                .fingerprint(),
        ),
        // Open-domain deployments: sparse fingerprints bind checkpoints
        // and serve-side state exactly like workload fingerprints bind
        // dense ones (and include a fixed-seed protocol probe, so any
        // behavioural drift in an oracle's response path re-keys them).
        (
            "SparseDeployment::olh(url,2.0)",
            sparse_fingerprint(&SparseDeployment::olh("url", 2.0).expect("valid epsilon")),
        ),
        (
            "SparseDeployment::hadamard(url,2.0,8)",
            sparse_fingerprint(&SparseDeployment::hadamard("url", 2.0, 8).expect("valid params")),
        ),
    ]
}

/// The committed fingerprints. Regenerate with
/// `cargo test --test fingerprint_golden -- --nocapture print_fingerprints`.
const GOLDEN: [(&str, u64); 19] = [
    ("Histogram(16)", 0xd4ee89c438ebbda8),
    ("Prefix(16)", 0xd525c013cbf8ddda),
    ("AllRange(16)", 0x255aa356a0de5f51),
    ("Total(16)", 0xfbc27142646353e8),
    ("WidthRange(16,4)", 0xec905307c577b370),
    ("AllMarginals(3)", 0xedfe22c4d1649db5),
    ("KWayMarginals(3,2)", 0x18f2b100cc38dcca),
    ("Parity(3,<=2)", 0xc1d43005d00acc52),
    ("Dense(2x4)", 0xf3ab458f2a7a5d7f),
    ("Dense(6x8,inexact)", 0x4b29b859b6953649),
    ("Product(Hist4 x Prefix4)", 0x7958e89d85f0a458),
    ("Stacked(Hist16 + Total16)", 0x8b48a8323e842de1),
    ("SchemaWorkload(age8 x sex2)", 0x9009379dd8f43349),
    ("OptimizerConfig::quick(42)", 0x16ce92124434b333),
    ("OptimizerConfig::lbfgs(42)", 0xa6d7bf20865561f0),
    ("OptimizerConfig::quick(42)+stopping", 0x461c07e6cd4a2466),
    ("OptimizerConfig::lbfgs(42)+target", 0xbd7920c7e004f071),
    ("SparseDeployment::olh(url,2.0)", 0xa76625a468a0a4fb),
    ("SparseDeployment::hadamard(url,2.0,8)", 0x83adadc0f97d65a7),
];

#[test]
fn fingerprints_match_committed_golden_values() {
    let observed = observed();
    assert_eq!(observed.len(), GOLDEN.len());
    let mut drifted = Vec::new();
    for ((name, got), (gold_name, want)) in observed.iter().zip(GOLDEN.iter()) {
        assert_eq!(name, gold_name, "golden table order drifted");
        if got != want {
            drifted.push(format!(
                "  {name}: committed {want:#018x}, observed {got:#018x}"
            ));
        }
    }
    assert!(
        drifted.is_empty(),
        "\n\
         FINGERPRINT DRIFT — {} of {} committed fingerprints changed:\n{}\n\
         \n\
         These hashes key the StrategyRegistry warm path and bind\n\
         snapshots/checkpoints to their workloads. If this change is\n\
         intentional, it invalidates every cached strategy and stored\n\
         checkpoint: say so explicitly in the PR, then regenerate the\n\
         table with\n\
         \n\
         cargo test --test fingerprint_golden -- --nocapture print_fingerprints\n\
         \n\
         and paste the new constants into GOLDEN. If it is NOT\n\
         intentional, the change that caused it is a compatibility\n\
         break — fix it instead.\n",
        drifted.len(),
        GOLDEN.len(),
        drifted.join("\n")
    );
}

/// Fingerprints content-address cached strategies across machines, so
/// they must not depend on the ambient kernel backend: the whole
/// `Workload::fingerprint` default — Gram construction included — runs
/// under `with_scalar_serial`, and `Dense::gram` pins its `WᵀW`
/// materialization so even externally-held Gram handles carry
/// machine-independent bits. This asserts the pinning holds under every
/// backend the host supports (on an AVX2 host the ambient default is
/// the AVX2 backend — the golden table above already proves that case —
/// and this sweep additionally pins it under explicit overrides). The
/// inexact-weight Dense entry is the canary: its `WᵀW` products round,
/// so a missing pin shows up as FMA-flipped bits here.
#[test]
fn fingerprints_are_backend_independent() {
    let reference = observed();
    for backend in ldp_linalg::Backend::available() {
        let under = ldp_linalg::kernels::with_backend(backend, observed);
        assert_eq!(
            under, reference,
            "fingerprints drifted under the {backend} backend; the probe \
             must stay pinned to scalar+serial arithmetic"
        );
    }
}

#[test]
fn fingerprints_are_pairwise_distinct() {
    let observed = observed();
    for (i, (a_name, a)) in observed.iter().enumerate() {
        for (b_name, b) in &observed[i + 1..] {
            assert_ne!(a, b, "{a_name} and {b_name} collide");
        }
    }
}

/// Not an assertion — prints the current table for pasting into GOLDEN.
#[test]
fn print_fingerprints() {
    for (name, fp) in observed() {
        println!("    (\"{name}\", {fp:#018x}),");
    }
}
