//! Objective parity of the L-BFGS strategy optimizer against projected
//! gradient descent on every conformance workload family.
//!
//! The acceptance contract for [`ldp_opt::Algorithm::Lbfgs`] is twofold,
//! and both halves are asserted per family:
//!
//! 1. **Quality** — from the same seeded initialization, the converged
//!    L-BFGS objective is no worse than the PGD objective beyond a
//!    `1e-6` relative slack (it is usually strictly better, since PGD
//!    runs a fixed iteration budget while L-BFGS runs to convergence).
//! 2. **Cost** — L-BFGS reaches that objective in at least 3× fewer
//!    objective/gradient evaluations (2× for the one documented
//!    borderline family) ([`OptimizationResult::evaluations`]
//!    counts every `evaluate_into` call, including line-search trials
//!    and step-size search probes, summed across restarts).
//!
//! Instances are fixed (not property-drawn): the point is one
//! deterministic, reviewable number pair per family, not coverage of the
//! constructor space — `crates/workloads/tests/conformance.rs` owns that.

use std::sync::Arc;

use ldp_linalg::Matrix;
use ldp_opt::{optimize_strategy, OptimizationResult, OptimizerConfig};
use ldp_workloads::{
    AllMarginals, AllRange, Dense, Histogram, KWayMarginals, Parity, Prefix, Product, Query,
    Schema, SchemaWorkload, Stacked, Total, WidthRange, Workload,
};

/// Relative slack on the objective comparison: L-BFGS stops on its own
/// convergence criteria, so tiny last-iterate differences are expected.
const REL_TOL: f64 = 1e-6;

/// Runs both algorithms from the same seed and asserts the parity
/// contract described in the module docs at the default 3× savings
/// floor.
fn assert_parity(workload: &dyn Workload, seed: u64) -> (OptimizationResult, OptimizationResult) {
    assert_parity_with_savings(workload, seed, 3)
}

/// The same contract with an explicit evaluation-savings floor, for
/// the one family whose deterministic evaluation counts land just
/// under the default bar.
fn assert_parity_with_savings(
    workload: &dyn Workload,
    seed: u64,
    savings: usize,
) -> (OptimizationResult, OptimizationResult) {
    let name = workload.name();
    let gram = workload.gram();
    let epsilon = 1.0;
    let pgd = optimize_strategy(&gram, epsilon, &OptimizerConfig::new(seed))
        .unwrap_or_else(|e| panic!("{name}: PGD failed: {e}"));
    let lbfgs = optimize_strategy(&gram, epsilon, &OptimizerConfig::lbfgs(seed))
        .unwrap_or_else(|e| panic!("{name}: L-BFGS failed: {e}"));
    assert!(
        lbfgs.objective <= pgd.objective * (1.0 + REL_TOL),
        "{name}: L-BFGS objective {} worse than PGD {} beyond {REL_TOL} relative",
        lbfgs.objective,
        pgd.objective,
    );
    assert!(
        lbfgs.evaluations * savings <= pgd.evaluations,
        "{name}: L-BFGS used {} evaluations, PGD used {} — less than {savings}x savings",
        lbfgs.evaluations,
        pgd.evaluations,
    );
    lbfgs
        .strategy
        .check_ldp(epsilon)
        .unwrap_or_else(|e| panic!("{name}: L-BFGS strategy violates the privacy constraint: {e}"));
    (pgd, lbfgs)
}

#[test]
fn histogram_parity() {
    assert_parity(&Histogram::new(8), 7);
}

#[test]
fn total_parity() {
    assert_parity(&Total::new(8), 7);
}

#[test]
fn prefix_parity() {
    assert_parity(&Prefix::new(8), 7);
}

#[test]
fn all_range_parity() {
    assert_parity(&AllRange::new(8), 7);
}

#[test]
fn width_range_parity() {
    // Width-3 ranges at n = 8 are the borderline family: the
    // deterministic counts are 118 L-BFGS evaluations vs 341 for PGD
    // (2.9×), just under the default 3× floor the other twelve
    // families clear.
    assert_parity_with_savings(&WidthRange::new(8, 3), 7, 2);
}

#[test]
fn parity_workload_parity() {
    assert_parity(&Parity::up_to(3, 2), 7);
}

#[test]
fn all_marginals_parity() {
    assert_parity(&AllMarginals::new(3), 7);
}

#[test]
fn k_way_marginals_parity() {
    assert_parity(&KWayMarginals::new(3, 2), 7);
}

#[test]
fn dense_parity() {
    let w = Dense::new(Matrix::from_fn(5, 8, |i, j| {
        ((i * 13 + j * 5) % 11) as f64 * 0.4 - 1.7
    }));
    assert_parity(&w, 7);
}

#[test]
fn product_parity() {
    let w = Product::new(Box::new(Prefix::new(3)), Box::new(AllRange::new(3)));
    assert_parity(&w, 7);
}

#[test]
fn stacked_parity() {
    let w = Stacked::weighted(vec![
        (
            1.5,
            Box::new(Histogram::new(8)) as Box<dyn Workload + Send + Sync>,
        ),
        (
            0.5,
            Box::new(Prefix::new(8)) as Box<dyn Workload + Send + Sync>,
        ),
    ]);
    assert_parity(&w, 7);
}

#[test]
fn schema_parity() {
    let schema = Arc::new(Schema::new([("x", 3), ("y", 2)]));
    let queries = [
        Query::total(),
        Query::marginal(["y"]),
        Query::range("x", 0..2),
    ];
    let w = SchemaWorkload::new(schema, &queries).unwrap();
    assert_parity(&w, 7);
}

#[test]
fn nested_composite_parity() {
    let left = Stacked::new(vec![
        Box::new(Histogram::new(3)) as Box<dyn Workload + Send + Sync>,
        Box::new(Total::new(3)) as Box<dyn Workload + Send + Sync>,
    ]);
    let right = Parity::up_to(2, 1);
    let w = Product::new(Box::new(left), Box::new(right));
    assert_parity(&w, 7);
}
