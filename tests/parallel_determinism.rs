//! Bit-identity of every parallel path against its serial schedule.
//!
//! The determinism contract of the `ldp-parallel` runtime is that the
//! thread count is *unobservable* in results: every parallel section
//! partitions work by disjoint output elements, so no floating-point
//! sum is ever re-associated across threads. These tests pin that
//! contract for each parallelized kernel by running the same computation
//! under worker counts 1, 2, and 4 (via the thread-local override the
//! runtime provides exactly for this purpose — `LDP_THREADS` would race
//! across concurrently running tests) and asserting **byte equality**,
//! not approximate equality.
//!
//! Shapes are deliberately odd — prime-ish dimensions that divide
//! neither the `MR = 4` micro panel, the `KC`/`NC` blocks, nor any
//! worker count — and sit just above the kernels' parallelization
//! thresholds so the multi-worker runs genuinely partition.
//!
//! The contract is *per kernel backend*: the whole 1/2/4-worker sweep
//! runs once under every backend the host supports (scalar always; AVX2
//! where detected), with a separate 1-worker baseline per backend —
//! thread-count invariance must hold inside each backend, while
//! cross-backend bit-equality is deliberately not claimed (FMA changes
//! rounding).

use std::sync::Arc;

use ldp::prelude::*;
use ldp_linalg::{fwht, Backend, KroneckerOp, StructuredGram};
use ldp_parallel::set_thread_override;
use ldp_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// Runs `f` under each worker count and asserts every result is
/// byte-identical to the 1-worker run, repeating the whole sweep under
/// every kernel backend this host supports.
fn assert_thread_invariant<T: PartialEq + std::fmt::Debug>(label: &str, f: impl Fn() -> T) {
    for backend in Backend::available() {
        ldp_linalg::kernels::with_backend(backend, || {
            set_thread_override(Some(1));
            let baseline = f();
            for threads in THREAD_COUNTS {
                set_thread_override(Some(threads));
                let got = f();
                assert_eq!(
                    got, baseline,
                    "{label}: {threads} workers diverged on backend {backend}"
                );
            }
            set_thread_override(None);
        });
    }
}

fn dense(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 31 + j * 17 + salt * 7) % 23) as f64 * 0.37 - 3.1
    })
}

fn vector(len: usize, salt: usize) -> Vec<f64> {
    (0..len)
        .map(|i| ((i * 13 + salt * 5) % 19) as f64 * 0.29 - 2.3)
        .collect()
}

#[test]
fn matmul_bit_identical_across_threads() {
    // 103·101·107 ≈ 1.11M multiply-adds: above the threading threshold,
    // and no dimension divides MR, KC, NC, or any worker count.
    let a = dense(103, 101, 1);
    let b = dense(101, 107, 2);
    assert_thread_invariant("matmul", || a.matmul(&b).as_slice().to_vec());
}

#[test]
fn t_matmul_bit_identical_across_threads() {
    let a = dense(101, 103, 3);
    let b = dense(101, 109, 4);
    assert_thread_invariant("t_matmul", || a.t_matmul(&b).as_slice().to_vec());
}

#[test]
fn matmul_t_bit_identical_across_threads() {
    let a = dense(107, 101, 5);
    let b = dense(103, 101, 6);
    assert_thread_invariant("matmul_t", || a.matmul_t(&b).as_slice().to_vec());
}

#[test]
fn dense_matvec_bit_identical_across_threads() {
    let m = dense(1031, 1033, 7);
    let x = vector(1033, 8);
    let y = vector(1031, 9);
    assert_thread_invariant("matvec", || m.matvec(&x));
    assert_thread_invariant("t_matvec", || m.t_matvec(&y));
}

#[test]
fn fwht_and_hamming_kernel_bit_identical_across_threads() {
    // 2¹⁷ elements: above the FWHT threading threshold, so both the
    // many-narrow-blocks and few-wide-blocks pass shapes execute.
    let base = vector(1 << 17, 10);
    assert_thread_invariant("fwht", || {
        let mut data = base.clone();
        fwht(&mut data);
        data
    });

    let d = 17;
    let kernel: Vec<f64> = (0..=d).map(|h| (d - h + 1) as f64 * 0.5).collect();
    let gram = StructuredGram::hamming_kernel(d, kernel);
    assert_thread_invariant("hamming matvec", || gram.matvec(&base));
}

#[test]
fn kronecker_matvec_bit_identical_across_threads() {
    // 301 × 219 = 65 919 ≥ the Kronecker threshold; both factors odd.
    let left = StructuredGram::prefix(301);
    let right = StructuredGram::all_range(219);
    let op = KroneckerOp::new(Arc::new(left), Arc::new(right));
    let x = vector(301 * 219, 11);
    assert_thread_invariant("kronecker matvec", || op.matvec(&x));
    assert_thread_invariant("kronecker t_matvec", || op.t_matvec(&x));
}

#[test]
fn pgd_restarts_bit_identical_across_threads() {
    let gram = Prefix::new(9).gram();
    let config = OptimizerConfig::quick(23).with_restarts(3);
    assert_thread_invariant("pgd restarts", || {
        let result = optimize_strategy(&gram, 1.0, &config).expect("optimizer succeeds");
        (
            result.objective.to_bits(),
            result
                .history
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            result.strategy.matrix().as_slice().to_vec(),
        )
    });
}

#[test]
fn lbfgs_bit_identical_across_threads() {
    // n = 48 → m = 192, so m·n = 9216 crosses the projection's parallel
    // threshold: every line-search retraction inside the L-BFGS descent
    // runs the fan-out λ path at 2 and 4 workers. History bits pin the
    // stopping decisions (plateau + gradient tol), not just the argmin.
    let gram = Prefix::new(48).gram();
    let config = OptimizerConfig::lbfgs(23);
    assert_thread_invariant("lbfgs descent", || {
        let result = optimize_strategy(&gram, 1.0, &config).expect("optimizer succeeds");
        (
            result.objective.to_bits(),
            result.evaluations,
            result
                .history
                .iter()
                .map(|v| v.to_bits())
                .collect::<Vec<_>>(),
            result.strategy.matrix().as_slice().to_vec(),
        )
    });
}

#[test]
fn lbfgs_restarts_bit_identical_across_threads() {
    // Multi-restart argmin reduction under the quasi-Newton descent,
    // mirroring `pgd_restarts_bit_identical_across_threads`.
    let gram = Prefix::new(9).gram();
    let config = OptimizerConfig::lbfgs(23).with_restarts(3);
    assert_thread_invariant("lbfgs restarts", || {
        let result = optimize_strategy(&gram, 1.0, &config).expect("optimizer succeeds");
        (
            result.objective.to_bits(),
            result.evaluations,
            result.strategy.matrix().as_slice().to_vec(),
        )
    });
}

#[test]
fn pipeline_aggregate_bit_identical_and_exact() {
    let deployment = Pipeline::for_workload(Prefix::new(16))
        .epsilon(1.0)
        .baseline(Baseline::HadamardResponse)
        .expect("deployable");
    let client = deployment.client();
    let mut rng = StdRng::seed_from_u64(3);
    // Above aggregate()'s sequential-fallback gate, and an odd count so
    // worker chunks never divide evenly.
    let reports: Vec<usize> = (0..20_011)
        .map(|i| client.respond(i % 16, &mut rng))
        .collect();

    let mut sequential = deployment.aggregator();
    sequential.ingest_batch(&reports).expect("valid reports");
    let expected_counts = sequential.counts().to_vec();
    let expected_estimate = sequential.estimate();

    assert_thread_invariant("aggregate", || {
        let agg = deployment.aggregate(&reports).expect("valid reports");
        assert_eq!(agg.counts(), expected_counts, "counts must merge exactly");
        agg.estimate()
    });
    // The estimate derived from merged integer counts equals the
    // sequential one bit for bit.
    set_thread_override(Some(4));
    let agg = deployment.aggregate(&reports).expect("valid reports");
    assert_eq!(agg.estimate(), expected_estimate);
    set_thread_override(None);
}

#[test]
fn pipeline_aggregate_rejects_bad_batch_like_sequential() {
    let deployment = Pipeline::for_workload(Prefix::new(8))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .expect("deployable");
    let mut reports = vec![0usize; 20_000];
    reports[17_777] = 99_999; // out of range
    for threads in THREAD_COUNTS {
        set_thread_override(Some(threads));
        let err = deployment.aggregate(&reports);
        assert!(
            matches!(err, Err(LdpError::DimensionMismatch { actual: 99_999, .. })),
            "bad report must be rejected at {threads} workers"
        );
    }
    set_thread_override(None);
}

#[test]
fn wnnls_bit_identical_across_threads() {
    // Dense 1031² Gram: each FISTA matvec crosses the dense threading
    // threshold, so the solve is genuinely parallel at 2 and 4 workers.
    let raw = dense(1031, 1031, 12);
    let gram = raw.gram();
    let xhat: Vec<f64> = vector(1031, 13);
    let options = WnnlsOptions {
        max_iterations: 48,
        tolerance: 0.0,
    };
    assert_thread_invariant("wnnls", || wnnls(&gram, &xhat, &options));
}
