//! The durability contracts, pinned:
//!
//! 1. **Snapshot round-trip identity** — encode→decode is the identity
//!    on random aggregator states (property-tested), and strict decode
//!    rejects truncation, bit flips, and version mismatches with typed
//!    errors, never panics, never silent acceptance.
//! 2. **Registry warm hits skip optimization** and produce strategies
//!    bit-identical to both the cold run that populated the cache and a
//!    registry-free `optimize_strategy` call.
//! 3. **Interrupt/resume byte-equality** — a streaming ingestion
//!    interrupted at *any* batch boundary and resumed from its
//!    checkpoint produces estimates byte-equal to an uninterrupted run.
//!
//! Every contract is exercised under serial and 4-worker thread
//! overrides (the streaming extension of the PR 3 determinism contract):
//! the `LDP_THREADS`-style worker count must be unobservable in durable
//! state and in everything recomputed after a resume.

use ldp::prelude::*;
use ldp::store::{
    decode_aggregator, decode_shard, encode_aggregator, encode_shard, CacheOutcome, StoreError,
    StrategyRegistry,
};
use ldp_parallel::set_thread_override;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs `f` under 1-worker and 4-worker overrides, restoring the
/// environment default afterwards.
fn under_thread_overrides(mut f: impl FnMut(usize)) {
    for threads in [1usize, 4] {
        set_thread_override(Some(threads));
        f(threads);
    }
    set_thread_override(None);
}

fn unique_dir(tag: &str) -> std::path::PathBuf {
    // Collision-free across parallel test binaries and repeated runs.
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    std::env::temp_dir().join(format!(
        "ldp-durability-{tag}-{}-{}",
        std::process::id(),
        COUNTER.fetch_add(1, Ordering::Relaxed)
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// encode→decode is the identity on random shard states, and the
    /// decoded state keeps producing bit-identical estimates.
    #[test]
    fn snapshot_round_trip_identity(
        counts in prop::collection::vec(0u64..1_000_000, 9),
        k_raw in prop::collection::vec(-2.0..2.0f64, 5 * 9),
    ) {
        let shard = AggregatorShard::from_counts(counts.clone());
        let decoded = decode_shard(&encode_shard(&shard)).unwrap();
        prop_assert_eq!(&decoded, &shard);

        let k = Matrix::from_vec(5, 9, k_raw);
        let agg = Aggregator::from_parts(k, shard).unwrap();
        let restored = decode_aggregator(&encode_aggregator(&agg)).unwrap();
        prop_assert_eq!(restored.counts(), agg.counts());
        prop_assert_eq!(restored.estimate(), agg.estimate());
    }

    /// Strict decode: every truncation and every single-bit flip of a
    /// valid record is rejected with a typed error (no panic, no
    /// acceptance), and a version bump is its own error.
    #[test]
    fn snapshot_decode_rejects_corruption(
        counts in prop::collection::vec(0u64..1_000_000, 6),
        flip_seed in 0u64..10_000,
    ) {
        let bytes = encode_shard(&AggregatorShard::from_counts(counts));

        // Truncation at a pseudo-random set of lengths (all lengths is
        // O(len²) work across cases; the unit tests in ldp-store cover
        // the exhaustive sweep once).
        let mut rng = StdRng::seed_from_u64(flip_seed);
        for _ in 0..16 {
            let cut = rng.gen_range(0..bytes.len());
            prop_assert!(decode_shard(&bytes[..cut]).is_err(), "truncation at {} accepted", cut);
        }

        // Random single-bit flips.
        for _ in 0..16 {
            let byte = rng.gen_range(0..bytes.len());
            let bit = rng.gen_range(0..8u32);
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            prop_assert!(
                decode_shard(&corrupt).is_err(),
                "bit flip at byte {} bit {} accepted", byte, bit
            );
        }

        // Version mismatch is typed (checksum recomputed so only the
        // version differs).
        let mut versioned = bytes.clone();
        versioned[4] = 99;
        let body = versioned.len() - 8;
        let sum = ldp::linalg::stablehash::fnv1a64(&versioned[..body]);
        versioned[body..].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(matches!(
            decode_shard(&versioned).unwrap_err(),
            StoreError::UnsupportedVersion { found: 99, .. }
        ));
    }

    /// A streaming run interrupted at ANY batch boundary and resumed
    /// from its checkpoint is byte-equal to the uninterrupted run —
    /// under both serial and 4-worker overrides.
    #[test]
    fn interrupt_resume_byte_equal_at_any_boundary(
        cut in 0usize..9,
        seed in 0u64..500,
    ) {
        let deployment = Pipeline::for_workload(Prefix::new(16))
            .epsilon(1.0)
            .baseline(Baseline::HadamardResponse)
            .unwrap();
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(seed);
        let batches: Vec<Vec<usize>> = (0..8)
            .map(|b| (0..257).map(|i| client.respond((b * 7 + i) % 16, &mut rng)).collect())
            .collect();

        under_thread_overrides(|threads| {
            let mut uninterrupted = deployment.stream();
            for b in &batches {
                uninterrupted.ingest_batch(b).unwrap();
            }

            // Interrupt after `cut` batches (cut == 0: checkpoint of an
            // empty stream; cut == 8: checkpoint after everything).
            let mut first_half = deployment.stream();
            for b in &batches[..cut] {
                first_half.ingest_batch(b).unwrap();
            }
            let checkpoint = first_half.checkpoint();
            drop(first_half);

            let mut resumed = deployment.resume(&checkpoint).unwrap();
            for b in &batches[cut..] {
                resumed.ingest_batch(b).unwrap();
            }

            assert_eq!(
                resumed.aggregator().counts(),
                uninterrupted.aggregator().counts(),
                "counts diverged at cut {cut}, {threads} workers"
            );
            // Byte-equality of the post-processed estimates, not just
            // the integer state.
            assert_eq!(
                resumed.estimate().data_vector(),
                uninterrupted.estimate().data_vector(),
                "estimate diverged at cut {cut}, {threads} workers"
            );
            assert_eq!(resumed.batches(), 8);
            assert_eq!(resumed.reports(), uninterrupted.reports());
        });
    }
}

/// A registry warm hit skips PGD and returns a strategy bit-identical to
/// the cold optimization and to a registry-free optimizer call — at
/// every thread override (parallel restarts are part of the PR 3
/// contract).
#[test]
fn registry_warm_hit_is_bit_identical_and_skips_pgd() {
    let dir = unique_dir("registry");
    let registry = StrategyRegistry::open(&dir).unwrap();
    let config = OptimizerConfig {
        iterations: 25,
        restarts: 2,
        search_iterations: 4,
        ..OptimizerConfig::quick(11)
    }
    .with_env_algorithm();
    let epsilon = 1.0;

    // Registry-free reference: what a plain optimization produces.
    let reference = optimize_strategy(&Prefix::new(8).gram(), epsilon, &config).unwrap();

    let (cold_dep, cold_outcome) = Pipeline::for_workload(Prefix::new(8))
        .epsilon(epsilon)
        .optimized_cached(&config, &registry)
        .unwrap();
    assert_eq!(cold_outcome, CacheOutcome::Cold);

    under_thread_overrides(|threads| {
        let (warm_dep, warm_outcome) = Pipeline::for_workload(Prefix::new(8))
            .epsilon(epsilon)
            .optimized_cached(&config, &registry)
            .unwrap();
        assert_eq!(
            warm_outcome,
            CacheOutcome::Warm,
            "expected warm hit at {threads} workers"
        );
        // Bit-identical mechanism state: the reconstruction is a pure
        // function of the strategy, so K equality certifies Q equality.
        assert_eq!(
            warm_dep.mechanism().reconstruction_matrix().as_slice(),
            cold_dep.mechanism().reconstruction_matrix().as_slice(),
            "warm != cold at {threads} workers"
        );
    });

    // The persisted strategy is the optimizer's own output, bit-for-bit.
    let (stored, outcome) = registry
        .get_or_optimize(&Prefix::new(8), epsilon, &config)
        .unwrap();
    assert_eq!(outcome, CacheOutcome::Warm);
    assert_eq!(
        stored.matrix().as_slice(),
        reference.strategy.matrix().as_slice()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The registry is workload-aware: same domain size, different query
/// structure → different cache entries (the Gram fingerprint
/// discriminates), while a semantically identical workload object hits.
#[test]
fn registry_distinguishes_workloads_not_instances() {
    let dir = unique_dir("keys");
    let registry = StrategyRegistry::open(&dir).unwrap();
    let config = OptimizerConfig {
        iterations: 12,
        search_iterations: 3,
        ..OptimizerConfig::quick(5)
    }
    .with_env_algorithm();

    let (_, o1) = registry
        .get_or_optimize(&Prefix::new(8), 1.0, &config)
        .unwrap();
    assert_eq!(o1, CacheOutcome::Cold);
    // A *fresh instance* of the same workload type hits.
    let (_, o2) = registry
        .get_or_optimize(&Prefix::new(8), 1.0, &config)
        .unwrap();
    assert_eq!(o2, CacheOutcome::Warm);
    // Same n, different workload → miss.
    let (_, o3) = registry
        .get_or_optimize(&Histogram::new(8), 1.0, &config)
        .unwrap();
    assert_eq!(o3, CacheOutcome::Cold);
    // Same workload, different budget → miss.
    let (_, o4) = registry
        .get_or_optimize(&Prefix::new(8), 2.0, &config)
        .unwrap();
    assert_eq!(o4, CacheOutcome::Cold);
    let _ = std::fs::remove_dir_all(&dir);
}

/// A checkpoint is bound to the *workload*, not just the mechanism: two
/// deployments of the same baseline (identical strategy, reconstruction,
/// budget, dimensions) for different workloads — or different schema
/// query sets — must refuse each other's checkpoints with the typed
/// [`StoreError::BindingMismatch`], never silently resume.
#[test]
fn resume_rejects_checkpoint_from_different_workload_fingerprint() {
    // Same n, same ε, same mechanism (RR only depends on n and ε) —
    // only the workload differs.
    let histogram = Pipeline::for_workload(Histogram::new(16))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let prefix = Pipeline::for_workload(Prefix::new(16))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    assert_eq!(
        histogram.mechanism().reconstruction_matrix().as_slice(),
        prefix.mechanism().reconstruction_matrix().as_slice(),
        "precondition: identical mechanisms, so only the workload can discriminate"
    );

    let mut stream = histogram.stream();
    stream.ingest_batch(&[0, 1, 2, 3]).unwrap();
    let checkpoint = stream.checkpoint();

    // The owner resumes fine; the foreign workload is refused, typed.
    assert!(histogram.resume(&checkpoint).is_ok());
    let err = prefix.resume(&checkpoint).unwrap_err();
    assert!(
        matches!(err, StoreError::BindingMismatch { .. }),
        "expected BindingMismatch, got {err:?}"
    );

    // Schema deployments: the binding covers the query set, so the same
    // schema with different queries is also a different deployment.
    let schema = || Schema::new([("age", 8), ("sex", 2)]);
    let a = Pipeline::for_schema(schema())
        .queries([Query::marginal(["age"])])
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let b = Pipeline::for_schema(schema())
        .queries([Query::marginal(["age"]), Query::total()])
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let mut stream = a.stream();
    stream.ingest_batch(&[0, 5, 9]).unwrap();
    let checkpoint = stream.checkpoint();
    let mut resumed = a.resume(&checkpoint).unwrap();
    resumed.ingest_batch(&[1]).unwrap();
    assert_eq!(resumed.reports(), 4);
    assert!(matches!(
        b.resume(&checkpoint).unwrap_err(),
        StoreError::BindingMismatch { .. }
    ));
}

/// Checkpoints written under one thread override resume correctly under
/// another: worker count is unobservable in durable state.
#[test]
fn checkpoint_portable_across_thread_counts() {
    let deployment = Pipeline::for_workload(Histogram::new(32))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let client = deployment.client();
    let mut rng = StdRng::seed_from_u64(3);
    let reports: Vec<usize> = (0..40_000)
        .map(|i| client.respond(i % 32, &mut rng))
        .collect();

    set_thread_override(Some(4));
    let mut stream = deployment.stream();
    stream.ingest_batch(&reports[..25_000]).unwrap();
    let checkpoint = stream.checkpoint();
    let reference: Vec<f64> = {
        let mut all = deployment.stream();
        all.ingest_batch(&reports[..25_000]).unwrap();
        all.ingest_batch(&reports[25_000..]).unwrap();
        all.estimate().data_vector().to_vec()
    };
    drop(stream);

    set_thread_override(Some(1));
    let mut resumed = deployment.resume(&checkpoint).unwrap();
    resumed.ingest_batch(&reports[25_000..]).unwrap();
    assert_eq!(resumed.estimate().data_vector(), &reference[..]);
    set_thread_override(None);
}
