//! Property-based integration tests over the whole pipeline: random
//! workloads, random privacy budgets, random data — the invariants that
//! must hold for *any* input, not just the paper's six workloads.

use ldp::core::{variance, DataVector, LdpMechanism};
use ldp::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The optimizer always returns a valid ε-LDP strategy whose objective
    /// respects the SVD bound, for arbitrary dense workloads.
    #[test]
    fn optimizer_sound_on_random_workloads(
        w_raw in prop::collection::vec(-3.0..3.0f64, 4 * 5),
        eps in 0.3..3.0f64,
        seed in 0u64..1000,
    ) {
        let workload = Dense::new(Matrix::from_vec(4, 5, w_raw));
        let gram = workload.gram();
        // Skip the all-zero workload (objective trivially 0).
        prop_assume!(gram.max_abs() > 1e-6);
        let config = OptimizerConfig { iterations: 40, search_iterations: 5, ..OptimizerConfig::quick(seed) }.with_env_algorithm();
        let result = ldp::opt::optimize_strategy(&gram, eps, &config).unwrap();
        prop_assert!(result.strategy.epsilon() <= eps * (1.0 + 1e-9) + 1e-12);
        let bound = ldp::core::bounds::svd_bound_objective(&gram, eps);
        prop_assert!(result.objective >= bound * (1.0 - 1e-6) - 1e-9);
        prop_assert!(result.objective.is_finite());
    }

    /// Executing any baseline mechanism conserves users and produces
    /// finite estimates.
    #[test]
    fn execution_conserves_users(
        counts in prop::collection::vec(0.0..50.0f64, 6),
        eps in 0.5..3.0f64,
        seed in 0u64..1000,
    ) {
        let n = 6;
        let gram = Matrix::identity(n);
        let data = DataVector::from_counts(counts);
        let mech = randomized_response(n, eps, &gram).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let y = mech.collect(&data, &mut rng);
        // `collect` rounds each type's count to whole users.
        let rounded_total = data.rounded().total();
        prop_assert!((y.total() - rounded_total).abs() < 1e-9);
        let xhat = mech.estimate(&y);
        prop_assert!(xhat.iter().all(|v| v.is_finite()));
        // Estimated total is exactly the user count: K preserves totals
        // because 1ᵀQ = 1ᵀ implies 1ᵀK = 1ᵀ on the row space.
        let est_total: f64 = xhat.iter().sum();
        prop_assert!((est_total - y.total()).abs() < 1e-6 * (1.0 + y.total()));
    }

    /// WNNLS output is non-negative and never increases the workload-space
    /// distance to the unbiased estimate.
    #[test]
    fn wnnls_invariants(
        xhat in prop::collection::vec(-20.0..50.0f64, 8),
        w_raw in prop::collection::vec(0.0..2.0f64, 5 * 8),
    ) {
        let workload = Dense::new(Matrix::from_vec(5, 8, w_raw));
        let gram = workload.gram();
        prop_assume!(gram.max_abs() > 1e-6);
        let solution = wnnls(&gram, &xhat, &WnnlsOptions::default());
        prop_assert!(solution.iter().all(|&v| v >= 0.0 && v.is_finite()));
        // Objective no worse than the zero vector and the clamped vector.
        let obj = |x: &[f64]| {
            let diff: Vec<f64> = x.iter().zip(&xhat).map(|(a, b)| a - b).collect();
            let gd = gram.matvec(&diff);
            ldp::linalg::dot(&diff, &gd)
        };
        let zero = vec![0.0; 8];
        let clamped: Vec<f64> = xhat.iter().map(|v| v.max(0.0)).collect();
        prop_assert!(obj(&solution) <= obj(&zero) + 1e-6 * (1.0 + obj(&zero)));
        prop_assert!(obj(&solution) <= obj(&clamped) + 1e-6 * (1.0 + obj(&clamped)));
    }

    /// Stacking a workload with itself doubles the Gram and exactly
    /// doubles every mechanism variance (variance is linear in WᵀW).
    #[test]
    fn variance_linear_in_gram(
        raw in prop::collection::vec(0.05..1.0f64, 10 * 4),
    ) {
        let (m, n) = (10usize, 4usize);
        let mut q = Matrix::zeros(m, n);
        for u in 0..n {
            let col = &raw[u * m..(u + 1) * m];
            let total: f64 = col.iter().sum();
            for o in 0..m {
                q[(o, u)] = col[o] / total;
            }
        }
        let s = ldp::core::StrategyMatrix::new(q).unwrap();
        let k = variance::optimal_reconstruction(&s);
        let gram = Matrix::identity(n);
        let gram2 = gram.scaled(2.0);
        let p1 = variance::variance_profile(&s, &k, &gram);
        let p2 = variance::variance_profile(&s, &k, &gram2);
        for (a, b) in p1.iter().zip(&p2) {
            prop_assert!((2.0 * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }
}

/// Mechanism trait objects interoperate: a heterogeneous collection can
/// be ranked on a shared workload (the pattern every figure binary uses).
#[test]
fn heterogeneous_mechanism_ranking() {
    let n = 16;
    let eps = 1.0;
    let w = Prefix::new(n);
    let gram = w.gram();
    let mechanisms: Vec<Box<dyn LdpMechanism>> = vec![
        Box::new(randomized_response(n, eps, &gram).unwrap()),
        Box::new(hadamard_response(n, eps, &gram).unwrap()),
        Box::new(hierarchical(n, eps, &gram).unwrap()),
        Box::new(LocalMatrixMechanism::optimized(
            &gram,
            eps,
            Calibration::L1,
            15,
        )),
        Box::new(
            optimized_mechanism(&gram, eps, &OptimizerConfig::quick(2).with_env_algorithm())
                .unwrap(),
        ),
    ];
    let p = w.num_queries();
    let mut scores: Vec<(String, f64)> = mechanisms
        .iter()
        .map(|mech| (mech.name(), mech.sample_complexity(&gram, p, 0.01)))
        .collect();
    scores.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
    assert_eq!(scores[0].0, "Optimized", "ranking: {scores:?}");
}

/// The estimate returned by `run` plus implicit workload evaluation
/// agrees with evaluating the explicit workload matrix — the implicit
/// path used for huge workloads is the same linear map.
#[test]
fn implicit_and_explicit_answers_agree() {
    let n = 8;
    let w = AllRange::new(n);
    let gram = w.gram();
    let mech = randomized_response(n, 1.0, &gram).unwrap();
    let data = DataVector::from_counts(vec![10.0, 5.0, 8.0, 2.0, 0.0, 7.0, 3.0, 1.0]);
    let mut rng = StdRng::seed_from_u64(12);
    let xhat = mech.run(&data, &mut rng);
    let implicit = w.evaluate(&xhat);
    let explicit = w.matrix().matvec(&xhat);
    for (a, b) in implicit.iter().zip(&explicit) {
        assert!((a - b).abs() < 1e-9);
    }
}
