//! Property tests for the `Pipeline`/`Deployment`/`Estimate` API: the
//! fluent path must agree *exactly* (same seed → same bits) with the
//! manual five-crate plumbing it replaces, and sharded aggregation must
//! be indistinguishable from sequential collection.

use ldp::core::protocol::{Aggregator, Client};
use ldp::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The three paper workloads the equivalence property runs over.
fn workload(kind: usize, n: usize) -> Box<dyn Workload + Send + Sync> {
    match kind % 3 {
        0 => Box::new(Histogram::new(n)),
        1 => Box::new(Prefix::new(n)),
        _ => Box::new(AllRange::new(n)),
    }
}

/// A cheap optimizer configuration keeping the property tests fast.
/// Honors `LDP_TEST_ALGORITHM` so CI can sweep the suite under L-BFGS.
fn quick_config(seed: u64) -> OptimizerConfig {
    let mut config = OptimizerConfig::quick(seed);
    config.iterations = 30;
    config.search_iterations = 4;
    config.with_env_algorithm()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Pipeline-built optimized deployments agree bit-for-bit with the
    /// manual `optimized_mechanism` + `Client`/`Aggregator` path for the
    /// same seeds, on Histogram, Prefix, and AllRange.
    #[test]
    fn pipeline_matches_manual_path(
        kind in 0usize..3,
        eps in 0.4..2.5f64,
        opt_seed in 0u64..1000,
        report_seed in 0u64..1000,
    ) {
        let n = 8;
        let w = workload(kind, n);
        let config = quick_config(opt_seed);

        // Manual path: hand-thread gram → optimizer → mechanism →
        // client → aggregator → wnnls.
        let gram = w.gram();
        let mech = optimized_mechanism(&gram, eps, &config).unwrap();
        let client = Client::new(mech.strategy().clone());
        let mut agg = Aggregator::new(&mech);
        let mut rng = StdRng::seed_from_u64(report_seed);
        for user in 0..n {
            for _ in 0..20 {
                agg.ingest(client.respond(user, &mut rng)).unwrap();
            }
        }
        let manual_xhat = agg.estimate();
        let manual_answers = w.evaluate(&manual_xhat);
        let manual_consistent = wnnls(&gram, &manual_xhat, &WnnlsOptions::default());

        // Pipeline path, same seeds end to end.
        let deployment = Pipeline::for_shared_workload(std::sync::Arc::from(w))
            .epsilon(eps)
            .optimized(&config)
            .unwrap();
        let pclient = deployment.client();
        let mut pagg = deployment.aggregator();
        let mut prng = StdRng::seed_from_u64(report_seed);
        for user in 0..n {
            for _ in 0..20 {
                pagg.ingest(pclient.respond(user, &mut prng)).unwrap();
            }
        }
        let estimate = deployment.estimate(&pagg);

        prop_assert_eq!(estimate.reports(), (20 * n) as u64);
        prop_assert_eq!(estimate.data_vector(), manual_xhat.as_slice());
        prop_assert_eq!(estimate.answers(), manual_answers);
        let consistent = estimate.consistent();
        prop_assert_eq!(consistent.data_vector(), manual_consistent.as_slice());
    }

    /// N merged shards equal one sequential aggregator exactly — counts
    /// and estimates bit-for-bit, for any report stream, shard count,
    /// and merge direction.
    #[test]
    fn n_shards_equal_one_aggregator(
        kind in 0usize..3,
        num_shards in 1usize..9,
        seed in 0u64..1000,
        total in 100usize..2000,
    ) {
        let n = 16;
        let deployment = Pipeline::for_shared_workload(std::sync::Arc::from(workload(kind, n)))
            .epsilon(1.0)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<usize> =
            (0..total).map(|i| client.respond(i % n, &mut rng)).collect();

        let mut sequential = deployment.aggregator();
        sequential.ingest_batch(&reports).unwrap();

        let mut shards = deployment.shards(num_shards);
        for (i, &r) in reports.iter().enumerate() {
            shards[i % num_shards].ingest(r).unwrap();
        }

        // Fold in reverse order to stress order-independence, and also
        // reduce pairwise to a single shard first.
        let merged_rev = deployment
            .merge(shards.clone().into_iter().rev())
            .unwrap();
        let mut pairwise = shards.remove(0);
        for s in shards {
            pairwise = pairwise.merge(s).unwrap();
        }
        let merged_pairwise = deployment.merge([pairwise]).unwrap();

        prop_assert_eq!(merged_rev.counts(), sequential.counts());
        prop_assert_eq!(merged_pairwise.counts(), sequential.counts());
        let est_rev = deployment.estimate(&merged_rev);
        let est_pairwise = deployment.estimate(&merged_pairwise);
        let est_sequential = deployment.estimate(&sequential);
        prop_assert_eq!(est_rev.data_vector(), est_sequential.data_vector());
        prop_assert_eq!(est_pairwise.data_vector(), est_sequential.data_vector());
    }

    /// Estimates read through the pipeline carry the same analytics as
    /// the underlying mechanism: variance profile, sample complexity,
    /// and WNNLS non-negativity.
    #[test]
    fn estimate_analytics_match_mechanism(kind in 0usize..3, eps in 0.5..3.0f64) {
        let n = 8;
        let w = workload(kind, n);
        let gram = w.gram();
        let mech = randomized_response(n, eps, &gram).unwrap();
        let expected_sc = mech.sample_complexity(&gram, w.num_queries(), 0.01);

        let deployment = Pipeline::for_shared_workload(std::sync::Arc::from(w))
            .epsilon(eps)
            .baseline(Baseline::RandomizedResponse)
            .unwrap();
        prop_assert!((deployment.sample_complexity(0.01) - expected_sc).abs()
            < 1e-9 * (1.0 + expected_sc));

        let mut agg = deployment.aggregator();
        agg.ingest_batch(&vec![0usize; 50]).unwrap();
        let estimate = deployment.estimate(&agg);
        let manual_variance = mech.worst_case_variance(&gram, 50.0);
        prop_assert!((estimate.worst_case_variance() - manual_variance).abs()
            < 1e-9 * (1.0 + manual_variance));
        prop_assert!(estimate
            .consistent()
            .data_vector()
            .iter()
            .all(|&v| v >= 0.0 && v.is_finite()));
    }
}

/// A bad report rejects a whole batch atomically through the pipeline
/// types, leaving shard and aggregator untouched.
#[test]
fn batch_validation_is_atomic() {
    let deployment = Pipeline::for_workload(Histogram::new(4))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .unwrap();
    let mut shard = deployment.shard();
    shard.ingest_batch(&[0, 1, 2, 3]).unwrap();
    let err = shard.ingest_batch(&[1, 2, 1000, 0]);
    assert!(matches!(
        err,
        Err(LdpError::DimensionMismatch { actual: 1000, .. })
    ));
    assert_eq!(shard.reports(), 4, "failed batch must not be half-applied");
    assert_eq!(shard.counts(), &[1, 1, 1, 1]);
}

/// The deployment is Send + Sync + Clone and usable from real threads.
#[test]
fn deployment_shared_across_threads() {
    let deployment = Pipeline::for_workload(Prefix::new(8))
        .epsilon(1.0)
        .baseline(Baseline::Hierarchical)
        .unwrap();
    let shards: Vec<AggregatorShard> = std::thread::scope(|scope| {
        (0..4u64)
            .map(|t| {
                let deployment = deployment.clone();
                scope.spawn(move || {
                    let client = deployment.client();
                    let mut shard = deployment.shard();
                    let mut rng = StdRng::seed_from_u64(t);
                    for i in 0..1000usize {
                        shard.ingest(client.respond(i % 8, &mut rng)).unwrap();
                    }
                    shard
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().unwrap())
            .collect()
    });
    let aggregator = deployment.merge(shards).unwrap();
    assert_eq!(aggregator.reports(), 4000);
    let estimate = deployment.estimate(&aggregator);
    let total: f64 = estimate.data_vector().iter().sum();
    assert!(
        (total - 4000.0).abs() < 1e-6,
        "K preserves totals, got {total}"
    );
}
