//! Criterion bench: sharded report ingestion scaling with thread count.
//!
//! A fixed stream of randomized reports is split across T threads, each
//! ingesting into its own `AggregatorShard`; the shards are then merged.
//! Wall-clock time should drop as T grows (ingestion is embarrassingly
//! parallel), and — asserted during setup — the merged counts are
//! bit-identical to a single sequential aggregator fed the same stream.
//!
//! ```text
//! cargo bench --bench sharded_ingestion
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOTAL_REPORTS: usize = 2_000_000;

fn bench_sharded_ingestion(c: &mut Criterion) {
    let n = 256;
    let deployment = Pipeline::for_workload(Histogram::new(n))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .expect("deployable");

    // Pre-draw the reports so the bench isolates ingestion + merge.
    let client = deployment.client();
    let mut rng = StdRng::seed_from_u64(0);
    let reports: Vec<usize> = (0..TOTAL_REPORTS)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();

    // Exactness: N merged shards == one sequential aggregator, bit-for-bit.
    let mut sequential = deployment.aggregator();
    sequential.ingest_batch(&reports).expect("valid reports");
    for threads in [2usize, 5, 8] {
        let merged = ingest_in_shards(&deployment, &reports, threads);
        assert_eq!(merged.counts(), sequential.counts());
        assert_eq!(
            deployment.estimate(&merged).data_vector(),
            deployment.estimate(&sequential).data_vector()
        );
    }

    let mut group = c.benchmark_group("sharded_ingestion_2M_reports");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| ingest_in_shards(&deployment, &reports, threads));
            },
        );
    }
    group.finish();
}

/// Splits `reports` into `threads` contiguous slices, ingests each on its
/// own thread, and merges the shards into one aggregator.
fn ingest_in_shards(deployment: &Deployment, reports: &[usize], threads: usize) -> Aggregator {
    let chunk = reports.len().div_ceil(threads);
    let shards: Vec<AggregatorShard> = std::thread::scope(|scope| {
        reports
            .chunks(chunk)
            .map(|slice| {
                let deployment = deployment.clone();
                scope.spawn(move || {
                    let mut shard = deployment.shard();
                    shard.ingest_batch(slice).expect("valid reports");
                    shard
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|handle| handle.join().expect("worker thread"))
            .collect()
    });
    deployment.merge(shards).expect("matching shards")
}

criterion_group!(benches, bench_sharded_ingestion);
criterion_main!(benches);
