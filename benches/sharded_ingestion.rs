//! Criterion bench: sharded report ingestion scaling with thread count.
//!
//! A fixed stream of randomized reports is split across T threads, each
//! ingesting into its own `AggregatorShard`; the shards are then merged.
//! Wall-clock time should drop as T grows (ingestion is embarrassingly
//! parallel), and — asserted during setup — the merged counts are
//! bit-identical to a single sequential aggregator fed the same stream.
//!
//! ```text
//! cargo bench --bench sharded_ingestion
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp::prelude::*;
use ldp_parallel::set_thread_override;
use rand::rngs::StdRng;
use rand::SeedableRng;

const TOTAL_REPORTS: usize = 2_000_000;

fn bench_sharded_ingestion(c: &mut Criterion) {
    let n = 256;
    let deployment = Pipeline::for_workload(Histogram::new(n))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .expect("deployable");

    // Pre-draw the reports so the bench isolates ingestion + merge.
    let client = deployment.client();
    let mut rng = StdRng::seed_from_u64(0);
    let reports: Vec<usize> = (0..TOTAL_REPORTS)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();

    // Exactness: N merged shards == one sequential aggregator, bit-for-bit.
    let mut sequential = deployment.aggregator();
    sequential.ingest_batch(&reports).expect("valid reports");
    for threads in [2usize, 5, 8] {
        let merged = ingest_in_shards(&deployment, &reports, threads);
        assert_eq!(merged.counts(), sequential.counts());
        assert_eq!(
            deployment.estimate(&merged).data_vector(),
            deployment.estimate(&sequential).data_vector()
        );
    }

    let mut group = c.benchmark_group("sharded_ingestion_2M_reports");
    group.sample_size(10);
    for &threads in &[1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| {
                b.iter(|| ingest_in_shards(&deployment, &reports, threads));
            },
        );
    }
    group.finish();
}

/// Runs the production parallel batch-ingest path
/// (`Deployment::aggregate`) pinned to `threads` workers.
fn ingest_in_shards(deployment: &Deployment, reports: &[usize], threads: usize) -> Aggregator {
    set_thread_override(Some(threads));
    let aggregator = deployment.aggregate(reports).expect("valid reports");
    set_thread_override(None);
    aggregator
}

criterion_group!(benches, bench_sharded_ingestion);
criterion_main!(benches);
