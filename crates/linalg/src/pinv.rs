//! Pseudo-inverse of symmetric matrices via eigendecomposition.
//!
//! The optimizer inverts `M = QᵀD⁻¹Q` thousands of times; `M` is symmetric
//! positive semi-definite, so an eigendecomposition-based pseudo-inverse is
//! both faster and more accurate than the general SVD route, and it exposes
//! the eigenbasis for reuse (the gradient needs `M†G M†`).

use crate::{eigh_auto, Matrix, SymmetricEigen};

/// Options controlling the rank cutoff of [`pinv_symmetric`].
#[derive(Clone, Copy, Debug)]
pub struct PinvOptions {
    /// Eigenvalues with `|λ| <= rel_tol · max|λ|` are treated as zero.
    /// Defaults to `n · f64::EPSILON`-style scaling when constructed via
    /// [`PinvOptions::default_for_dim`].
    pub rel_tol: f64,
}

impl PinvOptions {
    /// The standard cutoff for an `n × n` matrix.
    pub fn default_for_dim(n: usize) -> Self {
        Self {
            rel_tol: (n.max(1) as f64) * crate::EPS,
        }
    }
}

/// Pseudo-inverse of a symmetric matrix together with the spectral data it
/// was computed from.
#[derive(Clone, Debug)]
pub struct SymmetricPinv {
    /// The pseudo-inverse `M†`.
    pub pinv: Matrix,
    /// The eigendecomposition of the input.
    pub eigen: SymmetricEigen,
    /// Numerical rank under the configured tolerance.
    pub rank: usize,
}

/// Computes the Moore–Penrose pseudo-inverse of a symmetric matrix by
/// inverting its non-negligible eigenvalues.
///
/// Returns the pseudo-inverse along with the eigendecomposition so callers
/// can reuse the spectral data (e.g. the optimizer computes `tr[M†G]` and
/// `M†GM†` from the same factorization).
///
/// # Panics
/// Panics if `m` is not square.
pub fn pinv_symmetric(m: &Matrix, options: PinvOptions) -> SymmetricPinv {
    let eigen = eigh_auto(m);
    let max_abs = eigen.spectral_radius();
    let tol = options.rel_tol * max_abs;
    let rank = eigen.eigenvalues.iter().filter(|l| l.abs() > tol).count();
    let pinv = eigen.apply_spectral(|l| if l.abs() > tol { 1.0 / l } else { 0.0 });
    SymmetricPinv { pinv, eigen, rank }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_psd(n: usize, rank: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let b = Matrix::from_fn(rank, n, |_, _| next());
        b.gram() // n x n, rank <= rank
    }

    #[test]
    fn inverse_of_full_rank_matrix() {
        let a = random_psd(6, 6, 5);
        let p = pinv_symmetric(&a, PinvOptions::default_for_dim(6));
        assert_eq!(p.rank, 6);
        let prod = a.matmul(&p.pinv);
        assert!(prod.max_abs_diff(&Matrix::identity(6)) < 1e-8);
    }

    #[test]
    fn moore_penrose_conditions_rank_deficient() {
        let a = random_psd(8, 3, 9);
        let p = pinv_symmetric(&a, PinvOptions::default_for_dim(8)).pinv;
        assert!(a.matmul(&p).matmul(&a).max_abs_diff(&a) < 1e-8);
        assert!(p.matmul(&a).matmul(&p).max_abs_diff(&p) < 1e-8);
        let ap = a.matmul(&p);
        assert!(ap.max_abs_diff(&ap.transpose()) < 1e-8);
    }

    #[test]
    fn rank_detection() {
        let a = random_psd(10, 4, 17);
        let p = pinv_symmetric(&a, PinvOptions::default_for_dim(10));
        assert_eq!(p.rank, 4);
    }

    #[test]
    fn agrees_with_svd_pinv() {
        let a = random_psd(7, 7, 33);
        let via_eig = pinv_symmetric(&a, PinvOptions::default_for_dim(7)).pinv;
        let via_svd = a.pinv();
        assert!(via_eig.max_abs_diff(&via_svd) < 1e-7);
    }

    #[test]
    fn zero_matrix_pinv_is_zero() {
        let a = Matrix::zeros(4, 4);
        let p = pinv_symmetric(&a, PinvOptions::default_for_dim(4));
        assert_eq!(p.rank, 0);
        assert_eq!(p.pinv.max_abs(), 0.0);
    }
}
