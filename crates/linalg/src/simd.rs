//! AVX2+FMA lane implementations of the hot kernels (x86-64 only).
//!
//! This module and [`crate::kernels`] are the only places in the
//! workspace where `unsafe` is permitted (the ldp-lint L2 allowlist).
//! Nothing here is chosen at compile time: every function carries
//! `#[target_feature(enable = "avx2", enable = "fma")]` and is `unsafe`
//! to call, and the *only* caller is the dispatch layer in
//! [`crate::kernels`], which selects this backend strictly after
//! `is_x86_feature_detected!("avx2")` and `...("fma")` both report true.
//!
//! ## Determinism rules (per-backend contract)
//!
//! Within the AVX2 backend, results must be bit-identical at every
//! thread count and for every blocking/panel grouping, exactly like the
//! scalar backend. The rules that guarantee it:
//!
//! * **Elementwise independence** — vector lanes never interact: a
//!   `vfmadd` is four independent scalar FMAs, so how elements are
//!   grouped into registers (8-wide strip, 4-wide strip, or remainder)
//!   cannot change any element's value.
//! * **Fused tails** — every scalar remainder loop uses
//!   [`f64::mul_add`], the exact operation a vector lane performs, so an
//!   element's arithmetic does not depend on whether it landed in a
//!   vector body or a tail. This matters because [`ldp_parallel`] chunk
//!   boundaries fall at arbitrary offsets.
//! * **Fixed accumulation shape** — each matmul output element
//!   accumulates one register-resident partial sum per `KC` block
//!   (ascending `k` inside the block, FMA per step) and adds it to the
//!   output once per block, identically in the 4-row panel, the
//!   remainder-row, and every column-strip variant.
//! * **Integer ops are exact** — the FWHT butterfly (add/sub only) and
//!   the `u64` helpers are bit-identical to scalar by construction.
//!
//! Cross-backend bit-equality with the scalar kernels is *not* claimed:
//! FMA skips the intermediate rounding of `mul`-then-`add`, so scalar
//! and AVX2 results legitimately differ by a few ulps. See the README
//! "Kernel backends" section.

use core::arch::x86_64::{
    __m256d, __m256i, _mm256_add_epi64, _mm256_add_pd, _mm256_blendv_epi8, _mm256_cmpgt_epi64,
    _mm256_fmadd_pd, _mm256_loadu_pd, _mm256_loadu_si256, _mm256_set1_epi64x, _mm256_set1_pd,
    _mm256_setzero_pd, _mm256_setzero_si256, _mm256_storeu_pd, _mm256_storeu_si256, _mm256_sub_pd,
    _mm256_xor_si256,
};

use crate::kernels::{KC, MR, NC};

/// Dot product with one 4-lane FMA accumulator; lane combination order
/// matches the scalar kernel (`(l0+l1)+(l2+l3)` plus a fused tail).
///
/// # Safety
/// The CPU must support AVX2 and FMA (runtime-detected by the caller).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let chunks = n / 4;
    let (ap, bp) = (a.as_ptr(), b.as_ptr());
    let mut acc = _mm256_setzero_pd();
    for i in 0..chunks {
        // SAFETY: i < n/4, so the 4 doubles at offset 4·i are in bounds
        // for both equal-length slices.
        let (av, bv) = unsafe {
            (
                _mm256_loadu_pd(ap.add(4 * i)),
                _mm256_loadu_pd(bp.add(4 * i)),
            )
        };
        acc = _mm256_fmadd_pd(av, bv, acc);
    }
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is exactly 4 doubles.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
    let mut tail = 0.0;
    for i in 4 * chunks..n {
        tail = a[i].mul_add(b[i], tail);
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// `y += alpha * x`, fused in both the vector body and the scalar tail
/// so chunk boundaries cannot change any element's rounding.
///
/// # Safety
/// The CPU must support AVX2 and FMA (runtime-detected by the caller).
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    debug_assert_eq!(x.len(), y.len());
    let n = y.len();
    let chunks = n / 4;
    let av = _mm256_set1_pd(alpha);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    for i in 0..chunks {
        // SAFETY: i < n/4, so the 4 doubles at offset 4·i are in bounds
        // for both equal-length slices; x and y never alias (&/&mut).
        unsafe {
            let xv = _mm256_loadu_pd(xp.add(4 * i));
            let yv = _mm256_loadu_pd(yp.add(4 * i));
            _mm256_storeu_pd(yp.add(4 * i), _mm256_fmadd_pd(av, xv, yv));
        }
    }
    for i in 4 * chunks..n {
        y[i] = alpha.mul_add(x[i], y[i]);
    }
}

/// One FWHT butterfly pass over a matched pair of half-blocks.
/// Pure add/sub — bit-identical to the scalar butterfly.
///
/// # Safety
/// The CPU must support AVX2 (runtime-detected by the caller).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn fwht_butterfly(lo: &mut [f64], hi: &mut [f64]) {
    debug_assert_eq!(lo.len(), hi.len());
    let n = lo.len();
    let chunks = n / 4;
    let lp = lo.as_mut_ptr();
    let hp = hi.as_mut_ptr();
    for i in 0..chunks {
        // SAFETY: i < n/4 keeps offset 4·i in bounds for both
        // equal-length halves; lo and hi are disjoint (&mut).
        unsafe {
            let x = _mm256_loadu_pd(lp.add(4 * i));
            let y = _mm256_loadu_pd(hp.add(4 * i));
            _mm256_storeu_pd(lp.add(4 * i), _mm256_add_pd(x, y));
            _mm256_storeu_pd(hp.add(4 * i), _mm256_sub_pd(x, y));
        }
    }
    for i in 4 * chunks..n {
        let (x, y) = (lo[i], hi[i]);
        lo[i] = x + y;
        hi[i] = x - y;
    }
}

/// `acc[i] = acc[i].wrapping_add(src[i])` — the shard-merge loop.
/// Integer addition: exact, bit-identical to scalar.
///
/// # Safety
/// The CPU must support AVX2 (runtime-detected by the caller).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn add_u64(acc: &mut [u64], src: &[u64]) {
    debug_assert_eq!(acc.len(), src.len());
    let n = acc.len();
    let chunks = n / 4;
    let ap = acc.as_mut_ptr();
    let sp = src.as_ptr();
    for i in 0..chunks {
        // SAFETY: i < n/4 keeps the 4 u64s at offset 4·i in bounds for
        // both equal-length slices; unaligned load/store intrinsics.
        unsafe {
            let a = _mm256_loadu_si256(ap.add(4 * i).cast::<__m256i>());
            let s = _mm256_loadu_si256(sp.add(4 * i).cast::<__m256i>());
            _mm256_storeu_si256(ap.add(4 * i).cast::<__m256i>(), _mm256_add_epi64(a, s));
        }
    }
    for i in 4 * chunks..n {
        acc[i] = acc[i].wrapping_add(src[i]);
    }
}

/// Maximum of a `u64` slice (0 when empty) — the batch-validation scan.
/// AVX2 has no unsigned 64-bit compare, so both operands are biased by
/// `i64::MIN` (an XOR) to map unsigned order onto the signed
/// `_mm256_cmpgt_epi64`.
///
/// # Safety
/// The CPU must support AVX2 (runtime-detected by the caller).
#[target_feature(enable = "avx2")]
pub(crate) unsafe fn max_u64(data: &[u64]) -> u64 {
    let n = data.len();
    let chunks = n / 4;
    let dp = data.as_ptr();
    let sign = _mm256_set1_epi64x(i64::MIN);
    let mut best = _mm256_setzero_si256();
    for i in 0..chunks {
        // SAFETY: i < n/4 keeps the 4 u64s at offset 4·i in bounds.
        let v = unsafe { _mm256_loadu_si256(dp.add(4 * i).cast::<__m256i>()) };
        let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(v, sign), _mm256_xor_si256(best, sign));
        best = _mm256_blendv_epi8(best, v, gt);
    }
    let mut lanes = [0u64; 4];
    // SAFETY: `lanes` is exactly 4 u64s (32 bytes).
    unsafe { _mm256_storeu_si256(lanes.as_mut_ptr().cast::<__m256i>(), best) };
    let mut max = lanes.iter().fold(0u64, |m, &v| m.max(v));
    for &v in &data[4 * chunks..] {
        max = max.max(v);
    }
    max
}

/// Adds vector `v` into the 4 doubles at `c` (read-modify-write).
///
/// # Safety
/// `c` must be valid for reads and writes of 4 doubles; AVX2 required.
#[target_feature(enable = "avx2")]
unsafe fn add_store(c: *mut f64, v: __m256d) {
    // SAFETY: forwarded contract — `c` covers 4 doubles.
    unsafe { _mm256_storeu_pd(c, _mm256_add_pd(_mm256_loadu_pd(c), v)) };
}

/// Register-tiled 4-row micro-kernel over one `kc` block: accumulates
/// `c{0..3}[j] += Σ_kk a{0..3}[kk] · b[(b_row0+kk)·n + jc + j]` with one
/// FMA accumulator set per column strip, then a single add into `c`.
/// `a0..a3` are contiguous length-`kw` row slices (packed by the caller
/// when the source is strided); `c0..c3` are the `jw`-wide output row
/// segments starting at column `jc`.
///
/// # Safety
/// The CPU must support AVX2 and FMA, and `b` must contain rows
/// `b_row0..b_row0 + a0.len()` of an `n`-column row-major matrix with
/// columns `jc..jc + c0.len()` in bounds.
#[target_feature(enable = "avx2", enable = "fma")]
#[allow(clippy::too_many_arguments)]
unsafe fn micro_4(
    a0: &[f64],
    a1: &[f64],
    a2: &[f64],
    a3: &[f64],
    b: &[f64],
    n: usize,
    b_row0: usize,
    jc: usize,
    c0: &mut [f64],
    c1: &mut [f64],
    c2: &mut [f64],
    c3: &mut [f64],
) {
    let kw = a0.len();
    let jw = c0.len();
    let bp = b.as_ptr();
    let mut j = 0;
    while j + 8 <= jw {
        let mut acc = [_mm256_setzero_pd(); 8];
        for kk in 0..kw {
            // SAFETY: caller guarantees row b_row0+kk and columns
            // jc+j..jc+j+8 are in bounds of the n-column matrix `b`.
            let (b0, b1) = unsafe {
                let base = bp.add((b_row0 + kk) * n + jc + j);
                (_mm256_loadu_pd(base), _mm256_loadu_pd(base.add(4)))
            };
            let x0 = _mm256_set1_pd(a0[kk]);
            acc[0] = _mm256_fmadd_pd(x0, b0, acc[0]);
            acc[1] = _mm256_fmadd_pd(x0, b1, acc[1]);
            let x1 = _mm256_set1_pd(a1[kk]);
            acc[2] = _mm256_fmadd_pd(x1, b0, acc[2]);
            acc[3] = _mm256_fmadd_pd(x1, b1, acc[3]);
            let x2 = _mm256_set1_pd(a2[kk]);
            acc[4] = _mm256_fmadd_pd(x2, b0, acc[4]);
            acc[5] = _mm256_fmadd_pd(x2, b1, acc[5]);
            let x3 = _mm256_set1_pd(a3[kk]);
            acc[6] = _mm256_fmadd_pd(x3, b0, acc[6]);
            acc[7] = _mm256_fmadd_pd(x3, b1, acc[7]);
        }
        // SAFETY: j+8 <= jw, so each row segment holds 8 doubles at j.
        unsafe {
            add_store(c0.as_mut_ptr().add(j), acc[0]);
            add_store(c0.as_mut_ptr().add(j + 4), acc[1]);
            add_store(c1.as_mut_ptr().add(j), acc[2]);
            add_store(c1.as_mut_ptr().add(j + 4), acc[3]);
            add_store(c2.as_mut_ptr().add(j), acc[4]);
            add_store(c2.as_mut_ptr().add(j + 4), acc[5]);
            add_store(c3.as_mut_ptr().add(j), acc[6]);
            add_store(c3.as_mut_ptr().add(j + 4), acc[7]);
        }
        j += 8;
    }
    while j + 4 <= jw {
        let mut acc = [_mm256_setzero_pd(); 4];
        for kk in 0..kw {
            // SAFETY: caller guarantees row b_row0+kk and columns
            // jc+j..jc+j+4 are in bounds of the n-column matrix `b`.
            let b0 = unsafe { _mm256_loadu_pd(bp.add((b_row0 + kk) * n + jc + j)) };
            acc[0] = _mm256_fmadd_pd(_mm256_set1_pd(a0[kk]), b0, acc[0]);
            acc[1] = _mm256_fmadd_pd(_mm256_set1_pd(a1[kk]), b0, acc[1]);
            acc[2] = _mm256_fmadd_pd(_mm256_set1_pd(a2[kk]), b0, acc[2]);
            acc[3] = _mm256_fmadd_pd(_mm256_set1_pd(a3[kk]), b0, acc[3]);
        }
        // SAFETY: j+4 <= jw, so each row segment holds 4 doubles at j.
        unsafe {
            add_store(c0.as_mut_ptr().add(j), acc[0]);
            add_store(c1.as_mut_ptr().add(j), acc[1]);
            add_store(c2.as_mut_ptr().add(j), acc[2]);
            add_store(c3.as_mut_ptr().add(j), acc[3]);
        }
        j += 4;
    }
    while j < jw {
        let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for kk in 0..kw {
            let bv = b[(b_row0 + kk) * n + jc + j];
            s0 = a0[kk].mul_add(bv, s0);
            s1 = a1[kk].mul_add(bv, s1);
            s2 = a2[kk].mul_add(bv, s2);
            s3 = a3[kk].mul_add(bv, s3);
        }
        c0[j] += s0;
        c1[j] += s1;
        c2[j] += s2;
        c3[j] += s3;
        j += 1;
    }
}

/// Single-row variant of [`micro_4`] — per-element arithmetic is
/// identical, so panel rows and remainder rows agree bitwise.
///
/// # Safety
/// Same contract as [`micro_4`] for `a` (length `kw`) and `c`.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn micro_1(a: &[f64], b: &[f64], n: usize, b_row0: usize, jc: usize, c: &mut [f64]) {
    let kw = a.len();
    let jw = c.len();
    let bp = b.as_ptr();
    let mut j = 0;
    while j + 8 <= jw {
        let mut acc = [_mm256_setzero_pd(); 2];
        for (kk, &ak) in a.iter().enumerate() {
            // SAFETY: caller guarantees row b_row0+kk and columns
            // jc+j..jc+j+8 are in bounds of the n-column matrix `b`.
            let (b0, b1) = unsafe {
                let base = bp.add((b_row0 + kk) * n + jc + j);
                (_mm256_loadu_pd(base), _mm256_loadu_pd(base.add(4)))
            };
            let x = _mm256_set1_pd(ak);
            acc[0] = _mm256_fmadd_pd(x, b0, acc[0]);
            acc[1] = _mm256_fmadd_pd(x, b1, acc[1]);
        }
        // SAFETY: j+8 <= jw, so the row segment holds 8 doubles at j.
        unsafe {
            add_store(c.as_mut_ptr().add(j), acc[0]);
            add_store(c.as_mut_ptr().add(j + 4), acc[1]);
        }
        j += 8;
    }
    while j + 4 <= jw {
        let mut acc = _mm256_setzero_pd();
        for (kk, &ak) in a.iter().enumerate() {
            // SAFETY: caller guarantees row b_row0+kk and columns
            // jc+j..jc+j+4 are in bounds of the n-column matrix `b`.
            let b0 = unsafe { _mm256_loadu_pd(bp.add((b_row0 + kk) * n + jc + j)) };
            acc = _mm256_fmadd_pd(_mm256_set1_pd(ak), b0, acc);
        }
        // SAFETY: j+4 <= jw, so the row segment holds 4 doubles at j.
        unsafe { add_store(c.as_mut_ptr().add(j), acc) };
        j += 4;
    }
    while j < jw {
        let mut s = 0.0f64;
        for kk in 0..kw {
            s = a[kk].mul_add(b[(b_row0 + kk) * n + jc + j], s);
        }
        c[j] += s;
        j += 1;
    }
}

/// AVX2 counterpart of the scalar blocked `matmul_rows`: identical
/// `NC`/`KC`/`MR` blocking, register-tiled micro-kernel inner loops.
/// `out` (zeroed, covering `out.len() / n` rows starting at `row0`)
/// accumulates `A[row0..] · B`.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slice geometry is the same as the
/// scalar kernel's: `a` holds at least `row0 + rows` rows of length `k`,
/// `b` is `k × n`, `out.len()` is a multiple of `n`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn matmul_rows(
    a: &[f64],
    b: &[f64],
    k: usize,
    n: usize,
    row0: usize,
    out: &mut [f64],
) {
    let rows = out.len() / n;
    let mut jc = 0;
    while jc < n {
        let jw = NC.min(n - jc);
        let mut kc = 0;
        while kc < k {
            let kw = KC.min(k - kc);
            let mut i = 0;
            while i + MR <= rows {
                let (c0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                let a0 = &a[(row0 + i) * k + kc..][..kw];
                let a1 = &a[(row0 + i + 1) * k + kc..][..kw];
                let a2 = &a[(row0 + i + 2) * k + kc..][..kw];
                let a3 = &a[(row0 + i + 3) * k + kc..][..kw];
                // SAFETY: b is k × n with kc+kw <= k and jc+jw <= n, so
                // every (row, column) the micro-kernel touches is in
                // bounds; AVX2+FMA forwarded from this fn's contract.
                unsafe {
                    micro_4(
                        a0,
                        a1,
                        a2,
                        a3,
                        b,
                        n,
                        kc,
                        jc,
                        &mut c0[jc..jc + jw],
                        &mut c1[jc..jc + jw],
                        &mut c2[jc..jc + jw],
                        &mut c3[jc..jc + jw],
                    );
                }
                i += MR;
            }
            while i < rows {
                let arow = &a[(row0 + i) * k + kc..][..kw];
                let crow = &mut out[i * n + jc..][..jw];
                // SAFETY: same geometry argument as the panel case.
                unsafe { micro_1(arow, b, n, kc, jc, crow) };
                i += 1;
            }
            kc += kw;
        }
        jc += jw;
    }
}

/// AVX2 counterpart of the scalar blocked `t_matmul_rows` (`AᵀB` over a
/// contiguous range of output rows = columns `col0..` of `a`). Strided
/// `a` columns are packed into four contiguous stack rows per panel so
/// the same micro-kernel as [`matmul_rows`] applies.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slice geometry as the scalar
/// kernel: `a` is `r × c` with `col0 + out.len() / n <= c`, `b` is
/// `r × n`, `out.len()` is a multiple of `n`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn t_matmul_rows(
    a: &[f64],
    c: usize,
    b: &[f64],
    n: usize,
    r: usize,
    col0: usize,
    out: &mut [f64],
) {
    let rows = out.len() / n;
    let (mut p0, mut p1, mut p2, mut p3) = ([0.0f64; KC], [0.0f64; KC], [0.0f64; KC], [0.0f64; KC]);
    let mut jc = 0;
    while jc < n {
        let jw = NC.min(n - jc);
        let mut kc = 0;
        while kc < r {
            let kw = KC.min(r - kc);
            let mut i = 0;
            while i + MR <= rows {
                for kk in 0..kw {
                    let base = (kc + kk) * c + col0 + i;
                    p0[kk] = a[base];
                    p1[kk] = a[base + 1];
                    p2[kk] = a[base + 2];
                    p3[kk] = a[base + 3];
                }
                let (c0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
                let (c1, rest) = rest.split_at_mut(n);
                let (c2, c3) = rest.split_at_mut(n);
                // SAFETY: b is r × n with kc+kw <= r and jc+jw <= n, so
                // every (row, column) the micro-kernel touches is in
                // bounds; AVX2+FMA forwarded from this fn's contract.
                unsafe {
                    micro_4(
                        &p0[..kw],
                        &p1[..kw],
                        &p2[..kw],
                        &p3[..kw],
                        b,
                        n,
                        kc,
                        jc,
                        &mut c0[jc..jc + jw],
                        &mut c1[jc..jc + jw],
                        &mut c2[jc..jc + jw],
                        &mut c3[jc..jc + jw],
                    );
                }
                i += MR;
            }
            while i < rows {
                for (kk, slot) in p0[..kw].iter_mut().enumerate() {
                    *slot = a[(kc + kk) * c + col0 + i];
                }
                let crow = &mut out[i * n + jc..][..jw];
                // SAFETY: same geometry argument as the panel case.
                unsafe { micro_1(&p0[..kw], b, n, kc, jc, crow) };
                i += 1;
            }
            kc += kw;
        }
        jc += jw;
    }
}

/// AVX2 counterpart of the scalar `matmul_t_rows` (`A·Bᵀ` over a
/// contiguous range of output rows): one [`dot`] per output entry.
///
/// # Safety
/// The CPU must support AVX2 and FMA. Slice geometry as the scalar
/// kernel: `a` holds at least `row0 + out.len() / p` rows of length `k`,
/// `b` is `p × k`, `out.len()` is a multiple of `p`.
#[target_feature(enable = "avx2", enable = "fma")]
pub(crate) unsafe fn matmul_t_rows(
    a: &[f64],
    b: &[f64],
    k: usize,
    p: usize,
    row0: usize,
    out: &mut [f64],
) {
    for (i, crow) in out.chunks_mut(p).enumerate() {
        let arow = &a[(row0 + i) * k..][..k];
        for (j, o) in crow.iter_mut().enumerate() {
            // SAFETY: AVX2+FMA forwarded from this fn's contract.
            *o = unsafe { dot(arow, &b[j * k..][..k]) };
        }
    }
}
