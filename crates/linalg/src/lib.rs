//! Dense linear algebra substrate for the workload factorization mechanism.
//!
//! The paper's optimization objective `tr[(QᵀD⁻¹Q)†(WᵀW)]` (Theorem 3.11),
//! its gradient, the optimal reconstruction matrix (Theorem 3.10), and the
//! SVD lower bound (Theorem 5.6) require a symmetric eigendecomposition,
//! a singular value decomposition, and Moore–Penrose pseudo-inverses.
//!
//! This crate implements those primitives from scratch on a simple row-major
//! [`Matrix`] type, plus the structured-operator layer the rest of the
//! workspace is built on:
//!
//! * [`LinOp`] — linear operators exposed through matvecs; [`Matrix`] is
//!   one implementation, not the only currency. [`StructuredGram`]
//!   carries the closed-form Gram families of the paper's workloads
//!   (prefix, range, Hamming kernels via [`fwht`]) in `O(n)` space;
//!   [`KroneckerOp`]/[`SumOp`]/[`ScaledOp`]/[`DiagOp`] compose them; and
//!   [`Gram`] is the shared handle workload APIs hand out.
//! * [`Matrix`] — dense `f64` matrix with the usual arithmetic, products,
//!   and norms, including `*_into` variants for allocation-free hot loops.
//! * [`eigh`] — symmetric eigendecomposition via the cyclic Jacobi method.
//! * [`svd`] — singular value decomposition via one-sided Jacobi rotations.
//! * [`Matrix::pinv`] / [`pinv_symmetric`] — pseudo-inverses with a
//!   relative-tolerance rank cutoff.
//! * [`Cholesky`] — factorization and solves for symmetric positive definite
//!   systems.
//! * [`Lu`] — LU factorization with partial pivoting for general systems.
//!
//! The hot loops dispatch through the [`kernels`] backend layer: a
//! portable scalar backend (the reference semantics, always compiled)
//! and a runtime-detected AVX2+FMA backend, selectable via `LDP_KERNEL`.
//! All `unsafe` in the workspace is confined to the two kernel modules;
//! everything else is pure safe Rust with no external BLAS/LAPACK
//! dependency. The sizes used by the paper (n ≤ 4096, m = 4n) are
//! comfortably in range.

mod cholesky;
mod eigh;
pub mod kernels;
mod linop;
mod lu;
mod matrix;
mod pinv;
#[cfg(target_arch = "x86_64")]
mod simd;
pub mod stablehash;
mod svd;
mod tridiagonal;

pub use cholesky::Cholesky;
pub use eigh::{eigh, SymmetricEigen};
pub use kernels::{axpy, dot, Backend};
pub use linop::{
    dense_of, fwht, linop_matmul, psd_max_abs, DenseOp, DiagOp, Gram, KroneckerOp, LinOp,
    RankOneOp, ScaledOp, StructuredGram, SumOp,
};
pub use lu::Lu;
pub use matrix::Matrix;
pub use pinv::{pinv_symmetric, PinvOptions};
pub use svd::{svd, Svd};
pub use tridiagonal::{eigh_auto, eigh_ql};

/// Machine-level tolerance scale used across decompositions.
pub(crate) const EPS: f64 = f64::EPSILON;

/// Euclidean norm of a slice.
#[inline]
pub fn norm2(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn norm2_basic() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[1.0, 3.0], &mut y);
        assert_eq!(y, vec![3.0, 7.0]);
    }
}
