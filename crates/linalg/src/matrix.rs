//! Dense row-major `f64` matrix with cache-blocked, register-tiled
//! product kernels.
//!
//! ## Kernel design
//!
//! The three dense products ([`Matrix::matmul_into`],
//! [`Matrix::t_matmul_into`], [`Matrix::matmul_t`]) dispatch through the
//! [`crate::kernels`] backend layer to a shared blocked micro-kernel:
//! the output is tiled into `MR = 4` row panels, the inner (`k`)
//! dimension into `KC`-wide blocks, and the output columns into
//! `NC`-wide blocks, so the four live output rows plus the streamed
//! operand row stay in L1 while each loaded value feeds four
//! multiply-adds. On the scalar backend the innermost loop is four
//! independent `c += a·b` streams over contiguous slices, which LLVM
//! autovectorizes; the AVX2+FMA backend replaces the inner loops with
//! explicit 4×8 register tiles (see [`crate::kernels`] for selection and
//! the contract). `AᵀB` additionally packs each `KC × MR` operand panel
//! into a small stack buffer so its strided column reads happen once per
//! block.
//!
//! ## Determinism contract
//!
//! Within a backend, every element of every product is accumulated in a
//! fixed order no matter how the loops are blocked or which thread owns
//! the row: blocking reorders *independent* output elements and row
//! groupings only, never the summation order inside one element. Large
//! products are parallelized by handing each worker a contiguous range
//! of output rows ([`ldp_parallel::Pool::par_chunks`]); since a row's
//! arithmetic is identical whether it sits in a 4-row micro panel or a
//! remainder tail, results are bit-identical at every thread count.

use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use crate::kernels::{matmul_rows, matmul_t_rows, t_matmul_rows};
use crate::{dot, svd};

/// Minimum multiply-add count before a product is worth threading
/// (scoped spawns cost tens of microseconds; this is ~0.5 ms of work).
const PAR_MIN_FLOPS: usize = 1 << 20;

/// A dense matrix of `f64` stored in row-major order.
///
/// Indexing is `m[(row, col)]`. Dimensions are fixed at construction.
///
/// ```
/// use ldp_linalg::Matrix;
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// let b = Matrix::identity(2);
/// assert_eq!(a.matmul(&b), a);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A `rows × cols` matrix with every entry equal to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices. All rows must have equal length.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Self {
            rows: r,
            cols: c,
            data,
        }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length must be rows*cols");
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A square matrix with `diag` on the diagonal and zeros elsewhere.
    pub fn diag(diag: &[f64]) -> Self {
        let n = diag.len();
        let mut m = Self::zeros(n, n);
        for (i, &d) in diag.iter().enumerate() {
            m[(i, i)] = d;
        }
        m
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Row `i` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` copied into a new vector.
    pub fn col(&self, j: usize) -> Vec<f64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Column `j` copied into a preallocated buffer — the non-allocating
    /// counterpart of [`Matrix::col`].
    ///
    /// # Panics
    /// Panics if `out.len() != self.rows()`.
    pub fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows, "buffer must hold one entry per row");
        assert!(j < self.cols, "column index out of range");
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.data[i * self.cols + j];
        }
    }

    /// Copies every entry from `src` without reallocating.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn copy_from(&mut self, src: &Matrix) {
        assert_eq!(self.shape(), src.shape(), "shapes must agree");
        self.data.copy_from_slice(&src.data);
    }

    /// Sets column `j` from a slice of length `rows`.
    pub fn set_col(&mut self, j: usize, col: &[f64]) {
        assert_eq!(col.len(), self.rows);
        for (i, &v) in col.iter().enumerate() {
            self[(i, j)] = v;
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self * rhs`.
    ///
    /// Cache-blocked and register-tiled (see the module docs); products
    /// above `PAR_MIN_FLOPS` multiply-adds are row-partitioned across
    /// the [`ldp_parallel`] pool with bit-identical results at any
    /// thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::matmul`] into a preallocated output (overwritten).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()` or `out` has the wrong shape.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        assert_eq!(out.shape(), (self.rows, rhs.cols), "output shape");
        out.data.fill(0.0);
        let (k, n) = (self.cols, rhs.cols);
        if self.rows == 0 || k == 0 || n == 0 {
            return;
        }
        let pool = ldp_parallel::pool();
        if pool.threads() > 1 && self.rows * k * n >= PAR_MIN_FLOPS {
            pool.par_chunks(&mut out.data, n, |start, chunk| {
                matmul_rows(&self.data, &rhs.data, k, n, start / n, chunk);
            });
        } else {
            matmul_rows(&self.data, &rhs.data, k, n, 0, &mut out.data);
        }
    }

    /// `selfᵀ * rhs` without materializing the transpose.
    pub fn t_matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.t_matmul_into(rhs, &mut out);
        out
    }

    /// [`Matrix::t_matmul`] into a preallocated output (overwritten).
    ///
    /// Blocked like [`Matrix::matmul_into`], with the operand's strided
    /// columns packed into a stack panel per block; output rows (= this
    /// matrix's columns) partition across threads for large products.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()` or `out` has the wrong shape.
    pub fn t_matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(self.rows, rhs.rows, "row counts must agree for AᵀB");
        assert_eq!(out.shape(), (self.cols, rhs.cols), "output shape");
        out.data.fill(0.0);
        let (r, c, n) = (self.rows, self.cols, rhs.cols);
        if r == 0 || c == 0 || n == 0 {
            return;
        }
        let pool = ldp_parallel::pool();
        if pool.threads() > 1 && r * c * n >= PAR_MIN_FLOPS {
            pool.par_chunks(&mut out.data, n, |start, chunk| {
                t_matmul_rows(&self.data, c, &rhs.data, n, r, start / n, chunk);
            });
        } else {
            t_matmul_rows(&self.data, c, &rhs.data, n, r, 0, &mut out.data);
        }
    }

    /// `self * rhsᵀ` without materializing the transpose: each output
    /// entry is one [`dot`] of two contiguous rows, row-partitioned
    /// across threads for large products.
    pub fn matmul_t(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.cols, "column counts must agree for ABᵀ");
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        let (k, p) = (self.cols, rhs.rows);
        if self.rows == 0 || k == 0 || p == 0 {
            return out;
        }
        let pool = ldp_parallel::pool();
        if pool.threads() > 1 && self.rows * k * p >= PAR_MIN_FLOPS {
            pool.par_chunks(&mut out.data, p, |start, chunk| {
                matmul_t_rows(&self.data, &rhs.data, k, p, start / p, chunk);
            });
        } else {
            matmul_t_rows(&self.data, &rhs.data, k, p, 0, &mut out.data);
        }
        out
    }

    /// The Gram matrix `selfᵀ * self`.
    pub fn gram(&self) -> Matrix {
        self.t_matmul(self)
    }

    /// Matrix-vector product `self * x`.
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows];
        self.matvec_into_slice(x, &mut out);
        out
    }

    /// Writes `self * x` into `out`, splitting the output rows across
    /// threads for large matrices (each entry is an independent [`dot`],
    /// so any partition is bit-identical).
    ///
    /// # Panics
    /// Panics if `x.len() != self.cols()` or `out.len() != self.rows()`.
    pub(crate) fn matvec_into_slice(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.cols);
        assert_eq!(out.len(), self.rows);
        let pool = ldp_parallel::pool();
        if pool.threads() > 1 && self.rows * self.cols >= PAR_MIN_FLOPS {
            pool.par_chunks(out, 1, |start, chunk| {
                for (i, o) in chunk.iter_mut().enumerate() {
                    *o = dot(self.row(start + i), x);
                }
            });
        } else {
            for (i, o) in out.iter_mut().enumerate() {
                *o = dot(self.row(i), x);
            }
        }
    }

    /// Transposed matrix-vector product `selfᵀ * x`.
    pub fn t_matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_matvec_into_slice(x, &mut out);
        out
    }

    /// Writes `selfᵀ * x` into `out`. Large products partition the
    /// *output columns* across threads: every worker accumulates its
    /// column range over the rows in the same ascending order the serial
    /// loop uses, so results are bit-identical at any thread count.
    ///
    /// # Panics
    /// Panics if `x.len() != self.rows()` or `out.len() != self.cols()`.
    pub(crate) fn t_matvec_into_slice(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.rows);
        assert_eq!(out.len(), self.cols);
        let cols = self.cols;
        let pool = ldp_parallel::pool();
        if pool.threads() > 1 && self.rows * cols >= PAR_MIN_FLOPS {
            pool.par_chunks(out, 1, |j0, chunk| {
                chunk.fill(0.0);
                let jw = chunk.len();
                for (i, &xi) in x.iter().enumerate() {
                    if xi == 0.0 {
                        continue;
                    }
                    crate::axpy(xi, &self.data[i * cols + j0..][..jw], chunk);
                }
            });
        } else {
            out.fill(0.0);
            for (i, &xi) in x.iter().enumerate() {
                if xi == 0.0 {
                    continue;
                }
                crate::axpy(xi, self.row(i), out);
            }
        }
    }

    /// Scales every entry by `alpha`, in place.
    pub fn scale_mut(&mut self, alpha: f64) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// A scaled copy `alpha * self`.
    pub fn scaled(&self, alpha: f64) -> Matrix {
        let mut m = self.clone();
        m.scale_mut(alpha);
        m
    }

    /// Applies `f` to every entry, in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Sum of the diagonal entries.
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn trace(&self) -> f64 {
        assert!(self.is_square(), "trace requires a square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Frobenius norm `‖A‖_F`.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Largest absolute entry (the max-norm), 0 for empty matrices.
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Row sums, i.e. `A·1`.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row(i).iter().sum()).collect()
    }

    /// [`Matrix::row_sums`] into a preallocated buffer.
    ///
    /// # Panics
    /// Panics if `out.len() != self.rows()`.
    pub fn row_sums_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.rows);
        for (i, o) in out.iter_mut().enumerate() {
            *o = self.row(i).iter().sum();
        }
    }

    /// Column sums, i.e. `Aᵀ·1`.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for i in 0..self.rows {
            crate::axpy(1.0, self.row(i), &mut sums);
        }
        sums
    }

    /// Scales row `i` by `alpha[i]`, i.e. computes `Diag(alpha) * self`.
    pub fn scale_rows(&self, alpha: &[f64]) -> Matrix {
        assert_eq!(alpha.len(), self.rows);
        let mut m = self.clone();
        for (i, &a) in alpha.iter().enumerate() {
            for v in m.row_mut(i) {
                *v *= a;
            }
        }
        m
    }

    /// [`Matrix::scale_rows`] into a preallocated output (overwritten).
    ///
    /// # Panics
    /// Panics if `alpha.len() != self.rows()` or shapes disagree.
    pub fn scale_rows_into(&self, alpha: &[f64], out: &mut Matrix) {
        assert_eq!(alpha.len(), self.rows);
        assert_eq!(out.shape(), self.shape(), "output shape");
        for (i, &a) in alpha.iter().enumerate() {
            for (o, &v) in out.row_mut(i).iter_mut().zip(self.row(i)) {
                *o = v * a;
            }
        }
    }

    /// Scales column `j` by `alpha[j]`, i.e. computes `self * Diag(alpha)`.
    pub fn scale_cols(&self, alpha: &[f64]) -> Matrix {
        assert_eq!(alpha.len(), self.cols);
        let mut m = self.clone();
        for i in 0..m.rows {
            for (v, &a) in m.row_mut(i).iter_mut().zip(alpha) {
                *v *= a;
            }
        }
        m
    }

    /// True if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Symmetrizes in place: `A ← (A + Aᵀ)/2`. Useful to remove numerical
    /// asymmetry before a symmetric eigendecomposition.
    pub fn symmetrize(&mut self) {
        assert!(self.is_square());
        for i in 0..self.rows {
            for j in (i + 1)..self.cols {
                let avg = 0.5 * (self[(i, j)] + self[(j, i)]);
                self[(i, j)] = avg;
                self[(j, i)] = avg;
            }
        }
    }

    /// The Kronecker product `self ⊗ rhs`: the `(i·p + k, j·q + l)` entry
    /// is `self[i,j] · rhs[k,l]` for `rhs` of shape `p × q`. Used to build
    /// multi-dimensional workloads from one-dimensional factors
    /// (`(A ⊗ B)ᵀ(A ⊗ B) = AᵀA ⊗ BᵀB`).
    pub fn kronecker(&self, rhs: &Matrix) -> Matrix {
        let (p, q) = rhs.shape();
        let mut out = Matrix::zeros(self.rows * p, self.cols * q);
        for i in 0..self.rows {
            for j in 0..self.cols {
                let a = self[(i, j)];
                if a == 0.0 {
                    continue;
                }
                for k in 0..p {
                    let rhs_row = rhs.row(k);
                    let out_row = out.row_mut(i * p + k);
                    for (l, &b) in rhs_row.iter().enumerate() {
                        out_row[j * q + l] = a * b;
                    }
                }
            }
        }
        out
    }

    /// Moore–Penrose pseudo-inverse via SVD (works for any shape).
    ///
    /// Singular values below `max_sv * rows.max(cols) * f64::EPSILON` are
    /// treated as zero — the same convention as NumPy's `pinv`.
    pub fn pinv(&self) -> Matrix {
        let decomposition = svd(self);
        decomposition.pinv()
    }

    /// Maximum absolute difference between `self` and `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data
            .iter()
            .zip(&other.data)
            .fold(0.0, |acc, (a, b)| acc.max((a - b).abs()))
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols);
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape());
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, rhs: &Matrix) {
        assert_eq!(self.shape(), rhs.shape());
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        self.scaled(alpha)
    }
}

impl Neg for &Matrix {
    type Output = Matrix;

    fn neg(self) -> Matrix {
        self.scaled(-1.0)
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_rows = 8.min(self.rows);
        for i in 0..max_rows {
            write!(f, "  [")?;
            let max_cols = 8.min(self.cols);
            for j in 0..max_cols {
                write!(f, "{:10.4}", self[(i, j)])?;
                if j + 1 < max_cols {
                    write!(f, ", ")?;
                }
            }
            if self.cols > max_rows {
                write!(f, ", ...")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > max_rows {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} != {b}");
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let i3 = Matrix::identity(3);
        assert_eq!(a.matmul(&i3), a);
    }

    #[test]
    fn matmul_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::from_fn(4, 5, |i, j| (i + 2 * j) as f64 * 0.5);
        let lhs = a.t_matmul(&b);
        let rhs = a.transpose().matmul(&b);
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64);
        let b = Matrix::from_fn(5, 3, |i, j| (i + 2 * j) as f64 * 0.5);
        let lhs = a.matmul_t(&b);
        let rhs = a.matmul(&b.transpose());
        assert!(lhs.max_abs_diff(&rhs) < 1e-14);
    }

    #[test]
    fn matvec_and_t_matvec() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 1.0]), vec![3.0, 7.0, 11.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0, 1.0]), vec![9.0, 12.0]);
    }

    #[test]
    fn trace_and_norms() {
        let a = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        approx(a.trace(), 7.0);
        approx(a.frobenius_norm(), 5.0);
        approx(a.max_abs(), 4.0);
    }

    #[test]
    fn row_and_col_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.row_sums(), vec![3.0, 7.0]);
        assert_eq!(a.col_sums(), vec![4.0, 6.0]);
    }

    #[test]
    fn scale_rows_cols() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let r = a.scale_rows(&[2.0, 10.0]);
        assert_eq!(r, Matrix::from_rows(&[&[2.0, 4.0], &[30.0, 40.0]]));
        let c = a.scale_cols(&[2.0, 10.0]);
        assert_eq!(c, Matrix::from_rows(&[&[2.0, 20.0], &[6.0, 40.0]]));
    }

    #[test]
    fn symmetrize_averages_off_diagonal() {
        let mut a = Matrix::from_rows(&[&[1.0, 3.0], &[1.0, 2.0]]);
        a.symmetrize();
        assert_eq!(a, Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 2.0]]));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 5.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 7.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 3.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Matrix::from_rows(&[&[-1.0, -2.0]]));
    }

    #[test]
    fn gram_is_symmetric_psd_diag() {
        let a = Matrix::from_fn(5, 3, |i, j| ((i + 1) * (j + 2)) as f64 / 7.0);
        let g = a.gram();
        assert!(g.max_abs_diff(&g.transpose()) < 1e-14);
        for j in 0..3 {
            assert!(g[(j, j)] >= 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn kronecker_small() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let k = a.kronecker(&b);
        assert_eq!(k, Matrix::from_rows(&[&[3.0, 6.0], &[4.0, 8.0]]));
    }

    #[test]
    fn kronecker_identity_gram_identity() {
        // (A ⊗ B)ᵀ(A ⊗ B) = AᵀA ⊗ BᵀB.
        let a = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64 - 1.0);
        let b = Matrix::from_fn(2, 2, |i, j| (i * j + 1) as f64);
        let lhs = a.kronecker(&b).gram();
        let rhs = a.gram().kronecker(&b.gram());
        assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn from_vec_roundtrip() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(a[(1, 0)], 3.0);
        assert_eq!(a.as_slice(), &[1.0, 2.0, 3.0, 4.0]);
    }
}
