//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! Jacobi iteration is slower than tridiagonalization + QL for very large
//! matrices but is simple, numerically excellent (small relative errors even
//! for tiny eigenvalues), and has no convergence pathologies — the right
//! trade-off for a self-contained substrate at the sizes the paper uses.

use crate::Matrix;

/// The result of [`eigh`]: `A = V · Diag(λ) · Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymmetricEigen {
    /// Eigenvalues in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Orthonormal eigenvectors as *columns*, in the same order as
    /// `eigenvalues`.
    pub eigenvectors: Matrix,
}

impl SymmetricEigen {
    /// Reconstructs `V · Diag(f(λ)) · Vᵀ` for an arbitrary spectral function
    /// `f`. This is how pseudo-inverses and matrix square roots are built.
    pub fn apply_spectral(&self, mut f: impl FnMut(f64) -> f64) -> Matrix {
        let v = &self.eigenvectors;
        let fvals: Vec<f64> = self.eigenvalues.iter().map(|&l| f(l)).collect();
        // (V Diag(f)) Vᵀ
        let scaled = v.scale_cols(&fvals);
        scaled.matmul_t(v)
    }

    /// Reconstructs the original matrix `V Diag(λ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.apply_spectral(|l| l)
    }

    /// The largest absolute eigenvalue (spectral radius), 0 for empty input.
    pub fn spectral_radius(&self) -> f64 {
        self.eigenvalues.iter().fold(0.0, |acc, l| acc.max(l.abs()))
    }
}

/// Computes the full eigendecomposition of a symmetric matrix using cyclic
/// Jacobi rotations.
///
/// Only the lower triangle is read; minor asymmetry from floating point
/// noise is therefore harmless. Iterates sweeps until the off-diagonal
/// Frobenius norm is below `n · ε · ‖A‖_F` or 64 sweeps elapse (typical
/// matrices converge in 6–12 sweeps).
///
/// # Panics
/// Panics if `a` is not square.
pub fn eigh(a: &Matrix) -> SymmetricEigen {
    assert!(a.is_square(), "eigh requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return SymmetricEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        };
    }

    // Work on a symmetrized copy so either triangle can be trusted.
    let mut m = a.clone();
    m.symmetrize();
    let mut v = Matrix::identity(n);
    let scale = m.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = (n as f64) * crate::EPS * scale;

    for _sweep in 0..64 {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += m[(i, j)] * m[(i, j)];
            }
        }
        if (2.0 * off).sqrt() <= tol {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[(p, q)];
                if apq.abs() <= crate::EPS * scale {
                    continue;
                }
                let app = m[(p, p)];
                let aqq = m[(q, q)];
                // Classical Jacobi rotation computation (Golub & Van Loan).
                let theta = (aqq - app) / (2.0 * apq);
                let t = if theta >= 0.0 {
                    1.0 / (theta + (1.0 + theta * theta).sqrt())
                } else {
                    -1.0 / (-theta + (1.0 + theta * theta).sqrt())
                };
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = t * c;

                // Update rows/columns p and q of the symmetric matrix.
                for k in 0..n {
                    if k != p && k != q {
                        let akp = m[(k, p)];
                        let akq = m[(k, q)];
                        let new_kp = c * akp - s * akq;
                        let new_kq = s * akp + c * akq;
                        m[(k, p)] = new_kp;
                        m[(p, k)] = new_kp;
                        m[(k, q)] = new_kq;
                        m[(q, k)] = new_kq;
                    }
                }
                m[(p, p)] = app - t * apq;
                m[(q, q)] = aqq + t * apq;
                m[(p, q)] = 0.0;
                m[(q, p)] = 0.0;

                // Accumulate the rotation into the eigenvector matrix.
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort ascending by eigenvalue, permuting eigenvector columns to match.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(i, i)].total_cmp(&m[(j, j)]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for k in 0..n {
            eigenvectors[(k, new_col)] = v[(k, old_col)];
        }
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        // Simple xorshift so the test has no RNG dependency.
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        a.symmetrize();
        a
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a = Matrix::diag(&[3.0, -1.0, 2.0]);
        let e = eigh(&a);
        assert!((e.eigenvalues[0] - -1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 2.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let e = eigh(&a);
        assert!((e.eigenvalues[0] - 1.0).abs() < 1e-12);
        assert!((e.eigenvalues[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_matches_input() {
        for n in [1, 2, 3, 5, 10, 20] {
            let a = random_symmetric(n, 42 + n as u64);
            let e = eigh(&a);
            let r = e.reconstruct();
            assert!(
                r.max_abs_diff(&a) < 1e-10 * (n as f64),
                "reconstruction failed for n={n}"
            );
        }
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let a = random_symmetric(12, 7);
        let e = eigh(&a);
        let vtv = e.eigenvectors.gram();
        assert!(vtv.max_abs_diff(&Matrix::identity(12)) < 1e-10);
    }

    #[test]
    fn eigenvalues_sorted_ascending() {
        let a = random_symmetric(15, 99);
        let e = eigh(&a);
        for w in e.eigenvalues.windows(2) {
            assert!(w[0] <= w[1] + 1e-14);
        }
    }

    #[test]
    fn trace_equals_eigenvalue_sum() {
        let a = random_symmetric(9, 3);
        let e = eigh(&a);
        let sum: f64 = e.eigenvalues.iter().sum();
        assert!((sum - a.trace()).abs() < 1e-10);
    }

    #[test]
    fn apply_spectral_square_root() {
        // A = Vdiag(l)Vt PSD; sqrt(A)^2 = A.
        let b = random_symmetric(8, 11);
        let a = b.matmul(&b); // PSD
        let e = eigh(&a);
        let root = e.apply_spectral(|l| l.max(0.0).sqrt());
        let squared = root.matmul(&root);
        assert!(squared.max_abs_diff(&a) < 1e-9);
    }

    #[test]
    fn empty_matrix() {
        let e = eigh(&Matrix::zeros(0, 0));
        assert!(e.eigenvalues.is_empty());
    }

    #[test]
    fn rank_deficient_matrix() {
        // Outer product uuᵀ has rank 1: eigenvalues {‖u‖², 0, 0}.
        let u = [1.0, 2.0, 2.0];
        let a = Matrix::from_fn(3, 3, |i, j| u[i] * u[j]);
        let e = eigh(&a);
        assert!(e.eigenvalues[0].abs() < 1e-12);
        assert!(e.eigenvalues[1].abs() < 1e-12);
        assert!((e.eigenvalues[2] - 9.0).abs() < 1e-12);
    }
}
