//! Structured linear operators: the abstraction that lets every layer of
//! the factorization mechanism work with `G = WᵀW` and `x ↦ Wx` without
//! ever materializing a dense matrix.
//!
//! The paper's analysis (Sections 3–4) only touches a workload through
//! matrix-vector products and the Gram matrix, and for the evaluated
//! workload families those have closed forms with `O(n)` storage:
//!
//! * **Prefix** — `G[j,k] = n − max(j,k)`, matvec in `O(n)` by
//!   prefix/suffix sums;
//! * **All Range** — `G[j,k] = (min(j,k)+1)(n − max(j,k))`, also `O(n)`;
//! * **Parity / Marginals** — `G[u,v] = kernel[hamming(u⊕v)]`, a dyadic
//!   convolution diagonalized by the fast Walsh–Hadamard transform
//!   (`O(n log n)` matvec);
//! * **Kronecker products** — `(A ⊗ B)x` via the reshape identity, never
//!   forming the `n₁n₂ × n₁n₂` product.
//!
//! [`LinOp`] is the common interface; [`Matrix`] is *one* implementation,
//! not the only currency. [`Gram`] is a cheaply clonable shared handle
//! used by workload APIs.

use std::borrow::Cow;
use std::fmt;
use std::sync::{Arc, Mutex};

use crate::kernels::fwht_butterfly;
use crate::{axpy, dot, Matrix};

/// A real linear operator `A : ℝᶜ → ℝʳ` exposed through matrix-vector
/// products. Implementations with structure (diagonal, Kronecker,
/// closed-form Gram families) provide `O(n)`–`O(n log n)` products and
/// `O(1)` traces; [`materialize`](LinOp::materialize) is the explicit
/// dense escape hatch.
pub trait LinOp: Send + Sync {
    /// Number of rows `r` (output dimension).
    fn rows(&self) -> usize;

    /// Number of columns `c` (input dimension).
    fn cols(&self) -> usize;

    /// `(rows, cols)`.
    fn shape(&self) -> (usize, usize) {
        (self.rows(), self.cols())
    }

    /// True if the operator is square.
    fn is_square(&self) -> bool {
        self.rows() == self.cols()
    }

    /// Writes `A·x` into `out` without allocating.
    ///
    /// # Panics
    /// Panics if `x.len() != cols` or `out.len() != rows`.
    fn matvec_into(&self, x: &[f64], out: &mut [f64]);

    /// Writes `Aᵀ·x` into `out` without allocating.
    ///
    /// # Panics
    /// Panics if `x.len() != rows` or `out.len() != cols`.
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]);

    /// `A·x` as a fresh vector.
    fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.rows()];
        self.matvec_into(x, &mut out);
        out
    }

    /// `Aᵀ·x` as a fresh vector.
    fn t_matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.cols()];
        self.t_matvec_into(x, &mut out);
        out
    }

    /// Writes column `j` into `out` (length `rows`). The default applies
    /// the operator to a unit vector (allocating a scratch); structured
    /// implementations override with closed forms.
    fn col_into(&self, j: usize, out: &mut [f64]) {
        let mut e = vec![0.0; self.cols()];
        e[j] = 1.0;
        self.matvec_into(&e, out);
    }

    /// The diagonal of a square operator.
    ///
    /// # Panics
    /// Panics if the operator is not square.
    fn diagonal(&self) -> Vec<f64> {
        assert!(self.is_square(), "diagonal requires a square operator");
        let n = self.rows();
        let mut out = vec![0.0; n];
        let mut col = vec![0.0; n];
        for (j, o) in out.iter_mut().enumerate() {
            self.col_into(j, &mut col);
            *o = col[j];
        }
        out
    }

    /// Trace of a square operator. Structured Grams answer in `O(1)`–`O(n)`
    /// without touching `n²` entries.
    ///
    /// # Panics
    /// Panics if the operator is not square.
    fn trace(&self) -> f64 {
        self.diagonal().iter().sum()
    }

    /// Dense materialization — the explicit opt-in escape hatch. Assembled
    /// column-by-column from [`LinOp::col_into`], so structured operators
    /// produce exactly their closed-form entries.
    fn materialize(&self) -> Matrix {
        let mut m = Matrix::zeros(self.rows(), self.cols());
        self.materialize_into(&mut m);
        m
    }

    /// [`LinOp::materialize`] into a preallocated matrix (overwritten), so
    /// repeated densifications — e.g. an optimizer workspace reused across
    /// calls — skip the `O(n²)` allocation.
    ///
    /// # Panics
    /// Panics if `out`'s shape disagrees with the operator's.
    fn materialize_into(&self, out: &mut Matrix) {
        let (r, c) = self.shape();
        assert_eq!(out.shape(), (r, c), "output shape");
        let mut col = vec![0.0; r];
        for j in 0..c {
            self.col_into(j, &mut col);
            out.set_col(j, &col);
        }
    }

    /// Borrows the operator as a dense matrix when it *is* one, letting
    /// dense-path consumers skip a copy. Structured operators return
    /// `None`.
    fn as_dense(&self) -> Option<&Matrix> {
        None
    }
}

/// Largest absolute entry of a PSD operator: `|G[j,k]| ≤ max(G[j,j],
/// G[k,k])`, so the maximum sits on the diagonal — `O(n)` and never
/// materializes. Callers are responsible for the PSD precondition (all
/// workload Grams `WᵀW` satisfy it).
pub fn psd_max_abs(op: &dyn LinOp) -> f64 {
    op.diagonal()
        .iter()
        .fold(0.0f64, |acc, &v| acc.max(v.abs()))
}

/// A dense view of any operator: borrows when the operator is already a
/// [`Matrix`], materializes otherwise.
pub fn dense_of(op: &dyn LinOp) -> Cow<'_, Matrix> {
    match op.as_dense() {
        Some(m) => Cow::Borrowed(m),
        None => Cow::Owned(op.materialize()),
    }
}

/// `op · rhs` computed column-by-column through the operator (dense
/// operators take the cache-friendly `matmul` path instead).
///
/// # Panics
/// Panics if `op.cols() != rhs.rows()`.
pub fn linop_matmul(op: &dyn LinOp, rhs: &Matrix) -> Matrix {
    if let Some(d) = op.as_dense() {
        return d.matmul(rhs);
    }
    assert_eq!(op.cols(), rhs.rows(), "inner dimensions must agree");
    let mut out = Matrix::zeros(op.rows(), rhs.cols());
    let mut x = vec![0.0; rhs.rows()];
    let mut y = vec![0.0; op.rows()];
    for j in 0..rhs.cols() {
        rhs.col_into(j, &mut x);
        op.matvec_into(&x, &mut y);
        out.set_col(j, &y);
    }
    out
}

impl LinOp for Matrix {
    fn rows(&self) -> usize {
        Matrix::rows(self)
    }

    fn cols(&self) -> usize {
        Matrix::cols(self)
    }

    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.matvec_into_slice(x, out);
    }

    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.t_matvec_into_slice(x, out);
    }

    fn col_into(&self, j: usize, out: &mut [f64]) {
        Matrix::col_into(self, j, out);
    }

    fn diagonal(&self) -> Vec<f64> {
        assert!(Matrix::is_square(self), "diagonal requires a square matrix");
        (0..Matrix::rows(self)).map(|i| self[(i, i)]).collect()
    }

    fn trace(&self) -> f64 {
        Matrix::trace(self)
    }

    fn materialize(&self) -> Matrix {
        self.clone()
    }

    fn materialize_into(&self, out: &mut Matrix) {
        out.copy_from(self);
    }

    fn as_dense(&self) -> Option<&Matrix> {
        Some(self)
    }
}

/// A dense operator with an explicit name in the operator algebra —
/// wraps a [`Matrix`] by value (the matrix itself also implements
/// [`LinOp`] and can be used directly by reference).
#[derive(Clone, Debug)]
pub struct DenseOp(pub Matrix);

impl LinOp for DenseOp {
    fn rows(&self) -> usize {
        self.0.rows()
    }
    fn cols(&self) -> usize {
        self.0.cols()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        LinOp::matvec_into(&self.0, x, out);
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        LinOp::t_matvec_into(&self.0, x, out);
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        self.0.col_into(j, out);
    }
    fn diagonal(&self) -> Vec<f64> {
        LinOp::diagonal(&self.0)
    }
    fn trace(&self) -> f64 {
        self.0.trace()
    }
    fn materialize(&self) -> Matrix {
        self.0.clone()
    }
    fn as_dense(&self) -> Option<&Matrix> {
        Some(&self.0)
    }
}

/// A diagonal operator `Diag(d)`.
#[derive(Clone, Debug)]
pub struct DiagOp {
    diag: Vec<f64>,
}

impl DiagOp {
    /// The operator `Diag(diag)`.
    pub fn new(diag: Vec<f64>) -> Self {
        Self { diag }
    }
}

impl LinOp for DiagOp {
    fn rows(&self) -> usize {
        self.diag.len()
    }
    fn cols(&self) -> usize {
        self.diag.len()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.diag.len());
        assert_eq!(out.len(), self.diag.len());
        for ((o, &xi), &d) in out.iter_mut().zip(x).zip(&self.diag) {
            *o = d * xi;
        }
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.matvec_into(x, out);
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.diag.len(),
            "buffer must hold one entry per row"
        );
        out.fill(0.0);
        out[j] = self.diag[j];
    }
    fn diagonal(&self) -> Vec<f64> {
        self.diag.clone()
    }
    fn trace(&self) -> f64 {
        self.diag.iter().sum()
    }
}

/// A scaled operator `α·A`.
pub struct ScaledOp {
    alpha: f64,
    inner: Arc<dyn LinOp>,
}

impl fmt::Debug for ScaledOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ScaledOp")
            .field("alpha", &self.alpha)
            .field("shape", &self.inner.shape())
            .finish_non_exhaustive()
    }
}

impl ScaledOp {
    /// The operator `alpha · inner`.
    pub fn new(alpha: f64, inner: Arc<dyn LinOp>) -> Self {
        Self { alpha, inner }
    }
}

impl LinOp for ScaledOp {
    fn rows(&self) -> usize {
        self.inner.rows()
    }
    fn cols(&self) -> usize {
        self.inner.cols()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.inner.matvec_into(x, out);
        for o in out.iter_mut() {
            *o *= self.alpha;
        }
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.inner.t_matvec_into(x, out);
        for o in out.iter_mut() {
            *o *= self.alpha;
        }
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        self.inner.col_into(j, out);
        for o in out.iter_mut() {
            *o *= self.alpha;
        }
    }
    fn diagonal(&self) -> Vec<f64> {
        let mut d = self.inner.diagonal();
        for v in &mut d {
            *v *= self.alpha;
        }
        d
    }
    fn trace(&self) -> f64 {
        self.alpha * self.inner.trace()
    }
}

/// A sum of same-shape operators `Σᵢ Aᵢ` — e.g. the Gram of a stacked
/// (union) workload is the sum of the parts' Grams.
///
/// Holds one internal scratch buffer (behind a [`Mutex`], so the operator
/// stays `Sync`) that is sized on first use and reused afterwards — hot
/// loops like WNNLS's FISTA iterations see no per-call allocation. A
/// contended lock falls back to a fresh local buffer, so concurrent
/// callers sharing one operator never serialize.
pub struct SumOp {
    terms: Vec<Arc<dyn LinOp>>,
    scratch: Mutex<Vec<f64>>,
}

impl fmt::Debug for SumOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SumOp")
            .field("terms", &self.terms.len())
            .field("shape", &self.terms[0].shape())
            .finish_non_exhaustive()
    }
}

impl SumOp {
    /// The operator `Σᵢ terms[i]`.
    ///
    /// # Panics
    /// Panics if `terms` is empty or shapes disagree.
    pub fn new(terms: Vec<Arc<dyn LinOp>>) -> Self {
        assert!(!terms.is_empty(), "sum needs at least one term");
        let shape = terms[0].shape();
        for t in &terms {
            assert_eq!(t.shape(), shape, "all terms must share one shape");
        }
        Self {
            terms,
            scratch: Mutex::new(Vec::new()),
        }
    }

    /// Accumulates `apply(term, scratch)` over all terms into `out`
    /// through the reused scratch buffer. Uses `try_lock` so concurrent
    /// callers sharing one operator fall back to a fresh local buffer
    /// instead of serializing on the scratch.
    fn accumulate(&self, out: &mut [f64], mut apply: impl FnMut(&dyn LinOp, &mut [f64])) {
        out.fill(0.0);
        let mut local = Vec::new();
        let mut guard = self.scratch.try_lock();
        let scratch: &mut Vec<f64> = match guard {
            Ok(ref mut g) => g,
            Err(_) => &mut local,
        };
        scratch.clear();
        scratch.resize(out.len(), 0.0);
        for t in &self.terms {
            apply(&**t, scratch);
            axpy(1.0, scratch, out);
        }
    }
}

impl LinOp for SumOp {
    fn rows(&self) -> usize {
        self.terms[0].rows()
    }
    fn cols(&self) -> usize {
        self.terms[0].cols()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.accumulate(out, |t, s| t.matvec_into(x, s));
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.accumulate(out, |t, s| t.t_matvec_into(x, s));
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        self.accumulate(out, |t, s| t.col_into(j, s));
    }
    fn diagonal(&self) -> Vec<f64> {
        let mut d = self.terms[0].diagonal();
        for t in &self.terms[1..] {
            axpy(1.0, &t.diagonal(), &mut d);
        }
        d
    }
    fn trace(&self) -> f64 {
        self.terms.iter().map(|t| t.trace()).sum()
    }
}

/// The symmetric rank-one operator `v·vᵀ` — the Gram matrix of a single
/// query row `v` (`G = vᵀv` for the 1 × n workload `W = vᵀ`), stored in
/// `O(n)` with `O(n)` products. This is what keeps schema-level selection
/// queries (range/predicate indicators over one attribute) structured:
/// their Grams never materialize the `n × n` outer product.
#[derive(Clone, Debug)]
pub struct RankOneOp {
    v: Vec<f64>,
}

impl RankOneOp {
    /// The operator `v·vᵀ`.
    ///
    /// # Panics
    /// Panics if `v` is empty.
    pub fn new(v: Vec<f64>) -> Self {
        assert!(!v.is_empty(), "rank-one operator needs a non-empty vector");
        Self { v }
    }

    /// The generating vector `v`.
    pub fn vector(&self) -> &[f64] {
        &self.v
    }
}

impl LinOp for RankOneOp {
    fn rows(&self) -> usize {
        self.v.len()
    }
    fn cols(&self) -> usize {
        self.v.len()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.v.len());
        assert_eq!(out.len(), self.v.len());
        let s = dot(&self.v, x);
        for (o, &vi) in out.iter_mut().zip(&self.v) {
            *o = vi * s;
        }
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        // v·vᵀ is symmetric.
        self.matvec_into(x, out);
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        assert_eq!(
            out.len(),
            self.v.len(),
            "buffer must hold one entry per row"
        );
        let vj = self.v[j];
        for (o, &vi) in out.iter_mut().zip(&self.v) {
            *o = vi * vj;
        }
    }
    fn diagonal(&self) -> Vec<f64> {
        self.v.iter().map(|&vi| vi * vi).collect()
    }
    fn trace(&self) -> f64 {
        dot(&self.v, &self.v)
    }
}

/// The Kronecker product `A ⊗ B` as an implicit operator: products use the
/// reshape identity `(A ⊗ B) vec(Xᵀ) = vec((A X Bᵀ)ᵀ)`, costing
/// `O(c₁·cost(B) + r₂·cost(A))` instead of the `r₁r₂ × c₁c₂` dense
/// blow-up. This is what makes `Product` workloads scale: the Gram of a
/// 2-D range workload over a `n₁ × n₂` grid is carried as `G₁ ⊗ G₂` with
/// `O(n₁² + n₂²)` worth of structure instead of `O(n₁²n₂²)` storage.
pub struct KroneckerOp {
    left: Arc<dyn LinOp>,
    right: Arc<dyn LinOp>,
    /// Reused intermediate/column/result buffers (behind a [`Mutex`] so
    /// the operator stays `Sync`): sized on first use, so repeated
    /// products — FISTA iterations, variance sweeps — allocate nothing.
    /// Contended callers fall back to fresh local buffers rather than
    /// serializing.
    scratch: Mutex<KroneckerScratch>,
}

impl fmt::Debug for KroneckerOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("KroneckerOp")
            .field("left_shape", &self.left.shape())
            .field("right_shape", &self.right.shape())
            .finish_non_exhaustive()
    }
}

#[derive(Default)]
struct KroneckerScratch {
    t: Vec<f64>,
    tmp: Vec<f64>,
    col: Vec<f64>,
    res: Vec<f64>,
}

/// Minimum operand size before a Kronecker product stage is threaded.
const KRON_PAR_MIN: usize = 1 << 16;

impl KroneckerOp {
    /// The operator `left ⊗ right` over row-major-flattened indices
    /// (`u = u₁·c₂ + u₂`, matching `Matrix::kronecker`).
    pub fn new(left: Arc<dyn LinOp>, right: Arc<dyn LinOp>) -> Self {
        Self {
            left,
            right,
            scratch: Mutex::new(KroneckerScratch::default()),
        }
    }

    /// Right-folds `factors` into nested Kronecker operators,
    /// `f₀ ⊗ (f₁ ⊗ (… ⊗ f_{k−1}))`, matching the row-major flattening of a
    /// multi-attribute domain (`u = u₀·n₁⋯n_{k−1} + …`). A single factor
    /// is returned unchanged — no wrapper, no copy.
    ///
    /// # Panics
    /// Panics if `factors` is empty.
    pub fn chain(mut factors: Vec<Arc<dyn LinOp>>) -> Arc<dyn LinOp> {
        let mut acc = factors
            .pop()
            // ldp-lint: allow(no-unwrap-in-lib) -- documented `# Panics` contract:
            // an empty chain is a caller bug, not a runtime condition.
            .expect("Kronecker chain needs at least one factor");
        while let Some(f) = factors.pop() {
            acc = Arc::new(KroneckerOp::new(f, acc));
        }
        acc
    }

    /// The left factor.
    pub fn left(&self) -> &dyn LinOp {
        &*self.left
    }

    /// The right factor.
    pub fn right(&self) -> &dyn LinOp {
        &*self.right
    }
}

impl LinOp for KroneckerOp {
    fn rows(&self) -> usize {
        self.left.rows() * self.right.rows()
    }
    fn cols(&self) -> usize {
        self.left.cols() * self.right.cols()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        let (c1, c2) = (self.left.cols(), self.right.cols());
        let (r1, r2) = (self.left.rows(), self.right.rows());
        assert_eq!(x.len(), c1 * c2);
        assert_eq!(out.len(), r1 * r2);
        let mut local = KroneckerScratch::default();
        let mut guard = self.scratch.try_lock();
        let KroneckerScratch { t, tmp, col, .. } = match guard {
            Ok(ref mut g) => &mut **g,
            Err(_) => &mut local,
        };
        let pool = ldp_parallel::pool();
        let parallel = pool.threads() > 1 && (c1 * c2).max(r1 * r2) >= KRON_PAR_MIN;
        // Stage 1 — T[u1, j2] = Σ_{u2} B[j2, u2]·X[u1, u2]: apply B to
        // each row of the c1 × c2 reshape of x. Rows of T are disjoint,
        // so the row loop partitions across threads as-is.
        t.clear();
        t.resize(c1 * r2, 0.0);
        if parallel && c1 > 1 {
            pool.par_chunks(t, r2, |start, chunk| {
                for (g, sub) in chunk.chunks_mut(r2).enumerate() {
                    let u1 = start / r2 + g;
                    self.right.matvec_into(&x[u1 * c2..(u1 + 1) * c2], sub);
                }
            });
        } else {
            for u1 in 0..c1 {
                self.right
                    .matvec_into(&x[u1 * c2..(u1 + 1) * c2], &mut t[u1 * r2..(u1 + 1) * r2]);
            }
        }
        // Stage 2 — out[i1, j2] = Σ_{u1} A[i1, u1]·T[u1, j2]: apply A
        // down each column of T, staged j2-major (`tmp[j2·r1 + i1]`) so
        // each column lands in a contiguous, disjoint slice; the final
        // transpose into `out` is a pure copy.
        tmp.clear();
        tmp.resize(r1 * r2, 0.0);
        if parallel && r2 > 1 {
            pool.par_chunks(tmp, r1, |start, chunk| {
                let mut col = vec![0.0; c1];
                for (g, sub) in chunk.chunks_mut(r1).enumerate() {
                    let j2 = start / r1 + g;
                    for (u1, cv) in col.iter_mut().enumerate() {
                        *cv = t[u1 * r2 + j2];
                    }
                    self.left.matvec_into(&col, sub);
                }
            });
        } else {
            // Serial path: reuse the operator's scratch column so hot
            // loops (FISTA, PGD sweeps) stay allocation-free.
            col.clear();
            col.resize(c1, 0.0);
            for j2 in 0..r2 {
                for (u1, cv) in col.iter_mut().enumerate() {
                    *cv = t[u1 * r2 + j2];
                }
                self.left.matvec_into(col, &mut tmp[j2 * r1..(j2 + 1) * r1]);
            }
        }
        for (i1, orow) in out.chunks_mut(r2).enumerate() {
            for (j2, o) in orow.iter_mut().enumerate() {
                *o = tmp[j2 * r1 + i1];
            }
        }
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        let (c1, c2) = (self.left.cols(), self.right.cols());
        let (r1, r2) = (self.left.rows(), self.right.rows());
        assert_eq!(x.len(), r1 * r2);
        assert_eq!(out.len(), c1 * c2);
        let mut local = KroneckerScratch::default();
        let mut guard = self.scratch.try_lock();
        let KroneckerScratch { t, tmp, col, .. } = match guard {
            Ok(ref mut g) => &mut **g,
            Err(_) => &mut local,
        };
        let pool = ldp_parallel::pool();
        let parallel = pool.threads() > 1 && (c1 * c2).max(r1 * r2) >= KRON_PAR_MIN;
        t.clear();
        t.resize(r1 * c2, 0.0);
        if parallel && r1 > 1 {
            pool.par_chunks(t, c2, |start, chunk| {
                for (g, sub) in chunk.chunks_mut(c2).enumerate() {
                    let i1 = start / c2 + g;
                    self.right.t_matvec_into(&x[i1 * r2..(i1 + 1) * r2], sub);
                }
            });
        } else {
            for i1 in 0..r1 {
                self.right
                    .t_matvec_into(&x[i1 * r2..(i1 + 1) * r2], &mut t[i1 * c2..(i1 + 1) * c2]);
            }
        }
        tmp.clear();
        tmp.resize(c1 * c2, 0.0);
        if parallel && c2 > 1 {
            pool.par_chunks(tmp, c1, |start, chunk| {
                let mut col = vec![0.0; r1];
                for (g, sub) in chunk.chunks_mut(c1).enumerate() {
                    let u2 = start / c1 + g;
                    for (i1, cv) in col.iter_mut().enumerate() {
                        *cv = t[i1 * c2 + u2];
                    }
                    self.left.t_matvec_into(&col, sub);
                }
            });
        } else {
            col.clear();
            col.resize(r1, 0.0);
            for u2 in 0..c2 {
                for (i1, cv) in col.iter_mut().enumerate() {
                    *cv = t[i1 * c2 + u2];
                }
                self.left
                    .t_matvec_into(col, &mut tmp[u2 * c1..(u2 + 1) * c1]);
            }
        }
        for (u1, orow) in out.chunks_mut(c2).enumerate() {
            for (u2, o) in orow.iter_mut().enumerate() {
                *o = tmp[u2 * c1 + u1];
            }
        }
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        let (c2, r1, r2) = (self.right.cols(), self.left.rows(), self.right.rows());
        assert_eq!(out.len(), r1 * r2, "buffer must hold one entry per row");
        let (j1, j2) = (j / c2, j % c2);
        let mut local = KroneckerScratch::default();
        let mut guard = self.scratch.try_lock();
        let KroneckerScratch { col, res, .. } = match guard {
            Ok(ref mut g) => &mut **g,
            Err(_) => &mut local,
        };
        col.clear();
        col.resize(r1, 0.0);
        res.clear();
        res.resize(r2, 0.0);
        self.left.col_into(j1, col);
        self.right.col_into(j2, res);
        for (i1, &av) in col.iter().enumerate() {
            for (i2, &bv) in res.iter().enumerate() {
                out[i1 * r2 + i2] = av * bv;
            }
        }
    }
    fn diagonal(&self) -> Vec<f64> {
        assert!(self.is_square(), "diagonal requires a square operator");
        let da = self.left.diagonal();
        let db = self.right.diagonal();
        let mut d = Vec::with_capacity(da.len() * db.len());
        for &a in &da {
            for &b in &db {
                d.push(a * b);
            }
        }
        d
    }
    fn trace(&self) -> f64 {
        self.left.trace() * self.right.trace()
    }
}

/// Minimum transform length before a FWHT pass is worth threading. Each
/// of the `log₂ n` passes spawns its own scoped team, so the per-pass
/// work (`n` adds) must amortize tens of microseconds of spawns — at
/// 2¹⁷ elements a pass is ~100 µs of memory-bound traffic.
const FWHT_PAR_MIN: usize = 1 << 17;

/// In-place fast Walsh–Hadamard transform (unnormalized; applying it twice
/// multiplies by `data.len()`).
///
/// Large transforms run each pass in parallel. A pass's butterflies are
/// elementwise independent — every element is rewritten exactly once
/// from exactly two inputs, with no accumulation at all — so any
/// partition of a pass is bit-identical to the serial sweep: early
/// passes split at block boundaries, late passes (few, wide blocks)
/// split each block's half-pair into matched sub-ranges.
///
/// # Panics
/// Panics if the length is not a power of two.
pub fn fwht(data: &mut [f64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let pool = ldp_parallel::pool();
    let threads = pool.threads();
    let parallel = threads > 1 && n >= FWHT_PAR_MIN;
    let mut h = 1;
    while h < n {
        if parallel && n / (2 * h) >= threads {
            // Many narrow blocks: give each worker a contiguous run.
            pool.par_chunks(data, 2 * h, |_, chunk| {
                for block in chunk.chunks_mut(2 * h) {
                    let (lo, hi) = block.split_at_mut(h);
                    fwht_butterfly(lo, hi);
                }
            });
        } else if parallel {
            // Few wide blocks: split each lo/hi pair into matched
            // sub-ranges and run them as one task batch.
            let per = h.div_ceil(threads).max(1024);
            let mut tasks: Vec<Box<dyn FnOnce() + Send>> = Vec::new();
            for block in data.chunks_mut(2 * h) {
                let (lo, hi) = block.split_at_mut(h);
                for (lo_c, hi_c) in lo.chunks_mut(per).zip(hi.chunks_mut(per)) {
                    tasks.push(Box::new(move || fwht_butterfly(lo_c, hi_c)));
                }
            }
            pool.par_tasks(tasks);
        } else {
            for block in data.chunks_mut(2 * h) {
                let (lo, hi) = block.split_at_mut(h);
                fwht_butterfly(lo, hi);
            }
        }
        h <<= 1;
    }
}

/// Closed-form Gram-matrix families of the paper's workload suite, stored
/// in `O(n)` (or `O(1)`) space with `O(n)`–`O(n log n)` products.
#[derive(Debug)]
pub enum StructuredGram {
    /// `G = s·I` — Histogram (`s = 1`) and full Parity (`s = n`).
    ScaledIdentity {
        /// Domain size.
        n: usize,
        /// Diagonal value.
        scale: f64,
    },
    /// `G = v·11ᵀ` — the Total workload (`v = 1`).
    Constant {
        /// Domain size.
        n: usize,
        /// Entry value.
        value: f64,
    },
    /// Prefix queries: `G[j,k] = n − max(j,k)`.
    Prefix {
        /// Domain size.
        n: usize,
    },
    /// All interval queries: `G[j,k] = (min(j,k)+1)·(n − max(j,k))`.
    AllRange {
        /// Domain size.
        n: usize,
    },
    /// A Hamming-distance kernel over `{0,1}^d`:
    /// `G[u,v] = kernel[hamming(u⊕v)]`. Covers Parity and all marginal
    /// workloads; the matvec is a dyadic convolution diagonalized by the
    /// Walsh–Hadamard transform.
    HammingKernel {
        /// Number of binary attributes (`n = 2^d`).
        d: usize,
        /// Kernel value per Hamming weight (`d + 1` entries).
        kernel: Vec<f64>,
        /// Walsh spectrum (eigenvalues), precomputed at construction.
        spectrum: Vec<f64>,
    },
}

impl StructuredGram {
    /// The Histogram Gram `I_n` scaled by `scale`.
    pub fn scaled_identity(n: usize, scale: f64) -> Self {
        Self::ScaledIdentity { n, scale }
    }

    /// The rank-one all-`value` Gram `v·11ᵀ`.
    pub fn constant(n: usize, value: f64) -> Self {
        Self::Constant { n, value }
    }

    /// The Prefix-workload Gram.
    pub fn prefix(n: usize) -> Self {
        Self::Prefix { n }
    }

    /// The All-Range-workload Gram.
    pub fn all_range(n: usize) -> Self {
        Self::AllRange { n }
    }

    /// A Hamming-kernel Gram over `{0,1}^d` from its per-weight kernel
    /// (`kernel.len() == d + 1`), precomputing the Walsh spectrum.
    ///
    /// # Panics
    /// Panics if `kernel.len() != d + 1`.
    pub fn hamming_kernel(d: usize, kernel: Vec<f64>) -> Self {
        assert_eq!(kernel.len(), d + 1, "kernel needs one value per weight");
        let n = 1usize << d;
        let mut spectrum: Vec<f64> = (0..n)
            .map(|v: usize| kernel[v.count_ones() as usize])
            .collect();
        fwht(&mut spectrum);
        Self::HammingKernel {
            d,
            kernel,
            spectrum,
        }
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        match *self {
            Self::ScaledIdentity { n, .. }
            | Self::Constant { n, .. }
            | Self::Prefix { n }
            | Self::AllRange { n } => n,
            Self::HammingKernel { d, .. } => 1 << d,
        }
    }

    /// Closed-form entry `G[j,k]` — exactly the value the historical dense
    /// assembly produced, so materialization is bit-identical.
    pub fn entry(&self, j: usize, k: usize) -> f64 {
        match *self {
            Self::ScaledIdentity { scale, .. } => {
                if j == k {
                    scale
                } else {
                    0.0
                }
            }
            Self::Constant { value, .. } => value,
            Self::Prefix { n } => (n - j.max(k)) as f64,
            Self::AllRange { n } => ((j.min(k) + 1) * (n - j.max(k))) as f64,
            Self::HammingKernel { ref kernel, .. } => kernel[(j ^ k).count_ones() as usize],
        }
    }
}

impl LinOp for StructuredGram {
    fn rows(&self) -> usize {
        self.n()
    }
    fn cols(&self) -> usize {
        self.n()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        let n = self.n();
        assert_eq!(x.len(), n);
        assert_eq!(out.len(), n);
        match *self {
            Self::ScaledIdentity { scale, .. } => {
                for (o, &xi) in out.iter_mut().zip(x) {
                    *o = scale * xi;
                }
            }
            Self::Constant { value, .. } => {
                let s: f64 = x.iter().sum();
                out.fill(value * s);
            }
            Self::Prefix { n } => {
                // (Gx)_j = (n−j)·Σ_{k≤j} x_k + Σ_{k>j} (n−k)·x_k.
                let mut suffix = 0.0;
                for j in (0..n).rev() {
                    out[j] = suffix;
                    suffix += (n - j) as f64 * x[j];
                }
                let mut prefix = 0.0;
                for j in 0..n {
                    prefix += x[j];
                    out[j] += (n - j) as f64 * prefix;
                }
            }
            Self::AllRange { n } => {
                // (Gx)_j = (n−j)·Σ_{k≤j}(k+1)x_k + (j+1)·Σ_{k>j}(n−k)x_k.
                let mut suffix = 0.0;
                for j in (0..n).rev() {
                    out[j] = (j + 1) as f64 * suffix;
                    suffix += (n - j) as f64 * x[j];
                }
                let mut prefix = 0.0;
                for j in 0..n {
                    prefix += (j + 1) as f64 * x[j];
                    out[j] += (n - j) as f64 * prefix;
                }
            }
            Self::HammingKernel { ref spectrum, .. } => {
                // The transforms parallelize internally; the two
                // elementwise rescales split below (disjoint elements,
                // so any partition is bit-identical).
                out.copy_from_slice(x);
                fwht(out);
                let pool = ldp_parallel::pool();
                let inv = 1.0 / n as f64;
                if pool.threads() > 1 && n >= FWHT_PAR_MIN {
                    pool.par_chunks(out, 1, |start, chunk| {
                        for (o, &s) in chunk.iter_mut().zip(&spectrum[start..]) {
                            *o *= s;
                        }
                    });
                    fwht(out);
                    pool.par_chunks(out, 1, |_, chunk| {
                        for o in chunk.iter_mut() {
                            *o *= inv;
                        }
                    });
                } else {
                    for (o, &s) in out.iter_mut().zip(spectrum) {
                        *o *= s;
                    }
                    fwht(out);
                    for o in out.iter_mut() {
                        *o *= inv;
                    }
                }
            }
        }
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        // Every structured Gram is symmetric.
        self.matvec_into(x, out);
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        let n = self.n();
        assert_eq!(out.len(), n);
        for (k, o) in out.iter_mut().enumerate() {
            *o = self.entry(j, k);
        }
    }
    fn diagonal(&self) -> Vec<f64> {
        let n = self.n();
        (0..n).map(|j| self.entry(j, j)).collect()
    }
    fn trace(&self) -> f64 {
        let n = self.n();
        match *self {
            Self::ScaledIdentity { scale, .. } => scale * n as f64,
            Self::Constant { value, .. } => value * n as f64,
            // Σ_j (n − j) = n(n+1)/2, in f64 so million-type domains
            // (where only these O(1) paths are reachable) cannot wrap.
            Self::Prefix { n } => n as f64 * (n as f64 + 1.0) / 2.0,
            // Σ_j (j+1)(n−j) = n(n+1)(n+2)/6.
            Self::AllRange { n } => n as f64 * (n as f64 + 1.0) * (n as f64 + 2.0) / 6.0,
            Self::HammingKernel { ref kernel, .. } => kernel[0] * n as f64,
        }
    }
}

/// A shared, cheaply clonable handle to a workload Gram operator — what
/// `Workload::gram()` returns. Wraps an `Arc<dyn LinOp>` so deployments,
/// threads, and composite operators (Kronecker/sum) can share structure
/// without copying.
#[derive(Clone)]
pub struct Gram {
    op: Arc<dyn LinOp>,
}

impl fmt::Debug for Gram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Gram")
            .field("n", &self.op.rows())
            .finish_non_exhaustive()
    }
}

impl Gram {
    /// Wraps a square operator.
    ///
    /// # Panics
    /// Panics if `op` is not square.
    pub fn new(op: impl LinOp + 'static) -> Self {
        Self::from_arc(Arc::new(op))
    }

    /// Wraps an already-shared operator.
    ///
    /// # Panics
    /// Panics if `op` is not square.
    pub fn from_arc(op: Arc<dyn LinOp>) -> Self {
        assert!(op.is_square(), "a Gram operator must be square");
        Self { op }
    }

    /// A dense Gram (escape hatch for ad-hoc matrices).
    pub fn dense(m: Matrix) -> Self {
        Self::new(DenseOp(m))
    }

    /// Domain size `n`.
    pub fn n(&self) -> usize {
        self.op.rows()
    }

    /// `(n, n)`.
    pub fn shape(&self) -> (usize, usize) {
        self.op.shape()
    }

    /// The underlying operator.
    pub fn op(&self) -> &dyn LinOp {
        &*self.op
    }

    /// A shared handle to the underlying operator, for composing into
    /// larger structures (e.g. [`KroneckerOp`], [`SumOp`]).
    pub fn share(&self) -> Arc<dyn LinOp> {
        Arc::clone(&self.op)
    }

    /// `G·x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        self.op.matvec(x)
    }

    /// `G·x` into a preallocated buffer.
    pub fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.op.matvec_into(x, out);
    }

    /// `tr(G) = ‖W‖²_F`.
    pub fn trace(&self) -> f64 {
        self.op.trace()
    }

    /// The diagonal of `G` (the per-type squared query loads).
    pub fn diagonal(&self) -> Vec<f64> {
        self.op.diagonal()
    }

    /// Largest absolute entry. A Gram matrix `WᵀW` is PSD, so
    /// `|G[j,k]| ≤ max(G[j,j], G[k,k])` and the maximum sits on the
    /// diagonal — computable in `O(n)` without materialization.
    pub fn max_abs(&self) -> f64 {
        psd_max_abs(&*self.op)
    }

    /// Dense materialization — `O(n²)` memory; the explicit opt-in.
    pub fn to_dense(&self) -> Matrix {
        self.op.materialize()
    }
}

impl LinOp for Gram {
    fn rows(&self) -> usize {
        self.op.rows()
    }
    fn cols(&self) -> usize {
        self.op.cols()
    }
    fn matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.op.matvec_into(x, out);
    }
    fn t_matvec_into(&self, x: &[f64], out: &mut [f64]) {
        self.op.t_matvec_into(x, out);
    }
    fn col_into(&self, j: usize, out: &mut [f64]) {
        self.op.col_into(j, out);
    }
    fn diagonal(&self) -> Vec<f64> {
        self.op.diagonal()
    }
    fn trace(&self) -> f64 {
        self.op.trace()
    }
    fn materialize(&self) -> Matrix {
        self.op.materialize()
    }
    fn as_dense(&self) -> Option<&Matrix> {
        self.op.as_dense()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_op_matches_dense(op: &dyn LinOp, dense: &Matrix, tol: f64) {
        assert_eq!(op.shape(), dense.shape());
        let (r, c) = dense.shape();
        // Materialization.
        assert!(op.materialize().max_abs_diff(dense) <= tol);
        // matvec / t_matvec on a non-trivial vector.
        let x: Vec<f64> = (0..c).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let got = op.matvec(&x);
        let want = dense.matvec(&x);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
        }
        let y: Vec<f64> = (0..r).map(|i| ((i * 5 + 1) % 7) as f64 - 3.0).collect();
        let got = op.t_matvec(&y);
        let want = dense.t_matvec(&y);
        for (a, b) in got.iter().zip(&want) {
            assert!((a - b).abs() <= tol * (1.0 + b.abs()), "{a} vs {b}");
        }
        if r == c {
            assert!((LinOp::trace(op) - dense.trace()).abs() <= tol * (1.0 + dense.trace().abs()));
        }
    }

    #[test]
    fn matrix_is_a_linop() {
        let m = Matrix::from_fn(4, 3, |i, j| (i * 3 + j) as f64 - 4.0);
        assert_op_matches_dense(&m, &m.clone(), 1e-12);
        assert!(LinOp::as_dense(&m).is_some());
    }

    #[test]
    fn diag_op() {
        let d = DiagOp::new(vec![1.0, -2.0, 3.0]);
        let dense = Matrix::diag(&[1.0, -2.0, 3.0]);
        assert_op_matches_dense(&d, &dense, 1e-15);
        assert_eq!(LinOp::diagonal(&d), vec![1.0, -2.0, 3.0]);
    }

    #[test]
    fn scaled_and_sum_ops() {
        let a = Matrix::from_fn(3, 3, |i, j| (i + 2 * j) as f64);
        let b = Matrix::identity(3);
        let scaled = ScaledOp::new(2.5, Arc::new(a.clone()));
        assert_op_matches_dense(&scaled, &a.scaled(2.5), 1e-12);
        let sum = SumOp::new(vec![Arc::new(a.clone()), Arc::new(b.clone())]);
        assert_op_matches_dense(&sum, &(&a + &b), 1e-12);
    }

    #[test]
    fn rank_one_matches_dense_outer_product() {
        let v = vec![1.0, 0.0, -2.0, 0.5];
        let op = RankOneOp::new(v.clone());
        let dense = Matrix::from_fn(4, 4, |i, j| v[i] * v[j]);
        assert_op_matches_dense(&op, &dense, 1e-12);
        assert_eq!(LinOp::diagonal(&op), vec![1.0, 0.0, 4.0, 0.25]);
        assert_eq!(op.vector(), &v[..]);
        // Indicator rows (the schema-query case) materialize exactly.
        let ind = RankOneOp::new(vec![0.0, 1.0, 1.0]);
        let expect = Matrix::from_fn(3, 3, |i, j| if i > 0 && j > 0 { 1.0 } else { 0.0 });
        assert_eq!(op_to_dense(&ind), expect);
    }

    fn op_to_dense(op: &dyn LinOp) -> Matrix {
        op.materialize()
    }

    #[test]
    fn kronecker_chain_matches_nested_dense() {
        let a = Matrix::from_fn(2, 2, |i, j| (i * 2 + j) as f64 + 1.0);
        let b = Matrix::from_fn(3, 3, |i, j| ((i + 2 * j) % 4) as f64 - 1.0);
        let c = Matrix::from_fn(2, 2, |i, j| (i as f64 - j as f64) * 0.5 + 1.0);
        let chain = KroneckerOp::chain(vec![
            Arc::new(a.clone()) as Arc<dyn LinOp>,
            Arc::new(b.clone()),
            Arc::new(c.clone()),
        ]);
        let dense = a.kronecker(&b.kronecker(&c));
        assert_op_matches_dense(&*chain, &dense, 1e-12);
        // A single factor passes through untouched.
        let single = KroneckerOp::chain(vec![Arc::new(a.clone()) as Arc<dyn LinOp>]);
        assert_eq!(single.materialize(), a);
    }

    #[test]
    fn kronecker_matches_dense_kronecker() {
        let a = Matrix::from_fn(3, 2, |i, j| (i + 2 * j) as f64 - 1.0);
        let b = Matrix::from_fn(2, 4, |i, j| (i * j + 1) as f64 * 0.5);
        let op = KroneckerOp::new(Arc::new(a.clone()), Arc::new(b.clone()));
        assert_op_matches_dense(&op, &a.kronecker(&b), 1e-12);
    }

    #[test]
    fn kronecker_square_diagonal_and_trace() {
        let a = Matrix::from_fn(3, 3, |i, j| ((i + j) % 3) as f64 + 1.0);
        let b = Matrix::from_fn(2, 2, |i, j| (2 * i + j) as f64);
        let op = KroneckerOp::new(Arc::new(a.clone()), Arc::new(b.clone()));
        let dense = a.kronecker(&b);
        assert_eq!(LinOp::diagonal(&op), LinOp::diagonal(&dense));
        assert!((LinOp::trace(&op) - dense.trace()).abs() < 1e-12);
    }

    #[test]
    fn fwht_involution() {
        let x = vec![1.0, -2.0, 3.0, 0.5, 0.0, 4.0, -1.0, 2.0];
        let mut y = x.clone();
        fwht(&mut y);
        fwht(&mut y);
        for (a, b) in y.iter().zip(&x) {
            assert!((a / 8.0 - b).abs() < 1e-12);
        }
    }

    #[test]
    fn structured_prefix_matches_closed_form_dense() {
        for n in [1usize, 2, 5, 16, 33] {
            let op = StructuredGram::prefix(n);
            let dense = Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64);
            assert_op_matches_dense(&op, &dense, 1e-9);
            // Materialization must be bit-identical to the historical
            // dense assembly.
            assert_eq!(op.materialize(), dense);
        }
    }

    #[test]
    fn structured_all_range_matches_closed_form_dense() {
        for n in [1usize, 2, 5, 12, 30] {
            let op = StructuredGram::all_range(n);
            let dense = Matrix::from_fn(n, n, |j, k| ((j.min(k) + 1) * (n - j.max(k))) as f64);
            assert_op_matches_dense(&op, &dense, 1e-9);
            assert_eq!(op.materialize(), dense);
        }
    }

    #[test]
    fn structured_identity_and_constant() {
        let id = StructuredGram::scaled_identity(5, 3.0);
        assert_op_matches_dense(&id, &Matrix::identity(5).scaled(3.0), 1e-15);
        let c = StructuredGram::constant(4, 2.0);
        assert_op_matches_dense(&c, &Matrix::filled(4, 4, 2.0), 1e-12);
    }

    #[test]
    fn hamming_kernel_matches_dense() {
        // Kernel of the All Marginals Gram at d=3: 2^{d−h}.
        let d = 3usize;
        let kernel: Vec<f64> = (0..=d).map(|h| (1u64 << (d - h)) as f64).collect();
        let op = StructuredGram::hamming_kernel(d, kernel.clone());
        let n = 1 << d;
        let dense = Matrix::from_fn(n, n, |u, v| kernel[(u ^ v).count_ones() as usize]);
        assert_op_matches_dense(&op, &dense, 1e-9);
        assert_eq!(op.materialize(), dense);
    }

    #[test]
    fn gram_handle_shares_and_materializes() {
        let g = Gram::new(StructuredGram::prefix(6));
        let g2 = g.clone();
        assert_eq!(g.n(), 6);
        assert_eq!(g.trace(), 21.0);
        assert_eq!(g.to_dense(), g2.to_dense());
        let x = vec![1.0; 6];
        assert_eq!(g.matvec(&x), g.to_dense().matvec(&x));
    }

    #[test]
    fn linop_matmul_matches_dense() {
        let g = StructuredGram::prefix(5);
        let rhs = Matrix::from_fn(5, 3, |i, j| (i * 3 + j) as f64 * 0.25 - 1.0);
        let got = linop_matmul(&g, &rhs);
        let want = g.materialize().matmul(&rhs);
        assert!(got.max_abs_diff(&want) < 1e-9);
    }

    #[test]
    fn dense_of_borrows_matrices() {
        let m = Matrix::identity(3);
        assert!(matches!(dense_of(&m), Cow::Borrowed(_)));
        let s = StructuredGram::prefix(3);
        assert!(matches!(dense_of(&s), Cow::Owned(_)));
    }
}
