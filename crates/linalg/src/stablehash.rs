//! Bit-stable hashing of numerical data.
//!
//! `std::hash` makes no stability promise across compiler versions or
//! processes, so anything persisted to disk and keyed by a hash — the
//! strategy cache in `ldp-store`, snapshot checksums — needs a hash whose
//! byte-level definition lives in this workspace. [`Fnv64`] is 64-bit
//! FNV-1a over explicit little-endian tokens: fully specified, fast
//! enough for the `O(n)` fingerprint probes that use it, and trivially
//! auditable.

/// 64-bit FNV-1a with explicit, byte-order-stable write methods.
///
/// ```
/// use ldp_linalg::stablehash::Fnv64;
/// let mut h = Fnv64::new();
/// h.write_str("prefix");
/// h.write_u64(1024);
/// h.write_f64(0.5);
/// // The value is pinned by the algorithm, not by the platform.
/// assert_eq!(h.finish(), h.clone().finish());
/// ```
#[derive(Clone, Debug)]
pub struct Fnv64 {
    state: u64,
}

/// The standard FNV-1a 64-bit offset basis.
const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// The standard FNV-1a 64-bit prime.
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Fnv64 {
    /// A hasher starting from the standard offset basis.
    pub fn new() -> Self {
        Self {
            state: OFFSET_BASIS,
        }
    }

    /// A hasher with a caller-chosen basis, for deriving independent hash
    /// streams over the same token sequence (e.g. the two halves of a
    /// 128-bit content address).
    pub fn with_basis(basis: u64) -> Self {
        Self { state: basis }
    }

    /// Absorbs raw bytes.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u64;
            self.state = self.state.wrapping_mul(PRIME);
        }
    }

    /// Absorbs a length-prefixed UTF-8 string; the prefix keeps adjacent
    /// strings from aliasing (`"ab","c"` vs `"a","bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a `u64` as little-endian bytes.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs an `f64` by exact bit pattern — `-0.0` and `0.0` hash
    /// differently and NaN payloads are preserved. Content addresses key
    /// on bit-identical numerics, so this is the right equivalence.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.state
    }
}

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a over a byte slice — the checksum primitive used by the
/// snapshot codec.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv64::new();
    h.write_bytes(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Canonical FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_adjacent_strings() {
        let mut a = Fnv64::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv64::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn floats_hash_by_bit_pattern() {
        let mut a = Fnv64::new();
        a.write_f64(0.0);
        let mut b = Fnv64::new();
        b.write_f64(-0.0);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn distinct_bases_give_independent_streams() {
        let mut a = Fnv64::new();
        let mut b = Fnv64::with_basis(0x9e3779b97f4a7c15);
        for h in [&mut a, &mut b] {
            h.write_u64(42);
        }
        assert_ne!(a.finish(), b.finish());
    }
}
