//! LU factorization with partial pivoting for general square systems.

use crate::Matrix;

/// LU factorization `P A = L U` with partial (row) pivoting.
///
/// Used where a general (possibly non-symmetric) square solve is needed,
/// e.g. inverting the randomized-response strategy matrix in tests and the
/// closed-form `V = W Q⁻¹` construction of Example 3.3.
#[derive(Clone, Debug)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper including diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation, for determinants.
    sign: f64,
}

impl Lu {
    /// Factorizes a square matrix. Returns `None` if the matrix is exactly
    /// singular at working precision.
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Option<Self> {
        assert!(a.is_square(), "LU requires a square matrix");
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        for k in 0..n {
            // Partial pivot: largest absolute entry in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val == 0.0 || !pivot_val.is_finite() {
                return None;
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let delta = factor * lu[(k, j)];
                    lu[(i, j)] -= delta;
                }
            }
        }
        Some(Self { lu, perm, sign })
    }

    /// Solves `A x = b`.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.lu.rows();
        assert_eq!(b.len(), n);
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[(i, k)] * x[k];
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[(i, k)] * x[k];
            }
            x[i] /= self.lu[(i, i)];
        }
        x
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        assert_eq!(b.rows(), self.lu.rows());
        let mut x = Matrix::zeros(b.rows(), b.cols());
        for j in 0..b.cols() {
            x.set_col(j, &self.solve(&b.col(j)));
        }
        x
    }

    /// The matrix inverse `A⁻¹`.
    pub fn inverse(&self) -> Matrix {
        self.solve_matrix(&Matrix::identity(self.lu.rows()))
    }

    /// The determinant of `A`.
    pub fn det(&self) -> f64 {
        let mut d = self.sign;
        for i in 0..self.lu.rows() {
            d *= self.lu[(i, i)];
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_known_system() {
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let lu = Lu::new(&a).expect("nonsingular");
        let x = lu.solve(&[8.0, -11.0, -3.0]);
        // Known solution x = (2, 3, -1).
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] - -1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_roundtrip() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        let inv = Lu::new(&a).expect("nonsingular").inverse();
        assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(2)) < 1e-12);
    }

    #[test]
    fn determinant() {
        let a = Matrix::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]);
        assert!((Lu::new(&a).expect("nonsingular").det() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn determinant_sign_with_pivoting() {
        // Requires a row swap: det = -(1) = ... check against known value.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        assert!((Lu::new(&a).expect("nonsingular").det() - -1.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_rejected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(Lu::new(&a).is_none());
    }

    #[test]
    fn solve_matrix_multiple_rhs() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[9.0, 1.0], &[8.0, 1.0]]);
        let lu = Lu::new(&a).expect("nonsingular");
        let x = lu.solve_matrix(&b);
        assert!(a.matmul(&x).max_abs_diff(&b) < 1e-12);
    }
}
