//! Cholesky factorization for symmetric positive definite systems.

use crate::Matrix;

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
///
/// Used for fast solves with well-conditioned SPD systems (e.g. the WNNLS
/// Lipschitz-constant estimation and full-rank Gram solves); the optimizer
/// itself uses the eigendecomposition-based pseudo-inverse because its `M`
/// may be singular.
#[derive(Clone, Debug)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive definite matrix.
    ///
    /// Returns `None` if a non-positive pivot is encountered (the matrix is
    /// not numerically positive definite).
    ///
    /// # Panics
    /// Panics if `a` is not square.
    pub fn new(a: &Matrix) -> Option<Self> {
        let mut l = Matrix::zeros(a.rows(), a.cols());
        if Self::factor_into(a, &mut l) {
            Some(Self { l })
        } else {
            None
        }
    }

    /// Factorizes into a preallocated `n × n` buffer, overwriting it.
    /// Returns `false` (leaving `l` unspecified) if the matrix is not
    /// numerically positive definite. The allocation-free counterpart of
    /// [`Cholesky::new`] for hot loops; solve with
    /// [`Cholesky::solve_in_place_with`].
    ///
    /// # Panics
    /// Panics if `a` is not square or `l`'s shape disagrees.
    pub fn factor_into(a: &Matrix, l: &mut Matrix) -> bool {
        assert!(a.is_square(), "Cholesky requires a square matrix");
        assert_eq!(l.shape(), a.shape(), "factor buffer shape");
        let n = a.rows();
        l.as_mut_slice().fill(0.0);
        for j in 0..n {
            // The k-sums run over the already-computed row prefixes, so
            // they are contiguous slice dot products (vectorized by the
            // shared 4-lane `dot`).
            let row_j = &l.row(j)[..j];
            let diag = a[(j, j)] - crate::dot(row_j, row_j);
            if diag <= 0.0 || !diag.is_finite() {
                return false;
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let v = a[(i, j)] - crate::dot(&l.row(i)[..j], &l.row(j)[..j]);
                l[(i, j)] = v / ljj;
            }
        }
        true
    }

    /// The lower-triangular factor.
    pub fn factor(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b`.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the dimension.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let mut y = b.to_vec();
        Self::solve_in_place_with(&self.l, &mut y);
        y
    }

    /// Solves `A x = b` in place given a factor produced by
    /// [`Cholesky::factor_into`] (or [`Cholesky::factor`]); `b` is
    /// overwritten with the solution. No allocation.
    ///
    /// # Panics
    /// Panics if `b.len()` does not match the factor's dimension.
    pub fn solve_in_place_with(l: &Matrix, b: &mut [f64]) {
        let n = l.rows();
        assert_eq!(b.len(), n);
        // Forward substitution L y = b: the inner sum is a contiguous
        // slice dot against the already-solved prefix.
        for i in 0..n {
            let (solved, rest) = b.split_at_mut(i);
            rest[0] = (rest[0] - crate::dot(&l.row(i)[..i], solved)) / l[(i, i)];
        }
        // Back substitution Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                b[i] -= l[(k, i)] * b[k];
            }
            b[i] /= l[(i, i)];
        }
    }

    /// Solves `A X = B` column-by-column.
    pub fn solve_matrix(&self, b: &Matrix) -> Matrix {
        let n = self.l.rows();
        assert_eq!(b.rows(), n);
        let mut x = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            x.set_col(j, &self.solve(&b.col(j)));
        }
        x
    }

    /// Log-determinant of `A`, computed as `2 Σ log L_ii`.
    pub fn log_det(&self) -> f64 {
        (0..self.l.rows()).map(|i| self.l[(i, i)].ln()).sum::<f64>() * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factor_of_known_matrix() {
        // A = [[4,2],[2,3]] => L = [[2,0],[1,sqrt(2)]]
        let a = Matrix::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]]);
        let c = Cholesky::new(&a).expect("SPD");
        let l = c.factor();
        assert!((l[(0, 0)] - 2.0).abs() < 1e-14);
        assert!((l[(1, 0)] - 1.0).abs() < 1e-14);
        assert!((l[(1, 1)] - 2.0_f64.sqrt()).abs() < 1e-14);
        assert_eq!(l[(0, 1)], 0.0);
    }

    #[test]
    fn solve_recovers_solution() {
        let a = Matrix::from_rows(&[&[4.0, 2.0, 0.0], &[2.0, 5.0, 1.0], &[0.0, 1.0, 3.0]]);
        let c = Cholesky::new(&a).expect("SPD");
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = c.solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_matrix_inverts() {
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 2.0]]);
        let c = Cholesky::new(&a).expect("SPD");
        let inv = c.solve_matrix(&Matrix::identity(2));
        assert!(a.matmul(&inv).max_abs_diff(&Matrix::identity(2)) < 1e-13);
    }

    #[test]
    fn rejects_indefinite_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn rejects_singular_matrix() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert!(Cholesky::new(&a).is_none());
    }

    #[test]
    fn log_det_matches_direct() {
        let a = Matrix::from_rows(&[&[4.0, 0.0], &[0.0, 9.0]]);
        let c = Cholesky::new(&a).expect("SPD");
        assert!((c.log_det() - (36.0_f64).ln()).abs() < 1e-12);
    }
}
