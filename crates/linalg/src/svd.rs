//! Singular value decomposition via one-sided Jacobi rotations.
//!
//! One-sided Jacobi orthogonalizes the columns of a working copy of `A` by
//! applying Givens rotations on the right; at convergence the column norms
//! are the singular values, the normalized columns form `U`, and the
//! accumulated rotations form `V`. It is compact and accurate, computing
//! even small singular values to high relative precision, which matters for
//! a numerically trustworthy pseudo-inverse.

use crate::{dot, Matrix};

/// The thin SVD `A = U · Diag(σ) · Vᵀ` produced by [`svd`].
#[derive(Clone, Debug)]
pub struct Svd {
    /// `rows × k` matrix with orthonormal columns, `k = min(rows, cols)`.
    pub u: Matrix,
    /// Singular values in descending order, length `k`.
    pub singular_values: Vec<f64>,
    /// `cols × k` matrix with orthonormal columns.
    pub v: Matrix,
}

impl Svd {
    /// Numerical rank with the NumPy-style cutoff
    /// `σ > max(rows, cols) · ε · σ_max`.
    pub fn rank(&self) -> usize {
        let tol = self.tolerance();
        self.singular_values.iter().filter(|&&s| s > tol).count()
    }

    /// The default small-singular-value cutoff used by [`Svd::rank`] and
    /// [`Svd::pinv`].
    pub fn tolerance(&self) -> f64 {
        let max_dim = self.u.rows().max(self.v.rows()) as f64;
        let smax = self.singular_values.first().copied().unwrap_or(0.0);
        max_dim * crate::EPS * smax
    }

    /// Moore–Penrose pseudo-inverse `V · Diag(1/σ) · Uᵀ` with singular
    /// values below [`Svd::tolerance`] treated as zero.
    pub fn pinv(&self) -> Matrix {
        let tol = self.tolerance();
        let inv: Vec<f64> = self
            .singular_values
            .iter()
            .map(|&s| if s > tol { 1.0 / s } else { 0.0 })
            .collect();
        self.v.scale_cols(&inv).matmul_t(&self.u)
    }

    /// Reconstructs `U Diag(σ) Vᵀ`.
    pub fn reconstruct(&self) -> Matrix {
        self.u.scale_cols(&self.singular_values).matmul_t(&self.v)
    }

    /// Sum of the singular values (the nuclear norm), used by the paper's
    /// SVD lower bound (Theorem 5.6).
    pub fn nuclear_norm(&self) -> f64 {
        self.singular_values.iter().sum()
    }
}

/// Computes the thin SVD of an arbitrary rectangular matrix.
///
/// If `a` is wide (`cols > rows`) the decomposition is computed on the
/// transpose and swapped back, so the working matrix is always tall, where
/// one-sided Jacobi converges fastest.
pub fn svd(a: &Matrix) -> Svd {
    if a.cols() > a.rows() {
        let t = svd(&a.transpose());
        return Svd {
            u: t.v,
            singular_values: t.singular_values,
            v: t.u,
        };
    }
    let (rows, cols) = a.shape();
    if cols == 0 || rows == 0 {
        return Svd {
            u: Matrix::zeros(rows, 0),
            singular_values: vec![],
            v: Matrix::zeros(cols, 0),
        };
    }

    // Work column-major for cache-friendly column rotations.
    let mut columns: Vec<Vec<f64>> = (0..cols).map(|j| a.col(j)).collect();
    let mut v = Matrix::identity(cols);
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let tol = (rows.max(cols) as f64) * crate::EPS * scale;

    for _sweep in 0..64 {
        let mut converged = true;
        for p in 0..cols {
            for q in (p + 1)..cols {
                let (left, right) = columns.split_at_mut(q);
                let cp = &mut left[p];
                let cq = &mut right[0];
                let alpha = dot(cp, cp);
                let beta = dot(cq, cq);
                let gamma = dot(cp, cq);
                if gamma.abs() <= tol * tol / (rows as f64).max(1.0)
                    || gamma.abs() <= crate::EPS * (alpha * beta).sqrt()
                {
                    continue;
                }
                converged = false;
                // Rotation that zeroes the off-diagonal of the 2x2 Gram
                // block [[alpha, gamma], [gamma, beta]].
                let zeta = (beta - alpha) / (2.0 * gamma);
                let t = zeta.signum() / (zeta.abs() + (1.0 + zeta * zeta).sqrt());
                let c = 1.0 / (1.0 + t * t).sqrt();
                let s = c * t;
                for i in 0..rows {
                    let xp = cp[i];
                    let xq = cq[i];
                    cp[i] = c * xp - s * xq;
                    cq[i] = s * xp + c * xq;
                }
                for k in 0..cols {
                    let vp = v[(k, p)];
                    let vq = v[(k, q)];
                    v[(k, p)] = c * vp - s * vq;
                    v[(k, q)] = s * vp + c * vq;
                }
            }
        }
        if converged {
            break;
        }
    }

    // Column norms are the singular values; normalize to get U.
    let mut entries: Vec<(f64, usize)> = columns
        .iter()
        .enumerate()
        .map(|(j, col)| (crate::norm2(col), j))
        .collect();
    entries.sort_by(|a, b| b.0.total_cmp(&a.0));

    let k = cols.min(rows);
    let mut u = Matrix::zeros(rows, k);
    let mut vs = Matrix::zeros(cols, k);
    let mut singular_values = Vec::with_capacity(k);
    for (new_j, &(sigma, old_j)) in entries.iter().take(k).enumerate() {
        singular_values.push(sigma);
        let col = &columns[old_j];
        if sigma > 0.0 {
            for i in 0..rows {
                u[(i, new_j)] = col[i] / sigma;
            }
        }
        for i in 0..cols {
            vs[(i, new_j)] = v[(i, old_j)];
        }
    }
    Svd {
        u,
        singular_values,
        v: vs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_matrix(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        Matrix::from_fn(rows, cols, |_, _| next())
    }

    #[test]
    fn identity_svd() {
        let s = svd(&Matrix::identity(4));
        for &sv in &s.singular_values {
            assert!((sv - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn diagonal_svd_sorted() {
        let a = Matrix::diag(&[1.0, 5.0, 3.0]);
        let s = svd(&a);
        assert!((s.singular_values[0] - 5.0).abs() < 1e-12);
        assert!((s.singular_values[1] - 3.0).abs() < 1e-12);
        assert!((s.singular_values[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_tall_wide_square() {
        for (r, c) in [(6, 4), (4, 6), (5, 5)] {
            let a = random_matrix(r, c, (r * 10 + c) as u64);
            let s = svd(&a);
            assert!(
                s.reconstruct().max_abs_diff(&a) < 1e-10,
                "SVD reconstruction failed for {r}x{c}"
            );
        }
    }

    #[test]
    fn orthonormal_factors() {
        let a = random_matrix(7, 4, 123);
        let s = svd(&a);
        assert!(s.u.gram().max_abs_diff(&Matrix::identity(4)) < 1e-10);
        assert!(s.v.gram().max_abs_diff(&Matrix::identity(4)) < 1e-10);
    }

    #[test]
    fn rank_of_outer_product() {
        let u = [1.0, -2.0, 0.5];
        let w = [2.0, 1.0];
        let a = Matrix::from_fn(3, 2, |i, j| u[i] * w[j]);
        let s = svd(&a);
        assert_eq!(s.rank(), 1);
    }

    #[test]
    fn pinv_satisfies_moore_penrose() {
        let a = random_matrix(5, 3, 77);
        let p = a.pinv();
        // A A⁺ A = A and A⁺ A A⁺ = A⁺.
        assert!(a.matmul(&p).matmul(&a).max_abs_diff(&a) < 1e-9);
        assert!(p.matmul(&a).matmul(&p).max_abs_diff(&p) < 1e-9);
        // A A⁺ and A⁺ A symmetric.
        let ap = a.matmul(&p);
        assert!(ap.max_abs_diff(&ap.transpose()) < 1e-9);
        let pa = p.matmul(&a);
        assert!(pa.max_abs_diff(&pa.transpose()) < 1e-9);
    }

    #[test]
    fn pinv_of_rank_deficient() {
        // Row duplicated: rank 1.
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let p = a.pinv();
        assert!(a.matmul(&p).matmul(&a).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn singular_values_of_prefix_matrix() {
        // Cross-check the nuclear norm against the frobenius/trace identity
        // sum(sigma_i^2) = ||A||_F^2.
        let n = 8;
        let a = Matrix::from_fn(n, n, |i, j| if j <= i { 1.0 } else { 0.0 });
        let s = svd(&a);
        let sum_sq: f64 = s.singular_values.iter().map(|x| x * x).sum();
        assert!((sum_sq - a.frobenius_norm().powi(2)).abs() < 1e-9);
        assert_eq!(s.rank(), n);
    }

    #[test]
    fn empty_dimensions() {
        let s = svd(&Matrix::zeros(0, 3));
        assert!(s.singular_values.is_empty());
        let s = svd(&Matrix::zeros(3, 0));
        assert!(s.singular_values.is_empty());
    }
}
