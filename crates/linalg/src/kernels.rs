//! Runtime-dispatched compute-kernel backends.
//!
//! Every hot loop in the workspace — the blocked matmul family, `dot`
//! and `axpy` (and the Cholesky/matvec paths they drive), the FWHT
//! butterfly, the `u64` ingestion helpers — funnels through this module,
//! which picks one of two implementations per call:
//!
//! * [`Backend::Scalar`] — the portable blocked kernels (in this file),
//!   always compiled, the reference semantics on every architecture;
//! * [`Backend::Avx2`] — AVX2+FMA vector kernels (`crate::simd`,
//!   x86-64 only), selected strictly by *runtime* feature detection —
//!   no `-C target-cpu` flag is required, and a binary built on an AVX2
//!   host still runs (scalar) on a CPU without it.
//!
//! ## Selection
//!
//! [`process_backend`] resolves once per process, like `LDP_THREADS`:
//! the `LDP_KERNEL` environment variable (`scalar` | `avx2`) wins when
//! set and supported; anything else falls back to the best detected
//! backend. An unsupported or unrecognized `LDP_KERNEL` value silently
//! degrades to detection — a deployment artifact copied to an older
//! machine keeps working. Tests pin a backend per thread with
//! [`with_backend`], which rides [`ldp_parallel::set_worker_context`] so
//! pool workers spawned inside the scope inherit the pinned backend.
//!
//! ## Determinism contract (per backend)
//!
//! *Within* a backend, every kernel is bit-identical at every thread
//! count — the same disjoint-output partitioning argument as the scalar
//! seed, plus fused scalar tails on the AVX2 side (see `crate::simd`).
//! *Across* backends only ulp-level agreement holds: FMA contracts
//! `a·b + c` into one rounding, so AVX2 results legitimately differ from
//! scalar in the last bits. Consumers that persist or compare bits
//! across processes (workload fingerprints, the store codec,
//! `stablehash`) must not depend on the ambient backend: integer paths
//! are backend-independent by construction, and fingerprint probes force
//! [`with_scalar_serial`].

use std::sync::OnceLock;

/// Rows per micro panel: four output rows share every loaded operand.
pub(crate) const MR: usize = 4;
/// Inner-dimension block: one operand panel of `KC` rows is consumed
/// per block while the output tile stays resident.
pub(crate) const KC: usize = 128;
/// Output-column block: `MR` output row chunks of `NC` doubles (16 KiB)
/// plus one streamed operand chunk fit in L1. Tuned with `KC` via the
/// `kernels` bench (`crates/bench/benches/kernels.rs`): {128, 512} beat
/// the other {128, 256} × {128, 256, 512} combinations at n = 512.
pub(crate) const NC: usize = 512;

/// Identifies a compute-kernel backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable scalar kernels — always available, reference semantics.
    Scalar,
    /// AVX2+FMA vector kernels — x86-64 only, runtime-detected.
    Avx2,
}

impl Backend {
    /// Stable lowercase name, as accepted by `LDP_KERNEL` and recorded
    /// in `BENCH_KERNELS.json`.
    pub fn as_str(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Whether the current CPU can run this backend.
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            Backend::Avx2 => avx2_supported(),
        }
    }

    /// Every backend the current CPU supports, scalar first — what test
    /// suites iterate to cover each compiled-and-runnable lane set.
    pub fn available() -> Vec<Backend> {
        let mut backends = vec![Backend::Scalar];
        if Backend::Avx2.is_supported() {
            backends.push(Backend::Avx2);
        }
        backends
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(target_arch = "x86_64")]
fn avx2_supported() -> bool {
    std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_supported() -> bool {
    false
}

/// Process-wide backend, resolved once (see the module docs).
static PROCESS_BACKEND: OnceLock<Backend> = OnceLock::new();

/// The process-wide default backend: `LDP_KERNEL` when set *and*
/// supported, otherwise the best backend the CPU supports. Resolved on
/// first use and cached for the life of the process.
pub fn process_backend() -> Backend {
    *PROCESS_BACKEND.get_or_init(|| {
        if let Ok(raw) = std::env::var("LDP_KERNEL") {
            match raw.trim().to_ascii_lowercase().as_str() {
                "scalar" => return Backend::Scalar,
                "avx2" if avx2_supported() => return Backend::Avx2,
                // Unknown or unsupported requests degrade to detection:
                // a pinned-env artifact keeps running on older hardware.
                _ => {}
            }
        }
        if avx2_supported() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    })
}

/// Thread-override encoding stored in the pool-propagated context word.
const CTX_SCALAR: u64 = 1;
const CTX_AVX2: u64 = 2;

/// The backend the next kernel call on this thread will use: a scoped
/// [`with_backend`] override if one is active (inherited by pool
/// workers), else the cached [`process_backend`].
#[inline]
pub fn backend() -> Backend {
    match ldp_parallel::worker_context() {
        CTX_SCALAR => Backend::Scalar,
        CTX_AVX2 => Backend::Avx2,
        _ => process_backend(),
    }
}

/// Runs `f` with kernels on this thread — and on any pool workers its
/// parallel sections spawn — pinned to `backend`, restoring the previous
/// override on exit (including on unwind). Thread-scoped by design so
/// concurrently running tests can pin different backends without racing
/// on the process environment.
///
/// # Panics
/// Panics if `backend` is not supported on the current CPU; callers
/// iterating backends should filter with [`Backend::available`].
pub fn with_backend<R>(backend: Backend, f: impl FnOnce() -> R) -> R {
    assert!(
        backend.is_supported(),
        "kernel backend '{backend}' is not supported on this CPU"
    );
    struct Restore(u64);
    impl Drop for Restore {
        fn drop(&mut self) {
            ldp_parallel::set_worker_context(self.0);
        }
    }
    let _restore = Restore(ldp_parallel::worker_context());
    ldp_parallel::set_worker_context(match backend {
        Backend::Scalar => CTX_SCALAR,
        Backend::Avx2 => CTX_AVX2,
    });
    f()
}

/// Runs `f` on scalar kernels with a single-threaded pool — the
/// bit-stable environment for anything whose output is persisted or
/// compared across processes (workload fingerprint probes). Scalar
/// because cross-backend bit-equality is not part of the contract;
/// serial so no floating-point path even depends on worker scheduling
/// (it would not anyway, per the determinism contract, but a fingerprint
/// is the one place to be belt-and-braces).
pub fn with_scalar_serial<R>(f: impl FnOnce() -> R) -> R {
    with_backend(Backend::Scalar, || {
        ldp_parallel::with_thread_override(Some(1), f)
    })
}

/// Dispatches one kernel call to the active backend. The AVX2 arm only
/// exists on x86-64; elsewhere `Backend::Avx2` is unreachable (never
/// detected, [`with_backend`] rejects it) and falls back to scalar
/// defensively.
macro_rules! dispatch {
    ($scalar:expr, $simd:expr) => {
        match backend() {
            Backend::Scalar => $scalar,
            #[cfg(target_arch = "x86_64")]
            // SAFETY: `Backend::Avx2` is only ever selected after
            // `is_x86_feature_detected!("avx2")` and `...("fma")` both
            // reported true (process detection, or `with_backend`'s
            // `is_supported` assertion), which is exactly the contract
            // of every `crate::simd` kernel.
            Backend::Avx2 => unsafe { $simd },
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => $scalar,
        }
    };
}

/// Dot product of two equal-length slices.
///
/// Four accumulator lanes with a fixed combination order
/// (`(l0+l1)+(l2+l3)`, then the scalar tail), so the result is
/// deterministic for given inputs on a given backend — it does not
/// depend on call site, blocking, or thread count.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    dispatch!(scalar::dot(a, b), crate::simd::dot(a, b))
}

/// `y += alpha * x` over equal-length slices.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    dispatch!(scalar::axpy(alpha, x, y), crate::simd::axpy(alpha, x, y))
}

/// One FWHT butterfly pass over a matched pair of half-blocks
/// (`lo[i], hi[i] ← lo[i]+hi[i], lo[i]-hi[i]`). Add/sub only, so both
/// backends produce identical bits.
#[inline]
pub(crate) fn fwht_butterfly(lo: &mut [f64], hi: &mut [f64]) {
    dispatch!(
        scalar::fwht_butterfly(lo, hi),
        crate::simd::fwht_butterfly(lo, hi)
    )
}

/// Blocked `C[rows] += A[row0 + rows] · B` over a contiguous range of
/// output rows (`out` covers `out.len() / n` rows starting at `row0`).
/// `a` is `(row0 + rows) × k` (only the owned rows are read), `b` is
/// `k × n`. `out` must be zeroed. Every output element accumulates in a
/// fixed per-backend order regardless of blocking or row grouping.
pub(crate) fn matmul_rows(a: &[f64], b: &[f64], k: usize, n: usize, row0: usize, out: &mut [f64]) {
    dispatch!(
        scalar::matmul_rows(a, b, k, n, row0, out),
        crate::simd::matmul_rows(a, b, k, n, row0, out)
    )
}

/// Blocked `C[rows] += (Aᵀ)[col0 + rows] · B` over a contiguous range of
/// `AᵀB` output rows (= columns `col0..` of the `r × c` matrix `a`).
/// `out` must be zeroed.
pub(crate) fn t_matmul_rows(
    a: &[f64],
    c: usize,
    b: &[f64],
    n: usize,
    r: usize,
    col0: usize,
    out: &mut [f64],
) {
    dispatch!(
        scalar::t_matmul_rows(a, c, b, n, r, col0, out),
        crate::simd::t_matmul_rows(a, c, b, n, r, col0, out)
    )
}

/// `C[rows] = A[row0 + rows] · Bᵀ` over a contiguous range of output
/// rows: each entry is one [`dot`] of two contiguous length-`k` rows.
pub(crate) fn matmul_t_rows(
    a: &[f64],
    b: &[f64],
    k: usize,
    p: usize,
    row0: usize,
    out: &mut [f64],
) {
    dispatch!(
        scalar::matmul_t_rows(a, b, k, p, row0, out),
        crate::simd::matmul_t_rows(a, b, k, p, row0, out)
    )
}

/// `acc[i] = acc[i].wrapping_add(src[i])` over equal-length slices — the
/// aggregator shard-merge loop. Integer addition is exact and
/// associative, so both backends produce identical bits; wrapping
/// semantics are explicit (report counts cannot reach 2⁶⁴ in practice,
/// and a silent wrap beats a release/debug behavior split).
///
/// # Panics
/// Panics if the lengths differ.
pub fn add_u64(acc: &mut [u64], src: &[u64]) {
    assert_eq!(acc.len(), src.len(), "slice lengths must agree");
    dispatch!(scalar::add_u64(acc, src), crate::simd::add_u64(acc, src))
}

/// Maximum of a `usize` slice, `0` when empty — the vectorized
/// batch-validation scan (`max < bound` clears a whole batch without a
/// branchy early-exit loop). Integer comparison: backend-independent.
pub fn max_usize(data: &[usize]) -> usize {
    #[cfg(target_arch = "x86_64")]
    if backend() == Backend::Avx2 {
        let (ptr, len) = (data.as_ptr().cast::<u64>(), data.len());
        // SAFETY: on x86-64 `usize` is exactly `u64` (same size,
        // alignment, and representation), so reinterpreting the slice
        // is a no-op; the pointer and length come from a valid slice.
        let as_u64 = unsafe { std::slice::from_raw_parts(ptr, len) };
        // SAFETY: the Avx2 backend is only selectable after runtime
        // detection of avx2+fma (see `dispatch!`).
        return unsafe { crate::simd::max_u64(as_u64) } as usize;
    }
    data.iter().fold(0usize, |m, &v| m.max(v))
}

/// The portable reference kernels. These are byte-for-byte the semantics
/// of the pre-backend scalar code: committed fingerprints and golden
/// values were produced by these loops and must keep reproducing.
mod scalar {
    use super::{KC, MR, NC};

    #[inline]
    pub(super) fn dot(a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len());
        let mut lanes = [0.0f64; 4];
        let a_chunks = a.chunks_exact(4);
        let b_chunks = b.chunks_exact(4);
        let a_tail = a_chunks.remainder();
        let b_tail = b_chunks.remainder();
        for (ca, cb) in a_chunks.zip(b_chunks) {
            lanes[0] += ca[0] * cb[0];
            lanes[1] += ca[1] * cb[1];
            lanes[2] += ca[2] * cb[2];
            lanes[3] += ca[3] * cb[3];
        }
        let mut tail = 0.0;
        for (x, y) in a_tail.iter().zip(b_tail) {
            tail += x * y;
        }
        (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
    }

    #[inline]
    pub(super) fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), y.len());
        for (yi, xi) in y.iter_mut().zip(x) {
            *yi += alpha * xi;
        }
    }

    #[inline]
    pub(super) fn fwht_butterfly(lo: &mut [f64], hi: &mut [f64]) {
        for (a, b) in lo.iter_mut().zip(hi) {
            let (x, y) = (*a, *b);
            *a = x + y;
            *b = x - y;
        }
    }

    pub(super) fn add_u64(acc: &mut [u64], src: &[u64]) {
        for (a, b) in acc.iter_mut().zip(src) {
            *a = a.wrapping_add(*b);
        }
    }

    pub(super) fn matmul_rows(
        a: &[f64],
        b: &[f64],
        k: usize,
        n: usize,
        row0: usize,
        out: &mut [f64],
    ) {
        let rows = out.len() / n;
        let mut jc = 0;
        while jc < n {
            let jw = NC.min(n - jc);
            let mut kc = 0;
            while kc < k {
                let kw = KC.min(k - kc);
                let mut i = 0;
                while i + MR <= rows {
                    let (c0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
                    let (c1, rest) = rest.split_at_mut(n);
                    let (c2, c3) = rest.split_at_mut(n);
                    let (c0, c1, c2, c3) = (
                        &mut c0[jc..jc + jw],
                        &mut c1[jc..jc + jw],
                        &mut c2[jc..jc + jw],
                        &mut c3[jc..jc + jw],
                    );
                    let a0 = &a[(row0 + i) * k..][..k];
                    let a1 = &a[(row0 + i + 1) * k..][..k];
                    let a2 = &a[(row0 + i + 2) * k..][..k];
                    let a3 = &a[(row0 + i + 3) * k..][..k];
                    for kk in kc..kc + kw {
                        let brow = &b[kk * n + jc..][..jw];
                        let (x0, x1, x2, x3) = (a0[kk], a1[kk], a2[kk], a3[kk]);
                        for ((((o0, o1), o2), o3), &bv) in c0
                            .iter_mut()
                            .zip(c1.iter_mut())
                            .zip(c2.iter_mut())
                            .zip(c3.iter_mut())
                            .zip(brow)
                        {
                            *o0 += x0 * bv;
                            *o1 += x1 * bv;
                            *o2 += x2 * bv;
                            *o3 += x3 * bv;
                        }
                    }
                    i += MR;
                }
                while i < rows {
                    let crow = &mut out[i * n + jc..][..jw];
                    let arow = &a[(row0 + i) * k..][..k];
                    for kk in kc..kc + kw {
                        let brow = &b[kk * n + jc..][..jw];
                        let x = arow[kk];
                        for (o, &bv) in crow.iter_mut().zip(brow) {
                            *o += x * bv;
                        }
                    }
                    i += 1;
                }
                kc += kw;
            }
            jc += jw;
        }
    }

    pub(super) fn t_matmul_rows(
        a: &[f64],
        c: usize,
        b: &[f64],
        n: usize,
        r: usize,
        col0: usize,
        out: &mut [f64],
    ) {
        let rows = out.len() / n;
        let mut pack = [0.0f64; KC * MR];
        let mut jc = 0;
        while jc < n {
            let jw = NC.min(n - jc);
            let mut kc = 0;
            while kc < r {
                let kw = KC.min(r - kc);
                let mut i = 0;
                while i + MR <= rows {
                    for kk in 0..kw {
                        let arow = &a[(kc + kk) * c..][..c];
                        for (p, slot) in pack[kk * MR..(kk + 1) * MR].iter_mut().enumerate() {
                            *slot = arow[col0 + i + p];
                        }
                    }
                    let (c0, rest) = out[i * n..(i + MR) * n].split_at_mut(n);
                    let (c1, rest) = rest.split_at_mut(n);
                    let (c2, c3) = rest.split_at_mut(n);
                    let (c0, c1, c2, c3) = (
                        &mut c0[jc..jc + jw],
                        &mut c1[jc..jc + jw],
                        &mut c2[jc..jc + jw],
                        &mut c3[jc..jc + jw],
                    );
                    for kk in 0..kw {
                        let brow = &b[(kc + kk) * n + jc..][..jw];
                        let panel = &pack[kk * MR..(kk + 1) * MR];
                        let (x0, x1, x2, x3) = (panel[0], panel[1], panel[2], panel[3]);
                        for ((((o0, o1), o2), o3), &bv) in c0
                            .iter_mut()
                            .zip(c1.iter_mut())
                            .zip(c2.iter_mut())
                            .zip(c3.iter_mut())
                            .zip(brow)
                        {
                            *o0 += x0 * bv;
                            *o1 += x1 * bv;
                            *o2 += x2 * bv;
                            *o3 += x3 * bv;
                        }
                    }
                    i += MR;
                }
                while i < rows {
                    let crow = &mut out[i * n + jc..][..jw];
                    for kk in 0..kw {
                        let x = a[(kc + kk) * c + col0 + i];
                        let brow = &b[(kc + kk) * n + jc..][..jw];
                        for (o, &bv) in crow.iter_mut().zip(brow) {
                            *o += x * bv;
                        }
                    }
                    i += 1;
                }
                kc += kw;
            }
            jc += jw;
        }
    }

    pub(super) fn matmul_t_rows(
        a: &[f64],
        b: &[f64],
        k: usize,
        p: usize,
        row0: usize,
        out: &mut [f64],
    ) {
        for (i, crow) in out.chunks_mut(p).enumerate() {
            let arow = &a[(row0 + i) * k..][..k];
            for (j, o) in crow.iter_mut().enumerate() {
                *o = dot(arow, &b[j * k..][..k]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        assert_eq!(Backend::Scalar.as_str(), "scalar");
        assert_eq!(Backend::Avx2.as_str(), "avx2");
        assert_eq!(Backend::Scalar.to_string(), "scalar");
    }

    #[test]
    fn scalar_is_always_available() {
        assert!(Backend::Scalar.is_supported());
        assert_eq!(Backend::available()[0], Backend::Scalar);
    }

    #[test]
    fn with_backend_is_scoped_and_restores() {
        let ambient = backend();
        let inner = with_backend(Backend::Scalar, backend);
        assert_eq!(inner, Backend::Scalar);
        assert_eq!(backend(), ambient, "previous selection restored");
    }

    #[test]
    fn with_scalar_serial_pins_both() {
        with_scalar_serial(|| {
            assert_eq!(backend(), Backend::Scalar);
            assert_eq!(ldp_parallel::current_threads(), 1);
        });
    }

    #[test]
    fn add_u64_matches_scalar_on_every_backend() {
        let src: Vec<u64> = (0..131).map(|i| i * 7 + 3).collect();
        let mut want: Vec<u64> = (0..131).map(|i| i * i).collect();
        for (a, b) in want.iter_mut().zip(&src) {
            *a = a.wrapping_add(*b);
        }
        for b in Backend::available() {
            let mut acc: Vec<u64> = (0..131).map(|i| i * i).collect();
            with_backend(b, || add_u64(&mut acc, &src));
            assert_eq!(acc, want, "backend {b}");
        }
    }

    #[test]
    fn max_usize_handles_tails_and_high_bit() {
        // 131 elements: 32 full vectors' worth plus a 3-element tail;
        // the high-bit value exercises the unsigned-compare bias.
        let mut data: Vec<usize> = (0..131).collect();
        data[77] = usize::MAX - 5;
        for b in Backend::available() {
            assert_eq!(with_backend(b, || max_usize(&data)), usize::MAX - 5, "{b}");
            assert_eq!(with_backend(b, || max_usize(&[])), 0, "{b} empty");
            assert_eq!(with_backend(b, || max_usize(&[9])), 9, "{b} single");
        }
    }

    #[test]
    fn backends_agree_on_dot_to_ulps() {
        let a: Vec<f64> = (0..1031)
            .map(|i| ((i * 13 + 5) % 19) as f64 * 0.03 + 0.5)
            .collect();
        let b: Vec<f64> = (0..1031)
            .map(|i| ((i * 7 + 2) % 23) as f64 * 0.04 + 0.25)
            .collect();
        let reference = with_backend(Backend::Scalar, || dot(&a, &b));
        for bk in Backend::available() {
            let got = with_backend(bk, || dot(&a, &b));
            let rel = (got - reference).abs() / reference.abs();
            assert!(rel < 1e-12, "backend {bk}: {got} vs {reference}");
        }
    }
}
