//! Symmetric eigendecomposition via Householder tridiagonalization and
//! the implicit-shift QL algorithm.
//!
//! This is the classical `tred2`/`tqli` pair (Golub & Van Loan; Numerical
//! Recipes): reduce the symmetric matrix to tridiagonal form with
//! accumulated Householder reflections (~8/3·n³ flops), then diagonalize
//! with implicitly shifted QL rotations applied to the accumulated basis.
//! It is roughly an order of magnitude faster than the cyclic Jacobi
//! method in [`crate::eigh`] at the domain sizes the paper's experiments
//! use (n = 512–4096), at essentially the same accuracy for the
//! well-scaled PSD matrices this workspace produces.
//!
//! [`eigh_auto`] picks Jacobi for small matrices (where its simplicity
//! and tiny-eigenvalue accuracy shine) and QL for large ones; it is what
//! the pseudo-inverse and all analysis paths use.

use crate::{eigh, Matrix, SymmetricEigen};

/// Dimension at which [`eigh_auto`] switches from cyclic Jacobi to
/// tridiagonal QL.
const JACOBI_CUTOFF: usize = 32;

/// Symmetric eigendecomposition using the fastest suitable algorithm:
/// cyclic Jacobi below the crossover dimension (32), Householder +
/// implicit QL above.
///
/// # Panics
/// Panics if `a` is not square, or if QL fails to converge (practically
/// impossible for finite symmetric input; 50 shifts per eigenvalue).
pub fn eigh_auto(a: &Matrix) -> SymmetricEigen {
    if a.rows() <= JACOBI_CUTOFF {
        eigh(a)
    } else {
        eigh_ql(a)
    }
}

/// Symmetric eigendecomposition via Householder tridiagonalization and
/// implicit-shift QL. Returns eigenvalues ascending with matching
/// eigenvector columns, like [`eigh`]. Falls back to cyclic Jacobi in the
/// (rare) event QL fails to converge within its shift budget.
///
/// # Panics
/// Panics if `a` is not square.
pub fn eigh_ql(a: &Matrix) -> SymmetricEigen {
    assert!(a.is_square(), "eigh_ql requires a square matrix");
    let n = a.rows();
    if n == 0 {
        return SymmetricEigen {
            eigenvalues: vec![],
            eigenvectors: Matrix::zeros(0, 0),
        };
    }
    let mut z = a.clone();
    z.symmetrize();
    let (mut d, mut e) = tred2(&mut z);
    if !tqli(&mut d, &mut e, &mut z) {
        // QL stalled (pathological deflation pattern): Jacobi always
        // converges, just slower. Correctness beats speed here.
        return eigh(a);
    }

    // Sort ascending, permuting eigenvector columns.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| d[i].total_cmp(&d[j]));
    let eigenvalues: Vec<f64> = order.iter().map(|&i| d[i]).collect();
    let mut eigenvectors = Matrix::zeros(n, n);
    for (new_col, &old_col) in order.iter().enumerate() {
        for k in 0..n {
            eigenvectors[(k, new_col)] = z[(k, old_col)];
        }
    }
    SymmetricEigen {
        eigenvalues,
        eigenvectors,
    }
}

/// Householder reduction of `a` to tridiagonal form, accumulating the
/// orthogonal transformation in `a` itself (classic `tred2`). Returns
/// `(diagonal, subdiagonal)` with the subdiagonal in `e[1..]`.
fn tred2(a: &mut Matrix) -> (Vec<f64>, Vec<f64>) {
    let n = a.rows();
    let mut d = vec![0.0; n];
    let mut e = vec![0.0; n];

    for i in (1..n).rev() {
        let l = i - 1;
        let mut h = 0.0;
        if l > 0 {
            let scale: f64 = (0..=l).map(|k| a[(i, k)].abs()).sum();
            if scale == 0.0 {
                e[i] = a[(i, l)];
            } else {
                for k in 0..=l {
                    a[(i, k)] /= scale;
                    h += a[(i, k)] * a[(i, k)];
                }
                let f = a[(i, l)];
                let g = if f >= 0.0 { -h.sqrt() } else { h.sqrt() };
                e[i] = scale * g;
                h -= f * g;
                a[(i, l)] = f - g;
                let mut f_acc = 0.0;
                for j in 0..=l {
                    a[(j, i)] = a[(i, j)] / h;
                    let mut g_acc = 0.0;
                    for k in 0..=j {
                        g_acc += a[(j, k)] * a[(i, k)];
                    }
                    for k in (j + 1)..=l {
                        g_acc += a[(k, j)] * a[(i, k)];
                    }
                    e[j] = g_acc / h;
                    f_acc += e[j] * a[(i, j)];
                }
                let hh = f_acc / (h + h);
                for j in 0..=l {
                    let f = a[(i, j)];
                    let g = e[j] - hh * f;
                    e[j] = g;
                    for k in 0..=j {
                        let delta = f * e[k] + g * a[(i, k)];
                        a[(j, k)] -= delta;
                    }
                }
            }
        } else {
            e[i] = a[(i, l)];
        }
        d[i] = h;
    }
    d[0] = 0.0;
    e[0] = 0.0;

    // Accumulate transformation matrices.
    for i in 0..n {
        if d[i] != 0.0 {
            for j in 0..i {
                let mut g = 0.0;
                for k in 0..i {
                    g += a[(i, k)] * a[(k, j)];
                }
                for k in 0..i {
                    let delta = g * a[(k, i)];
                    a[(k, j)] -= delta;
                }
            }
        }
        d[i] = a[(i, i)];
        a[(i, i)] = 1.0;
        for j in 0..i {
            a[(j, i)] = 0.0;
            a[(i, j)] = 0.0;
        }
    }
    (d, e)
}

/// Implicit-shift QL diagonalization of the tridiagonal matrix `(d, e)`,
/// rotating the accumulated basis `z` (classic `tqli`). Returns `false`
/// if an eigenvalue fails to converge within its shift budget (callers
/// fall back to Jacobi).
fn tqli(d: &mut [f64], e: &mut [f64], z: &mut Matrix) -> bool {
    let n = d.len();
    if n <= 1 {
        return true;
    }
    for i in 1..n {
        e[i - 1] = e[i];
    }
    e[n - 1] = 0.0;

    // Absolute deflation floor: relative tests alone stall on blocks whose
    // diagonal is (numerically) zero, which rank-deficient PSD inputs
    // produce routinely. Deflating at eps·‖A‖ perturbs eigenvalues by at
    // most that amount — the same tolerance the Jacobi path uses.
    let scale = d
        .iter()
        .chain(e.iter())
        .fold(0.0_f64, |acc, v| acc.max(v.abs()));
    let floor = f64::EPSILON * scale;

    for l in 0..n {
        let mut iterations = 0;
        loop {
            // Find the first negligible subdiagonal element at/after l.
            let mut m = l;
            while m + 1 < n {
                let dd = d[m].abs() + d[m + 1].abs();
                if e[m].abs() <= f64::EPSILON * dd + floor {
                    break;
                }
                m += 1;
            }
            if m == l {
                break;
            }
            iterations += 1;
            if iterations > 60 {
                return false;
            }

            // Form the implicit shift.
            let mut g = (d[l + 1] - d[l]) / (2.0 * e[l]);
            let mut r = g.hypot(1.0);
            g = d[m] - d[l] + e[l] / (g + if g >= 0.0 { r.abs() } else { -r.abs() });
            let (mut s, mut c) = (1.0, 1.0);
            let mut p = 0.0;
            let mut i = m;
            while i > l {
                let idx = i - 1;
                let mut f = s * e[idx];
                let b = c * e[idx];
                r = f.hypot(g);
                e[idx + 1] = r;
                if r == 0.0 {
                    // Deflate: recover from underflow.
                    d[idx + 1] -= p;
                    e[m] = 0.0;
                    break;
                }
                s = f / r;
                c = g / r;
                g = d[idx + 1] - p;
                r = (d[idx] - g) * s + 2.0 * c * b;
                p = s * r;
                d[idx + 1] = g + p;
                g = c * r - b;
                // Rotate the eigenvector columns idx and idx+1.
                for k in 0..z.rows() {
                    f = z[(k, idx + 1)];
                    z[(k, idx + 1)] = s * z[(k, idx)] + c * f;
                    z[(k, idx)] = c * z[(k, idx)] - s * f;
                }
                i -= 1;
            }
            if r == 0.0 && i > l {
                continue;
            }
            d[l] -= p;
            e[l] = g;
            e[m] = 0.0;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_symmetric(n: usize, seed: u64) -> Matrix {
        let mut state = seed.max(1);
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = Matrix::from_fn(n, n, |_, _| next());
        a.symmetrize();
        a
    }

    #[test]
    fn matches_jacobi_eigenvalues() {
        for n in [2usize, 3, 5, 17, 40, 64] {
            let a = random_symmetric(n, 7 + n as u64);
            let jac = eigh(&a);
            let ql = eigh_ql(&a);
            for (x, y) in jac.eigenvalues.iter().zip(&ql.eigenvalues) {
                assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()), "n={n}: {x} vs {y}");
            }
        }
    }

    #[test]
    fn reconstruction_and_orthogonality() {
        for n in [3usize, 10, 33, 64] {
            let a = random_symmetric(n, 91 + n as u64);
            let e = eigh_ql(&a);
            assert!(
                e.reconstruct().max_abs_diff(&a) < 1e-9 * (n as f64),
                "reconstruction failed at n={n}"
            );
            let vtv = e.eigenvectors.gram();
            assert!(
                vtv.max_abs_diff(&Matrix::identity(n)) < 1e-9,
                "eigenvectors not orthonormal at n={n}"
            );
        }
    }

    #[test]
    fn diagonal_and_tiny_matrices() {
        let e = eigh_ql(&Matrix::diag(&[4.0, -1.0, 2.5]));
        assert!((e.eigenvalues[0] - -1.0).abs() < 1e-12);
        assert!((e.eigenvalues[2] - 4.0).abs() < 1e-12);

        let e1 = eigh_ql(&Matrix::diag(&[3.0]));
        assert_eq!(e1.eigenvalues, vec![3.0]);

        let e0 = eigh_ql(&Matrix::zeros(0, 0));
        assert!(e0.eigenvalues.is_empty());
    }

    #[test]
    fn psd_gram_matrix() {
        // A Prefix Gram matrix: PSD with a wide spectrum — the shape that
        // actually flows through the optimizer.
        let n = 48;
        let g = Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64);
        let e = eigh_ql(&g);
        assert!(e.eigenvalues.iter().all(|&l| l > -1e-9));
        assert!((e.eigenvalues.iter().sum::<f64>() - g.trace()).abs() < 1e-8 * g.trace());
        assert!(e.reconstruct().max_abs_diff(&g) < 1e-8 * g.max_abs());
    }

    #[test]
    fn rank_deficient_matrix() {
        // Rank-2 matrix of size 36: 34 (near-)zero eigenvalues.
        let b = random_symmetric(36, 5);
        let u0 = b.col(0);
        let u1 = b.col(1);
        let a = Matrix::from_fn(36, 36, |i, j| u0[i] * u0[j] + u1[i] * u1[j]);
        let e = eigh_ql(&a);
        let near_zero = e
            .eigenvalues
            .iter()
            .filter(|l| l.abs() < 1e-8 * e.spectral_radius())
            .count();
        assert!(
            near_zero >= 34,
            "expected >= 34 near-zero eigenvalues, got {near_zero}"
        );
    }

    #[test]
    fn auto_dispatch_consistency() {
        // Straddle the cutoff: both sides must agree with Jacobi.
        for n in [JACOBI_CUTOFF - 1, JACOBI_CUTOFF + 1] {
            let a = random_symmetric(n, 1000 + n as u64);
            let auto = eigh_auto(&a);
            let reference = eigh(&a);
            for (x, y) in auto.eigenvalues.iter().zip(&reference.eigenvalues) {
                assert!((x - y).abs() < 1e-9 * (1.0 + x.abs()));
            }
        }
    }
}
