//! Property-based tests for the linear-algebra substrate: decompositions
//! must satisfy their defining identities on arbitrary inputs.

use ldp_linalg::{eigh, eigh_ql, pinv_symmetric, svd, Cholesky, Lu, Matrix, PinvOptions};
use proptest::prelude::*;

/// A random matrix strategy with entries in [-3, 3].
fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

/// A random symmetric matrix.
fn symmetric_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    matrix_strategy(n, n).prop_map(|mut m| {
        m.symmetrize();
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn matmul_associative(
        a in matrix_strategy(3, 4),
        b in matrix_strategy(4, 2),
        c in matrix_strategy(2, 5),
    ) {
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-10);
    }

    #[test]
    fn transpose_reverses_products(a in matrix_strategy(4, 3), b in matrix_strategy(3, 5)) {
        let lhs = a.matmul(&b).transpose();
        let rhs = b.transpose().matmul(&a.transpose());
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-12);
    }

    #[test]
    fn eigh_satisfies_identities(a in symmetric_strategy(6)) {
        let e = eigh(&a);
        prop_assert!(e.reconstruct().max_abs_diff(&a) < 1e-8);
        prop_assert!(e.eigenvectors.gram().max_abs_diff(&Matrix::identity(6)) < 1e-9);
        // Trace and Frobenius norm are spectral invariants.
        let sum: f64 = e.eigenvalues.iter().sum();
        prop_assert!((sum - a.trace()).abs() < 1e-8);
        let sq: f64 = e.eigenvalues.iter().map(|l| l * l).sum();
        prop_assert!((sq - a.frobenius_norm().powi(2)).abs() < 1e-7);
    }

    #[test]
    fn ql_agrees_with_jacobi(a in symmetric_strategy(9)) {
        let jac = eigh(&a);
        let ql = eigh_ql(&a);
        for (x, y) in jac.eigenvalues.iter().zip(&ql.eigenvalues) {
            prop_assert!((x - y).abs() < 1e-8 * (1.0 + x.abs()));
        }
        prop_assert!(ql.reconstruct().max_abs_diff(&a) < 1e-8);
    }

    #[test]
    fn svd_satisfies_identities(a in matrix_strategy(5, 3)) {
        let s = svd(&a);
        prop_assert!(s.reconstruct().max_abs_diff(&a) < 1e-8);
        for w in s.singular_values.windows(2) {
            prop_assert!(w[0] >= w[1] - 1e-12);
        }
        prop_assert!(s.singular_values.iter().all(|v| *v >= 0.0));
    }

    #[test]
    fn pinv_moore_penrose(a in matrix_strategy(4, 6)) {
        let p = a.pinv();
        prop_assert!(a.matmul(&p).matmul(&a).max_abs_diff(&a) < 1e-7);
        prop_assert!(p.matmul(&a).matmul(&p).max_abs_diff(&p) < 1e-7);
    }

    #[test]
    fn symmetric_pinv_matches_general(b in matrix_strategy(3, 5)) {
        let g = b.gram(); // 5x5 PSD, rank <= 3
        let sym = pinv_symmetric(&g, PinvOptions::default_for_dim(5)).pinv;
        let gen = g.pinv();
        prop_assert!(sym.max_abs_diff(&gen) < 1e-6);
    }

    #[test]
    fn cholesky_solve_inverts(b in matrix_strategy(4, 4), x in prop::collection::vec(-5.0..5.0f64, 4)) {
        // SPD matrix: BᵀB + I.
        let mut a = b.gram();
        for i in 0..4 {
            a[(i, i)] += 1.0;
        }
        let chol = Cholesky::new(&a).expect("SPD by construction");
        let rhs = a.matvec(&x);
        let solved = chol.solve(&rhs);
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-8);
        }
    }

    #[test]
    fn lu_solve_inverts(b in matrix_strategy(4, 4), x in prop::collection::vec(-5.0..5.0f64, 4)) {
        // Diagonally dominated matrix is nonsingular.
        let mut a = b;
        for i in 0..4 {
            let dom: f64 = a.row(i).iter().map(|v| v.abs()).sum();
            a[(i, i)] += dom + 1.0;
        }
        let lu = Lu::new(&a).expect("nonsingular by construction");
        let rhs = a.matvec(&x);
        let solved = lu.solve(&rhs);
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-8);
        }
    }

    #[test]
    fn gram_psd(a in matrix_strategy(3, 6)) {
        let g = a.gram();
        let e = eigh(&g);
        for l in e.eigenvalues {
            prop_assert!(l > -1e-9, "Gram eigenvalue {l} negative");
        }
    }
}
