//! Cross-checks the sparse crate's closed-domain Hadamard view against
//! the dense baseline in `ldp-mechanisms`: same protocol, two
//! independent constructions, bit-identical strategy matrices.

use ldp_core::Deployable;
use ldp_mechanisms::hadamard::hadamard_strategy;
use ldp_sparse::ClosedHadamard;

#[test]
fn closed_hadamard_strategy_matches_dense_baseline_bit_for_bit() {
    // (n, bits) pairs where 2^(bits+1) == (n+1).next_power_of_two(),
    // i.e. the two constructions pick the same Hadamard order.
    for (n, bits) in [(3usize, 1u32), (7, 2), (6, 2), (15, 3), (12, 3)] {
        for eps in [0.5, 1.0, 2.0, 3.5] {
            let sparse = ClosedHadamard::new(n, eps, bits).unwrap();
            let dense = hadamard_strategy(n, eps);
            let a = sparse.strategy().unwrap().matrix();
            let b = dense.matrix();
            assert_eq!(a.shape(), b.shape(), "n={n} bits={bits} eps={eps}");
            for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "strategy entries drifted at n={n} bits={bits} eps={eps}"
                );
            }
        }
    }
}

#[test]
fn closed_hadamard_reconstruction_is_exact_left_inverse() {
    let m = ClosedHadamard::new(12, 1.5, 3).unwrap();
    let kq = m
        .reconstruction_matrix()
        .matmul(m.strategy().unwrap().matrix());
    for i in 0..12 {
        for j in 0..12 {
            let want = if i == j { 1.0 } else { 0.0 };
            assert!((kq[(i, j)] - want).abs() < 1e-12, "KQ[{i},{j}]");
        }
    }
}
