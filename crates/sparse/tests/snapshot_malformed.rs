//! Sparse snapshot robustness: exhaustive corruption of an encoded
//! `SparseCheckpoint` record must always produce a typed [`StoreError`]
//! — never a panic, never silent acceptance.
//!
//! Two sweeps pin the envelope layer (truncation at *every* byte
//! boundary, *every* single-bit flip), and a family of hand-built
//! records — valid envelopes around invalid payloads — pins each
//! payload invariant the decoder re-validates: even pair-run length,
//! strictly ascending keys, count-sum consistency, overflow, and the
//! deployment binding.

use ldp_linalg::stablehash::fnv1a64;
use ldp_sparse::{decode_sparse_checkpoint, encode_sparse_checkpoint, SparseCheckpoint};
use ldp_store::codec::{RecordKind, MAGIC, VERSION};
use ldp_store::StoreError;

fn sample() -> SparseCheckpoint {
    SparseCheckpoint {
        epoch: 7,
        batches: 41,
        binding: 0x1234_5678_9abc_def0,
        reports: 100,
        pairs: vec![(2, 30), (5, 20), (0x8000_0000_0000_0000, 50)],
    }
}

/// Builds a record with a *valid* envelope (magic, version, kind,
/// length, checksum) around an arbitrary payload, so the payload
/// validators — not the checksum — are what rejects it.
fn sealed(kind: RecordKind, payload_u64s: &[u64]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    bytes.extend_from_slice(&(kind as u16).to_le_bytes());
    bytes.extend_from_slice(&(8 * payload_u64s.len() as u64).to_le_bytes());
    for v in payload_u64s {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes.extend_from_slice(&fnv1a64(&bytes).to_le_bytes());
    bytes
}

/// Flattens header fields + a length-prefixed pair run into the payload
/// `u64` sequence `decode_sparse_checkpoint` expects.
fn payload(epoch: u64, batches: u64, binding: u64, reports: u64, flat: &[u64]) -> Vec<u64> {
    let mut p = vec![epoch, batches, binding, reports, flat.len() as u64];
    p.extend_from_slice(flat);
    p
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let cp = sample();
    let bytes = encode_sparse_checkpoint(&cp);
    assert!(decode_sparse_checkpoint(&bytes, cp.binding).is_ok());
    for cut in 0..bytes.len() {
        let err = decode_sparse_checkpoint(&bytes[..cut], cp.binding)
            .expect_err("truncated record accepted");
        // Every prefix is some typed defect — mostly Truncated, but a
        // cut inside the checksum can also surface as a mismatch.
        assert!(
            matches!(
                err,
                StoreError::Truncated { .. } | StoreError::ChecksumMismatch { .. }
            ),
            "truncation at {cut} gave unexpected error {err:?}"
        );
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error() {
    let cp = sample();
    let bytes = encode_sparse_checkpoint(&cp);
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut corrupt = bytes.clone();
            corrupt[byte] ^= 1 << bit;
            assert!(
                decode_sparse_checkpoint(&corrupt, cp.binding).is_err(),
                "bit flip at byte {byte} bit {bit} accepted"
            );
        }
    }
}

#[test]
fn envelope_defects_are_distinguished() {
    let cp = sample();

    // Wrong record kind: a perfectly valid Shard-tagged record is not a
    // sparse checkpoint.
    let wrong_kind = sealed(RecordKind::Shard, &payload(1, 1, 1, 0, &[]));
    assert!(matches!(
        decode_sparse_checkpoint(&wrong_kind, 1).unwrap_err(),
        StoreError::WrongKind { found: 1, .. }
    ));

    // Unsupported version, checksum recomputed so only the version
    // field differs.
    let mut versioned = encode_sparse_checkpoint(&cp);
    versioned[4] = 99;
    let body = versioned.len() - 8;
    let sum = fnv1a64(&versioned[..body]);
    versioned[body..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        decode_sparse_checkpoint(&versioned, cp.binding).unwrap_err(),
        StoreError::UnsupportedVersion { found: 99, .. }
    ));

    // Bad magic.
    let mut magicked = encode_sparse_checkpoint(&cp);
    magicked[0] = b'X';
    let sum = fnv1a64(&magicked[..body]);
    magicked[body..].copy_from_slice(&sum.to_le_bytes());
    assert!(matches!(
        decode_sparse_checkpoint(&magicked, cp.binding).unwrap_err(),
        StoreError::BadMagic
    ));
}

#[test]
fn payload_invariant_violations_are_malformed() {
    // Odd pair-run length: a key with no count.
    let odd = sealed(
        RecordKind::SparseCheckpoint,
        &payload(1, 1, 9, 5, &[2, 5, 7]),
    );
    assert!(matches!(
        decode_sparse_checkpoint(&odd, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // Keys out of order.
    let unsorted = sealed(
        RecordKind::SparseCheckpoint,
        &payload(1, 1, 9, 5, &[7, 2, 2, 3]),
    );
    assert!(matches!(
        decode_sparse_checkpoint(&unsorted, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // Duplicate key (strictness, not just monotonicity).
    let duplicated = sealed(
        RecordKind::SparseCheckpoint,
        &payload(1, 1, 9, 5, &[2, 2, 2, 3]),
    );
    assert!(matches!(
        decode_sparse_checkpoint(&duplicated, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // Counts disagree with the recorded total.
    let short_total = sealed(
        RecordKind::SparseCheckpoint,
        &payload(1, 1, 9, 6, &[2, 2, 7, 3]),
    );
    assert!(matches!(
        decode_sparse_checkpoint(&short_total, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // Count sum overflows u64.
    let overflowing = sealed(
        RecordKind::SparseCheckpoint,
        &payload(1, 1, 9, 0, &[2, u64::MAX, 7, u64::MAX]),
    );
    assert!(matches!(
        decode_sparse_checkpoint(&overflowing, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // A length prefix pointing past the payload is truncation, caught
    // before any allocation of the claimed size.
    let lying_len = sealed(RecordKind::SparseCheckpoint, &[1, 1, 9, 5, u64::MAX >> 3]);
    assert!(decode_sparse_checkpoint(&lying_len, 9).is_err());

    // Trailing payload bytes after a structurally complete record.
    let mut trailing = payload(1, 1, 9, 5, &[2, 5]);
    trailing.push(0xdead);
    let trailing = sealed(RecordKind::SparseCheckpoint, &trailing);
    assert!(matches!(
        decode_sparse_checkpoint(&trailing, 9).unwrap_err(),
        StoreError::Malformed(_)
    ));

    // The same bytes with the invariants intact decode fine — the
    // builders above really are minimal perturbations of a valid record.
    let valid = sealed(RecordKind::SparseCheckpoint, &payload(1, 1, 9, 5, &[2, 5]));
    let cp = decode_sparse_checkpoint(&valid, 9).unwrap();
    assert_eq!(cp.pairs, vec![(2, 5)]);
}
