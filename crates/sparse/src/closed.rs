//! Closed-domain views of the sparse oracles.
//!
//! The frequency oracles answer questions about *hashed* open domains;
//! the rest of the workspace reasons about mechanisms on closed `[n]`
//! domains through `LdpMechanism`/`Deployable`. These adapters bridge
//! the two so the oracles plug into existing comparison harnesses,
//! variance reports, and the pipeline:
//!
//! * [`ClosedOlh`] — OLH restricted to a known `[n]`: run the real
//!   protocol on the identity embedding `u ↦ key_hash(u)` and estimate
//!   every cell. `LdpMechanism` only (its per-report outputs live in a
//!   hashed space, not a fixed `m`-row strategy matrix).
//! * [`ClosedHadamard`] — the bucketed Hadamard oracle with *identity
//!   bucketing* (`u ↦ bucket u`), which for `n ≤ m` is exactly dense
//!   Hadamard response: a genuine [`Deployable`] whose strategy matrix
//!   coincides bit-for-bit with `ldp-mechanisms`' `hadamard_strategy`
//!   when the orders line up (asserted in tests).

use ldp_core::{variance, Client, DataVector, Deployable, LdpError, LdpMechanism, StrategyMatrix};
use ldp_linalg::{LinOp, Matrix};
use rand::{Rng, RngCore};

use crate::key::key_hash;
use crate::oracle::{fwht_i64, OlhOracle};

/// OLH on a closed `[n]` domain: each user of type `u` runs the real
/// open-domain protocol on the stable hash of the decimal label `u`.
///
/// The per-type variance of the cell estimator is the closed-form null
/// variance `σ² = (1/g)(1 − 1/g)/(p − 1/g)²` per report; a workload
/// with Gram matrix `G` accumulates `σ²·tr(G)` per user (cell
/// estimators are uncorrelated to leading order in the sparse regime).
#[derive(Debug, Clone)]
pub struct ClosedOlh {
    oracle: OlhOracle,
    n: usize,
    /// Precomputed key hashes of the labels `"0"`, `"1"`, ….
    hashes: Vec<u64>,
}

impl ClosedOlh {
    /// Builds the closed view for domain size `n` at budget `epsilon`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] via [`OlhOracle::new`];
    /// [`LdpError::InvalidQuery`] on an empty domain.
    pub fn new(n: usize, epsilon: f64) -> Result<Self, LdpError> {
        if n == 0 {
            return Err(LdpError::InvalidQuery(
                "closed OLH needs a non-empty domain".to_string(),
            ));
        }
        let oracle = OlhOracle::new(epsilon)?;
        let hashes = (0..n).map(|u| key_hash(&u.to_string())).collect();
        Ok(Self { oracle, n, hashes })
    }

    /// The underlying open-domain oracle.
    pub fn oracle(&self) -> &OlhOracle {
        &self.oracle
    }

    /// Per-report null variance of a single cell estimator.
    pub fn per_report_variance(&self) -> f64 {
        let g = self.oracle.g() as f64;
        let q = 1.0 / g;
        q * (1.0 - q) / (self.oracle.p() - q).powi(2)
    }
}

impl LdpMechanism for ClosedOlh {
    fn name(&self) -> String {
        "OLH".to_string()
    }

    fn epsilon(&self) -> f64 {
        self.oracle.epsilon()
    }

    fn domain_size(&self) -> usize {
        self.n
    }

    fn variance_profile(&self, gram: &dyn LinOp) -> Vec<f64> {
        vec![self.per_report_variance() * gram.trace(); self.n]
    }

    fn run(&self, data: &DataVector, rng: &mut dyn RngCore) -> Vec<f64> {
        assert_eq!(data.domain_size(), self.n);
        let mut reports: Vec<u64> = Vec::new();
        for (u, count) in data.nonzero() {
            let users = count.round() as u64;
            for _ in 0..users {
                reports.push(self.oracle.respond(self.hashes[u], rng));
            }
        }
        let total = reports.len() as u64;
        self.hashes
            .iter()
            .map(|&kh| {
                let support = reports
                    .iter()
                    .filter(|&&r| self.oracle.supports(r, kh))
                    .count() as u64;
                self.oracle.estimate(support, total)
            })
            .collect()
    }
}

/// Dense Hadamard response expressed through the sparse machinery:
/// identity bucketing (`u ↦ bucket u`, rows `1..=n` of the order-`K`
/// Sylvester–Hadamard matrix, `K = 2^(bits+1)`), estimation by the
/// same exact integer FWHT the open-domain path uses.
///
/// For `n + 1 ≤ K` this *is* Hadamard response; when
/// `K = (n+1).next_power_of_two()` the strategy matrix is bit-for-bit
/// the one `ldp_mechanisms::hadamard_strategy` builds.
#[derive(Debug, Clone)]
pub struct ClosedHadamard {
    strategy: StrategyMatrix,
    /// Closed-form reconstruction `K[u][y] = H[u+1, y]/(2p − 1)`.
    k: Matrix,
    epsilon: f64,
    p: f64,
}

impl ClosedHadamard {
    /// Builds the closed view for domain size `n` at budget `epsilon`
    /// with Hadamard order `K = 2^(bits+1)`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] on a bad ε; [`LdpError::InvalidQuery`]
    /// unless `1 ≤ n ≤ K − 1`.
    pub fn new(n: usize, epsilon: f64, bits: u32) -> Result<Self, LdpError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(LdpError::InvalidEpsilon(epsilon));
        }
        let order = 1usize << (bits + 1);
        if n == 0 || n >= order {
            return Err(LdpError::InvalidQuery(format!(
                "closed Hadamard needs 1 <= n < {order}, got {n}"
            )));
        }
        let e = epsilon.exp();
        let p = e / (e + 1.0);
        // Same float expression as the dense baseline: z = (K/2)(e^ε+1),
        // entries e^ε/z and 1/z — keeps the two strategies bit-equal.
        let z = (order as f64 / 2.0) * (e + 1.0);
        let strategy = StrategyMatrix::new(Matrix::from_fn(order, n, |y, u| {
            if sign(u + 1, y) > 0 {
                e / z
            } else {
                1.0 / z
            }
        }))?;
        let denom = 2.0 * p - 1.0;
        let k = Matrix::from_fn(n, order, |u, y| f64::from(sign(u + 1, y)) / denom);
        Ok(Self {
            strategy,
            k,
            epsilon,
            p,
        })
    }

    /// The truthful-half probability `p = e^ε/(e^ε + 1)`.
    pub fn p(&self) -> f64 {
        self.p
    }
}

/// Hadamard sign `H[r, y]` as `±1`.
fn sign(r: usize, y: usize) -> i32 {
    if (r & y).count_ones().is_multiple_of(2) {
        1
    } else {
        -1
    }
}

impl LdpMechanism for ClosedHadamard {
    fn name(&self) -> String {
        "SparseHadamard".to_string()
    }

    fn epsilon(&self) -> f64 {
        self.epsilon
    }

    fn domain_size(&self) -> usize {
        self.strategy.domain_size()
    }

    fn variance_profile(&self, gram: &dyn LinOp) -> Vec<f64> {
        variance::variance_profile(&self.strategy, &self.k, gram)
    }

    fn run(&self, data: &DataVector, rng: &mut dyn RngCore) -> Vec<f64> {
        assert_eq!(data.domain_size(), self.domain_size());
        let order = self.strategy.num_outputs();
        let mut counts = vec![0i64; order];
        for (u, count) in data.nonzero() {
            let users = count.round() as u64;
            let row = u + 1;
            let pos = row.trailing_zeros();
            let free = (order as u64 >> 1) - 1;
            let low_mask = (1u64 << pos) - 1;
            for _ in 0..users {
                // Same response construction as the open-domain oracle,
                // with the identity bucket row.
                let want_odd = u64::from(!rng.gen_bool(self.p));
                let rest = rng.next_u64() & free;
                let y = ((rest >> pos) << (pos + 1)) | (rest & low_mask);
                let parity = u64::from((row as u64 & y).count_ones()) & 1;
                let y = y | ((parity ^ want_odd) << pos);
                counts[y as usize] += 1;
            }
        }
        // x̂_u = F[u+1]/(2p − 1) via one exact integer transform.
        fwht_i64(&mut counts);
        let denom = 2.0 * self.p - 1.0;
        (0..self.domain_size())
            .map(|u| counts[u + 1] as f64 / denom)
            .collect()
    }
}

impl Deployable for ClosedHadamard {
    fn client(&self) -> Client {
        Client::new(self.strategy.clone())
    }

    fn reconstruction_matrix(&self) -> &Matrix {
        &self.k
    }

    fn num_outputs(&self) -> usize {
        self.strategy.num_outputs()
    }

    fn strategy(&self) -> Option<&StrategyMatrix> {
        Some(&self.strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn closed_hadamard_reconstruction_inverts_strategy() {
        let m = ClosedHadamard::new(7, 2.0, 2).unwrap();
        // K·Q = I exactly (rows orthogonal, closed-form derivation).
        let kq = m.k.matmul(m.strategy.matrix());
        for i in 0..7 {
            for j in 0..7 {
                let want = f64::from(u8::from(i == j));
                assert!(
                    (kq[(i, j)] - want).abs() < 1e-12,
                    "KQ[{i},{j}] = {}",
                    kq[(i, j)]
                );
            }
        }
    }

    #[test]
    fn closed_olh_run_is_unbiased() {
        let m = ClosedOlh::new(8, 2.0).unwrap();
        let data = DataVector::from_counts(vec![4000.0, 0.0, 1000.0, 0.0, 0.0, 0.0, 0.0, 500.0]);
        let mut rng = StdRng::seed_from_u64(17);
        let est = m.run(&data, &mut rng);
        let sigma = (data.total() * m.per_report_variance()).sqrt();
        for (u, &e) in est.iter().enumerate() {
            let truth = data.counts()[u];
            assert!((e - truth).abs() < 6.0 * sigma, "cell {u}: {e} vs {truth}");
        }
    }

    #[test]
    fn closed_hadamard_run_is_unbiased() {
        let m = ClosedHadamard::new(6, 1.5, 2).unwrap();
        let data = DataVector::from_counts(vec![3000.0, 0.0, 800.0, 0.0, 0.0, 200.0]);
        let mut rng = StdRng::seed_from_u64(23);
        let est = m.run(&data, &mut rng);
        let sigma = data.total().sqrt() / (2.0 * m.p() - 1.0);
        for (u, &e) in est.iter().enumerate() {
            let truth = data.counts()[u];
            assert!((e - truth).abs() < 6.0 * sigma, "cell {u}: {e} vs {truth}");
        }
    }
}
