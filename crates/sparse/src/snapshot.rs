//! LDPS records for sparse ingestion state.
//!
//! A sparse checkpoint persists one [`crate::SparseIngestor`]'s merged
//! state as a `RecordKind::SparseCheckpoint` LDPS record: header
//! fields, then the canonical strictly-key-ascending `(report, count)`
//! pairs flattened to a `u64` run. Decoding re-validates every
//! structural invariant with typed [`StoreError`]s — sortedness, total
//! consistency, and the deployment binding — so corrupt or mismatched
//! state fails loudly at resume, never silently.
//!
//! This module is on the repo's byte-stable list (L1): all iteration
//! here is over sorted slices, never hash maps.
//!
//! # Payload layout (after the LDPS header)
//!
//! ```text
//! epoch: u64 | batches: u64 | binding: u64 | reports: u64
//! len: u64 | k_0 c_0 k_1 c_1 ... (len u64s, len = 2 · distinct)
//! ```
//!
//! Invariants checked on decode: `len` even, keys strictly ascending,
//! `Σ c_i == reports`.

use ldp_store::codec::{open, Reader, Writer};
use ldp_store::{RecordKind, StoreError};

/// Cap on the flattened pair run accepted by the decoder (2^25 `u64`s
/// = 2^24 distinct reports, a 256 MiB shard) — an allocation guard
/// against corrupt length prefixes, mirroring the dense `MAX_DIM`.
const MAX_FLAT: usize = 1 << 25;

/// A decoded sparse checkpoint: the resumable state of one
/// [`crate::SparseIngestor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparseCheckpoint {
    /// Checkpoint epoch (monotone per encode).
    pub epoch: u64,
    /// Shards absorbed when the checkpoint was taken.
    pub batches: u64,
    /// Deployment binding (see `SparseDeployment::binding`).
    pub binding: u64,
    /// Total reports, redundant with the pair counts and re-validated
    /// against them on decode.
    pub reports: u64,
    /// Canonical strictly-key-ascending `(report, count)` pairs.
    pub pairs: Vec<(u64, u64)>,
}

/// Encodes a sparse checkpoint as a framed LDPS record.
///
/// # Panics
/// Panics if `pairs` is not strictly ascending or totals disagree with
/// `reports` — encoding is only reachable from canonical exports.
pub fn encode_sparse_checkpoint(cp: &SparseCheckpoint) -> Vec<u8> {
    let mut total = 0u64;
    for (i, &(k, c)) in cp.pairs.iter().enumerate() {
        if i > 0 {
            assert!(cp.pairs[i - 1].0 < k, "checkpoint pairs must be sorted");
        }
        total += c;
    }
    assert_eq!(total, cp.reports, "checkpoint totals must agree");
    let mut w = Writer::with_capacity((5 + 2 * cp.pairs.len()) * 8);
    w.put_u64(cp.epoch);
    w.put_u64(cp.batches);
    w.put_u64(cp.binding);
    w.put_u64(cp.reports);
    let mut flat = Vec::with_capacity(2 * cp.pairs.len());
    for &(k, c) in &cp.pairs {
        flat.push(k);
        flat.push(c);
    }
    w.put_u64s(&flat);
    w.seal(RecordKind::SparseCheckpoint)
}

/// Decodes and validates a sparse checkpoint record.
///
/// # Errors
/// Any framing failure from [`open`] (truncation, bad magic, version,
/// kind, checksum), [`StoreError::Malformed`] on violated payload
/// invariants, and [`StoreError::BindingMismatch`] if the record was
/// written by a different deployment than `expected_binding`.
pub fn decode_sparse_checkpoint(
    bytes: &[u8],
    expected_binding: u64,
) -> Result<SparseCheckpoint, StoreError> {
    let mut r: Reader<'_> = open(bytes, RecordKind::SparseCheckpoint)?;
    let epoch = r.get_u64()?;
    let batches = r.get_u64()?;
    let binding = r.get_u64()?;
    let reports = r.get_u64()?;
    let flat = r.get_u64s("sparse checkpoint pairs")?;
    r.finish()?;
    if flat.len() > MAX_FLAT {
        return Err(StoreError::Malformed(format!(
            "sparse checkpoint pair run of {} u64s exceeds the {MAX_FLAT} cap",
            flat.len()
        )));
    }
    if flat.len() % 2 != 0 {
        return Err(StoreError::Malformed(format!(
            "sparse checkpoint pair run has odd length {}",
            flat.len()
        )));
    }
    let mut pairs = Vec::with_capacity(flat.len() / 2);
    let mut total = 0u64;
    for chunk in flat.chunks_exact(2) {
        let (k, c) = (chunk[0], chunk[1]);
        if let Some(&(prev, _)) = pairs.last() {
            if prev >= k {
                return Err(StoreError::Malformed(format!(
                    "sparse checkpoint keys not strictly ascending ({prev:#x} then {k:#x})"
                )));
            }
        }
        total = total.checked_add(c).ok_or_else(|| {
            StoreError::Malformed("sparse checkpoint counts overflow u64".to_string())
        })?;
        pairs.push((k, c));
    }
    if total != reports {
        return Err(StoreError::Malformed(format!(
            "sparse checkpoint total {total} disagrees with recorded reports {reports}"
        )));
    }
    if binding != expected_binding {
        return Err(StoreError::BindingMismatch {
            checkpoint: binding,
            deployment: expected_binding,
        });
    }
    Ok(SparseCheckpoint {
        epoch,
        batches,
        binding,
        reports,
        pairs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SparseCheckpoint {
        SparseCheckpoint {
            epoch: 3,
            batches: 12,
            binding: 0xdead_beef_cafe_f00d,
            reports: 10,
            pairs: vec![(1, 4), (9, 1), (0xffff_ffff_ffff_fff0, 5)],
        }
    }

    #[test]
    fn round_trip() {
        let cp = sample();
        let rec = encode_sparse_checkpoint(&cp);
        let back = decode_sparse_checkpoint(&rec, cp.binding).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn binding_mismatch_is_typed() {
        let cp = sample();
        let rec = encode_sparse_checkpoint(&cp);
        match decode_sparse_checkpoint(&rec, 1).unwrap_err() {
            StoreError::BindingMismatch {
                checkpoint,
                deployment,
            } => {
                assert_eq!(checkpoint, cp.binding);
                assert_eq!(deployment, 1);
            }
            other => panic!("expected BindingMismatch, got {other:?}"),
        }
    }

    #[test]
    fn encode_is_deterministic() {
        let cp = sample();
        assert_eq!(encode_sparse_checkpoint(&cp), encode_sparse_checkpoint(&cp));
    }
}
