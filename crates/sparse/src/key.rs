//! Key hashing for open domains.
//!
//! Open-domain attributes (URLs, query strings, arbitrary identifiers)
//! are never materialized as dense `[n]` indices. Every key is reduced
//! once, at the edge, to a stable 64-bit hash via [`key_hash`]; all
//! oracle math downstream operates on that `u64`. The hash is part of
//! the persisted format (sparse checkpoints store key hashes), so it is
//! pinned by a versioned domain-separation token and must never change.

use ldp_linalg::stablehash::Fnv64;

/// Domain-separation token for [`key_hash`]. Bump the suffix only with
/// a snapshot-format migration: hashes are persisted in checkpoints.
const KEY_TOKEN: &str = "ldp-sparse-key/1";

/// The stable 64-bit hash of an open-domain key.
///
/// FNV-1a over a versioned domain-separation token and the
/// length-prefixed key bytes — deterministic across platforms, threads,
/// and kernel backends by construction (pure integer arithmetic).
///
/// ```
/// let h = ldp_sparse::key_hash("https://example.com/");
/// assert_eq!(h, ldp_sparse::key_hash("https://example.com/"));
/// assert_ne!(h, ldp_sparse::key_hash("https://example.org/"));
/// ```
pub fn key_hash(key: &str) -> u64 {
    let mut h = Fnv64::new();
    h.write_str(KEY_TOKEN);
    h.write_str(key);
    h.finish()
}

/// SplitMix64-style finalizer mixing a per-report `seed` with a key
/// hash into an independent uniform-looking `u64`.
///
/// This is the shared hash family behind both oracles: OLH derives its
/// per-report hash bucket as `mix(seed, key_hash) % g`, the sparse
/// Hadamard oracle derives its row bucket as
/// `mix(BUCKET_SEED, key_hash) & (m - 1)`. Pure integer arithmetic —
/// bit-identical everywhere.
#[inline]
#[must_use]
pub fn mix(seed: u64, h: u64) -> u64 {
    let mut z = seed ^ h.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_hash_is_stable() {
        // Pinned: these values are persisted in checkpoints, so a change
        // here is a snapshot-format migration, not a refactor.
        assert_eq!(key_hash(""), 0x48aa_1706_5f03_4538);
        assert_eq!(key_hash("url"), 0x90f3_9b79_052e_23ac);
    }

    #[test]
    fn mix_spreads_single_bit_inputs() {
        let outputs: Vec<u64> = (0..64).map(|b| mix(0, 1u64 << b)).collect();
        for (i, a) in outputs.iter().enumerate() {
            for b in &outputs[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
