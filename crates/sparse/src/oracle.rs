//! Hashing frequency oracles for open domains.
//!
//! Two complementary local protocols, both operating on 64-bit key
//! hashes (see [`crate::key_hash`]) rather than dense indices:
//!
//! * [`OlhOracle`] — Optimized Local Hashing (Wang et al.). Each report
//!   carries a fresh public hash seed plus the randomized value of the
//!   seeded hash of the user's key. Estimation scans the distinct
//!   reports per candidate key, so point queries cost
//!   `O(distinct reports)` and heavy-hitter sweeps cost
//!   `O(distinct · candidates)` — the *point-query* oracle.
//! * [`SparseHadamard`] — a bucketed Hadamard response. Keys hash into
//!   `m = 2^bits` buckets; each user randomizes one Hadamard-structured
//!   index of order `2m`. Estimation densifies the report histogram
//!   once and runs one exact integer fast Walsh–Hadamard transform,
//!   after which *every* candidate costs `O(1)` — the *bulk /
//!   heavy-hitter* oracle.
//!
//! Both estimators are exactly unbiased for their hashed targets and
//! expose closed-form per-report variance, which powers the
//! variance-aware heavy-hitter admission threshold
//! (see [`crate::SparseDeployment::heavy_hitters`]).

use ldp_core::LdpError;
use rand::{Rng, RngCore};

use crate::key::mix;

/// Upper bound on the OLH hash range `g` — the report layout packs the
/// randomized hash value into 16 bits.
const MAX_G: u64 = 1 << 16;

/// Fixed seed for the sparse Hadamard bucket hash. Public (the bucket
/// map is not a secret — privacy comes from randomizing the response),
/// and pinned: bucket assignments are implied by persisted reports.
const BUCKET_SEED: u64 = 0x5183_9faf_2f35_b8c3;

fn check_epsilon(epsilon: f64) -> Result<(), LdpError> {
    if !epsilon.is_finite() || epsilon <= 0.0 {
        return Err(LdpError::InvalidEpsilon(epsilon));
    }
    Ok(())
}

/// Optimized Local Hashing: the point-query frequency oracle.
///
/// Parameters are derived from ε alone: the hash range is
/// `g = round(e^ε + 1)` (the variance-minimizing choice), the truthful
/// report probability `p = e^ε / (e^ε + g − 1)`.
///
/// # Report layout
///
/// Each report is a single `u64`: the upper 48 bits are the per-report
/// public hash seed, the lower 16 bits the randomized hash value
/// `y ∈ [g]`. `g ≤ 2^16` always holds (ε ≥ 11 would be needed to
/// exceed it, and `g` is clamped there).
///
/// ```
/// use rand::SeedableRng;
/// let olh = ldp_sparse::OlhOracle::new(2.0).unwrap();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(7);
/// let kh = ldp_sparse::key_hash("example.com");
/// let report = olh.respond(kh, &mut rng);
/// assert!(olh.validate_report(report));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OlhOracle {
    epsilon: f64,
    /// Hash range `g ∈ [2, 2^16]`.
    g: u64,
    /// Truthful-report probability `p = e^ε / (e^ε + g − 1)`.
    p: f64,
}

impl OlhOracle {
    /// Builds the oracle for privacy budget `epsilon`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] unless `epsilon` is finite and
    /// positive.
    pub fn new(epsilon: f64) -> Result<Self, LdpError> {
        check_epsilon(epsilon)?;
        let g = (epsilon.exp() + 1.0).round().clamp(2.0, MAX_G as f64) as u64;
        let p = epsilon.exp() / (epsilon.exp() + g as f64 - 1.0);
        Ok(Self { epsilon, g, p })
    }

    /// The privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The hash range `g = round(e^ε + 1)`, clamped to `[2, 2^16]`.
    pub fn g(&self) -> u64 {
        self.g
    }

    /// The truthful-report probability `p = e^ε / (e^ε + g − 1)`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Randomizes one user's key hash into a report.
    ///
    /// Draws a fresh 48-bit seed, hashes the key into `h ∈ [g]`, then
    /// reports `h` with probability `p` and a uniform *other* value of
    /// `[g]` otherwise.
    pub fn respond(&self, key_hash: u64, rng: &mut dyn RngCore) -> u64 {
        let seed = rng.next_u64() >> 16;
        let h = mix(seed, key_hash) % self.g;
        let y = if rng.gen_bool(self.p) {
            h
        } else {
            // Uniform over the g − 1 values ≠ h.
            let r = rng.gen_range(0..self.g - 1);
            if r < h {
                r
            } else {
                r + 1
            }
        };
        (seed << 16) | y
    }

    /// Whether a report's randomized value is in range (`y < g`).
    /// The seed field is unconstrained by construction.
    pub fn validate_report(&self, report: u64) -> bool {
        (report & 0xffff) < self.g
    }

    /// Whether `report` supports candidate `key_hash`: the report's
    /// seeded hash of the candidate equals the reported value.
    pub fn supports(&self, report: u64, key_hash: u64) -> bool {
        let seed = report >> 16;
        let y = report & 0xffff;
        mix(seed, key_hash) % self.g == y
    }

    /// Unbiased count estimate from `support` (number of reports,
    /// counted with multiplicity, that support the candidate) out of
    /// `total` reports: `(C − N/g) / (p − 1/g)`.
    pub fn estimate(&self, support: u64, total: u64) -> f64 {
        let g = self.g as f64;
        (support as f64 - total as f64 / g) / (self.p - 1.0 / g)
    }

    /// Standard deviation of [`OlhOracle::estimate`] for a key held by
    /// no user (the null distribution): each of the `total` reports
    /// supports a non-held candidate with probability `1/g`, so
    /// `σ = sqrt(N · (1/g)(1 − 1/g)) / (p − 1/g)`.
    pub fn stddev(&self, total: u64) -> f64 {
        let g = self.g as f64;
        (total as f64 * (1.0 / g) * (1.0 - 1.0 / g)).sqrt() / (self.p - 1.0 / g)
    }
}

/// Bucketed Hadamard response: the bulk / heavy-hitter frequency
/// oracle.
///
/// Keys hash into `m = 2^bits` buckets via the fixed public bucket
/// hash; bucket `b` is associated with Hadamard row `b + 1` of the
/// Sylvester–Hadamard matrix of order `K = 2m` (row 0 is the all-ones
/// row and carries no information). A user in bucket `b` reports an
/// index `y ∈ [K]` drawn uniformly from the half of `[K]` where
/// `H[b + 1, y] = +1` with probability `p = e^ε/(e^ε + 1)`, else
/// uniformly from the `−1` half.
///
/// Estimation densifies the report histogram to a length-`K` integer
/// vector, applies one exact integer Walsh–Hadamard transform
/// ([`fwht_i64`]), and reads off `x̂_b = F[b + 1] / (2p − 1)` — an
/// unbiased estimate of the number of users in bucket `b`, with null
/// standard deviation `sqrt(N) / (2p − 1)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseHadamard {
    epsilon: f64,
    /// Bucket-count exponent: `m = 2^bits`.
    bits: u32,
    /// Truthful-half probability `p = e^ε / (e^ε + 1)`.
    p: f64,
}

impl SparseHadamard {
    /// Largest supported bucket exponent (`m = 2^26` buckets ⇒ a 1 GiB
    /// dense transform buffer; practical deployments sit well below).
    pub const MAX_BITS: u32 = 26;

    /// Builds the oracle with `2^bits` buckets at budget `epsilon`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] unless `epsilon` is finite and
    /// positive; [`LdpError::InvalidQuery`] unless
    /// `1 ≤ bits ≤ MAX_BITS`.
    pub fn new(epsilon: f64, bits: u32) -> Result<Self, LdpError> {
        check_epsilon(epsilon)?;
        if bits == 0 || bits > Self::MAX_BITS {
            return Err(LdpError::InvalidQuery(format!(
                "sparse Hadamard bucket bits must be in 1..={}, got {bits}",
                Self::MAX_BITS
            )));
        }
        let p = epsilon.exp() / (epsilon.exp() + 1.0);
        Ok(Self { epsilon, bits, p })
    }

    /// The privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// The bucket-count exponent (`m = 2^bits`).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The number of buckets `m = 2^bits`.
    pub fn buckets(&self) -> u64 {
        1u64 << self.bits
    }

    /// The Hadamard order `K = 2m` — reports are indices in `[K]`.
    pub fn order(&self) -> u64 {
        1u64 << (self.bits + 1)
    }

    /// The truthful-half probability `p = e^ε / (e^ε + 1)`.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// The bucket of a key hash: `mix(BUCKET_SEED, kh) mod m`.
    pub fn bucket_of(&self, key_hash: u64) -> u64 {
        mix(BUCKET_SEED, key_hash) & (self.buckets() - 1)
    }

    /// Randomizes one user's key hash into a report index `y ∈ [K]`.
    ///
    /// Chooses the `+1` half of the user's Hadamard row with
    /// probability `p`, then draws uniformly within the chosen half by
    /// filling every index bit except the row's lowest set bit at
    /// random and forcing that bit to land on the wanted sign.
    pub fn respond(&self, key_hash: u64, rng: &mut dyn RngCore) -> u64 {
        let row = self.bucket_of(key_hash) + 1;
        let want_odd_parity = u64::from(!rng.gen_bool(self.p));
        // Insert a hole at the row's lowest set bit: `rest` supplies the
        // other `bits` free bits of y.
        let pos = row.trailing_zeros();
        let rest = rng.next_u64() & (self.buckets() - 1);
        let low_mask = (1u64 << pos) - 1;
        let y = ((rest >> pos) << (pos + 1)) | (rest & low_mask);
        let parity = u64::from((row & y).count_ones()) & 1;
        y | ((parity ^ want_odd_parity) << pos)
    }

    /// Whether a report index is in range (`y < K`).
    pub fn validate_report(&self, report: u64) -> bool {
        report < self.order()
    }

    /// The Hadamard sign `H[bucket + 1, y] ∈ {−1, +1}` as an integer.
    pub fn sign(&self, bucket: u64, y: u64) -> i64 {
        if ((bucket + 1) & y).count_ones() & 1 == 0 {
            1
        } else {
            -1
        }
    }

    /// Densifies sorted `(report, count)` pairs into the length-`K`
    /// signed histogram and applies the exact integer transform. Entry
    /// `row` of the result, divided by `(2p − 1)`, is the unbiased
    /// count estimate for the bucket `row − 1`.
    ///
    /// # Panics
    /// Panics if any report index is out of range (counts are validated
    /// on ingest, so this indicates state corruption, not bad input).
    pub fn transform(&self, pairs: &[(u64, u64)]) -> Vec<i64> {
        let k = self.order() as usize;
        let mut dense = vec![0i64; k];
        for &(y, c) in pairs {
            assert!(
                self.validate_report(y),
                "report index {y} out of range [{k})"
            );
            dense[y as usize] += c as i64;
        }
        fwht_i64(&mut dense);
        dense
    }

    /// Unbiased count estimate for `key_hash` from a transformed
    /// histogram (the output of [`SparseHadamard::transform`]).
    pub fn estimate_from_transform(&self, transformed: &[i64], key_hash: u64) -> f64 {
        let row = (self.bucket_of(key_hash) + 1) as usize;
        transformed[row] as f64 / (2.0 * self.p - 1.0)
    }

    /// Unbiased count estimate for `key_hash` directly from sorted
    /// `(report, count)` pairs — `O(distinct)` per candidate, no dense
    /// buffer. Used by the point-query path.
    pub fn estimate(&self, pairs: &[(u64, u64)], key_hash: u64) -> f64 {
        let bucket = self.bucket_of(key_hash);
        let mut acc: i64 = 0;
        for &(y, c) in pairs {
            acc += self.sign(bucket, y) * (c as i64);
        }
        acc as f64 / (2.0 * self.p - 1.0)
    }

    /// Null standard deviation of the count estimate:
    /// `sqrt(N) / (2p − 1)` for `N = total` reports (each report
    /// contributes a ±1 sign of variance ≤ 1 to the numerator).
    pub fn stddev(&self, total: u64) -> f64 {
        (total as f64).sqrt() / (2.0 * self.p - 1.0)
    }
}

/// In-place exact integer fast Walsh–Hadamard transform.
///
/// After the call, `data[r] = Σ_y (−1)^{popcount(r & y)} · input[y]`.
/// All arithmetic is `i64` addition/subtraction — bit-identical across
/// threads and kernel backends by construction, which is what makes
/// heavy-hitter output deterministic without touching the float
/// kernels.
///
/// # Panics
/// Panics unless `data.len()` is a power of two.
pub fn fwht_i64(data: &mut [i64]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "FWHT length must be a power of two");
    let mut h = 1;
    while h < n {
        for chunk in data.chunks_exact_mut(2 * h) {
            let (left, right) = chunk.split_at_mut(h);
            for (a, b) in left.iter_mut().zip(right.iter_mut()) {
                let (x, y) = (*a, *b);
                *a = x + y;
                *b = x - y;
            }
        }
        h *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn olh_rejects_bad_epsilon() {
        assert!(OlhOracle::new(0.0).is_err());
        assert!(OlhOracle::new(-1.0).is_err());
        assert!(OlhOracle::new(f64::NAN).is_err());
        assert!(OlhOracle::new(f64::INFINITY).is_err());
    }

    #[test]
    fn olh_parameters_match_closed_form() {
        let olh = OlhOracle::new(2.0).unwrap();
        // e^2 ≈ 7.389 → g = 8, p = e^2 / (e^2 + 7).
        assert_eq!(olh.g(), 8);
        let e = 2.0f64.exp();
        assert!((olh.p() - e / (e + 7.0)).abs() < 1e-15);
        // Tiny ε clamps at g = 2; huge ε clamps at 2^16.
        assert_eq!(OlhOracle::new(1e-6).unwrap().g(), 2);
        assert_eq!(OlhOracle::new(64.0).unwrap().g(), 1 << 16);
    }

    #[test]
    fn olh_estimator_is_unbiased() {
        let olh = OlhOracle::new(1.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let held = crate::key_hash("held");
        let absent = crate::key_hash("absent");
        let n = 40_000u64;
        let mut support_held = 0u64;
        let mut support_absent = 0u64;
        for _ in 0..n {
            let r = olh.respond(held, &mut rng);
            assert!(olh.validate_report(r));
            // Truthful branch must always support the true key.
            support_held += u64::from(olh.supports(r, held));
            support_absent += u64::from(olh.supports(r, absent));
        }
        let est_held = olh.estimate(support_held, n);
        let est_absent = olh.estimate(support_absent, n);
        let tol = 6.0 * olh.stddev(n);
        assert!((est_held - n as f64).abs() < tol, "held: {est_held}");
        assert!(est_absent.abs() < tol, "absent: {est_absent}");
    }

    #[test]
    fn hadamard_respond_hits_wanted_half() {
        let oracle = SparseHadamard::new(2.0, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let kh = crate::key_hash("k");
        let bucket = oracle.bucket_of(kh);
        let n = 20_000;
        let mut plus = 0i64;
        for _ in 0..n {
            let y = oracle.respond(kh, &mut rng);
            assert!(oracle.validate_report(y));
            plus += i64::from(oracle.sign(bucket, y) > 0);
        }
        let frac = plus as f64 / n as f64;
        assert!((frac - oracle.p()).abs() < 0.01, "+1 fraction {frac}");
    }

    #[test]
    fn hadamard_transform_agrees_with_direct_estimate() {
        let oracle = SparseHadamard::new(1.5, 6).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let keys: Vec<u64> = (0..40).map(|i| crate::key_hash(&format!("k{i}"))).collect();
        let mut counts = std::collections::BTreeMap::new();
        for (i, &kh) in keys.iter().enumerate() {
            for _ in 0..=(i % 7) {
                *counts.entry(oracle.respond(kh, &mut rng)).or_insert(0u64) += 1;
            }
        }
        let pairs: Vec<(u64, u64)> = counts.into_iter().collect();
        let transformed = oracle.transform(&pairs);
        for &kh in &keys {
            let bulk = oracle.estimate_from_transform(&transformed, kh);
            let direct = oracle.estimate(&pairs, kh);
            assert_eq!(bulk.to_bits(), direct.to_bits());
        }
    }

    #[test]
    fn fwht_matches_naive_hadamard() {
        let input: Vec<i64> = vec![3, -1, 4, 1, -5, 9, 2, 6];
        let mut fast = input.clone();
        fwht_i64(&mut fast);
        for (r, &f) in fast.iter().enumerate() {
            let naive: i64 = input
                .iter()
                .enumerate()
                .map(|(y, &v)| if (r & y).count_ones() % 2 == 0 { v } else { -v })
                .sum();
            assert_eq!(f, naive, "row {r}");
        }
    }

    #[test]
    fn fwht_involution_up_to_scale() {
        let input: Vec<i64> = (0..16).map(|i| (i * i) as i64 - 40).collect();
        let mut twice = input.clone();
        fwht_i64(&mut twice);
        fwht_i64(&mut twice);
        for (a, b) in input.iter().zip(&twice) {
            assert_eq!(a * 16, *b);
        }
    }
}
