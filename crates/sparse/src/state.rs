//! Sparse sharded aggregation state.
//!
//! A [`SparseShard`] counts raw LDP reports in a hash map keyed by the
//! `u64` report value — the natural structure for ingest, where report
//! order is arbitrary and per-connection shards fill independently. The
//! map is *internal only*: every path that persists, fingerprints, or
//! estimates goes through [`SparseShard::to_sorted`], which exports the
//! canonical strictly-key-ascending `(report, count)` pairs. That
//! canonicalization is what makes N shards merged in any order
//! byte-equal to one shard, at any `LDP_THREADS` × kernel backend:
//! counts are exact `u64`s and integer addition is associative and
//! commutative.

use std::collections::HashMap;

/// One ingestion shard: exact `u64` multiplicities of raw reports.
///
/// ```
/// let mut a = ldp_sparse::SparseShard::new();
/// let mut b = ldp_sparse::SparseShard::new();
/// a.absorb(7);
/// b.absorb(7);
/// b.absorb(3);
/// a.merge_from(&mut b);
/// assert_eq!(a.to_sorted(), vec![(3, 1), (7, 2)]);
/// assert_eq!(a.reports(), 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SparseShard {
    counts: HashMap<u64, u64>,
    reports: u64,
}

impl SparseShard {
    /// An empty shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds a shard from canonical sorted pairs (checkpoint resume).
    ///
    /// # Panics
    /// Panics if total count overflows `u64` — a corrupt input; decoded
    /// checkpoints validate totals before reaching here.
    pub fn from_sorted(pairs: &[(u64, u64)]) -> Self {
        let mut counts = HashMap::with_capacity(pairs.len());
        let mut reports = 0u64;
        for &(report, count) in pairs {
            counts.insert(report, count);
            assert!(
                u64::MAX - reports >= count,
                "sparse shard report total overflowed u64"
            );
            reports += count;
        }
        Self { counts, reports }
    }

    /// Counts one report.
    pub fn absorb(&mut self, report: u64) {
        *self.counts.entry(report).or_insert(0) += 1;
        self.reports += 1;
    }

    /// Counts a batch of reports.
    pub fn absorb_batch(&mut self, reports: &[u64]) {
        for &r in reports {
            self.absorb(r);
        }
    }

    /// Folds `other` into `self`, leaving `other` empty. Exact integer
    /// merge — any merge order and grouping yields identical state.
    pub fn merge_from(&mut self, other: &mut SparseShard) {
        for (report, count) in other.counts.drain() {
            *self.counts.entry(report).or_insert(0) += count;
        }
        self.reports += other.reports;
        other.reports = 0;
    }

    /// Total reports counted (with multiplicity).
    pub fn reports(&self) -> u64 {
        self.reports
    }

    /// Number of distinct report values.
    pub fn distinct(&self) -> usize {
        self.counts.len()
    }

    /// Whether no reports have been counted.
    pub fn is_empty(&self) -> bool {
        self.reports == 0
    }

    /// The canonical export: `(report, count)` pairs sorted strictly
    /// ascending by report. Every persisted, fingerprinted, or
    /// estimated view of a shard goes through this.
    // Unordered iteration is safe here and only here: the sort on the
    // next line restores the canonical order before anything can
    // observe allocator state.
    #[allow(clippy::disallowed_methods)]
    pub fn to_sorted(&self) -> Vec<(u64, u64)> {
        let mut pairs: Vec<(u64, u64)> = self.counts.iter().map(|(&k, &v)| (k, v)).collect();
        pairs.sort_unstable();
        pairs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_any_grouping_is_canonical() {
        let reports: Vec<u64> = (0..1000).map(|i| (i * i) % 97).collect();
        let mut single = SparseShard::new();
        single.absorb_batch(&reports);

        for shards in [2usize, 3, 7] {
            let mut parts: Vec<SparseShard> = (0..shards).map(|_| SparseShard::new()).collect();
            for (i, &r) in reports.iter().enumerate() {
                parts[i % shards].absorb(r);
            }
            // Fold right-to-left to exercise a non-trivial merge order.
            let mut merged = SparseShard::new();
            for part in parts.iter_mut().rev() {
                merged.merge_from(part);
            }
            assert_eq!(merged.to_sorted(), single.to_sorted());
            assert_eq!(merged.reports(), single.reports());
        }
    }

    #[test]
    fn from_sorted_round_trips() {
        let mut shard = SparseShard::new();
        shard.absorb_batch(&[5, 5, 1, 9, 5]);
        let pairs = shard.to_sorted();
        let rebuilt = SparseShard::from_sorted(&pairs);
        assert_eq!(rebuilt.to_sorted(), pairs);
        assert_eq!(rebuilt.reports(), 5);
        assert_eq!(rebuilt.distinct(), 3);
    }
}
