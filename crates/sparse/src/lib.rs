//! Open-domain LDP: hashing frequency oracles, sparse sharded
//! aggregation, and top-k heavy hitters.
//!
//! Dense workloads materialize a data vector over a closed `[n]`
//! domain; real telemetry attributes (URLs, query strings, arbitrary
//! identifiers) live in domains far too large for that. This crate
//! serves them without ever densifying:
//!
//! * [`key_hash`] reduces every key to a stable 64-bit hash at the
//!   edge; all math downstream is on hashes.
//! * [`OlhOracle`] (Optimized Local Hashing) and [`SparseHadamard`]
//!   (bucketed Hadamard response) randomize one report per user with
//!   exact unbiased estimators and closed-form per-report variance —
//!   OLH for point queries, Hadamard for bulk heavy-hitter sweeps.
//! * [`SparseShard`] counts raw reports with exact `u64` multiplicity;
//!   any number of shards merged in any order export byte-identical
//!   canonical sorted pairs, at any `LDP_THREADS` × kernel backend.
//! * [`SparseDeployment`] binds an attribute to an oracle and answers
//!   point queries and variance-aware top-k heavy hitters
//!   (admit only when the estimate clears `z·σ`; deterministic
//!   total-order tie-breaking).
//! * [`encode_sparse_checkpoint`] / [`decode_sparse_checkpoint`]
//!   persist ingestion state as FNV-checksummed LDPS records with
//!   typed decode errors, powering `ldp-served`'s checkpoint and
//!   kill-9 resume for open-domain deployments.
//! * [`ClosedOlh`] / [`ClosedHadamard`] re-express the oracles on
//!   closed domains behind `LdpMechanism`/`Deployable`, so they slot
//!   into the workspace's comparison and pipeline machinery (closed
//!   Hadamard coincides bit-for-bit with the dense baseline).
//!
//! # Quickstart
//!
//! ```
//! use rand::SeedableRng;
//! use ldp_sparse::{key_hash, SparseDeployment, SparseShard};
//!
//! let dep = SparseDeployment::hadamard("url", 2.0, 12).unwrap();
//! let client = dep.client();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//!
//! // Users randomize locally; shards fill independently.
//! let mut shard = SparseShard::new();
//! for _ in 0..5000 {
//!     shard.absorb(client.respond("https://hot.example/", &mut rng));
//! }
//! for i in 0..1000 {
//!     shard.absorb(client.respond(&format!("https://cold{i}.example/"), &mut rng));
//! }
//!
//! let mut ingestor = dep.ingestor();
//! ingestor.absorb_shard(&mut shard);
//!
//! // Top-k heavy hitters over a candidate set, 4σ admission.
//! let candidates: Vec<u64> = [key_hash("https://hot.example/"), key_hash("https://cold3.example/")].to_vec();
//! let pairs = ingestor.pairs().to_vec();
//! let hits = dep.heavy_hitters(&pairs, &candidates, 10, 4.0);
//! assert_eq!(hits.len(), 1);
//! assert_eq!(hits[0].key_hash, key_hash("https://hot.example/"));
//! ```

mod closed;
mod deployment;
mod fingerprint;
mod key;
mod oracle;
mod snapshot;
mod state;

pub use closed::{ClosedHadamard, ClosedOlh};
pub use deployment::{HeavyHitter, SparseClient, SparseDeployment, SparseIngestor, SparseOracle};
pub use fingerprint::sparse_fingerprint;
pub use key::{key_hash, mix};
pub use oracle::{fwht_i64, OlhOracle, SparseHadamard};
pub use snapshot::{decode_sparse_checkpoint, encode_sparse_checkpoint, SparseCheckpoint};
pub use state::SparseShard;
