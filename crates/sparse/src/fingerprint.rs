//! Stable fingerprints for sparse deployments.
//!
//! Like workload fingerprints, a sparse deployment fingerprint keys
//! caches and binds persisted state, so it must be identical across
//! platforms, thread counts, and kernel backends. The hash covers the
//! oracle identity and parameters plus a deterministic *protocol
//! probe*: a short fixed-seed run of the actual response path, so any
//! behavioural drift in the oracle (a changed mix constant, a reordered
//! RNG draw) re-keys the fingerprint instead of silently corrupting
//! cross-version state.
//!
//! This module is on the repo's byte-stable list (L1): no hash-map
//! iteration, and the probe runs under `with_scalar_serial` like every
//! other fingerprint in the workspace, pinning the execution context
//! even though the probe itself is pure integer arithmetic.

use ldp_linalg::kernels::with_scalar_serial;
use ldp_linalg::stablehash::Fnv64;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::deployment::{SparseDeployment, SparseOracle};

/// Domain-separation token; bump the suffix on any layout change.
const FP_TOKEN: &str = "ldp-sparse-fingerprint/1";

/// Number of probe responses folded into the fingerprint.
const PROBE_REPORTS: u64 = 16;

/// The stable fingerprint of a sparse deployment.
pub fn sparse_fingerprint(deployment: &SparseDeployment) -> u64 {
    with_scalar_serial(|| {
        let mut h = Fnv64::new();
        h.write_str(FP_TOKEN);
        h.write_str(deployment.attribute());
        h.write_str(deployment.oracle().name());
        h.write_f64(deployment.oracle().epsilon());
        match deployment.oracle() {
            SparseOracle::Olh(o) => {
                h.write_u64(o.g());
                h.write_f64(o.p());
            }
            SparseOracle::Hadamard(o) => {
                h.write_u64(u64::from(o.bits()));
                h.write_f64(o.p());
            }
        }
        // Protocol probe: fixed-seed responses to a fixed key schedule.
        let client = deployment.client();
        let mut rng = StdRng::seed_from_u64(0x1d75_eed0_15ba_5eed);
        for i in 0..PROBE_REPORTS {
            let report = client.respond_hashed(crate::key::mix(FP_PROBE_SEED, i), &mut rng);
            h.write_u64(report);
        }
        h.finish()
    })
}

/// Fixed seed for the probe key schedule.
const FP_PROBE_SEED: u64 = 0x9a0b_7e5c_3d21_4f68;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprints_separate_deployments() {
        let fps = [
            sparse_fingerprint(&SparseDeployment::olh("url", 2.0).unwrap()),
            sparse_fingerprint(&SparseDeployment::olh("url", 1.0).unwrap()),
            sparse_fingerprint(&SparseDeployment::olh("ip", 2.0).unwrap()),
            sparse_fingerprint(&SparseDeployment::hadamard("url", 2.0, 8).unwrap()),
            sparse_fingerprint(&SparseDeployment::hadamard("url", 2.0, 9).unwrap()),
        ];
        for (i, a) in fps.iter().enumerate() {
            for b in &fps[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn fingerprint_is_reproducible() {
        let d = SparseDeployment::hadamard("url", 2.0, 12).unwrap();
        assert_eq!(sparse_fingerprint(&d), sparse_fingerprint(&d));
    }
}
