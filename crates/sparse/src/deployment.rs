//! Open-domain deployments: oracle + attribute + estimation surface.
//!
//! A [`SparseDeployment`] binds one open-domain attribute (say `url`)
//! to one frequency oracle and owns the full estimation surface: point
//! queries, variance-aware top-k heavy hitters, and the checkpoint
//! binding that ties persisted shards to the deployment that produced
//! them. [`SparseClient`] is the cheap-to-clone user-side half;
//! [`SparseIngestor`] the server-side accumulator with checkpoint /
//! resume hooks mirroring the dense `Aggregator`.

use ldp_core::LdpError;
use ldp_linalg::stablehash::Fnv64;
use rand::RngCore;

use crate::key::key_hash;
use crate::oracle::{OlhOracle, SparseHadamard};
use crate::state::SparseShard;

/// Domain-separation token for [`SparseDeployment::binding`].
const BINDING_TOKEN: &str = "ldp-sparse-binding/1";

/// The frequency oracle behind a sparse deployment.
///
/// An enum rather than a trait object so deployments stay `Copy`-cheap,
/// comparable, and trivially encodable in checkpoints and wire frames.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SparseOracle {
    /// Optimized Local Hashing — the point-query oracle
    /// (`O(distinct)` per candidate; no dense state ever).
    Olh(OlhOracle),
    /// Bucketed Hadamard response — the bulk oracle (one integer FWHT,
    /// then `O(1)` per candidate).
    Hadamard(SparseHadamard),
}

impl SparseOracle {
    /// The privacy budget ε.
    pub fn epsilon(&self) -> f64 {
        match self {
            SparseOracle::Olh(o) => o.epsilon(),
            SparseOracle::Hadamard(o) => o.epsilon(),
        }
    }

    /// Short protocol name (`"olh"` / `"hadamard"`).
    pub fn name(&self) -> &'static str {
        match self {
            SparseOracle::Olh(_) => "olh",
            SparseOracle::Hadamard(_) => "hadamard",
        }
    }

    /// Whether a raw report is well-formed for this oracle.
    pub fn validate_report(&self, report: u64) -> bool {
        match self {
            SparseOracle::Olh(o) => o.validate_report(report),
            SparseOracle::Hadamard(o) => o.validate_report(report),
        }
    }

    /// Randomizes one user's key hash into a report.
    pub fn respond(&self, key_hash: u64, rng: &mut dyn RngCore) -> u64 {
        match self {
            SparseOracle::Olh(o) => o.respond(key_hash, rng),
            SparseOracle::Hadamard(o) => o.respond(key_hash, rng),
        }
    }

    /// Null standard deviation of a count estimate over `total` reports.
    pub fn stddev(&self, total: u64) -> f64 {
        match self {
            SparseOracle::Olh(o) => o.stddev(total),
            SparseOracle::Hadamard(o) => o.stddev(total),
        }
    }
}

/// One admitted heavy hitter: a candidate whose estimate cleared the
/// `z·σ` admission threshold.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeavyHitter {
    /// The candidate's key hash (see [`crate::key_hash`]).
    pub key_hash: u64,
    /// Unbiased count estimate.
    pub estimate: f64,
    /// Null standard deviation of the estimate at the observed report
    /// count — the admission threshold is `z · stddev`.
    pub stddev: f64,
}

/// An open-domain deployment: one attribute, one oracle.
///
/// ```
/// use rand::SeedableRng;
/// let dep = ldp_sparse::SparseDeployment::olh("url", 2.0).unwrap();
/// let client = dep.client();
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let mut ingestor = dep.ingestor();
/// let mut shard = ldp_sparse::SparseShard::new();
/// for _ in 0..500 {
///     shard.absorb(client.respond("https://example.com/", &mut rng));
/// }
/// ingestor.absorb_shard(&mut shard);
/// let est = dep.point(ingestor.pairs(), ldp_sparse::key_hash("https://example.com/"));
/// assert!((est - 500.0).abs() < 6.0 * dep.oracle().stddev(500));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseDeployment {
    attribute: String,
    oracle: SparseOracle,
}

impl SparseDeployment {
    /// An OLH deployment for `attribute` at budget `epsilon`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] on a non-finite or non-positive ε.
    pub fn olh(attribute: impl Into<String>, epsilon: f64) -> Result<Self, LdpError> {
        Ok(Self {
            attribute: attribute.into(),
            oracle: SparseOracle::Olh(OlhOracle::new(epsilon)?),
        })
    }

    /// A sparse-Hadamard deployment with `2^bits` buckets at `epsilon`.
    ///
    /// # Errors
    /// [`LdpError::InvalidEpsilon`] / [`LdpError::InvalidQuery`] on bad
    /// parameters (see [`SparseHadamard::new`]).
    pub fn hadamard(
        attribute: impl Into<String>,
        epsilon: f64,
        bits: u32,
    ) -> Result<Self, LdpError> {
        Ok(Self {
            attribute: attribute.into(),
            oracle: SparseOracle::Hadamard(SparseHadamard::new(epsilon, bits)?),
        })
    }

    /// The open-domain attribute this deployment serves.
    pub fn attribute(&self) -> &str {
        &self.attribute
    }

    /// The underlying oracle.
    pub fn oracle(&self) -> &SparseOracle {
        &self.oracle
    }

    /// The deployment binding: a stable hash of attribute + oracle
    /// identity + parameters. Checkpoints record it so state from a
    /// different attribute, protocol, ε, or bucket layout is rejected
    /// at resume with a typed error instead of silently mis-decoded.
    pub fn binding(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str(BINDING_TOKEN);
        h.write_str(&self.attribute);
        h.write_str(self.oracle.name());
        h.write_f64(self.oracle.epsilon());
        match &self.oracle {
            SparseOracle::Olh(o) => {
                h.write_u64(o.g());
            }
            SparseOracle::Hadamard(o) => {
                h.write_u64(u64::from(o.bits()));
            }
        }
        h.finish()
    }

    /// The user-side half: hashes keys and randomizes reports.
    pub fn client(&self) -> SparseClient {
        SparseClient {
            oracle: self.oracle,
        }
    }

    /// A fresh server-side accumulator bound to this deployment.
    pub fn ingestor(&self) -> SparseIngestor {
        SparseIngestor {
            binding: self.binding(),
            merged: SparseShard::new(),
            pairs: Vec::new(),
            epoch: 0,
            batches: 0,
        }
    }

    /// Unbiased point estimate of the count of `key_hash` from
    /// canonical sorted pairs. `O(distinct)` for both oracles.
    pub fn point(&self, pairs: &[(u64, u64)], key_hash: u64) -> f64 {
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        match &self.oracle {
            SparseOracle::Olh(o) => {
                let support: u64 = pairs
                    .iter()
                    .filter(|&&(r, _)| o.supports(r, key_hash))
                    .map(|&(_, c)| c)
                    .sum();
                o.estimate(support, total)
            }
            SparseOracle::Hadamard(o) => o.estimate(pairs, key_hash),
        }
    }

    /// Variance-aware top-k heavy hitters over an explicit candidate
    /// set.
    ///
    /// Estimates every candidate, admits only those clearing the
    /// `z · stddev` null threshold (bounding false positives to the
    /// chosen z-score), orders by estimate descending with key-hash
    /// ascending as the deterministic tie-break, and returns at most
    /// `k`. Duplicate candidates are deduplicated.
    ///
    /// Cost: Hadamard runs one integer FWHT then `O(1)` per candidate;
    /// OLH scans distinct reports per candidate — fine for focused
    /// candidate sets, quadratic-feeling for huge ones (the README
    /// spells out the trade).
    pub fn heavy_hitters(
        &self,
        pairs: &[(u64, u64)],
        candidates: &[u64],
        k: usize,
        z: f64,
    ) -> Vec<HeavyHitter> {
        let total: u64 = pairs.iter().map(|&(_, c)| c).sum();
        if total == 0 {
            // No evidence yet — an empty state admits nothing (otherwise
            // every candidate would tie at estimate 0 ≥ z·0).
            return Vec::new();
        }
        let stddev = self.oracle.stddev(total);
        let threshold = z * stddev;
        let mut sorted_candidates = candidates.to_vec();
        sorted_candidates.sort_unstable();
        sorted_candidates.dedup();

        let mut admitted: Vec<HeavyHitter> = match &self.oracle {
            SparseOracle::Hadamard(o) => {
                let transformed = o.transform(pairs);
                sorted_candidates
                    .iter()
                    .map(|&kh| (kh, o.estimate_from_transform(&transformed, kh)))
                    .filter(|&(_, est)| est >= threshold)
                    .map(|(key_hash, estimate)| HeavyHitter {
                        key_hash,
                        estimate,
                        stddev,
                    })
                    .collect()
            }
            SparseOracle::Olh(_) => sorted_candidates
                .iter()
                .map(|&kh| (kh, self.point(pairs, kh)))
                .filter(|&(_, est)| est >= threshold)
                .map(|(key_hash, estimate)| HeavyHitter {
                    key_hash,
                    estimate,
                    stddev,
                })
                .collect(),
        };
        // Deterministic total order: estimate descending (estimates are
        // finite: ratios of integers by nonzero constants), key hash
        // ascending on exact ties.
        admitted.sort_unstable_by(|a, b| {
            b.estimate
                .total_cmp(&a.estimate)
                .then_with(|| a.key_hash.cmp(&b.key_hash))
        });
        admitted.truncate(k);
        admitted
    }
}

/// The user-side half of a sparse deployment: hash the key, randomize
/// one report. `Copy`-cheap; hand one to every producer thread.
#[derive(Debug, Clone, Copy)]
pub struct SparseClient {
    oracle: SparseOracle,
}

impl SparseClient {
    /// Randomizes one user's key into a report.
    pub fn respond(&self, key: &str, rng: &mut dyn RngCore) -> u64 {
        self.oracle.respond(key_hash(key), rng)
    }

    /// Randomizes a pre-hashed key (producers that hash once and fan
    /// out, and the serve path, which moves hashes over the wire).
    pub fn respond_hashed(&self, key_hash: u64, rng: &mut dyn RngCore) -> u64 {
        self.oracle.respond(key_hash, rng)
    }
}

/// Server-side accumulator for one sparse deployment: merged canonical
/// state plus checkpoint bookkeeping (epoch, batches, binding),
/// mirroring the dense `Aggregator`.
#[derive(Debug, Clone)]
pub struct SparseIngestor {
    binding: u64,
    merged: SparseShard,
    /// Canonical sorted pairs, rebuilt lazily after mutation.
    pairs: Vec<(u64, u64)>,
    epoch: u64,
    batches: u64,
}

impl SparseIngestor {
    /// The deployment binding this ingestor was created from.
    pub fn binding(&self) -> u64 {
        self.binding
    }

    /// Total reports absorbed.
    pub fn reports(&self) -> u64 {
        self.merged.reports()
    }

    /// Checkpoint epoch: increments once per encoded checkpoint.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Batches (shards) absorbed since creation or resume.
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Folds a filled shard into the merged state, leaving it empty.
    pub fn absorb_shard(&mut self, shard: &mut SparseShard) {
        self.absorb(shard, 1);
    }

    /// Folds a filled shard into the merged state, crediting `batches`
    /// absorbed batches — the serve merge barrier's entry point, where
    /// one connection shard accumulates many submitted batches. Exact
    /// integer addition, so any shard grouping yields the same state.
    pub fn absorb(&mut self, shard: &mut SparseShard, batches: u64) {
        self.merged.merge_from(shard);
        self.batches += batches;
        self.pairs.clear();
    }

    /// The canonical sorted `(report, count)` pairs of the merged
    /// state, cached until the next mutation.
    pub fn pairs(&mut self) -> &[(u64, u64)] {
        if self.pairs.is_empty() && !self.merged.is_empty() {
            self.pairs = self.merged.to_sorted();
        }
        &self.pairs
    }

    /// Snapshot view for encoding: bumps the epoch and returns
    /// `(epoch, batches, binding, sorted pairs)`.
    pub fn checkpoint(&mut self) -> (u64, u64, u64, Vec<(u64, u64)>) {
        self.epoch += 1;
        (
            self.epoch,
            self.batches,
            self.binding,
            self.merged.to_sorted(),
        )
    }

    /// Rebuilds an ingestor from decoded checkpoint fields. The caller
    /// (see [`crate::decode_sparse_checkpoint`]) has already verified
    /// the binding matches the hosting deployment.
    pub fn resume(binding: u64, epoch: u64, batches: u64, pairs: &[(u64, u64)]) -> Self {
        Self {
            binding,
            merged: SparseShard::from_sorted(pairs),
            pairs: pairs.to_vec(),
            epoch,
            batches,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn bindings_separate_every_parameter() {
        let bindings = [
            SparseDeployment::olh("url", 2.0).unwrap().binding(),
            SparseDeployment::olh("url", 1.0).unwrap().binding(),
            SparseDeployment::olh("domain", 2.0).unwrap().binding(),
            SparseDeployment::hadamard("url", 2.0, 16)
                .unwrap()
                .binding(),
            SparseDeployment::hadamard("url", 2.0, 18)
                .unwrap()
                .binding(),
        ];
        for (i, a) in bindings.iter().enumerate() {
            for b in &bindings[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn heavy_hitters_admission_and_order() {
        let dep = SparseDeployment::hadamard("url", 2.0, 10).unwrap();
        let client = dep.client();
        let mut rng = StdRng::seed_from_u64(42);
        let mut shard = SparseShard::new();
        let hot = ["a", "b", "c"];
        for (i, key) in hot.iter().enumerate() {
            for _ in 0..(2000 * (i + 1)) {
                shard.absorb(client.respond(key, &mut rng));
            }
        }
        for i in 0..500 {
            shard.absorb(client.respond(&format!("cold{i}"), &mut rng));
        }
        let mut ingestor = dep.ingestor();
        ingestor.absorb_shard(&mut shard);
        let mut candidates: Vec<u64> = hot.iter().map(|k| key_hash(k)).collect();
        candidates.extend((0..200).map(|i| key_hash(&format!("decoy{i}"))));
        let pairs = ingestor.pairs().to_vec();
        let hits = dep.heavy_hitters(&pairs, &candidates, 3, 4.0);
        assert_eq!(hits.len(), 3);
        // Descending by estimate: c (6000), b (4000), a (2000).
        assert_eq!(hits[0].key_hash, key_hash("c"));
        assert_eq!(hits[1].key_hash, key_hash("b"));
        assert_eq!(hits[2].key_hash, key_hash("a"));
        for h in &hits {
            assert!(h.estimate >= 4.0 * h.stddev);
        }
    }

    #[test]
    fn olh_point_query_tracks_truth() {
        let dep = SparseDeployment::olh("url", 2.0).unwrap();
        let client = dep.client();
        let mut rng = StdRng::seed_from_u64(5);
        let mut ingestor = dep.ingestor();
        let mut shard = SparseShard::new();
        for _ in 0..3000 {
            shard.absorb(client.respond("hot", &mut rng));
        }
        for i in 0..1000 {
            shard.absorb(client.respond(&format!("k{i}"), &mut rng));
        }
        ingestor.absorb_shard(&mut shard);
        let pairs = ingestor.pairs().to_vec();
        let sigma = dep.oracle().stddev(ingestor.reports());
        let hot = dep.point(&pairs, key_hash("hot"));
        let absent = dep.point(&pairs, key_hash("never-seen"));
        assert!((hot - 3000.0).abs() < 6.0 * sigma, "hot: {hot}");
        assert!(absent.abs() < 6.0 * sigma, "absent: {absent}");
    }
}
