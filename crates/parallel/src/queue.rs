//! A closable blocking work queue for long-lived worker loops.
//!
//! The pool primitives in this crate are scoped and batch-shaped: a
//! prepared list of tasks goes in, the call blocks until every task ran.
//! A *server* has the opposite shape — work items (accepted connections,
//! queued jobs) arrive over time and a fixed set of worker threads drains
//! them until told to stop. [`WorkQueue`] is that hand-off: a mutex-and-
//! condvar MPMC queue whose consumers block in [`WorkQueue::pop`] and
//! wake either with an item or with `None` once the queue is closed and
//! drained.
//!
//! Determinism note: the queue moves *work items*, never numeric results.
//! Which worker receives which item is scheduling-dependent by design;
//! the bit-determinism contract is preserved by the items themselves
//! (e.g. integer shard merges are exact and order-independent).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A multi-producer multi-consumer blocking queue with explicit
/// shutdown.
///
/// * Producers [`WorkQueue::push`] items; a push to a closed queue is
///   refused and hands the item back.
/// * Consumers [`WorkQueue::pop`]; the call blocks while the queue is
///   open and empty, and returns `None` only after [`WorkQueue::close`]
///   once every queued item has been drained — nothing accepted is ever
///   dropped.
pub struct WorkQueue<T> {
    state: Mutex<State<T>>,
    ready: Condvar,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Default for WorkQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for WorkQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.lock();
        f.debug_struct("WorkQueue")
            .field("len", &state.items.len())
            .field("closed", &state.closed)
            .finish()
    }
}

impl<T> WorkQueue<T> {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State<T>> {
        // ldp-lint: allow(no-unwrap-in-lib) -- poisoning requires a panic
        // while holding the lock; the guarded section below never panics.
        self.state.lock().expect("work queue lock poisoned")
    }

    /// Enqueues an item and wakes one blocked consumer.
    ///
    /// # Errors
    /// Hands the item back if the queue is already closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut state = self.lock();
        if state.closed {
            return Err(item);
        }
        state.items.push_back(item);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeues the oldest item, blocking while the queue is open and
    /// empty. Returns `None` once the queue is closed *and* drained — the
    /// worker-loop termination signal.
    pub fn pop(&self) -> Option<T> {
        let mut state = self.lock();
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            // ldp-lint: allow(no-unwrap-in-lib) -- poisoning requires a
            // panic while holding the lock; see `lock`.
            state = self.ready.wait(state).expect("work queue lock poisoned");
        }
    }

    /// Closes the queue: further pushes are refused, and every blocked or
    /// future [`WorkQueue::pop`] returns `None` once the backlog drains.
    /// Idempotent.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    /// True once [`WorkQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.lock().closed
    }

    /// Items currently queued (racy by nature; for monitoring only).
    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    /// True when no items are queued (racy by nature; for monitoring
    /// only).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_single_thread() {
        let q = WorkQueue::new();
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.len(), 2);
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert!(q.is_empty());
    }

    #[test]
    fn close_refuses_pushes_but_drains_backlog() {
        let q = WorkQueue::new();
        q.push("a").unwrap();
        q.close();
        assert!(q.is_closed());
        assert_eq!(q.push("b"), Err("b"), "closed queue hands the item back");
        assert_eq!(q.pop(), Some("a"), "backlog drains after close");
        assert_eq!(q.pop(), None);
        assert_eq!(q.pop(), None, "idempotent termination signal");
    }

    #[test]
    fn workers_drain_everything_exactly_once() {
        let q = WorkQueue::new();
        let drained = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some(v) = q.pop() {
                        drained.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            for _ in 0..1000 {
                q.push(1usize).unwrap();
            }
            q.close();
        });
        assert_eq!(drained.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn pop_blocks_until_push() {
        let q = WorkQueue::new();
        std::thread::scope(|scope| {
            let popper = scope.spawn(|| q.pop());
            scope.spawn(|| {
                // No sleep needed: push wakes the blocked popper whenever
                // it parks; if it has not parked yet it finds the item.
                q.push(7).unwrap();
            });
            assert_eq!(popper.join().unwrap(), Some(7));
            q.close();
        });
    }
}
