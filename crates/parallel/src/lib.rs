//! Deterministic parallel runtime for the workspace's compute kernels.
//!
//! A small scoped-thread pool over [`std::thread`] (the build environment
//! has no network, so rayon is not an option) with one non-negotiable
//! contract: **running anything through this crate never changes a single
//! bit of the result**. Every primitive hands each worker a *disjoint,
//! contiguous* slice of the output, so no floating-point sum is ever
//! re-associated across threads — each output element is computed by
//! exactly one worker running exactly the arithmetic the serial schedule
//! runs. Changing the thread count only changes *who* computes an
//! element, never *how*.
//!
//! * [`Pool::par_map`] — order-preserving map over an index range
//!   (work-stealing via an atomic cursor; results land in call order).
//! * [`Pool::par_chunks`] — statically partitions a mutable slice into
//!   one granule-aligned contiguous chunk per worker (the "row range"
//!   primitive: a matrix's output rows split across threads).
//! * [`Pool::par_tasks`] — runs a prepared list of one-shot closures
//!   (used where disjointness is hand-carved, e.g. the large-`h`
//!   Walsh–Hadamard butterflies that pair two distant half-blocks).
//! * [`set_worker_context`] / [`worker_context`] — one opaque per-thread
//!   word that pool workers inherit from their spawner, so thread-scoped
//!   state (ldp-linalg's kernel-backend override) survives into parallel
//!   sections instead of silently resetting on worker threads.
//! * [`WorkQueue`] — a closable blocking MPMC queue for the opposite
//!   shape of parallelism: long-lived worker loops draining work that
//!   arrives over time (the ldp-serve connection pool).
//!
//! ## Thread-count resolution
//!
//! [`pool()`] resolves the worker count, in order:
//!
//! 1. `1` when already inside a pool worker — parallel sections never
//!    nest, so inner kernels (a matvec inside a parallel Kronecker stage)
//!    stay serial instead of oversubscribing;
//! 2. a thread-local override installed by [`set_thread_override`]
//!    (tests and benches switch counts without touching the process
//!    environment, so concurrently running tests cannot race);
//! 3. the `LDP_THREADS` environment variable (read once per process;
//!    `0`, empty, or unparsable falls through);
//! 4. [`std::thread::available_parallelism`].
//!
//! Threads are scoped per call rather than kept parked: spawning costs a
//! few tens of microseconds, which the callers amortize by gating
//! parallelism on a minimum work size (a blocked `n = 512` matmul runs
//! for milliseconds). A parked-worker design would need `'static` task
//! erasure (unsafe) to run borrowed closures; scoped threads give the
//! same determinism guarantees in safe Rust.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

pub mod queue;

pub use queue::WorkQueue;

thread_local! {
    /// True on threads spawned by a [`Pool`] — nested calls stay serial.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    /// Per-thread override installed by [`set_thread_override`].
    static THREAD_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// Opaque ambient word propagated to pool workers (see
    /// [`set_worker_context`]).
    static WORKER_CONTEXT: Cell<u64> = const { Cell::new(0) };
}

/// Process-wide `LDP_THREADS` / hardware default, resolved once.
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        if let Ok(raw) = std::env::var("LDP_THREADS") {
            if let Ok(n) = raw.trim().parse::<usize>() {
                if n > 0 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |p| p.get())
    })
}

/// Overrides the thread count [`pool()`] resolves *on this thread*.
/// `None` restores environment resolution. Pool workers are unaffected:
/// the nested-section guard always pins them to 1.
///
/// Thread-local by design: concurrently running tests can each pin their
/// own count without racing on the process environment.
pub fn set_thread_override(threads: Option<usize>) {
    THREAD_OVERRIDE.with(|o| o.set(threads.map_or(0, |t| t.max(1))));
}

/// Runs `f` with the thread-count override set to `threads`, restoring
/// the previous override on exit — including on unwind, so a panicking
/// closure cannot leave the calling thread pinned. The scoped counterpart
/// of [`set_thread_override`], for callers that must not leak the
/// override (e.g. a fingerprint probe forcing a serial schedule).
pub fn with_thread_override<R>(threads: Option<usize>, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            THREAD_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let prev = THREAD_OVERRIDE.with(|o| o.replace(threads.map_or(0, |t| t.max(1))));
    let _restore = Restore(prev);
    f()
}

/// Installs an opaque context word that pool workers *inherit* from the
/// thread that spawns them (`0` = unset, the default). Plain thread-locals
/// do not cross scoped-spawn boundaries; this one word does, so a crate
/// can build inheritable thread-scoped state on top of the pool —
/// `ldp-linalg` stores its per-thread kernel-backend override here so a
/// backend pinned for a test or a fingerprint probe also governs every
/// worker that computation spawns. The word is per-thread and restored by
/// whoever set it; the pool itself only copies it caller → worker.
pub fn set_worker_context(context: u64) {
    WORKER_CONTEXT.with(|c| c.set(context));
}

/// The ambient context word on this thread (see [`set_worker_context`]).
pub fn worker_context() -> u64 {
    WORKER_CONTEXT.with(Cell::get)
}

/// The worker count the next [`pool()`] call on this thread will use.
pub fn current_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    let overridden = THREAD_OVERRIDE.with(Cell::get);
    if overridden > 0 {
        return overridden;
    }
    env_threads()
}

/// The shared pool at the ambient thread count (`LDP_THREADS`, test
/// override, or hardware parallelism — see the crate docs for the full
/// resolution order).
pub fn pool() -> Pool {
    Pool::new(current_threads())
}

/// A handle describing how many workers parallel sections may use.
/// Cheap to create; threads are scoped per call.
#[derive(Clone, Copy, Debug)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool that uses exactly `threads` workers (minimum 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Number of workers parallel sections will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..count` on all workers, preserving result order.
    ///
    /// Work-stealing: workers pull indices from an atomic cursor, so
    /// uneven items (mechanism cells, optimizer restarts) balance
    /// automatically. The output is positional — `out[i] == f(i)` —
    /// regardless of which worker ran which index.
    pub fn par_map<T: Send, F: Fn(usize) -> T + Sync>(&self, count: usize, f: F) -> Vec<T> {
        let workers = self.threads.min(count);
        if workers <= 1 {
            return (0..count).map(f).collect();
        }
        let next = AtomicUsize::new(0);
        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let slots_ref = Mutex::new(&mut slots);
        let work = || loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            let value = f(i);
            // ldp-lint: allow(no-unwrap-in-lib) -- poisoning requires a worker
            // panic, which the thread scope re-raises at join anyway.
            let mut guard = slots_ref.lock().expect("no poisoned workers");
            guard[i] = Some(value);
        };
        let context = worker_context();
        let work = &work;
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    WORKER_CONTEXT.with(|c| c.set(context));
                    work();
                });
            }
            run_as_worker(work);
        });
        slots
            .into_iter()
            // ldp-lint: allow(no-unwrap-in-lib) -- invariant: the fetch_add
            // work loop terminates only after every index in 0..count is
            // claimed and filled.
            .map(|s| s.expect("all indices computed"))
            .collect()
    }

    /// Splits `data` into one contiguous, granule-aligned chunk per
    /// worker and calls `f(start_offset, chunk)` on each — the
    /// disjoint-output-rows primitive. `granule` is the indivisible unit
    /// (a matrix row length, an output stride); chunks differ in size by
    /// at most one granule.
    ///
    /// Because the chunks partition `data`, each element is written by
    /// exactly one worker and no accumulation crosses a thread boundary:
    /// as long as `f` computes each granule the way the serial code
    /// would, the result is bit-identical at every thread count.
    ///
    /// # Panics
    /// Panics if `granule == 0` or `data.len()` is not a multiple of it.
    pub fn par_chunks<T: Send, F: Fn(usize, &mut [T]) + Sync>(
        &self,
        data: &mut [T],
        granule: usize,
        f: F,
    ) {
        assert!(granule > 0, "granule must be positive");
        assert_eq!(
            data.len() % granule,
            0,
            "data must be a whole number of granules"
        );
        let granules = data.len() / granule;
        let workers = self.threads.min(granules);
        if workers <= 1 {
            if !data.is_empty() {
                f(0, data);
            }
            return;
        }
        // Static partition: deterministic chunk boundaries, no cursor.
        let base = granules / workers;
        let extra = granules % workers;
        let mut chunks = Vec::with_capacity(workers);
        let mut rest = data;
        let mut start = 0usize;
        for w in 0..workers {
            let elems = (base + usize::from(w < extra)) * granule;
            let (chunk, tail) = rest.split_at_mut(elems);
            chunks.push((start, chunk));
            rest = tail;
            start += elems;
        }
        let f = &f;
        let context = worker_context();
        std::thread::scope(|scope| {
            let mut chunks = chunks.into_iter();
            // ldp-lint: allow(no-unwrap-in-lib) -- invariant: the workers <= 1
            // early return above guarantees at least one chunk exists.
            let own = chunks.next().expect("workers >= 2");
            for (offset, chunk) in chunks {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    WORKER_CONTEXT.with(|c| c.set(context));
                    f(offset, chunk);
                });
            }
            run_as_worker(|| f(own.0, own.1));
        });
    }

    /// Runs every prepared task exactly once across the workers. The
    /// caller guarantees tasks touch disjoint data (typically `&mut`
    /// sub-slices carved before the call); execution order is
    /// unspecified, which is safe precisely because tasks are disjoint.
    pub fn par_tasks<'env>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'env>>) {
        let workers = self.threads.min(tasks.len());
        if workers <= 1 {
            for task in tasks {
                task();
            }
            return;
        }
        let queue = Mutex::new(tasks.into_iter());
        let work = || loop {
            // ldp-lint: allow(no-unwrap-in-lib) -- poisoning requires a worker
            // panic, which the thread scope re-raises at join anyway.
            let task = queue.lock().expect("no poisoned workers").next();
            match task {
                Some(task) => task(),
                None => break,
            }
        };
        let context = worker_context();
        let work = &work;
        std::thread::scope(|scope| {
            for _ in 1..workers {
                scope.spawn(move || {
                    IN_WORKER.with(|w| w.set(true));
                    WORKER_CONTEXT.with(|c| c.set(context));
                    work();
                });
            }
            run_as_worker(work);
        });
    }
}

/// Runs the caller's share of a parallel section with the worker flag
/// set (so nested `pool()` calls resolve to 1 thread), restoring the
/// previous flag afterwards — including on unwind, so a caught panic in
/// a task cannot leave the calling thread permanently marked as a
/// worker (which would silently serialize every later pool use on it).
fn run_as_worker(f: impl FnOnce()) {
    struct Restore(bool);
    impl Drop for Restore {
        fn drop(&mut self) {
            IN_WORKER.with(|w| w.set(self.0));
        }
    }
    let _restore = Restore(IN_WORKER.with(|w| w.replace(true)));
    f();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        for threads in [1usize, 2, 4, 7] {
            let out = Pool::new(threads).par_map(40, |i| i * i);
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, i * i);
            }
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let pool = Pool::new(4);
        assert!(pool.par_map(0, |i| i).is_empty());
        assert_eq!(pool.par_map(1, |i| i + 5), vec![5]);
    }

    #[test]
    fn par_chunks_partitions_whole_slice() {
        for threads in [1usize, 2, 3, 5, 16] {
            let mut data = vec![0u32; 7 * 3]; // 7 granules of 3
            Pool::new(threads).par_chunks(&mut data, 3, |start, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (start + i) as u32;
                }
            });
            for (i, v) in data.iter().enumerate() {
                assert_eq!(*v, i as u32, "threads={threads}");
            }
        }
    }

    #[test]
    fn par_chunks_empty_is_noop() {
        let mut data: Vec<f64> = Vec::new();
        Pool::new(4).par_chunks(&mut data, 8, |_, _| panic!("no chunks"));
    }

    #[test]
    #[should_panic(expected = "whole number of granules")]
    fn par_chunks_rejects_ragged_slice() {
        let mut data = vec![0.0; 10];
        Pool::new(2).par_chunks(&mut data, 3, |_, _| {});
    }

    #[test]
    fn par_tasks_runs_each_once() {
        let mut hits = [0u8; 9];
        let tasks: Vec<Box<dyn FnOnce() + Send>> = hits
            .chunks_mut(2)
            .map(|c| {
                Box::new(move || {
                    for v in c.iter_mut() {
                        *v += 1;
                    }
                }) as Box<dyn FnOnce() + Send>
            })
            .collect();
        Pool::new(3).par_tasks(tasks);
        assert!(hits.iter().all(|&h| h == 1));
    }

    #[test]
    fn nested_sections_stay_serial() {
        let inner_counts = Pool::new(4).par_map(8, |_| current_threads());
        assert!(inner_counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn override_is_thread_local() {
        set_thread_override(Some(3));
        assert_eq!(current_threads(), 3);
        let other = std::thread::spawn(current_threads).join().unwrap();
        // The spawned thread never saw this thread's override.
        assert_ne!(other, 0);
        set_thread_override(None);
        assert_ne!(current_threads(), 0);
    }

    #[test]
    fn with_thread_override_is_scoped_and_restores() {
        set_thread_override(Some(3));
        let inner = with_thread_override(Some(2), current_threads);
        assert_eq!(inner, 2);
        assert_eq!(current_threads(), 3, "previous override restored");
        set_thread_override(None);
    }

    #[test]
    fn worker_context_is_inherited_by_pool_workers() {
        set_worker_context(42);
        let seen = Pool::new(4).par_map(8, |_| worker_context());
        assert!(seen.iter().all(|&c| c == 42), "par_map workers inherit");
        let mut data = vec![0u64; 12];
        Pool::new(3).par_chunks(&mut data, 2, |_, chunk| {
            chunk.fill(worker_context());
        });
        assert!(data.iter().all(|&c| c == 42), "par_chunks workers inherit");
        set_worker_context(0);
        let seen = Pool::new(4).par_map(4, |_| worker_context());
        assert!(seen.iter().all(|&c| c == 0), "cleared context propagates");
    }

    #[test]
    fn worker_context_does_not_leak_to_unrelated_threads() {
        set_worker_context(7);
        let other = std::thread::spawn(worker_context).join().unwrap();
        assert_eq!(other, 0, "plain spawns never inherit the context");
        set_worker_context(0);
    }

    #[test]
    fn pool_floors_at_one_thread() {
        assert_eq!(Pool::new(0).threads(), 1);
        set_thread_override(Some(0));
        assert_eq!(current_threads(), 1);
        set_thread_override(None);
    }
}
