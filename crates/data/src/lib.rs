//! Synthetic dataset generators standing in for the DPBench benchmark
//! datasets (Hay et al. \[22\]) used in Sections 6.4 and 6.7 of the paper.
//!
//! The actual HEPTH, MEDCOST, and NETTRACE histograms are not
//! redistributable here, so each generator reproduces the published
//! *shape* characteristics that drive the experiments — how concentrated
//! the mass is across user types — which is the only property the
//! data-dependent variance `Σ_u x_u T_u` (Theorem 3.4) sees
//! (see DESIGN.md §4 for the substitution rationale):
//!
//! * [`hepth`] — HEPTH (arXiv HEP-TH citation histogram, N ≈ 347k):
//!   smooth power-law decay, every cell populated near the head.
//! * [`medcost`] — MEDCOST (medical cost survey, N ≈ 9.4k): right-skewed
//!   unimodal (lognormal-like) histogram.
//! * [`nettrace`] — NETTRACE (IP-level network trace, N ≈ 25k): extremely
//!   sparse — a few dominant cells, most cells empty.
//!
//! General-purpose generators ([`zipf_shape`], [`uniform_shape`],
//! [`bimodal_shape`]) and the
//! common [`Shape`] machinery are exposed for examples and tests. All
//! sampling is deterministic given a seed.

use ldp_core::DataVector;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Default user counts matching the DPBench datasets.
pub mod paper_n {
    /// HEPTH user count (≈ 347k records).
    pub const HEPTH: u64 = 347_414;
    /// MEDCOST user count (≈ 9.4k records).
    pub const MEDCOST: u64 = 9_415;
    /// NETTRACE user count (≈ 25k records).
    pub const NETTRACE: u64 = 25_714;
}

/// A normalized distribution over `n` user types, from which datasets of
/// any size can be sampled.
#[derive(Clone, Debug)]
pub struct Shape {
    probabilities: Vec<f64>,
}

impl Shape {
    /// Normalizes non-negative weights into a distribution.
    ///
    /// # Panics
    /// Panics if `weights` is empty, contains negatives/non-finite
    /// values, or sums to zero.
    pub fn from_weights(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "shape must cover a non-empty domain");
        let total: f64 = weights.iter().sum();
        assert!(
            weights.iter().all(|w| w.is_finite() && *w >= 0.0) && total > 0.0,
            "weights must be non-negative with positive sum"
        );
        Self {
            probabilities: weights.into_iter().map(|w| w / total).collect(),
        }
    }

    /// Domain size.
    pub fn domain_size(&self) -> usize {
        self.probabilities.len()
    }

    /// The normalized probabilities.
    pub fn probabilities(&self) -> &[f64] {
        &self.probabilities
    }

    /// Draws a dataset of `n_users` users by multinomial sampling.
    pub fn sample(&self, n_users: u64, rng: &mut StdRng) -> DataVector {
        let n = self.probabilities.len();
        // Inverse-CDF sampling over the cumulative distribution; O(log n)
        // per user is plenty for dataset construction.
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in &self.probabilities {
            acc += p;
            cdf.push(acc);
        }
        let mut counts = vec![0.0; n];
        for _ in 0..n_users {
            let r: f64 = rng.gen_range(0.0..1.0);
            let idx = cdf.partition_point(|&c| c < r).min(n - 1);
            counts[idx] += 1.0;
        }
        DataVector::from_counts(counts)
    }

    /// The expected dataset: `n_users · p` without sampling noise. Useful
    /// for analytic experiments (e.g. data-dependent sample complexity,
    /// Figure 3a) that only need the distribution, not a realization.
    pub fn expected(&self, n_users: f64) -> DataVector {
        DataVector::from_counts(self.probabilities.iter().map(|p| p * n_users).collect())
    }
}

/// HEPTH-like shape: smooth power-law decay `(u+1)^{-1.1}` with a mild
/// exponential taper — a heavy head, populated everywhere.
pub fn hepth_shape(n: usize) -> Shape {
    Shape::from_weights(
        (0..n)
            .map(|u| {
                let x = (u + 1) as f64;
                x.powf(-1.1) * (-(x / (n as f64 * 2.0))).exp()
            })
            .collect(),
    )
}

/// MEDCOST-like shape: right-skewed lognormal-style bump peaking in the
/// low-cost cells with a long tail.
pub fn medcost_shape(n: usize) -> Shape {
    let mu = (n as f64 / 8.0).ln();
    let sigma = 0.9;
    Shape::from_weights(
        (0..n)
            .map(|u| {
                let x = (u + 1) as f64;
                let t = (x.ln() - mu) / sigma;
                (-0.5 * t * t).exp() / x
            })
            .collect(),
    )
}

/// NETTRACE-like shape: extreme sparsity — a handful of dominant cells,
/// geometric decay on a small support, everything else essentially empty.
pub fn nettrace_shape(n: usize) -> Shape {
    let mut weights = vec![1e-6; n];
    // Dominant cells scattered deterministically across the domain.
    let hot = [
        (0usize, 1.0),
        (1, 0.55),
        (2, 0.30),
        (5, 0.18),
        (11, 0.10),
        (23, 0.06),
    ];
    for &(slot, w) in &hot {
        let idx = (slot * n.max(1) / 24).min(n - 1);
        weights[idx] += w;
    }
    // Light geometric tail near the head, mimicking flow-size decay.
    for (u, weight) in weights.iter_mut().enumerate().take(n.min(64)) {
        *weight += 0.02 * 0.8_f64.powi(u as i32);
    }
    Shape::from_weights(weights)
}

/// Zipf(s) shape over `n` types.
pub fn zipf_shape(n: usize, s: f64) -> Shape {
    assert!(
        s >= 0.0 && s.is_finite(),
        "Zipf exponent must be non-negative"
    );
    Shape::from_weights((0..n).map(|u| ((u + 1) as f64).powf(-s)).collect())
}

/// Uniform shape over `n` types.
pub fn uniform_shape(n: usize) -> Shape {
    Shape::from_weights(vec![1.0; n])
}

/// Two-bump Gaussian mixture shape, for multimodal examples.
pub fn bimodal_shape(n: usize) -> Shape {
    let (m1, m2) = (n as f64 * 0.25, n as f64 * 0.7);
    let (s1, s2) = (n as f64 * 0.05, n as f64 * 0.1);
    Shape::from_weights(
        (0..n)
            .map(|u| {
                let x = u as f64;
                let g1 = (-0.5 * ((x - m1) / s1).powi(2)).exp();
                let g2 = 0.6 * (-0.5 * ((x - m2) / s2).powi(2)).exp();
                g1 + g2 + 1e-9
            })
            .collect(),
    )
}

/// Samples a HEPTH-like dataset at the paper's user count.
pub fn hepth(n: usize, seed: u64) -> DataVector {
    hepth_shape(n).sample(paper_n::HEPTH, &mut StdRng::seed_from_u64(seed))
}

/// Samples a MEDCOST-like dataset at the paper's user count.
pub fn medcost(n: usize, seed: u64) -> DataVector {
    medcost_shape(n).sample(paper_n::MEDCOST, &mut StdRng::seed_from_u64(seed))
}

/// Samples a NETTRACE-like dataset at the paper's user count.
pub fn nettrace(n: usize, seed: u64) -> DataVector {
    nettrace_shape(n).sample(paper_n::NETTRACE, &mut StdRng::seed_from_u64(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_normalize() {
        for shape in [hepth_shape(128), medcost_shape(128), nettrace_shape(128)] {
            let total: f64 = shape.probabilities().iter().sum();
            assert!((total - 1.0).abs() < 1e-12);
            assert!(shape.probabilities().iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn sampling_hits_requested_count() {
        let shape = zipf_shape(32, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let data = shape.sample(10_000, &mut rng);
        assert_eq!(data.total(), 10_000.0);
        assert_eq!(data.domain_size(), 32);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let a = hepth(64, 9);
        let b = hepth(64, 9);
        assert_eq!(a, b);
        let c = hepth(64, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn hepth_is_head_heavy() {
        let shape = hepth_shape(512);
        let p = shape.probabilities();
        let head: f64 = p[..16].iter().sum();
        assert!(head > 0.5, "HEPTH head mass {head} should dominate");
        // Monotone decay.
        for w in p.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
    }

    #[test]
    fn medcost_is_unimodal_skewed() {
        let shape = medcost_shape(256);
        let p = shape.probabilities();
        let peak = p
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(
            peak > 0 && peak < 128,
            "peak {peak} should be interior-left"
        );
    }

    #[test]
    fn nettrace_is_sparse() {
        let shape = nettrace_shape(512);
        let p = shape.probabilities();
        let tiny = p.iter().filter(|&&v| v < 1e-4).count();
        assert!(
            tiny > 400,
            "NETTRACE should be mostly empty ({tiny}/512 tiny cells)"
        );
        let top: f64 = {
            let mut sorted = p.to_vec();
            sorted.sort_by(|a, b| b.partial_cmp(a).unwrap());
            sorted[..8].iter().sum()
        };
        assert!(top > 0.8, "top cells should carry the mass ({top})");
    }

    #[test]
    fn expected_dataset_matches_probabilities() {
        let shape = uniform_shape(10);
        let data = shape.expected(1000.0);
        assert_eq!(data.counts(), &[100.0; 10]);
    }

    #[test]
    fn empirical_frequencies_track_shape() {
        let shape = zipf_shape(8, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let data = shape.sample(200_000, &mut rng);
        for (count, p) in data.counts().iter().zip(shape.probabilities()) {
            let freq = count / 200_000.0;
            assert!((freq - p).abs() < 0.01, "freq {freq} vs p {p}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_shape_rejected() {
        let _ = Shape::from_weights(vec![]);
    }
}
