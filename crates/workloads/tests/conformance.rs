//! Shared property-test suite: one macro applied to every workload type,
//! asserting the three views — structured `gram()`, implicit
//! `evaluate()`/`evaluate_into()`, and explicit `matrix()` — stay
//! mutually consistent on randomly drawn instances, with the structured
//! Gram operators checked against the dense reference `matrix().gram()`
//! up to `n = 64`.
//!
//! The per-instance invariants live in
//! [`ldp_workloads::workload::conformance::assert_conformant`]; this file
//! contributes the randomized instance generation (sizes, widths,
//! attribute counts, weights, composition) plus a random-vector
//! `G·x == Wᵀ(W·x)` identity that exercises the operator matvec on
//! non-unit inputs.

use std::sync::Arc;

use ldp_workloads::workload::conformance::assert_conformant;
use ldp_workloads::{
    AllMarginals, AllRange, Dense, Histogram, KWayMarginals, Parity, Prefix, Product, Query,
    Schema, SchemaWorkload, Stacked, Total, WidthRange, Workload,
};
use proptest::prelude::*;

/// The dense-reference identity `G·x = Wᵀ(W·x)` on a random data vector,
/// exercising the structured matvec path end-to-end.
fn assert_gram_matvec_identity(w: &dyn Workload, x: &[f64]) {
    assert_eq!(x.len(), w.domain_size());
    let mat = w.matrix();
    let reference = mat.t_matvec(&mat.matvec(x));
    let via_op = w.gram().matvec(x);
    let scale = reference
        .iter()
        .fold(1.0f64, |acc, v| acc.max(v.abs()))
        .max(w.gram().max_abs());
    for (a, b) in via_op.iter().zip(&reference) {
        assert!(
            (a - b).abs() < 1e-9 * scale,
            "{}: Gx {a} vs WᵀWx {b}",
            w.name()
        );
    }
}

fn check(w: &dyn Workload, x: &[f64]) {
    assert_conformant(w);
    assert_gram_matvec_identity(w, x);
}

/// Applies the shared suite to one workload family: the macro takes a
/// strategy for the constructor parameters and a builder closure, and
/// emits a property test drawing instances plus a random data vector.
macro_rules! workload_suite {
    ($name:ident, cases = $cases:expr, $params:ident in $strat:expr => $build:expr) => {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases($cases))]

            #[test]
            fn $name(
                $params in $strat,
                x_raw in prop::collection::vec(-5.0..5.0f64, 64),
            ) {
                let workload = $build;
                let n = workload.domain_size();
                prop_assert!(n <= 64, "suite is sized for n <= 64");
                check(&workload, &x_raw[..n]);
            }
        }
    };
}

workload_suite!(histogram_conformance, cases = 8,
    n in 1usize..33 => Histogram::new(n));

workload_suite!(total_conformance, cases = 8,
    n in 1usize..33 => Total::new(n));

workload_suite!(prefix_conformance, cases = 12,
    n in 1usize..65 => Prefix::new(n));

workload_suite!(all_range_conformance, cases = 12,
    n in 1usize..49 => AllRange::new(n));

workload_suite!(width_range_conformance, cases = 12,
params in (1usize..33, 1usize..33) => {
    let (n, w) = params;
    WidthRange::new(n.max(w), w)
});

workload_suite!(parity_conformance, cases = 10,
params in (1usize..7, 0usize..7, 0usize..7) => {
    let (d, a, b) = params;
    let lo = a.min(b).min(d);
    let hi = a.max(b).min(d);
    Parity::with_sizes(d.min(6), lo.min(d.min(6)), hi.min(d.min(6)))
});

workload_suite!(all_marginals_conformance, cases = 8,
    d in 1usize..7 => AllMarginals::new(d));

workload_suite!(k_way_marginals_conformance, cases = 10,
params in (1usize..7, 0usize..7) => {
    let (d, k) = params;
    KWayMarginals::new(d, k.min(d))
});

workload_suite!(dense_conformance, cases = 10,
params in (1usize..6, 1usize..9, prop::collection::vec(-3.0..3.0f64, 40)) => {
    let (n, p, entries) = params;
    Dense::new(ldp_linalg::Matrix::from_fn(p, n, |i, j| entries[(i * n + j) % entries.len()]))
});

// Kronecker products: the structured `KroneckerOp` Gram (including nested
// structured factors) against the dense reference on the flattened domain.
workload_suite!(product_conformance, cases = 10,
params in (1usize..8, 1usize..8, 0usize..4) => {
    let (n1, n2, kind) = params;
    let left: Box<dyn Workload + Send + Sync> = match kind {
        0 => Box::new(Prefix::new(n1)),
        1 => Box::new(AllRange::new(n1)),
        2 => Box::new(Histogram::new(n1)),
        _ => Box::new(Total::new(n1)),
    };
    let right: Box<dyn Workload + Send + Sync> = match kind {
        0 => Box::new(AllRange::new(n2)),
        1 => Box::new(Prefix::new(n2)),
        2 => Box::new(Total::new(n2)),
        _ => Box::new(Histogram::new(n2)),
    };
    Product::new(left, right)
});

// Weighted unions: the SumOp/ScaledOp Gram against the dense reference.
workload_suite!(stacked_conformance, cases = 10,
params in (1usize..17, 0.1..4.0f64, 0.1..4.0f64) => {
    let (n, c1, c2) = params;
    Stacked::weighted(vec![
        (c1, Box::new(Histogram::new(n)) as Box<dyn Workload + Send + Sync>),
        (c2, Box::new(Prefix::new(n)) as Box<dyn Workload + Send + Sync>),
    ])
});

// Schema-first workloads: the SumOp-of-Kronecker-chains Gram of a random
// multi-attribute query set (marginals, ranges, value sets, totals)
// against the dense reference on the flattened domain.
workload_suite!(schema_conformance, cases = 12,
params in (1usize..5, 1usize..4, 1usize..4, 0usize..4) => {
    let (a, b, c, pick) = params;
    let schema = Arc::new(Schema::new([("x", a), ("y", b), ("z", c)]));
    let mut queries = vec![Query::total(), Query::marginal(["y", "z"])];
    match pick {
        0 => queries.push(Query::marginal(["x"])),
        1 => queries.push(Query::range("x", 0..a)),
        2 => queries.push(Query::values("z", [c - 1])),
        _ => queries.push(Query::predicate("y", |v| v % 2 == 0).and_range("x", a - 1..)),
    }
    SchemaWorkload::new(schema, &queries).unwrap()
});

// A doubly nested composite — Product of a Stacked and a Parity workload —
// to exercise operator composition (Kronecker over sum over Hamming
// kernel) against the dense reference.
workload_suite!(nested_composite_conformance, cases = 6,
params in (1usize..5, 1usize..4) => {
    let (n, d) = params;
    let left = Stacked::new(vec![
        Box::new(Histogram::new(n)) as Box<dyn Workload + Send + Sync>,
        Box::new(Total::new(n)) as Box<dyn Workload + Send + Sync>,
    ]);
    let right = Parity::up_to(d, d.min(2));
    Product::new(Box::new(left), Box::new(right))
});
