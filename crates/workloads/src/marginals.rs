//! Marginal workloads over a multidimensional binary domain
//! (studied under LDP by Cormode et al. \[13\] and used in Section 6.1).
//!
//! The domain is `{0,1}^d` with `n = 2^d` types; a user type is a bitmask
//! `u`. For an attribute subset `S` (also a bitmask) and a setting `t` of
//! the attributes in `S`, the marginal query counts users with
//! `u & S == t`. The marginal on `S` contributes `2^|S|` queries.

use ldp_linalg::{Gram, StructuredGram};

use crate::combinatorics::{binomial, subsets_of_size};
use crate::Workload;

/// All marginals: one marginal table for every subset `S ⊆ {0,..,d-1}`
/// (including the empty set, whose single query is the total count).
/// `p = Σ_S 2^|S| = 3^d` queries.
#[derive(Clone, Copy, Debug)]
pub struct AllMarginals {
    d: usize,
}

impl AllMarginals {
    /// All marginals over `{0,1}^d`.
    ///
    /// # Panics
    /// Panics if `d == 0` or `d > 20` (the explicit domain `2^d` would be
    /// unreasonably large).
    pub fn new(d: usize) -> Self {
        assert!(d > 0 && d <= 20, "attribute count must be in 1..=20");
        Self { d }
    }

    fn n(&self) -> usize {
        1 << self.d
    }
}

impl Workload for AllMarginals {
    fn name(&self) -> String {
        "All Marginals".into()
    }
    fn domain_size(&self) -> usize {
        self.n()
    }
    fn num_queries(&self) -> usize {
        3usize.pow(self.d as u32)
    }
    fn gram(&self) -> Gram {
        // Query (S,t) covers both u and v iff u&S == t == v&S, so
        // G[u,v] = #{S : S ⊆ agree(u,v)} = 2^{d − hamming(u,v)} — a
        // Hamming-distance kernel with an O(n log n) implicit matvec.
        let kernel: Vec<f64> = (0..=self.d)
            .map(|h| (1u64 << (self.d - h)) as f64)
            .collect();
        Gram::new(StructuredGram::hamming_kernel(self.d, kernel))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n());
        evaluate_marginals(x, &all_subsets(self.d))
    }
    fn frobenius_sq(&self) -> f64 {
        // diag: 2^d per type, n types -> 4^d... careful: G[u,u] = 2^d.
        (self.n() * self.n()) as f64
    }
}

/// K-way marginals: the marginal tables of all attribute subsets of size
/// exactly `k`. The paper's "3-Way Marginals" workload is `k = 3`.
/// `p = C(d,k)·2^k` queries.
#[derive(Clone, Copy, Debug)]
pub struct KWayMarginals {
    d: usize,
    k: usize,
}

impl KWayMarginals {
    /// Marginals on all subsets of exactly `k` of `d` binary attributes.
    ///
    /// # Panics
    /// Panics if `k > d`, `d == 0`, or `d > 20`.
    pub fn new(d: usize, k: usize) -> Self {
        assert!(d > 0 && d <= 20, "attribute count must be in 1..=20");
        assert!(k <= d, "marginal width cannot exceed attribute count");
        Self { d, k }
    }

    fn n(&self) -> usize {
        1 << self.d
    }
}

impl Workload for KWayMarginals {
    fn name(&self) -> String {
        format!("{}-Way Marginals", self.k)
    }
    fn domain_size(&self) -> usize {
        self.n()
    }
    fn num_queries(&self) -> usize {
        (binomial(self.d, self.k) as usize) << self.k
    }
    fn gram(&self) -> Gram {
        // G[u,v] = #{|S| = k : S ⊆ agree(u,v)} = C(d − hamming(u,v), k),
        // again a Hamming-distance kernel.
        let kernel: Vec<f64> = (0..=self.d).map(|h| binomial(self.d - h, self.k)).collect();
        Gram::new(StructuredGram::hamming_kernel(self.d, kernel))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n());
        evaluate_marginals(x, &subsets_of_size(self.d, self.k))
    }
    fn frobenius_sq(&self) -> f64 {
        self.n() as f64 * binomial(self.d, self.k)
    }
}

/// All subset bitmasks of `{0,..,d-1}` in increasing numeric order.
fn all_subsets(d: usize) -> Vec<usize> {
    (0..(1usize << d)).collect()
}

/// Evaluates the marginal tables for the given subset masks, in order:
/// for each `S`, for each packed setting `t` of the bits of `S` (packed
/// settings run 0..2^|S| with bit `i` of the packed value giving the value
/// of the `i`-th lowest set bit of `S`).
fn evaluate_marginals(x: &[f64], subsets: &[usize]) -> Vec<f64> {
    let mut out = Vec::new();
    for &s in subsets {
        let bits: Vec<usize> = (0..usize::BITS as usize)
            .filter(|&b| s >> b & 1 == 1)
            .collect();
        let cells = 1usize << bits.len();
        let mut table = vec![0.0; cells];
        for (u, &xu) in x.iter().enumerate() {
            // Pack u's values on the bits of S.
            let mut packed = 0usize;
            for (i, &b) in bits.iter().enumerate() {
                packed |= ((u >> b) & 1) << i;
            }
            table[packed] += xu;
        }
        out.extend_from_slice(&table);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;

    #[test]
    fn all_marginals_conformance() {
        for d in [1, 2, 3, 4] {
            assert_conformant(&AllMarginals::new(d));
        }
    }

    #[test]
    fn k_way_conformance() {
        for (d, k) in [(3, 1), (3, 2), (3, 3), (4, 2), (5, 3)] {
            assert_conformant(&KWayMarginals::new(d, k));
        }
    }

    #[test]
    fn all_marginals_query_count_is_3_pow_d() {
        assert_eq!(AllMarginals::new(3).num_queries(), 27);
        assert_eq!(AllMarginals::new(4).num_queries(), 81);
    }

    #[test]
    fn three_way_count() {
        // C(9,3)·8 = 84·8 = 672 for n = 512.
        assert_eq!(KWayMarginals::new(9, 3).num_queries(), 672);
    }

    #[test]
    fn marginal_tables_sum_to_total() {
        // Every marginal table must sum to N.
        let d = 3;
        let x = [5.0, 1.0, 2.0, 0.0, 3.0, 1.0, 1.0, 7.0];
        let n_total: f64 = x.iter().sum();
        let w = AllMarginals::new(d);
        let answers = w.evaluate(&x);
        let mut idx = 0;
        for s in 0usize..8 {
            let cells = 1usize << s.count_ones();
            let tbl = &answers[idx..idx + cells];
            assert!((tbl.iter().sum::<f64>() - n_total).abs() < 1e-12);
            idx += cells;
        }
        assert_eq!(idx, answers.len());
    }

    #[test]
    fn one_way_marginal_values() {
        // d=2, x indexed by (b1 b0): marginal on attribute 0 splits by bit0.
        let w = KWayMarginals::new(2, 1);
        let x = [1.0, 2.0, 4.0, 8.0]; // types 00,01,10,11
        let ans = w.evaluate(&x);
        // Subsets of size 1 in numeric order: {0} = mask 1, {1} = mask 2.
        // mask 1: bit0=0 -> 1+4=5, bit0=1 -> 2+8=10
        // mask 2: bit1=0 -> 1+2=3, bit1=1 -> 4+8=12
        assert_eq!(ans, vec![5.0, 10.0, 3.0, 12.0]);
    }

    #[test]
    fn gram_diag_matches_frobenius() {
        let w = AllMarginals::new(3);
        assert_eq!(w.frobenius_sq(), w.gram().trace());
        let k = KWayMarginals::new(4, 2);
        assert_eq!(k.frobenius_sq(), k.gram().trace());
    }

    #[test]
    fn zero_way_marginal_is_total() {
        let w = KWayMarginals::new(3, 0);
        assert_eq!(w.num_queries(), 1);
        let ans = w.evaluate(&[1.0; 8]);
        assert_eq!(ans, vec![8.0]);
    }
}
