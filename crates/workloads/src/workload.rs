//! The [`Workload`] trait.

use ldp_linalg::Matrix;

/// A workload of `p` linear counting queries over a domain of `n` user
/// types (Definition 2.3 / Section 2.1).
///
/// Implementations must keep three views consistent:
///
/// * [`Workload::gram`] — the `n × n` Gram matrix `G = WᵀW`, preferably in
///   closed form (this is what the optimizer and all variance analysis
///   consume);
/// * [`Workload::evaluate`] — implicit matrix-vector product `x ↦ Wx`;
/// * [`Workload::matrix`] — the explicit `p × n` matrix, materialized on
///   demand (defaults to assembling columns via [`Workload::evaluate`] on
///   unit vectors; override only if a faster direct construction exists).
///
/// The consistency of the three is enforced by shared tests in this crate.
pub trait Workload {
    /// Display name as used in the paper's figures.
    fn name(&self) -> String;

    /// Domain size `n`.
    fn domain_size(&self) -> usize;

    /// Number of queries `p` (rows of `W`).
    fn num_queries(&self) -> usize;

    /// The Gram matrix `G = WᵀW` (`n × n`).
    fn gram(&self) -> Matrix;

    /// Evaluates all queries: returns `Wx` (length `p`).
    ///
    /// # Panics
    /// Panics if `x.len() != self.domain_size()`.
    fn evaluate(&self, x: &[f64]) -> Vec<f64>;

    /// The explicit workload matrix `W` (`p × n`). May be very large
    /// (e.g. All Range at n=1024 is 524 800 × 1024); prefer
    /// [`Workload::gram`] + [`Workload::evaluate`] wherever possible.
    fn matrix(&self) -> Matrix {
        let n = self.domain_size();
        let p = self.num_queries();
        let mut w = Matrix::zeros(p, n);
        let mut e = vec![0.0; n];
        for j in 0..n {
            e[j] = 1.0;
            let col = self.evaluate(&e);
            assert_eq!(col.len(), p, "evaluate length disagrees with num_queries");
            w.set_col(j, &col);
            e[j] = 0.0;
        }
        w
    }

    /// Squared Frobenius norm `‖W‖²_F = tr(G)`. Override when the diagonal
    /// of the Gram matrix has a cheap closed form.
    fn frobenius_sq(&self) -> f64 {
        self.gram().trace()
    }

    /// Total squared error between two full answer vectors — convenience
    /// for experiments.
    fn total_squared_error(&self, x_true: &[f64], x_est: &[f64]) -> f64 {
        let a = self.evaluate(x_true);
        let b = self.evaluate(x_est);
        a.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum()
    }
}

/// Shared test helpers asserting the three views of a workload agree.
/// Used by the unit tests of every workload implementation in this crate.
#[cfg(test)]
pub mod conformance {
    use super::*;

    /// Asserts `gram()`, `evaluate()`, `matrix()`, `num_queries()` and
    /// `frobenius_sq()` are mutually consistent on a fixed workload.
    pub fn assert_conformant(w: &dyn Workload) {
        let n = w.domain_size();
        let mat = w.matrix();
        assert_eq!(mat.shape(), (w.num_queries(), n), "matrix shape");

        // Gram matches the explicit matrix.
        let gram = w.gram();
        let explicit_gram = mat.gram();
        let scale = explicit_gram.max_abs().max(1.0);
        assert!(
            gram.max_abs_diff(&explicit_gram) < 1e-9 * scale,
            "gram mismatch for {} (max diff {:.3e})",
            w.name(),
            gram.max_abs_diff(&explicit_gram)
        );

        // evaluate matches the explicit matrix on a non-trivial vector.
        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let via_eval = w.evaluate(&x);
        let via_mat = mat.matvec(&x);
        for (a, b) in via_eval.iter().zip(&via_mat) {
            assert!(
                (a - b).abs() < 1e-9 * scale,
                "evaluate mismatch for {}",
                w.name()
            );
        }

        // Frobenius norm agrees.
        assert!(
            (w.frobenius_sq() - explicit_gram.trace()).abs() < 1e-9 * scale,
            "frobenius mismatch for {}",
            w.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tiny;

    impl Workload for Tiny {
        fn name(&self) -> String {
            "Tiny".into()
        }
        fn domain_size(&self) -> usize {
            3
        }
        fn num_queries(&self) -> usize {
            2
        }
        fn gram(&self) -> Matrix {
            // W = [[1,1,0],[0,1,1]]
            Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[1.0, 2.0, 1.0], &[0.0, 1.0, 1.0]])
        }
        fn evaluate(&self, x: &[f64]) -> Vec<f64> {
            vec![x[0] + x[1], x[1] + x[2]]
        }
    }

    #[test]
    fn default_matrix_assembly() {
        let w = Tiny;
        let m = w.matrix();
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]));
        conformance::assert_conformant(&w);
    }

    #[test]
    fn total_squared_error() {
        let w = Tiny;
        let err = w.total_squared_error(&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]);
        assert_eq!(err, 1.0); // only query 1 differs, by 1
    }
}
