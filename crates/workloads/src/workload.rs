//! The [`Workload`] trait.

use ldp_linalg::stablehash::Fnv64;
use ldp_linalg::{Gram, Matrix};

use crate::schema::Schema;

/// A workload of `p` linear counting queries over a domain of `n` user
/// types (Definition 2.3 / Section 2.1).
///
/// Implementations must keep three views consistent:
///
/// * [`Workload::gram`] — the Gram operator `G = WᵀW` (`n × n`), returned
///   as a *structured* [`Gram`] in closed form wherever one exists (this
///   is what the optimizer and all variance analysis consume; dense
///   `n × n` storage is never required);
/// * [`Workload::evaluate`] — implicit matrix-vector product `x ↦ Wx`;
/// * [`Workload::matrix`] — the explicit `p × n` matrix, materialized on
///   demand (defaults to assembling columns via
///   [`Workload::evaluate_into`] on unit vectors; override only if a
///   faster direct construction exists). This is the explicit opt-in
///   escape hatch — prefer the Gram operator and implicit evaluation.
///
/// The consistency of the three is enforced by shared tests in this crate
/// and by the `workload_conformance` property-test suite in `tests/`.
pub trait Workload {
    /// Display name as used in the paper's figures.
    fn name(&self) -> String;

    /// Domain size `n`.
    fn domain_size(&self) -> usize;

    /// Number of queries `p` (rows of `W`).
    fn num_queries(&self) -> usize;

    /// The Gram operator `G = WᵀW` (`n × n`), structured in closed form
    /// where possible. Call [`Gram::to_dense`] only as an explicit
    /// opt-in; every analytic consumer works through matrix-vector
    /// products.
    ///
    /// Implementations that materialize entries through the float
    /// kernels (a matmul rather than a closed form) must pin that
    /// materialization to the scalar backend
    /// ([`ldp_linalg::kernels::with_backend`]): the returned operator's
    /// entry bits are hashed by [`Workload::fingerprint_with_gram`] into
    /// strategy-cache keys and checkpoint bindings, so they must be
    /// identical on every machine regardless of the ambient backend.
    fn gram(&self) -> Gram;

    /// Evaluates all queries: returns `Wx` (length `p`).
    ///
    /// # Panics
    /// Panics if `x.len() != self.domain_size()`.
    fn evaluate(&self, x: &[f64]) -> Vec<f64>;

    /// [`Workload::evaluate`] into a preallocated buffer of length
    /// `num_queries()`. The default delegates to `evaluate` (allocating);
    /// workloads on hot paths override it to write in place.
    ///
    /// # Panics
    /// Panics if `x.len() != domain_size()` or
    /// `out.len() != num_queries()`.
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        let ans = self.evaluate(x);
        assert_eq!(
            out.len(),
            ans.len(),
            "output length disagrees with num_queries"
        );
        out.copy_from_slice(&ans);
    }

    /// The explicit workload matrix `W` (`p × n`). May be very large
    /// (e.g. All Range at n=1024 is 524 800 × 1024); prefer
    /// [`Workload::gram`] + [`Workload::evaluate`] wherever possible.
    /// The default assembles columns through a single reused buffer.
    fn matrix(&self) -> Matrix {
        let n = self.domain_size();
        let p = self.num_queries();
        let mut w = Matrix::zeros(p, n);
        let mut e = vec![0.0; n];
        let mut col = vec![0.0; p];
        for j in 0..n {
            e[j] = 1.0;
            self.evaluate_into(&e, &mut col);
            w.set_col(j, &col);
            e[j] = 0.0;
        }
        w
    }

    /// Squared Frobenius norm `‖W‖²_F = tr(G)`. The default reads the
    /// trace off the structured Gram operator (`O(n)` or better — never
    /// materializes the `n × n` Gram); override when an even cheaper
    /// closed form exists.
    fn frobenius_sq(&self) -> f64 {
        self.gram().trace()
    }

    /// Total squared error between two full answer vectors — convenience
    /// for experiments.
    fn total_squared_error(&self, x_true: &[f64], x_est: &[f64]) -> f64 {
        let a = self.evaluate(x_true);
        let b = self.evaluate(x_est);
        a.iter().zip(&b).map(|(p, q)| (p - q) * (p - q)).sum()
    }

    /// A stable 64-bit fingerprint of the workload's *semantics*: its
    /// name, dimensions, and the exact bit pattern of its Gram operator
    /// probed through [`Workload::gram`] (diagonal plus a deterministic
    /// matrix-vector product). Every quantity the optimizer and variance
    /// analysis consume depends on `W` only through `G = WᵀW`, so two
    /// pipeline runs with equal fingerprints optimize the identical
    /// problem — this is what content-addresses cached strategies in
    /// `ldp-store`.
    ///
    /// The default costs one `gram()` construction plus one `O(n)`
    /// diagonal read and one Gram matvec; it never materializes the
    /// `n × n` Gram. Stability: the value is a pure function of the
    /// workload's floating-point behavior, identical across processes,
    /// thread counts, *and kernel backends* — the whole default,
    /// including the [`Workload::gram`] construction itself, runs pinned
    /// to the scalar backend on a single thread
    /// ([`ldp_linalg::kernels::with_scalar_serial`]), because
    /// cross-backend bit-equality is deliberately outside the
    /// determinism contract (FMA changes rounding) while fingerprints
    /// must content-address the same strategy everywhere. Pinning the
    /// construction too matters for workloads whose Gram materializes
    /// entries through the float kernels (e.g. [`Dense`](crate::Dense)'s
    /// `WᵀW` matmul): the probe reads those entry bits verbatim, so they
    /// must not carry the ambient backend's rounding. Callers that
    /// already hold the Gram should use
    /// [`Workload::fingerprint_with_gram`] to avoid rebuilding it — see
    /// its backend-independence requirement on the passed operator.
    fn fingerprint(&self) -> u64 {
        ldp_linalg::kernels::with_scalar_serial(|| self.fingerprint_with_gram(&self.gram()))
    }

    /// The named multi-attribute schema this workload was declared over,
    /// if any. Schema-first workloads
    /// ([`SchemaWorkload`](crate::SchemaWorkload)) return their schema so
    /// deployments can resolve and answer *ad-hoc* [`Query`](crate::Query)s
    /// against live estimates; flat workloads return `None`.
    fn schema(&self) -> Option<&Schema> {
        None
    }

    /// [`Workload::fingerprint`] over an already-constructed Gram
    /// operator — `gram` must be this workload's own [`Workload::gram`]
    /// (possibly cloned; the handle is `Arc`-backed and cheap). This is
    /// the method to override when customizing fingerprints; the
    /// zero-argument form always delegates here.
    ///
    /// Backend independence: the probe reads the operator's stored
    /// entry bits (diagonal + matvec) pinned to scalar arithmetic, but
    /// it cannot un-round entries that were *materialized* under another
    /// backend. [`Workload::gram`] implementations therefore pin any
    /// float-kernel materialization themselves (as [`Dense`](crate::Dense)
    /// does), which makes every `gram()` handle safe to pass here; an
    /// operator built some other way must have machine-independent bits
    /// (closed-form entries, or construction under
    /// [`ldp_linalg::kernels::with_scalar_serial`]) or the resulting
    /// fingerprint will differ across hosts and orphan caches.
    fn fingerprint_with_gram(&self, gram: &Gram) -> u64 {
        fingerprint_of(&self.name(), self.domain_size(), self.num_queries(), gram)
    }
}

/// The fingerprint token stream behind [`Workload::fingerprint_with_gram`]:
/// an identity string plus dimensions plus Gram probe bits. Exposed so
/// implementations that override the method (e.g. to hash a canonical,
/// display-independent identity instead of their display name) produce
/// values in the same family without duplicating the probe logic.
pub fn fingerprint_of(identity: &str, domain_size: usize, num_queries: usize, gram: &Gram) -> u64 {
    let mut h = Fnv64::new();
    h.write_str("ldp-workload-fingerprint/1");
    h.write_str(identity);
    h.write_u64(domain_size as u64);
    h.write_u64(num_queries as u64);
    // The probe bits must be identical on every machine that shares a
    // cache or checkpoint, so the floating-point reads run pinned to the
    // scalar backend on one thread — the exact arithmetic the committed
    // golden fingerprints were produced with, independent of LDP_KERNEL
    // and CPU feature detection.
    ldp_linalg::kernels::with_scalar_serial(|| {
        for d in gram.diagonal() {
            h.write_f64(d);
        }
        // A fixed pseudo-random probe vector (LCG; no RNG dependency)
        // exercises the off-diagonal structure.
        let mut state = 0x2545_f491_4f6c_dd1d_u64;
        let probe: Vec<f64> = (0..domain_size)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 40) as f64) / ((1u64 << 24) as f64) - 0.5
            })
            .collect();
        for v in gram.matvec(&probe) {
            h.write_f64(v);
        }
    });
    h.finish()
}

/// Shared test helpers asserting the three views of a workload agree.
/// Used by the unit tests of every workload implementation in this crate
/// and re-exercised with random inputs by the `tests/conformance.rs`
/// property suite (which is why it is compiled into the library rather
/// than gated behind `cfg(test)`).
pub mod conformance {
    use super::*;

    /// Asserts `gram()`, `evaluate()`, `evaluate_into()`, `matrix()`,
    /// `num_queries()` and `frobenius_sq()` are mutually consistent on a
    /// fixed workload, including the structured-Gram operator against the
    /// dense reference `matrix().gram()`.
    pub fn assert_conformant(w: &dyn Workload) {
        let n = w.domain_size();
        let mat = w.matrix();
        assert_eq!(mat.shape(), (w.num_queries(), n), "matrix shape");

        // The structured Gram operator matches the explicit matrix, both
        // materialized and through its matvec.
        let gram = w.gram();
        assert_eq!(gram.shape(), (n, n), "gram shape");
        let explicit_gram = mat.gram();
        let scale = explicit_gram.max_abs().max(1.0);
        let dense = gram.to_dense();
        assert!(
            dense.max_abs_diff(&explicit_gram) < 1e-9 * scale,
            "gram mismatch for {} (max diff {:.3e})",
            w.name(),
            dense.max_abs_diff(&explicit_gram)
        );

        let x: Vec<f64> = (0..n).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let via_op = gram.matvec(&x);
        let via_dense = explicit_gram.matvec(&x);
        for (a, b) in via_op.iter().zip(&via_dense) {
            assert!(
                (a - b).abs() < 1e-9 * scale * (n as f64).max(1.0),
                "gram matvec mismatch for {}: {a} vs {b}",
                w.name()
            );
        }

        // The Gram diagonal is reachable without materialization.
        let diag = gram.diagonal();
        for (j, d) in diag.iter().enumerate() {
            assert!(
                (d - explicit_gram[(j, j)]).abs() < 1e-9 * scale,
                "gram diagonal mismatch for {}",
                w.name()
            );
        }

        // evaluate matches the explicit matrix on a non-trivial vector,
        // and evaluate_into agrees with evaluate.
        let via_eval = w.evaluate(&x);
        let via_mat = mat.matvec(&x);
        for (a, b) in via_eval.iter().zip(&via_mat) {
            assert!(
                (a - b).abs() < 1e-9 * scale,
                "evaluate mismatch for {}",
                w.name()
            );
        }
        let mut buf = vec![f64::NAN; w.num_queries()];
        w.evaluate_into(&x, &mut buf);
        for (a, b) in buf.iter().zip(&via_eval) {
            assert!(
                (a - b).abs() < 1e-12 * scale,
                "evaluate_into mismatch for {}",
                w.name()
            );
        }

        // Frobenius norm agrees, both the override and the trait default
        // (structured trace).
        assert!(
            (w.frobenius_sq() - explicit_gram.trace()).abs() < 1e-9 * scale,
            "frobenius mismatch for {}",
            w.name()
        );
        assert!(
            (gram.trace() - explicit_gram.trace()).abs() < 1e-9 * scale,
            "gram trace mismatch for {}",
            w.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Tiny;

    impl Workload for Tiny {
        fn name(&self) -> String {
            "Tiny".into()
        }
        fn domain_size(&self) -> usize {
            3
        }
        fn num_queries(&self) -> usize {
            2
        }
        fn gram(&self) -> Gram {
            // W = [[1,1,0],[0,1,1]]
            Gram::dense(Matrix::from_rows(&[
                &[1.0, 1.0, 0.0],
                &[1.0, 2.0, 1.0],
                &[0.0, 1.0, 1.0],
            ]))
        }
        fn evaluate(&self, x: &[f64]) -> Vec<f64> {
            vec![x[0] + x[1], x[1] + x[2]]
        }
    }

    #[test]
    fn default_matrix_assembly() {
        let w = Tiny;
        let m = w.matrix();
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 1.0, 0.0], &[0.0, 1.0, 1.0]]));
        conformance::assert_conformant(&w);
    }

    #[test]
    fn total_squared_error() {
        let w = Tiny;
        let err = w.total_squared_error(&[1.0, 0.0, 0.0], &[0.0, 0.0, 0.0]);
        assert_eq!(err, 1.0); // only query 1 differs, by 1
    }

    #[test]
    fn default_frobenius_reads_structured_trace() {
        // The default never materializes the Gram: it must equal tr(G).
        let w = Tiny;
        assert_eq!(w.frobenius_sq(), 4.0);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        // Deterministic across calls (the cache key must never drift) …
        assert_eq!(Tiny.fingerprint(), Tiny.fingerprint());
        // … and pinned: a change to this value invalidates every strategy
        // cache in the wild, so it must be deliberate, not accidental.
        struct Shifted;
        impl Workload for Shifted {
            fn name(&self) -> String {
                "Shifted".into()
            }
            fn domain_size(&self) -> usize {
                3
            }
            fn num_queries(&self) -> usize {
                2
            }
            fn gram(&self) -> Gram {
                Gram::dense(Matrix::from_rows(&[
                    &[1.0, 0.0, 0.0],
                    &[0.0, 2.0, 1.0],
                    &[0.0, 1.0, 1.0],
                ]))
            }
            fn evaluate(&self, x: &[f64]) -> Vec<f64> {
                vec![x[0], x[1] + x[2]]
            }
        }
        assert_ne!(Tiny.fingerprint(), Shifted.fingerprint());
    }

    #[test]
    fn fingerprint_matches_across_structured_and_probe_paths() {
        // The fingerprint is a pure function of the workload: repeated
        // fresh instances agree.
        use crate::Prefix;
        assert_eq!(Prefix::new(16).fingerprint(), Prefix::new(16).fingerprint());
        assert_ne!(Prefix::new(16).fingerprint(), Prefix::new(32).fingerprint());
    }
}
