//! Arbitrary explicit workloads and workload composition.

use std::sync::Arc;

use ldp_linalg::{Gram, LinOp, Matrix, ScaledOp, SumOp};

use crate::Workload;

/// A workload given by an explicit `p × n` matrix. Supports completely
/// arbitrary query sets — the paper makes no structural assumptions on
/// `W`, including repeated or linearly dependent queries.
#[derive(Clone, Debug)]
pub struct Dense {
    name: String,
    w: Matrix,
}

impl Dense {
    /// Wraps an explicit workload matrix.
    ///
    /// # Panics
    /// Panics if the matrix has zero columns.
    pub fn new(w: Matrix) -> Self {
        assert!(w.cols() > 0, "workload must have a non-empty domain");
        Self {
            name: "Custom".into(),
            w,
        }
    }

    /// Sets the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Builds a workload from query rows.
    pub fn from_queries(queries: &[&[f64]]) -> Self {
        Self::new(Matrix::from_rows(queries))
    }
}

impl Workload for Dense {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn domain_size(&self) -> usize {
        self.w.cols()
    }
    fn num_queries(&self) -> usize {
        self.w.rows()
    }
    fn gram(&self) -> Gram {
        // WᵀW is materialized through the float matmul kernels, and FMA
        // makes their rounding backend-dependent — but the entry *bits*
        // of this Gram feed fingerprints (strategy-cache keys, checkpoint
        // bindings) wherever a caller holds the handle, so the
        // materialization is pinned to the scalar backend: the entries
        // are a pure function of `W` on every machine. Thread-count
        // invariance within a backend is already guaranteed by the
        // determinism contract, so only the backend needs pinning.
        ldp_linalg::kernels::with_backend(ldp_linalg::Backend::Scalar, || {
            Gram::dense(self.w.gram())
        })
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        self.w.matvec(x)
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        LinOp::matvec_into(&self.w, x, out);
    }
    fn matrix(&self) -> Matrix {
        self.w.clone()
    }
    fn frobenius_sq(&self) -> f64 {
        self.w.frobenius_norm().powi(2)
    }
}

/// The vertical stacking (union) of several workloads over the same
/// domain, optionally with per-part importance weights: weighting a part
/// by `c` multiplies its rows by `c`, i.e. its squared error contribution
/// by `c²` — the paper's "relative importance" knob from the introduction.
pub struct Stacked {
    name: String,
    parts: Vec<(f64, Box<dyn Workload + Send + Sync>)>,
    n: usize,
}

impl std::fmt::Debug for Stacked {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stacked")
            .field("name", &self.name)
            .field("parts", &self.parts.len())
            .field("n", &self.n)
            .finish_non_exhaustive()
    }
}

impl Stacked {
    /// Stacks equally weighted workloads.
    ///
    /// # Panics
    /// Panics if `parts` is empty or domains disagree.
    pub fn new(parts: Vec<Box<dyn Workload + Send + Sync>>) -> Self {
        Self::weighted(parts.into_iter().map(|p| (1.0, p)).collect())
    }

    /// Stacks workloads with importance weights.
    ///
    /// # Panics
    /// Panics if `parts` is empty, domains disagree, or a weight is
    /// non-positive/non-finite.
    pub fn weighted(parts: Vec<(f64, Box<dyn Workload + Send + Sync>)>) -> Self {
        assert!(
            !parts.is_empty(),
            "stacked workload needs at least one part"
        );
        let n = parts[0].1.domain_size();
        for (c, p) in &parts {
            assert_eq!(p.domain_size(), n, "all parts must share one domain");
            assert!(c.is_finite() && *c > 0.0, "weights must be positive");
        }
        Self {
            name: "Stacked".into(),
            parts,
            n,
        }
    }

    /// Sets the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}

impl Workload for Stacked {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        self.parts.iter().map(|(_, p)| p.num_queries()).sum()
    }
    fn gram(&self) -> Gram {
        // Σᵢ cᵢ²·Gᵢ as a structured sum: each part keeps its own
        // (possibly implicit) Gram operator.
        let terms: Vec<Arc<dyn LinOp>> = self
            .parts
            .iter()
            .map(|(c, p)| Arc::new(ScaledOp::new(c * c, p.gram().share())) as Arc<dyn LinOp>)
            .collect();
        Gram::from_arc(Arc::new(SumOp::new(terms)))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_queries());
        for (c, p) in &self.parts {
            out.extend(p.evaluate(x).into_iter().map(|v| v * c));
        }
        out
    }
    fn frobenius_sq(&self) -> f64 {
        self.parts
            .iter()
            .map(|(c, p)| c * c * p.frobenius_sq())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;
    use crate::{Histogram, Prefix, Total};

    #[test]
    fn dense_conformance() {
        let w = Dense::from_queries(&[&[1.0, 0.0, 2.0], &[0.0, -1.0, 1.0]]);
        assert_conformant(&w);
        assert_eq!(w.num_queries(), 2);
        assert_eq!(w.domain_size(), 3);
    }

    #[test]
    fn dense_allows_duplicate_queries() {
        let w = Dense::from_queries(&[&[1.0, 1.0], &[1.0, 1.0]]);
        assert_conformant(&w);
        // Duplicated query doubles the Gram.
        assert_eq!(w.gram().to_dense(), Matrix::filled(2, 2, 2.0));
    }

    #[test]
    fn stacked_conformance() {
        let s = Stacked::new(vec![Box::new(Histogram::new(4)), Box::new(Prefix::new(4))]);
        assert_conformant(&s);
        assert_eq!(s.num_queries(), 8);
    }

    #[test]
    fn weighted_stack_scales_gram_quadratically() {
        let s = Stacked::weighted(vec![(3.0, Box::new(Total::new(2)))]);
        // Total gram = all-ones; weight 3 -> 9x.
        assert_eq!(s.gram().to_dense(), Matrix::filled(2, 2, 9.0));
        assert_eq!(s.evaluate(&[1.0, 1.0]), vec![6.0]);
        assert_conformant(&s);
    }

    #[test]
    #[should_panic(expected = "share one domain")]
    fn stacked_rejects_mixed_domains() {
        let _ = Stacked::new(vec![
            Box::new(Histogram::new(3)),
            Box::new(Histogram::new(4)),
        ]);
    }

    #[test]
    fn named_workloads() {
        let w = Dense::new(Matrix::identity(2)).with_name("My Queries");
        assert_eq!(w.name(), "My Queries");
        let s = Stacked::new(vec![Box::new(Histogram::new(2))]).with_name("Union");
        assert_eq!(s.name(), "Union");
    }
}
