//! One-dimensional workloads: Histogram, Total, Prefix, All Range, and
//! fixed-width range queries.

use ldp_linalg::{Gram, Matrix, StructuredGram};

use crate::Workload;

/// The Histogram workload `W = I` — point queries for every user type
/// (the running example of the paper).
#[derive(Clone, Copy, Debug)]
pub struct Histogram {
    n: usize,
}

impl Histogram {
    /// Histogram over a domain of size `n`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Self { n }
    }
}

impl Workload for Histogram {
    fn name(&self) -> String {
        "Histogram".into()
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        self.n
    }
    fn gram(&self) -> Gram {
        Gram::new(StructuredGram::scaled_identity(self.n, 1.0))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        x.to_vec()
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        out.copy_from_slice(x);
    }
    fn matrix(&self) -> Matrix {
        Matrix::identity(self.n)
    }
    fn frobenius_sq(&self) -> f64 {
        self.n as f64
    }
}

/// The single total-count query `W = 1ᵀ` — the easiest possible workload,
/// useful as a sanity baseline.
#[derive(Clone, Copy, Debug)]
pub struct Total {
    n: usize,
}

impl Total {
    /// Total count over a domain of size `n`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Self { n }
    }
}

impl Workload for Total {
    fn name(&self) -> String {
        "Total".into()
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        1
    }
    fn gram(&self) -> Gram {
        Gram::new(StructuredGram::constant(self.n, 1.0))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        vec![x.iter().sum()]
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), 1);
        out[0] = x.iter().sum();
    }
    fn frobenius_sq(&self) -> f64 {
        self.n as f64
    }
}

/// The Prefix workload (Example 2.4): query `i` counts all types `≤ i`,
/// i.e. the unnormalized empirical CDF.
#[derive(Clone, Copy, Debug)]
pub struct Prefix {
    n: usize,
}

impl Prefix {
    /// Prefix queries over a domain of size `n`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Self { n }
    }
}

impl Workload for Prefix {
    fn name(&self) -> String {
        "Prefix".into()
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        self.n
    }
    fn gram(&self) -> Gram {
        // W[i,j] = 1{j <= i}; G[j,k] = #{i >= max(j,k)} = n − max(j,k),
        // carried implicitly with an O(n) matvec.
        Gram::new(StructuredGram::prefix(self.n))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut out = Vec::with_capacity(self.n);
        let mut acc = 0.0;
        for &v in x {
            acc += v;
            out.push(acc);
        }
        out
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.n);
        let mut acc = 0.0;
        for (o, &v) in out.iter_mut().zip(x) {
            acc += v;
            *o = acc;
        }
    }
    fn matrix(&self) -> Matrix {
        Matrix::from_fn(self.n, self.n, |i, j| if j <= i { 1.0 } else { 0.0 })
    }
    fn frobenius_sq(&self) -> f64 {
        // Σ_j (n − j) = n(n+1)/2, in f64 so huge domains cannot wrap.
        self.n as f64 * (self.n as f64 + 1.0) / 2.0
    }
}

/// The All Range workload: one query per interval `[a, b]`,
/// `0 ≤ a ≤ b < n`, ordered lexicographically by `(a, b)`. Studied for
/// LDP range queries by Cormode et al. \[13\].
#[derive(Clone, Copy, Debug)]
pub struct AllRange {
    n: usize,
}

impl AllRange {
    /// All interval queries over a domain of size `n`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "domain must be non-empty");
        Self { n }
    }
}

impl Workload for AllRange {
    fn name(&self) -> String {
        "All Range".into()
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        self.n * (self.n + 1) / 2
    }
    fn gram(&self) -> Gram {
        // G[j,k] = #{(a,b): a <= min(j,k), b >= max(j,k)}
        //        = (min(j,k)+1)·(n − max(j,k)), implicit with O(n) matvec.
        Gram::new(StructuredGram::all_range(self.n))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        // Prefix sums make each interval O(1).
        let mut prefix = vec![0.0; self.n + 1];
        for (i, &v) in x.iter().enumerate() {
            prefix[i + 1] = prefix[i] + v;
        }
        let mut out = Vec::with_capacity(self.num_queries());
        for a in 0..self.n {
            for b in a..self.n {
                out.push(prefix[b + 1] - prefix[a]);
            }
        }
        out
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.n);
        assert_eq!(out.len(), self.num_queries());
        let mut prefix = vec![0.0; self.n + 1];
        for (i, &v) in x.iter().enumerate() {
            prefix[i + 1] = prefix[i] + v;
        }
        let mut idx = 0;
        for a in 0..self.n {
            for b in a..self.n {
                out[idx] = prefix[b + 1] - prefix[a];
                idx += 1;
            }
        }
    }
    fn frobenius_sq(&self) -> f64 {
        // Σ_j (j+1)(n−j) = n(n+1)(n+2)/6, in f64 so huge domains cannot
        // wrap.
        self.n as f64 * (self.n as f64 + 1.0) * (self.n as f64 + 2.0) / 6.0
    }
}

/// All range queries of a fixed width `w`: intervals `[a, a+w-1]` for
/// `a = 0..n-w+1`. A common "sliding window" analytics workload; not in
/// the paper's suite but useful to demonstrate workload adaptivity.
#[derive(Clone, Copy, Debug)]
pub struct WidthRange {
    n: usize,
    width: usize,
}

impl WidthRange {
    /// Width-`width` interval queries over a domain of size `n`.
    ///
    /// # Panics
    /// Panics if `width == 0` or `width > n`.
    pub fn new(n: usize, width: usize) -> Self {
        assert!(width > 0 && width <= n, "width must be in 1..=n");
        Self { n, width }
    }
}

impl Workload for WidthRange {
    fn name(&self) -> String {
        format!("Width-{} Range", self.width)
    }
    fn domain_size(&self) -> usize {
        self.n
    }
    fn num_queries(&self) -> usize {
        self.n - self.width + 1
    }
    fn gram(&self) -> Gram {
        // Query a covers j iff a <= j <= a+w-1, i.e. a in [j-w+1, j],
        // intersected with [0, n-w]. G[j,k] = #overlapping starts — a
        // banded matrix; kept dense (the band structure is not yet worth
        // a dedicated operator at the sizes this workload is used at).
        let (n, w) = (self.n as isize, self.width as isize);
        Gram::dense(Matrix::from_fn(self.n, self.n, |j, k| {
            let (j, k) = (j as isize, k as isize);
            let lo = (j.max(k) - w + 1).max(0);
            let hi = j.min(k).min(n - w);
            ((hi - lo + 1).max(0)) as f64
        }))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        let mut prefix = vec![0.0; self.n + 1];
        for (i, &v) in x.iter().enumerate() {
            prefix[i + 1] = prefix[i] + v;
        }
        (0..self.num_queries())
            .map(|a| prefix[a + self.width] - prefix[a])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;

    #[test]
    fn histogram_conformance() {
        for n in [1, 2, 5, 16] {
            assert_conformant(&Histogram::new(n));
        }
    }

    #[test]
    fn total_conformance() {
        for n in [1, 3, 8] {
            assert_conformant(&Total::new(n));
        }
    }

    #[test]
    fn prefix_conformance() {
        for n in [1, 2, 5, 16] {
            assert_conformant(&Prefix::new(n));
        }
    }

    #[test]
    fn all_range_conformance() {
        for n in [1, 2, 5, 12] {
            assert_conformant(&AllRange::new(n));
        }
    }

    #[test]
    fn width_range_conformance() {
        for (n, w) in [(5, 1), (5, 3), (5, 5), (12, 4)] {
            assert_conformant(&WidthRange::new(n, w));
        }
    }

    #[test]
    fn prefix_matches_example_2_4() {
        // The 5x5 lower-triangular matrix of Example 2.4.
        let w = Prefix::new(5).matrix();
        for i in 0..5 {
            for j in 0..5 {
                assert_eq!(w[(i, j)], if j <= i { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn all_range_query_count() {
        assert_eq!(AllRange::new(4).num_queries(), 10);
        assert_eq!(AllRange::new(512).num_queries(), 512 * 513 / 2);
    }

    #[test]
    fn all_range_evaluate_ordering() {
        // n=3: intervals (0,0),(0,1),(0,2),(1,1),(1,2),(2,2).
        let w = AllRange::new(3);
        let ans = w.evaluate(&[1.0, 10.0, 100.0]);
        assert_eq!(ans, vec![1.0, 11.0, 111.0, 10.0, 110.0, 100.0]);
    }

    #[test]
    fn width_range_counts_and_values() {
        let w = WidthRange::new(5, 2);
        assert_eq!(w.num_queries(), 4);
        let ans = w.evaluate(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(ans, vec![3.0, 5.0, 7.0, 9.0]);
    }

    #[test]
    fn frobenius_closed_forms() {
        for n in [3usize, 7, 20] {
            let p = Prefix::new(n);
            assert!((p.frobenius_sq() - p.matrix().frobenius_norm().powi(2)).abs() < 1e-9);
            let r = AllRange::new(n);
            assert!((r.frobenius_sq() - r.matrix().frobenius_norm().powi(2)).abs() < 1e-9);
        }
    }

    #[test]
    fn histogram_is_easier_than_all_range() {
        // tr(G) comparison backs the paper's "hardness" ordering.
        let n = 16;
        assert!(Histogram::new(n).frobenius_sq() < AllRange::new(n).frobenius_sq());
    }
}
