//! The Parity workload over a binary domain (studied by Gaboardi et al.
//! \[19\] and used in the paper's Section 6.1).
//!
//! A parity query for an attribute subset `S ⊆ {0,..,d-1}` is
//! `χ_S(u) = (−1)^{|u ∧ S|}` — a ±1 query rather than a 0/1 predicate.
//! Following the DualQuery experiments the paper cites, the default
//! workload contains all parities on subsets of size `1..=3`, which makes
//! it low-rank (`p < n`), consistent with the paper's Section 6.5 remark
//! that "Parity is a low-rank workload".

use ldp_linalg::{Gram, StructuredGram};

use crate::combinatorics::{binomial, krawtchouk};
use crate::Workload;

/// Parities on all attribute subsets of size `min_size..=max_size` over
/// `{0,1}^d`.
#[derive(Clone, Copy, Debug)]
pub struct Parity {
    d: usize,
    min_size: usize,
    max_size: usize,
}

impl Parity {
    /// Parities of subsets of size `1..=k` — the configuration used in the
    /// paper-suite experiments.
    ///
    /// # Panics
    /// Panics if `k == 0`, `k > d`, `d == 0`, or `d > 20`.
    pub fn up_to(d: usize, k: usize) -> Self {
        Self::with_sizes(d, 1, k)
    }

    /// Parities of subsets with sizes in `min_size..=max_size`.
    /// `min_size = 0` includes the constant query `χ_∅ ≡ 1` (total count).
    ///
    /// # Panics
    /// Panics on an empty or out-of-range size band.
    pub fn with_sizes(d: usize, min_size: usize, max_size: usize) -> Self {
        assert!(d > 0 && d <= 20, "attribute count must be in 1..=20");
        assert!(min_size <= max_size && max_size <= d, "invalid size band");
        Self {
            d,
            min_size,
            max_size,
        }
    }

    fn n(&self) -> usize {
        1 << self.d
    }

    /// The subset bitmasks in workload row order.
    fn subsets(&self) -> Vec<usize> {
        (0..self.n())
            .filter(|s| {
                let c = s.count_ones() as usize;
                c >= self.min_size && c <= self.max_size
            })
            .collect()
    }
}

impl Workload for Parity {
    fn name(&self) -> String {
        "Parity".into()
    }
    fn domain_size(&self) -> usize {
        self.n()
    }
    fn num_queries(&self) -> usize {
        (self.min_size..=self.max_size)
            .map(|j| binomial(self.d, j) as usize)
            .sum()
    }
    fn gram(&self) -> Gram {
        // G[u,v] = Σ_S χ_S(u)χ_S(v) = Σ_S χ_S(u⊕v)
        //        = Σ_{j=min..max} K_j(hamming(u⊕v); d) — a Hamming-distance
        // kernel, carried implicitly with an O(n log n) Walsh–Hadamard
        // matvec instead of a 2^d × 2^d dense table.
        let kernel: Vec<f64> = (0..=self.d)
            .map(|h| {
                (self.min_size..=self.max_size)
                    .map(|j| krawtchouk(j, h, self.d))
                    .sum()
            })
            .collect();
        Gram::new(StructuredGram::hamming_kernel(self.d, kernel))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n());
        self.subsets()
            .iter()
            .map(|&s| {
                x.iter()
                    .enumerate()
                    .map(|(u, &xu)| {
                        if (u & s).count_ones() % 2 == 0 {
                            xu
                        } else {
                            -xu
                        }
                    })
                    .sum()
            })
            .collect()
    }
    fn frobenius_sq(&self) -> f64 {
        // Every entry of W is ±1: p·n.
        (self.num_queries() * self.n()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;

    #[test]
    fn parity_conformance() {
        for (d, lo, hi) in [(3, 1, 1), (3, 1, 3), (4, 1, 3), (4, 0, 4), (5, 2, 3)] {
            assert_conformant(&Parity::with_sizes(d, lo, hi));
        }
    }

    #[test]
    fn query_count() {
        // d=9, sizes 1..=3: 9 + 36 + 84 = 129 queries, far below n=512.
        let p = Parity::up_to(9, 3);
        assert_eq!(p.num_queries(), 129);
        assert!(
            p.num_queries() < p.domain_size(),
            "Parity should be low-rank"
        );
    }

    #[test]
    fn full_parity_gram_is_scaled_identity() {
        // All 2^d parities (sizes 0..=d) form a Hadamard matrix:
        // G = HᵀH = n·I.
        let p = Parity::with_sizes(3, 0, 3);
        let g = p.gram().to_dense();
        use ldp_linalg::Matrix;
        assert!(g.max_abs_diff(&Matrix::identity(8).scaled(8.0)) < 1e-9);
    }

    #[test]
    fn single_attribute_parity_values() {
        // d=2, subsets of size exactly 1: masks 1 and 2.
        let p = Parity::with_sizes(2, 1, 1);
        let ans = p.evaluate(&[1.0, 2.0, 4.0, 8.0]);
        // mask 1: +1 for even bit0 -> 1−2+4−8 = −5
        // mask 2: 1+2−4−8 = −9
        assert_eq!(ans, vec![-5.0, -9.0]);
    }

    #[test]
    fn constant_parity_is_total_count() {
        let p = Parity::with_sizes(2, 0, 0);
        assert_eq!(p.num_queries(), 1);
        assert_eq!(p.evaluate(&[1.0, 2.0, 3.0, 4.0]), vec![10.0]);
    }

    #[test]
    fn gram_rank_matches_query_count() {
        // Parity rows are orthogonal characters, so rank = p.
        let p = Parity::up_to(4, 2);
        let svd = ldp_linalg::svd(&p.matrix());
        assert_eq!(svd.rank(), p.num_queries());
    }
}
