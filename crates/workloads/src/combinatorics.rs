//! Small combinatorial helpers shared by the binary-domain workloads.

/// Binomial coefficient `C(n, k)` as `f64` (exact for the sizes used here;
/// the workloads never exceed `d = 20` attributes).
pub fn binomial(n: usize, k: usize) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result.round()
}

/// The Krawtchouk polynomial `K_j(h; d) = Σ_i (−1)^i C(h,i) C(d−h, j−i)`,
/// which evaluates `Σ_{|S|=j} χ_S(u)χ_S(v)` for binary strings `u, v` at
/// Hamming distance `h` in `{0,1}^d`. This gives the Parity workload its
/// closed-form Gram matrix.
pub fn krawtchouk(j: usize, h: usize, d: usize) -> f64 {
    let mut total = 0.0;
    for i in 0..=j {
        let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
        total += sign * binomial(h, i) * binomial(d - h, j - i);
    }
    total
}

/// Enumerates all bitmask subsets of `{0,..,d-1}` with exactly `k` bits,
/// in increasing numeric order.
pub(crate) fn subsets_of_size(d: usize, k: usize) -> Vec<usize> {
    let mut out = Vec::new();
    for mask in 0usize..(1 << d) {
        if mask.count_ones() as usize == k {
            out.push(mask);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_table() {
        assert_eq!(binomial(5, 0), 1.0);
        assert_eq!(binomial(5, 2), 10.0);
        assert_eq!(binomial(5, 5), 1.0);
        assert_eq!(binomial(5, 6), 0.0);
        assert_eq!(binomial(10, 3), 120.0);
    }

    #[test]
    fn krawtchouk_brute_force() {
        // Compare against direct summation over subsets for small d.
        let d = 5;
        for j in 0..=d {
            for h in 0..=d {
                // Pick u = 0 and v with h low bits set.
                let v: usize = (1 << h) - 1;
                let mut direct = 0.0;
                for s in subsets_of_size(d, j) {
                    let chi_u = 1.0; // χ_S(0) = 1
                    let chi_v = if (s & v).count_ones().is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    direct += chi_u * chi_v;
                }
                let k = krawtchouk(j, h, d);
                assert!(
                    (k - direct).abs() < 1e-9,
                    "K_{j}({h};{d}) = {k}, direct {direct}"
                );
            }
        }
    }

    #[test]
    fn krawtchouk_at_zero_distance_counts_subsets() {
        assert_eq!(krawtchouk(2, 0, 6), binomial(6, 2));
    }

    #[test]
    fn subsets_enumeration() {
        let s = subsets_of_size(4, 2);
        assert_eq!(s.len(), 6);
        assert!(s.contains(&0b0011));
        assert!(s.contains(&0b1100));
    }
}
