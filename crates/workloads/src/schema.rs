//! Named multi-attribute domains: the schema-first front end.
//!
//! The paper's headline setting is a *high-dimensional* domain — the
//! Cartesian product of several categorical attributes — with workloads
//! expressed as unions of Kronecker products over it. [`Schema`] is the
//! user-facing description of such a domain (named attributes with
//! cardinalities), and [`Domain`] is the underlying row-major index
//! arithmetic (sizes, strides, flatten/unflatten) every structured
//! operator relies on.
//!
//! ```
//! use ldp_workloads::Schema;
//!
//! let schema = Schema::new([("age", 100), ("sex", 2), ("state", 50)]);
//! assert_eq!(schema.domain_size(), 10_000);
//! // User type = row-major flattened coordinates, by name or position.
//! let u = schema.user_type(&[("age", 30), ("sex", 1), ("state", 7)]).unwrap();
//! assert_eq!(u, schema.domain().flatten(&[30, 1, 7]));
//! assert_eq!(schema.domain().unflatten(u), vec![30, 1, 7]);
//! ```
//!
//! Queries over a schema are built with [`Query`](crate::Query) and
//! lowered to a structured [`SchemaWorkload`](crate::SchemaWorkload) —
//! see the `query` module.

use std::fmt;

/// Errors raised when resolving names, values, or queries against a
/// [`Schema`]. These are *dynamic* errors — ad-hoc queries may come from
/// end users at serving time, so resolution must fail closed with a typed
/// error rather than panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SchemaError {
    /// The named attribute does not exist in the schema.
    UnknownAttribute {
        /// The name that failed to resolve.
        attribute: String,
    },
    /// A value (or range endpoint) lies outside the attribute's domain.
    ValueOutOfRange {
        /// Attribute the value was given for.
        attribute: String,
        /// The offending value.
        value: usize,
        /// The attribute's cardinality.
        size: usize,
    },
    /// A query names the same attribute twice.
    DuplicateAttribute {
        /// The repeated name.
        attribute: String,
    },
    /// A range or predicate selects no value at all — the query would be
    /// identically zero, which is almost certainly a mistake.
    EmptySelection {
        /// Attribute whose selection is empty.
        attribute: String,
    },
    /// A workload was requested with no queries.
    NoQueries,
    /// The query produces multiple values where a scalar was required
    /// (ad-hoc serving answers one number per query).
    NotScalar {
        /// Number of values the query produces.
        rows: usize,
    },
    /// The query's row count (product of per-attribute factor rows)
    /// overflows `usize`.
    RowCountOverflow,
    /// A dense query referenced an open-domain attribute. Open
    /// attributes are served by the frequency-oracle path (`ldp-sparse`),
    /// not the dense workload; only [`Query::key`](crate::Query::key)
    /// may name them, and only alone.
    OpenAttribute {
        /// The open attribute that was referenced.
        attribute: String,
    },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::UnknownAttribute { attribute } => {
                write!(f, "unknown attribute '{attribute}'")
            }
            SchemaError::ValueOutOfRange {
                attribute,
                value,
                size,
            } => write!(
                f,
                "value {value} is out of range for attribute '{attribute}' (size {size})"
            ),
            SchemaError::DuplicateAttribute { attribute } => {
                write!(f, "attribute '{attribute}' appears more than once")
            }
            SchemaError::EmptySelection { attribute } => write!(
                f,
                "selection on attribute '{attribute}' matches no value; \
                 the query would be identically zero"
            ),
            SchemaError::NoQueries => write!(f, "a schema workload needs at least one query"),
            SchemaError::NotScalar { rows } => write!(
                f,
                "query produces {rows} values, not a scalar; marginal queries \
                 belong in the deployed workload (read them via Estimate::answers)"
            ),
            SchemaError::RowCountOverflow => {
                write!(f, "query row count overflows usize")
            }
            SchemaError::OpenAttribute { attribute } => write!(
                f,
                "attribute '{attribute}' is open-domain; dense queries cannot \
                 reference it (point queries go through the sparse oracle path)"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Row-major index arithmetic over a multi-attribute domain: per-attribute
/// sizes, strides, and flatten/unflatten between coordinates and the
/// flattened user type `u ∈ [n]` every mechanism operates on.
///
/// Attribute `a`'s stride is the product of all later attributes' sizes,
/// so `u = Σ_a coords[a]·stride(a)` — the same layout
/// [`KroneckerOp`](ldp_linalg::KroneckerOp) and
/// [`Product`](crate::Product) use.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Domain {
    sizes: Vec<usize>,
    strides: Vec<usize>,
    total: usize,
}

impl Domain {
    /// A domain with the given per-attribute sizes.
    ///
    /// # Panics
    /// Panics if `sizes` is empty, any size is zero, or the total size
    /// overflows `usize`.
    pub fn new(sizes: Vec<usize>) -> Self {
        assert!(!sizes.is_empty(), "domain needs at least one attribute");
        let mut strides = vec![1usize; sizes.len()];
        let mut total = 1usize;
        for (a, &size) in sizes.iter().enumerate().rev() {
            assert!(size > 0, "attribute {a} has an empty domain");
            strides[a] = total;
            total = total
                .checked_mul(size)
                // ldp-lint: allow(no-unwrap-in-lib) -- documented `# Panics`
                // constructor: an overflowing domain is a caller bug, and
                // `Schema::new` validates sizes before reaching here.
                .expect("domain size overflows usize");
        }
        Self {
            sizes,
            strides,
            total,
        }
    }

    /// Total flattened size `n = Π_a n_a`.
    pub fn size(&self) -> usize {
        self.total
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.sizes.len()
    }

    /// Per-attribute sizes.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// Size of attribute `a`.
    pub fn size_of(&self, a: usize) -> usize {
        self.sizes[a]
    }

    /// Row-major stride of attribute `a` (the product of all later
    /// attributes' sizes).
    pub fn stride(&self, a: usize) -> usize {
        self.strides[a]
    }

    /// Flattens per-attribute coordinates into the user type `u`.
    ///
    /// # Panics
    /// Panics if `coords` has the wrong length or any coordinate is out
    /// of range.
    pub fn flatten(&self, coords: &[usize]) -> usize {
        assert_eq!(
            coords.len(),
            self.sizes.len(),
            "one coordinate per attribute"
        );
        let mut u = 0;
        for ((&c, &size), &stride) in coords.iter().zip(&self.sizes).zip(&self.strides) {
            assert!(c < size, "coordinate {c} out of range (size {size})");
            u += c * stride;
        }
        u
    }

    /// Writes the per-attribute coordinates of user type `index` into
    /// `out`.
    ///
    /// # Panics
    /// Panics if `index >= size()` or `out.len() != num_attributes()`.
    pub fn unflatten_into(&self, index: usize, out: &mut [usize]) {
        assert!(index < self.total, "index {index} out of range");
        assert_eq!(out.len(), self.sizes.len(), "one slot per attribute");
        for ((o, &size), &stride) in out.iter_mut().zip(&self.sizes).zip(&self.strides) {
            *o = (index / stride) % size;
        }
    }

    /// The per-attribute coordinates of user type `index`.
    ///
    /// # Panics
    /// Panics if `index >= size()`.
    pub fn unflatten(&self, index: usize) -> Vec<usize> {
        let mut out = vec![0; self.sizes.len()];
        self.unflatten_into(index, &mut out);
        out
    }
}

/// A named multi-attribute domain: the declaration an application starts
/// from. `Schema::new([("age", 100), ("sex", 2), ("state", 50)])` declares
/// three categorical attributes whose Cartesian product is the user-type
/// domain; [`Query`](crate::Query) objects are resolved against it by
/// attribute name.
///
/// Cheap to clone is not a goal (the pipeline shares it behind an `Arc`);
/// equality is structural, so two schemas with the same attribute list
/// are interchangeable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schema {
    names: Vec<String>,
    domain: Domain,
    /// Open-domain attribute names (URLs, arbitrary strings, …). They
    /// do not participate in the dense product domain; point queries on
    /// them lower to the `ldp-sparse` frequency-oracle path.
    open: Vec<String>,
}

impl Schema {
    /// Declares a schema from `(name, cardinality)` pairs, in storage
    /// order (the first attribute is the most significant in the
    /// flattened index).
    ///
    /// # Panics
    /// Panics if the list is empty, a cardinality is zero, a name
    /// repeats, or the total domain size overflows `usize`.
    pub fn new<N: Into<String>>(attributes: impl IntoIterator<Item = (N, usize)>) -> Self {
        let mut names = Vec::new();
        let mut sizes = Vec::new();
        for (name, size) in attributes {
            let name = name.into();
            assert!(!names.contains(&name), "duplicate attribute name '{name}'");
            names.push(name);
            sizes.push(size);
        }
        Self {
            domain: Domain::new(sizes),
            names,
            open: Vec::new(),
        }
    }

    /// Marks `name` as an *open-domain* attribute — one whose values
    /// are arbitrary strings (URLs, identifiers) rather than a closed
    /// `[k]`. Open attributes are excluded from the dense product
    /// domain; [`Query::key`](crate::Query::key) point queries on them
    /// are served by `ldp-sparse` frequency oracles, and dense queries
    /// that reference them fail with [`SchemaError::OpenAttribute`].
    ///
    /// Chainable: `Schema::new([("age", 8)]).open("url")`.
    ///
    /// # Panics
    /// Panics if `name` collides with a dense attribute or repeats an
    /// open one — a declaration bug, like the `Schema::new` panics.
    pub fn open(mut self, name: impl Into<String>) -> Self {
        let name = name.into();
        assert!(
            !self.names.contains(&name),
            "attribute '{name}' is already declared dense"
        );
        assert!(
            !self.open.contains(&name),
            "duplicate open attribute '{name}'"
        );
        self.open.push(name);
        self
    }

    /// Open-domain attribute names, in declaration order.
    pub fn open_attributes(&self) -> &[String] {
        &self.open
    }

    /// Whether `name` is declared as an open-domain attribute.
    pub fn is_open(&self, name: &str) -> bool {
        self.open.iter().any(|n| n == name)
    }

    /// The underlying index arithmetic.
    pub fn domain(&self) -> &Domain {
        &self.domain
    }

    /// Total flattened domain size `n`.
    pub fn domain_size(&self) -> usize {
        self.domain.size()
    }

    /// Number of attributes.
    pub fn num_attributes(&self) -> usize {
        self.names.len()
    }

    /// Attribute names, in storage order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The position of attribute `name`, if it exists.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// The cardinality of attribute `name`.
    ///
    /// # Errors
    /// [`SchemaError::UnknownAttribute`] if the name does not resolve;
    /// [`SchemaError::OpenAttribute`] if it names an open attribute
    /// (open domains have no cardinality).
    pub fn size_of(&self, name: &str) -> Result<usize, SchemaError> {
        if let Some(a) = self.index_of(name) {
            return Ok(self.domain.size_of(a));
        }
        if self.is_open(name) {
            return Err(SchemaError::OpenAttribute {
                attribute: name.to_string(),
            });
        }
        Err(SchemaError::UnknownAttribute {
            attribute: name.to_string(),
        })
    }

    /// Flattens named coordinates into the user type `u` — the value a
    /// client reports. Every attribute must be given exactly once, in
    /// any order.
    ///
    /// # Errors
    /// [`SchemaError::UnknownAttribute`] for a name outside the schema,
    /// [`SchemaError::DuplicateAttribute`] for a name given twice, or
    /// [`SchemaError::ValueOutOfRange`] for a value at or above the
    /// attribute's cardinality.
    ///
    /// # Panics
    /// Panics if the number of pairs differs from the number of
    /// attributes (a user type is only defined when every attribute has
    /// exactly one value).
    pub fn user_type(&self, values: &[(&str, usize)]) -> Result<usize, SchemaError> {
        assert_eq!(
            values.len(),
            self.names.len(),
            "every attribute needs exactly one value"
        );
        let mut coords = vec![usize::MAX; self.names.len()];
        for &(name, value) in values {
            let a = self
                .index_of(name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    attribute: name.to_string(),
                })?;
            if coords[a] != usize::MAX {
                return Err(SchemaError::DuplicateAttribute {
                    attribute: name.to_string(),
                });
            }
            let size = self.domain.size_of(a);
            if value >= size {
                return Err(SchemaError::ValueOutOfRange {
                    attribute: name.to_string(),
                    value,
                    size,
                });
            }
            coords[a] = value;
        }
        Ok(self.domain.flatten(&coords))
    }

    /// A deterministic one-line description, e.g. `age:100,sex:2,state:50`
    /// — part of the schema workload's stable fingerprint. Open
    /// attributes append as `name:open` (schemas without them keep
    /// their pre-open description, so existing fingerprints hold).
    pub fn describe(&self) -> String {
        self.names
            .iter()
            .zip(self.domain.sizes())
            .map(|(n, s)| format!("{n}:{s}"))
            .chain(self.open.iter().map(|n| format!("{n}:open")))
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_strides_and_flatten_round_trip() {
        let d = Domain::new(vec![4, 3, 5]);
        assert_eq!(d.size(), 60);
        assert_eq!(d.stride(0), 15);
        assert_eq!(d.stride(1), 5);
        assert_eq!(d.stride(2), 1);
        for u in 0..60 {
            assert_eq!(d.flatten(&d.unflatten(u)), u);
        }
        assert_eq!(d.flatten(&[3, 2, 4]), 59);
        assert_eq!(d.unflatten(0), vec![0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn domain_rejects_zero_size() {
        let _ = Domain::new(vec![3, 0, 2]);
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn domain_rejects_overflow() {
        let _ = Domain::new(vec![usize::MAX, 3]);
    }

    #[test]
    fn schema_lookup_and_user_type() {
        let s = Schema::new([("age", 100), ("sex", 2), ("state", 50)]);
        assert_eq!(s.domain_size(), 10_000);
        assert_eq!(s.num_attributes(), 3);
        assert_eq!(s.index_of("sex"), Some(1));
        assert_eq!(s.index_of("zip"), None);
        assert_eq!(s.size_of("state").unwrap(), 50);
        assert!(matches!(
            s.size_of("zip"),
            Err(SchemaError::UnknownAttribute { .. })
        ));

        // Named coordinates flatten in schema order regardless of pair order.
        let u = s
            .user_type(&[("state", 7), ("age", 30), ("sex", 1)])
            .unwrap();
        assert_eq!(u, 30 * 100 + 50 + 7); // age·stride(age) + sex·stride(sex) + state
        assert_eq!(s.domain().unflatten(u), vec![30, 1, 7]);

        assert!(matches!(
            s.user_type(&[("age", 100), ("sex", 0), ("state", 0)]),
            Err(SchemaError::ValueOutOfRange { value: 100, .. })
        ));
        assert!(matches!(
            s.user_type(&[("age", 1), ("age", 2), ("state", 0)]),
            Err(SchemaError::DuplicateAttribute { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate attribute")]
    fn schema_rejects_duplicate_names() {
        let _ = Schema::new([("a", 2), ("a", 3)]);
    }

    #[test]
    fn open_attributes_live_beside_the_dense_domain() {
        let s = Schema::new([("age", 8), ("sex", 2)]).open("url").open("ip");
        // The dense product domain is untouched by open attributes.
        assert_eq!(s.domain_size(), 16);
        assert_eq!(s.num_attributes(), 2);
        assert_eq!(s.open_attributes(), ["url", "ip"]);
        assert!(s.is_open("url"));
        assert!(!s.is_open("age"));
        assert_eq!(s.index_of("url"), None);
        assert!(matches!(
            s.size_of("url"),
            Err(SchemaError::OpenAttribute { .. })
        ));
        assert_eq!(s.describe(), "age:8,sex:2,url:open,ip:open");
        // Schemas without open attributes keep the pre-open description.
        assert_eq!(Schema::new([("age", 8)]).describe(), "age:8");
    }

    #[test]
    #[should_panic(expected = "already declared dense")]
    fn open_rejects_dense_collision() {
        let _ = Schema::new([("age", 8)]).open("age");
    }

    #[test]
    #[should_panic(expected = "duplicate open attribute")]
    fn open_rejects_duplicates() {
        let _ = Schema::new([("age", 8)]).open("url").open("url");
    }

    #[test]
    fn describe_is_deterministic() {
        let s = Schema::new([("age", 100), ("sex", 2)]);
        assert_eq!(s.describe(), "age:100,sex:2");
        assert_eq!(
            s.describe(),
            Schema::new([("age", 100), ("sex", 2)]).describe()
        );
    }

    #[test]
    fn errors_display_key_fields() {
        assert!(SchemaError::UnknownAttribute {
            attribute: "zip".into()
        }
        .to_string()
        .contains("zip"));
        assert!(SchemaError::ValueOutOfRange {
            attribute: "age".into(),
            value: 120,
            size: 100
        }
        .to_string()
        .contains("120"));
        assert!(SchemaError::NotScalar { rows: 7 }.to_string().contains('7'));
        assert!(SchemaError::NoQueries.to_string().contains("at least one"));
    }
}
