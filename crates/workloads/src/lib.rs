//! Linear counting query workloads (Section 2.1 and Section 6.1 of the
//! paper).
//!
//! A workload is a `p × n` matrix `W` of linear counting queries. The paper
//! evaluates six families: **Histogram**, **Prefix**, **All Range**,
//! **All Marginals**, **K-Way Marginals**, and **Parity**. This crate
//! implements all of them behind the [`Workload`] trait, plus a few extras
//! ([`Total`], [`WidthRange`], [`Dense`], [`Stacked`]) useful in examples
//! and tests.
//!
//! **Schema-first workloads.** Real applications declare a multi-attribute
//! domain, not a flat `[n]`: [`Schema`] names the attributes
//! (`Schema::new([("age", 100), ("sex", 2), ("state", 50)])`), [`Query`]
//! expresses marginals, ranges, and predicates over them by name, and
//! [`SchemaWorkload`] lowers a query set to a union of Kronecker products
//! whose Gram stays structured at any domain size — see the [`schema`] and
//! [`query`] modules.
//!
//! **The Gram matrix is the first-class citizen.** Every quantity the
//! factorization mechanism needs — variance, objective, optimizer
//! gradient, lower bound — depends on `W` only through `G = WᵀW` (`n × n`)
//! plus implicit query evaluation `x ↦ Wx`. Workloads therefore provide
//! closed-form `gram()` implementations and never have to materialize `W`:
//! All Range at `n = 1024` has `p = 524 800` queries but its Gram is
//! `G[j,k] = (min(j,k)+1)·(n−max(j,k))`.
//!
//! ```
//! use ldp_workloads::{Prefix, Workload};
//! let w = Prefix::new(5);
//! // Example 2.4: the 5 prefix queries over the student-grade domain.
//! assert_eq!(w.num_queries(), 5);
//! let answers = w.evaluate(&[10.0, 20.0, 5.0, 0.0, 0.0]);
//! assert_eq!(answers, vec![10.0, 30.0, 35.0, 35.0, 35.0]);
//! ```

mod combinatorics;
mod dense;
mod marginals;
mod parity;
mod product;
pub mod query;
mod range;
pub mod schema;
pub mod workload;

pub use combinatorics::{binomial, krawtchouk};
pub use dense::{Dense, Stacked};
pub use marginals::{AllMarginals, KWayMarginals};
pub use parity::Parity;
pub use product::Product;
pub use query::{Query, QueryTerm, ResolvedQuery, SchemaWorkload};
pub use range::{AllRange, Histogram, Prefix, Total, WidthRange};
pub use schema::{Domain, Schema, SchemaError};
pub use workload::Workload;

/// Re-export of the matrix type used by workload APIs.
pub use ldp_linalg::Matrix;

/// Constructs the paper's six evaluation workloads (Section 6.1) for a
/// power-of-two domain size `n`. Marginal/parity workloads interpret the
/// domain as `{0,1}^log2(n)`.
///
/// # Panics
/// Panics if `n` is not a power of two or `n < 8` (the binary-domain
/// workloads need at least 3 attributes).
pub fn paper_suite(n: usize) -> Vec<Box<dyn Workload>> {
    assert!(
        n.is_power_of_two() && n >= 8,
        "paper suite needs a power-of-two n >= 8"
    );
    let d = n.trailing_zeros() as usize;
    vec![
        Box::new(Histogram::new(n)),
        Box::new(Prefix::new(n)),
        Box::new(AllRange::new(n)),
        Box::new(AllMarginals::new(d)),
        Box::new(KWayMarginals::new(d, 3)),
        Box::new(Parity::up_to(d, 3)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_suite_has_six_workloads() {
        let suite = paper_suite(16);
        assert_eq!(suite.len(), 6);
        let names: Vec<String> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec![
                "Histogram",
                "Prefix",
                "All Range",
                "All Marginals",
                "3-Way Marginals",
                "Parity"
            ]
        );
        for w in &suite {
            assert_eq!(w.domain_size(), 16);
            assert!(w.num_queries() > 0);
        }
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn paper_suite_rejects_non_power_of_two() {
        let _ = paper_suite(12);
    }
}
