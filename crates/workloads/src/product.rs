//! Kronecker-product workloads over multi-dimensional domains.
//!
//! A domain with several attributes is the Cartesian product of the
//! per-attribute domains; a workload asking "every combination of a query
//! on attribute 1 with a query on attribute 2" is the Kronecker product
//! `W = W₁ ⊗ W₂`. User type `(u₁, u₂)` is flattened row-major as
//! `u = u₁·n₂ + u₂`, and query `(i₁, i₂)` as `i = i₁·p₂ + i₂`.
//!
//! The Gram matrix factors — `(W₁⊗W₂)ᵀ(W₁⊗W₂) = G₁ ⊗ G₂` — and
//! evaluation runs the two factors independently, so 2-D range workloads
//! scale the same way the 1-D ones do. This covers the
//! "multi-dimensional analytical queries" settings of the paper's
//! references \[42, 12\] (e.g. 2-D range queries = `Product(AllRange,
//! AllRange)`, marginal-of-CDF hybrids, etc.).

use std::sync::Arc;

use ldp_linalg::{Gram, KroneckerOp, Matrix};

use crate::Workload;

/// The Kronecker product of two workloads over the flattened product
/// domain.
pub struct Product {
    name: String,
    left: Box<dyn Workload + Send + Sync>,
    right: Box<dyn Workload + Send + Sync>,
}

impl std::fmt::Debug for Product {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Product")
            .field("name", &self.name)
            .finish_non_exhaustive()
    }
}

impl Product {
    /// `left ⊗ right` over the domain of size
    /// `left.domain_size() · right.domain_size()`.
    pub fn new(
        left: Box<dyn Workload + Send + Sync>,
        right: Box<dyn Workload + Send + Sync>,
    ) -> Self {
        let name = format!("{} x {}", left.name(), right.name());
        Self { name, left, right }
    }

    /// Sets the display name.
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Flattens a pair of per-attribute types into the product index.
    pub fn flatten(&self, u1: usize, u2: usize) -> usize {
        assert!(u1 < self.left.domain_size() && u2 < self.right.domain_size());
        u1 * self.right.domain_size() + u2
    }
}

impl Workload for Product {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn domain_size(&self) -> usize {
        self.left.domain_size() * self.right.domain_size()
    }
    fn num_queries(&self) -> usize {
        self.left.num_queries() * self.right.num_queries()
    }
    fn gram(&self) -> Gram {
        // A genuine Kronecker operator `G₁ ⊗ G₂`: the factors stay
        // structured and the product domain never pays the dense
        // `n₁n₂ × n₁n₂` blow-up.
        Gram::from_arc(Arc::new(KroneckerOp::new(
            self.left.gram().share(),
            self.right.gram().share(),
        )))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let (n1, n2) = (self.left.domain_size(), self.right.domain_size());
        let (p1, p2) = (self.left.num_queries(), self.right.num_queries());
        assert_eq!(x.len(), n1 * n2);
        // Apply the right factor to each row of the n1 × n2 reshape of x,
        // giving an n1 × p2 intermediate...
        let mut intermediate = Matrix::zeros(n1, p2);
        for u1 in 0..n1 {
            let row = &x[u1 * n2..(u1 + 1) * n2];
            intermediate
                .row_mut(u1)
                .copy_from_slice(&self.right.evaluate(row));
        }
        // ...then the left factor down each column, through one reused
        // column buffer.
        let mut answers = vec![0.0; p1 * p2];
        let mut column = vec![0.0; n1];
        for i2 in 0..p2 {
            intermediate.col_into(i2, &mut column);
            for (i1, v) in self.left.evaluate(&column).into_iter().enumerate() {
                answers[i1 * p2 + i2] = v;
            }
        }
        answers
    }
    fn frobenius_sq(&self) -> f64 {
        self.left.frobenius_sq() * self.right.frobenius_sq()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;
    use crate::{AllRange, Histogram, Prefix, Total};

    #[test]
    fn product_conformance() {
        let cases: Vec<Product> = vec![
            Product::new(Box::new(Prefix::new(3)), Box::new(Prefix::new(4))),
            Product::new(Box::new(AllRange::new(3)), Box::new(AllRange::new(3))),
            Product::new(Box::new(Histogram::new(2)), Box::new(Total::new(5))),
        ];
        for p in &cases {
            assert_conformant(p);
        }
    }

    #[test]
    fn two_d_range_values() {
        // 2x2 grid, 2-D prefix queries: query (i1,i2) counts cells with
        // row <= i1 and col <= i2.
        let p = Product::new(Box::new(Prefix::new(2)), Box::new(Prefix::new(2)));
        // x[(r,c)]: (0,0)=1, (0,1)=2, (1,0)=3, (1,1)=4.
        let answers = p.evaluate(&[1.0, 2.0, 3.0, 4.0]);
        // (0,0)=1; (0,1)=1+2=3; (1,0)=1+3=4; (1,1)=10.
        assert_eq!(answers, vec![1.0, 3.0, 4.0, 10.0]);
    }

    #[test]
    fn gram_factorizes() {
        let p = Product::new(Box::new(Prefix::new(3)), Box::new(Histogram::new(2)));
        let expected = Prefix::new(3)
            .gram()
            .to_dense()
            .kronecker(&Histogram::new(2).gram().to_dense());
        assert!(p.gram().to_dense().max_abs_diff(&expected) < 1e-12);
    }

    #[test]
    fn flatten_layout_matches_evaluate() {
        let p = Product::new(Box::new(Histogram::new(3)), Box::new(Histogram::new(2)));
        let mut x = vec![0.0; 6];
        x[p.flatten(2, 1)] = 7.0;
        // Histogram x Histogram is the identity over the product domain,
        // with query (i1,i2) at index i1*2+i2.
        let answers = p.evaluate(&x);
        assert_eq!(answers[2 * 2 + 1], 7.0);
        assert_eq!(answers.iter().sum::<f64>(), 7.0);
    }

    #[test]
    fn optimizes_like_any_workload() {
        // The optimizer consumes the product Gram like any other: check
        // the Gram is well-formed (end-to-end optimization is exercised
        // in the workspace-level `tests/`).
        let p = Product::new(Box::new(Prefix::new(3)), Box::new(Prefix::new(3)));
        assert_eq!(p.domain_size(), 9);
        assert_eq!(p.num_queries(), 9);
        let gram = p.gram();
        assert_eq!(gram.shape(), (9, 9));
        assert!(gram.to_dense().is_finite());
    }
}
