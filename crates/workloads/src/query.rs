//! The query DSL over a [`Schema`] and its lowering to a structured
//! union-of-Kronecker-products workload.
//!
//! A [`Query`] is a conjunction of per-attribute conditions:
//!
//! * [`Query::marginal`] — one counting query per combination of values
//!   of the listed attributes (a contingency table / marginal);
//! * [`Query::range`] / [`Query::equals`] / [`Query::values`] /
//!   [`Query::predicate`] — restrict an attribute to a subset of values;
//! * attributes a query does not mention are summed out;
//! * [`Query::total`] — the single total-count query.
//!
//! Conditions compose with `and_*` chaining: `Query::marginal(["sex"])
//! .and_range("age", 18..65)` is the sex breakdown among 18–64 year
//! olds.
//!
//! Lowering is per-attribute: each query becomes a Kronecker product of
//! small per-attribute factors (identity for marginal attributes, a 0/1
//! indicator row for selections, the all-ones row for summed-out
//! attributes), and a query *set* becomes the vertical union of those
//! products — [`SchemaWorkload`]. Its Gram is carried as a
//! [`SumOp`] of [`KroneckerOp`] chains over the factors' structured
//! Grams, so nothing densifies no matter how large the product domain
//! gets (|Ω| = 10⁶ costs kilobytes, not terabytes).
//!
//! ```
//! use ldp_workloads::{Query, Schema, SchemaWorkload, Workload};
//! use std::sync::Arc;
//!
//! let schema = Arc::new(Schema::new([("age", 100), ("sex", 2), ("state", 50)]));
//! let workload = SchemaWorkload::new(
//!     Arc::clone(&schema),
//!     &[
//!         Query::marginal(["age", "sex"]),             // 200 cells
//!         Query::range("age", 18..65),                 // one adult-count query
//!         Query::total(),
//!     ],
//! )
//! .unwrap();
//! assert_eq!(workload.domain_size(), 10_000);
//! assert_eq!(workload.num_queries(), 202);
//! // Ad-hoc scalar answers evaluate against any data vector without
//! // materializing a single workload row permanently:
//! let x = vec![1.0; 10_000];
//! let adults = schema.answer(&Query::range("age", 18..65), &x).unwrap();
//! assert_eq!(adults, (65.0 - 18.0) * 2.0 * 50.0);
//! ```

use std::fmt;
use std::ops::{Bound, RangeBounds};
use std::sync::{Arc, Mutex};

use ldp_linalg::{dot, Gram, KroneckerOp, LinOp, RankOneOp, StructuredGram, SumOp};

use crate::schema::{Schema, SchemaError};
use crate::Workload;

/// A per-attribute condition inside a [`Query`].
#[derive(Clone)]
enum Condition {
    /// One query per value of this attribute (contingency dimension).
    Marginal,
    /// Restrict to the half-open value range `[lo, hi)`.
    Range { lo: usize, hi: Option<usize> },
    /// Restrict to an explicit value set.
    Values(Vec<usize>),
    /// Restrict to the values satisfying a predicate (evaluated at
    /// resolution time against the attribute's actual domain).
    Predicate(Arc<dyn Fn(usize) -> bool + Send + Sync>),
    /// An open-domain point condition: count users whose open attribute
    /// equals this key. Never resolves densely — it routes to the
    /// `ldp-sparse` frequency-oracle path.
    Key(String),
}

impl fmt::Debug for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Condition::Marginal => write!(f, "Marginal"),
            Condition::Range { lo, hi } => write!(f, "Range({lo}..{hi:?})"),
            Condition::Values(v) => write!(f, "Values({v:?})"),
            Condition::Predicate(_) => write!(f, "Predicate(..)"),
            Condition::Key(k) => write!(f, "Key({k:?})"),
        }
    }
}

/// A borrowed view of one [`Query`] condition, yielded by
/// [`Query::terms`]. Mirrors the private condition representation
/// closely enough for a serializer to reconstruct the query through the
/// public builders ([`Query::and_marginal`], [`Query::and_range`],
/// [`Query::and_values`]).
#[derive(Clone, Copy, Debug)]
pub enum QueryTerm<'a> {
    /// One query per value of the attribute.
    Marginal,
    /// Restrict to the half-open range `[lo, hi)`; `hi = None` means the
    /// attribute's full upper end.
    Range {
        /// Inclusive lower bound.
        lo: usize,
        /// Exclusive upper bound, or `None` for the domain's end.
        hi: Option<usize>,
    },
    /// Restrict to an explicit, sorted, deduplicated value set.
    Values(&'a [usize]),
    /// An opaque predicate condition; it cannot be serialized.
    Predicate,
    /// An open-domain point condition: the key whose count is asked.
    Key(&'a str),
}

/// One declarative counting query (or query group) over a [`Schema`],
/// built by name and lowered against a concrete schema on demand.
///
/// Queries are cheap to clone and `Send + Sync`, so a serving tier can
/// parse them from user requests and answer them against a live
/// [`Estimate`](../../ldp/pipeline/struct.Estimate.html) concurrently.
#[derive(Clone, Debug, Default)]
pub struct Query {
    conditions: Vec<(String, Condition)>,
    label: Option<String>,
}

impl Query {
    /// The single total-count query (no conditions: every attribute is
    /// summed out).
    pub fn total() -> Self {
        Self::default()
    }

    /// The marginal (contingency table) over the listed attributes: one
    /// counting query per combination of their values, with every other
    /// attribute summed out. Cells enumerate in schema attribute order.
    pub fn marginal<N: Into<String>>(attributes: impl IntoIterator<Item = N>) -> Self {
        let mut q = Self::total();
        for a in attributes {
            q.conditions.push((a.into(), Condition::Marginal));
        }
        q
    }

    /// A single query counting users whose `attribute` lies in `range`
    /// (any `RangeBounds`, e.g. `18..65`, `..10`, `90..`).
    pub fn range(attribute: impl Into<String>, range: impl RangeBounds<usize>) -> Self {
        Self::total().and_range(attribute, range)
    }

    /// A single query counting users with `attribute == value`.
    pub fn equals(attribute: impl Into<String>, value: usize) -> Self {
        Self::total().and_equals(attribute, value)
    }

    /// A single query counting users whose `attribute` is in `values`.
    pub fn values(attribute: impl Into<String>, values: impl IntoIterator<Item = usize>) -> Self {
        Self::total().and_values(attribute, values)
    }

    /// A single query counting users whose *open-domain* `attribute`
    /// equals `key` — e.g. `Query::key("url", "https://example.com/")`.
    ///
    /// Key queries never lower to the dense workload: resolving one
    /// against a schema fails with
    /// [`SchemaError::OpenAttribute`]
    /// (if the attribute is open) so callers route them to the
    /// `ldp-sparse` frequency-oracle path instead — see
    /// [`Query::as_key_query`].
    pub fn key(attribute: impl Into<String>, key: impl Into<String>) -> Self {
        Self::total().and_key(attribute, key)
    }

    /// A single query counting users whose `attribute` satisfies
    /// `predicate` (evaluated against the attribute's domain when the
    /// query is resolved).
    pub fn predicate(
        attribute: impl Into<String>,
        predicate: impl Fn(usize) -> bool + Send + Sync + 'static,
    ) -> Self {
        Self::total().and_predicate(attribute, predicate)
    }

    /// Adds a marginal dimension over `attribute`.
    pub fn and_marginal(mut self, attribute: impl Into<String>) -> Self {
        self.conditions
            .push((attribute.into(), Condition::Marginal));
        self
    }

    /// Adds a range restriction on `attribute`.
    pub fn and_range(
        mut self,
        attribute: impl Into<String>,
        range: impl RangeBounds<usize>,
    ) -> Self {
        // Saturating arithmetic keeps pathological bounds (e.g. an
        // inclusive usize::MAX end) on the typed-error path at resolve
        // time instead of overflowing here.
        let lo = match range.start_bound() {
            Bound::Included(&v) => v,
            Bound::Excluded(&v) => v.saturating_add(1),
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) => Some(v.saturating_add(1)),
            Bound::Excluded(&v) => Some(v),
            Bound::Unbounded => None,
        };
        self.conditions
            .push((attribute.into(), Condition::Range { lo, hi }));
        self
    }

    /// Adds an equality restriction on `attribute`.
    pub fn and_equals(self, attribute: impl Into<String>, value: usize) -> Self {
        self.and_values(attribute, [value])
    }

    /// Adds an open-domain point condition on `attribute` (see
    /// [`Query::key`]). Used by wire decoders rebuilding a query term by
    /// term; a resolvable dense query never carries a key condition.
    pub fn and_key(mut self, attribute: impl Into<String>, key: impl Into<String>) -> Self {
        self.conditions
            .push((attribute.into(), Condition::Key(key.into())));
        self
    }

    /// Adds a value-set restriction on `attribute`.
    pub fn and_values(
        mut self,
        attribute: impl Into<String>,
        values: impl IntoIterator<Item = usize>,
    ) -> Self {
        let mut v: Vec<usize> = values.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        self.conditions
            .push((attribute.into(), Condition::Values(v)));
        self
    }

    /// Adds a predicate restriction on `attribute`.
    pub fn and_predicate(
        mut self,
        attribute: impl Into<String>,
        predicate: impl Fn(usize) -> bool + Send + Sync + 'static,
    ) -> Self {
        self.conditions
            .push((attribute.into(), Condition::Predicate(Arc::new(predicate))));
        self
    }

    /// Sets a human-readable label used in workload names and error
    /// messages (defaults to a canonical description of the conditions).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Iterates the query's per-attribute conditions as borrowed
    /// [`QueryTerm`] views, in insertion order.
    ///
    /// This is the introspection surface serializers use: a wire or
    /// storage codec can walk the terms and re-assemble an equivalent
    /// query on the other side with the public builders, without access
    /// to the private condition representation. Predicate conditions
    /// surface as [`QueryTerm::Predicate`] with the closure withheld —
    /// they have no byte representation, and encoders reject them.
    pub fn terms(&self) -> impl Iterator<Item = (&str, QueryTerm<'_>)> {
        self.conditions.iter().map(|(name, condition)| {
            let term = match condition {
                Condition::Marginal => QueryTerm::Marginal,
                Condition::Range { lo, hi } => QueryTerm::Range { lo: *lo, hi: *hi },
                Condition::Values(values) => QueryTerm::Values(values),
                Condition::Predicate(_) => QueryTerm::Predicate,
                Condition::Key(key) => QueryTerm::Key(key),
            };
            (name.as_str(), term)
        })
    }

    /// If this query is a single open-domain point query
    /// (built with [`Query::key`]), returns `(attribute, key)`.
    ///
    /// The routing hook for mixed schemas: serving tiers call this
    /// first and dispatch to the sparse oracle path on `Some`, falling
    /// through to dense resolution otherwise.
    pub fn as_key_query(&self) -> Option<(&str, &str)> {
        match self.conditions.as_slice() {
            [(name, Condition::Key(key))] => Some((name.as_str(), key.as_str())),
            _ => None,
        }
    }

    /// Resolves the query against a schema: validates every attribute
    /// name and value, evaluates predicates, and produces the
    /// per-attribute factor structure evaluation and Gram assembly use.
    ///
    /// # Errors
    /// Any [`SchemaError`] raised by name/value validation.
    pub fn resolve(&self, schema: &Schema) -> Result<ResolvedQuery, SchemaError> {
        let k = schema.num_attributes();
        let mut factors: Vec<Factor> = schema
            .domain()
            .sizes()
            .iter()
            .map(|&n| Factor::All(n))
            .collect();
        for (name, condition) in &self.conditions {
            if let Condition::Key(_) = condition {
                // Key queries never resolve densely. On an open
                // attribute the typed error is the routing signal (use
                // the sparse oracle path); on anything else the open
                // namespace simply doesn't contain the name.
                return Err(if schema.is_open(name) {
                    SchemaError::OpenAttribute {
                        attribute: name.clone(),
                    }
                } else {
                    SchemaError::UnknownAttribute {
                        attribute: name.clone(),
                    }
                });
            }
            if schema.is_open(name) {
                // Dense conditions cannot touch open attributes: there
                // is no closed value set to select over.
                return Err(SchemaError::OpenAttribute {
                    attribute: name.clone(),
                });
            }
            let a = schema
                .index_of(name)
                .ok_or_else(|| SchemaError::UnknownAttribute {
                    attribute: name.clone(),
                })?;
            if !matches!(factors[a], Factor::All(_)) {
                return Err(SchemaError::DuplicateAttribute {
                    attribute: name.clone(),
                });
            }
            let size = schema.domain().size_of(a);
            factors[a] = match condition {
                Condition::Marginal => Factor::Cells(size),
                Condition::Range { lo, hi } => {
                    let hi = hi.unwrap_or(size);
                    if hi > size {
                        return Err(SchemaError::ValueOutOfRange {
                            attribute: name.clone(),
                            value: hi - 1,
                            size,
                        });
                    }
                    if *lo >= hi {
                        return Err(SchemaError::EmptySelection {
                            attribute: name.clone(),
                        });
                    }
                    Factor::select(size, (*lo..hi).collect())
                }
                Condition::Values(values) => {
                    if values.is_empty() {
                        return Err(SchemaError::EmptySelection {
                            attribute: name.clone(),
                        });
                    }
                    if let Some(&bad) = values.iter().find(|&&v| v >= size) {
                        return Err(SchemaError::ValueOutOfRange {
                            attribute: name.clone(),
                            value: bad,
                            size,
                        });
                    }
                    Factor::select(size, values.clone())
                }
                Condition::Predicate(p) => {
                    let values: Vec<usize> = (0..size).filter(|&v| p(v)).collect();
                    if values.is_empty() {
                        return Err(SchemaError::EmptySelection {
                            attribute: name.clone(),
                        });
                    }
                    Factor::select(size, values)
                }
                // Key conditions returned a typed error above.
                Condition::Key(_) => unreachable!("key conditions never resolve densely"),
            };
        }
        let mut rows = 1usize;
        let mut row_strides = vec![1usize; k];
        for (a, f) in factors.iter().enumerate().rev() {
            row_strides[a] = rows;
            rows = rows
                .checked_mul(f.rows())
                .ok_or(SchemaError::RowCountOverflow)?;
        }
        let canonical = describe(schema, &factors);
        let label = self.label.clone().unwrap_or_else(|| canonical.clone());
        Ok(ResolvedQuery {
            factors,
            row_strides,
            rows,
            label,
            canonical,
        })
    }
}

/// Canonical description of a resolved condition list, e.g.
/// `age[cells] & state{0,2,4} & *` — deterministic, so it can participate
/// in the workload name (and hence the strategy-cache fingerprint).
fn describe(schema: &Schema, factors: &[Factor]) -> String {
    let parts: Vec<String> = schema
        .names()
        .iter()
        .zip(factors)
        .filter_map(|(name, f)| match f {
            Factor::All(_) => None,
            Factor::Cells(_) => Some(format!("{name}[cells]")),
            Factor::Select { values, .. } => {
                let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
                Some(format!("{name}{{{}}}", vals.join(",")))
            }
        })
        .collect();
    if parts.is_empty() {
        "total".to_string()
    } else {
        parts.join(" & ")
    }
}

/// One per-attribute factor of a resolved query: the tiny workload whose
/// Kronecker product with the other attributes' factors is the query
/// group.
#[derive(Clone, Debug)]
enum Factor {
    /// The all-ones row (attribute summed out): 1 query, `Total` Gram.
    All(usize),
    /// The identity (marginal dimension): `n_a` queries, `Histogram` Gram.
    Cells(usize),
    /// A 0/1 indicator row over a value subset: 1 query, rank-one Gram.
    Select {
        /// Attribute cardinality.
        size: usize,
        /// Selected values (sorted, deduplicated, all `< size`).
        values: Vec<usize>,
        /// The indicator row itself, precomputed for row assembly.
        indicator: Arc<Vec<f64>>,
    },
}

impl Factor {
    fn select(size: usize, values: Vec<usize>) -> Self {
        let mut indicator = vec![0.0; size];
        for &v in &values {
            indicator[v] = 1.0;
        }
        Self::Select {
            size,
            values,
            indicator: Arc::new(indicator),
        }
    }

    /// Attribute cardinality (columns of the factor).
    fn size(&self) -> usize {
        match *self {
            Factor::All(n) | Factor::Cells(n) | Factor::Select { size: n, .. } => n,
        }
    }

    /// Queries this factor contributes (rows of the factor).
    fn rows(&self) -> usize {
        match *self {
            Factor::Cells(n) => n,
            Factor::All(_) | Factor::Select { .. } => 1,
        }
    }

    /// The factor's Gram operator, structured in closed form.
    fn gram_op(&self) -> Arc<dyn LinOp> {
        match self {
            Factor::All(n) => Arc::new(StructuredGram::constant(*n, 1.0)),
            Factor::Cells(n) => Arc::new(StructuredGram::scaled_identity(*n, 1.0)),
            Factor::Select { indicator, .. } => Arc::new(RankOneOp::new((**indicator).clone())),
        }
    }
}

/// A [`Query`] resolved against a concrete [`Schema`]: one factor per
/// attribute (in schema order), ready for row assembly, evaluation, and
/// Gram composition. This is the paper's "Kronecker product workload"
/// building block; a [`SchemaWorkload`] is a union of these.
#[derive(Clone, Debug)]
pub struct ResolvedQuery {
    factors: Vec<Factor>,
    /// Row-major strides over the factors' row counts.
    row_strides: Vec<usize>,
    rows: usize,
    label: String,
    /// The canonical description (independent of any user label) — the
    /// identity that participates in fingerprints and bindings.
    canonical: String,
}

impl ResolvedQuery {
    /// Number of counting queries this group produces (marginal cells
    /// enumerate in schema attribute order).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True if the group is a single counting query — the shape ad-hoc
    /// serving answers with one number.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1
    }

    /// The deterministic description (or user label) of this group.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The canonical, label-independent description of the conditions —
    /// the group's semantic identity (what fingerprints hash).
    pub fn canonical(&self) -> &str {
        &self.canonical
    }

    /// The group's Gram operator: the Kronecker chain of the factors'
    /// structured Grams — `O(Σ_a n_a)` storage for an `Π_a n_a` domain.
    pub fn gram_op(&self) -> Arc<dyn LinOp> {
        KroneckerOp::chain(self.factors.iter().map(Factor::gram_op).collect())
    }

    /// Writes query row `row` (a 0/1 vector over the flattened domain)
    /// into `out`. The entries are exact zeros and ones — products of
    /// per-attribute indicator entries — so every consumer (evaluation,
    /// the default `matrix()` assembly, ad-hoc answers) sees bit-identical
    /// rows.
    ///
    /// # Panics
    /// Panics if `row >= rows()` or `out` is not domain-sized.
    pub fn fill_row(&self, row: usize, out: &mut [f64]) {
        assert!(row < self.rows, "row {row} out of range");
        let n: usize = self.factors.iter().map(Factor::size).product();
        assert_eq!(out.len(), n, "buffer must be domain-sized");
        // Kronecker expansion, in place: grow the row one attribute at a
        // time from the back of each block (backward iteration keeps the
        // expansion collision-free in a single buffer).
        out[0] = 1.0;
        let mut len = 1usize;
        for (a, f) in self.factors.iter().enumerate() {
            let r = (row / self.row_strides[a]) % f.rows();
            let na = f.size();
            match f {
                Factor::All(_) => {
                    for i in (0..len).rev() {
                        let base = out[i];
                        out[i * na..(i + 1) * na].fill(base);
                    }
                }
                Factor::Cells(_) => {
                    for i in (0..len).rev() {
                        let base = out[i];
                        out[i * na..(i + 1) * na].fill(0.0);
                        out[i * na + r] = base;
                    }
                }
                Factor::Select { indicator, .. } => {
                    for i in (0..len).rev() {
                        let base = out[i];
                        for (o, &ind) in out[i * na..(i + 1) * na].iter_mut().zip(indicator.iter())
                        {
                            *o = base * ind;
                        }
                    }
                }
            }
            len *= na;
        }
    }

    /// The value of query row `row` on data vector `x`, through one
    /// reused scratch row: `scratch` is resized to the domain and
    /// overwritten. The arithmetic is the same per-row `dot` the explicit
    /// matrix path uses, so the result is bit-identical to
    /// `matrix().matvec(x)[row]`.
    ///
    /// # Panics
    /// Panics if `row >= rows()` or `x` is not domain-sized.
    pub fn value_of(&self, row: usize, x: &[f64], scratch: &mut Vec<f64>) -> f64 {
        // No clear(): fill_row overwrites every entry, so after the first
        // call the resize is a no-op and the hot path skips an O(n)
        // zeroing pass.
        scratch.resize(x.len(), 0.0);
        self.fill_row(row, scratch);
        dot(scratch, x)
    }
}

impl Schema {
    /// Answers a scalar query (range/equals/values/predicate/total
    /// conjunctions) against a data vector over this schema's domain —
    /// the ad-hoc serving hot path. `O(n)` per call; no workload matrix
    /// is ever formed.
    ///
    /// # Errors
    /// Any resolution error, or [`SchemaError::NotScalar`] for marginal
    /// queries (those belong in the deployed workload).
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the schema's domain size.
    pub fn answer(&self, query: &Query, x: &[f64]) -> Result<f64, SchemaError> {
        let mut scratch = Vec::new();
        self.answer_with(query, x, &mut scratch)
    }

    /// [`Schema::answer`] through a caller-owned scratch buffer, so tight
    /// serving loops are allocation-free after the first call.
    ///
    /// # Errors
    /// As [`Schema::answer`].
    ///
    /// # Panics
    /// Panics if `x.len()` differs from the schema's domain size.
    pub fn answer_with(
        &self,
        query: &Query,
        x: &[f64],
        scratch: &mut Vec<f64>,
    ) -> Result<f64, SchemaError> {
        assert_eq!(
            x.len(),
            self.domain_size(),
            "data vector must be domain-sized"
        );
        let resolved = query.resolve(self)?;
        if !resolved.is_scalar() {
            return Err(SchemaError::NotScalar {
                rows: resolved.rows(),
            });
        }
        Ok(resolved.value_of(0, x, scratch))
    }
}

/// A union of Kronecker-product query groups over a [`Schema`] — the
/// workload [`Pipeline::for_schema`](../../ldp/pipeline/struct.Pipeline.html)
/// deploys.
///
/// Three views, all structured:
///
/// * **Gram** — a [`SumOp`] over the groups' [`KroneckerOp`] chains of
///   per-attribute structured Grams (`O(Σ n_a)` storage per group);
/// * **evaluation** — per-row assembly through one reused scratch row
///   plus the shared `dot` kernel, bit-identical to the explicit matrix
///   path;
/// * **matrix** — the default on-demand assembly (escape hatch only).
///
/// The workload's [`Workload::fingerprint`] is the trait default — name
/// (schema + canonical query descriptions) plus Gram probe — so repeat
/// deployments of an equal schema/query set hit the
/// `StrategyRegistry` warm path.
pub struct SchemaWorkload {
    schema: Arc<Schema>,
    groups: Vec<ResolvedQuery>,
    name: String,
    /// Label-independent identity (schema plus canonical group
    /// descriptions): what [`Workload::fingerprint`] hashes, so display
    /// labels never alias two different query sets and never invalidate
    /// caches or checkpoint bindings on rename.
    canonical: String,
    /// Reused row-assembly scratch (same `try_lock` discipline as
    /// [`SumOp`]: contended callers fall back to a local buffer).
    scratch: Mutex<Vec<f64>>,
}

impl fmt::Debug for SchemaWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SchemaWorkload")
            .field("name", &self.name)
            .field("groups", &self.groups.len())
            .finish_non_exhaustive()
    }
}

impl SchemaWorkload {
    /// Lowers `queries` against `schema`. Every query becomes one
    /// Kronecker-product group; the workload is their vertical union.
    ///
    /// # Errors
    /// [`SchemaError::NoQueries`] for an empty list, or any resolution
    /// error (unknown attribute, out-of-range value, empty selection,
    /// duplicate condition).
    pub fn new(schema: Arc<Schema>, queries: &[Query]) -> Result<Self, SchemaError> {
        if queries.is_empty() {
            return Err(SchemaError::NoQueries);
        }
        let groups: Vec<ResolvedQuery> = queries
            .iter()
            .map(|q| q.resolve(&schema))
            .collect::<Result<_, _>>()?;
        let labels: Vec<&str> = groups.iter().map(ResolvedQuery::label).collect();
        let name = format!("Schema[{}]{{{}}}", schema.describe(), labels.join("; "));
        let canonicals: Vec<&str> = groups.iter().map(ResolvedQuery::canonical).collect();
        let canonical = format!("Schema[{}]{{{}}}", schema.describe(), canonicals.join("; "));
        Ok(Self {
            schema,
            groups,
            name,
            canonical,
            scratch: Mutex::new(Vec::new()),
        })
    }

    /// The resolved query groups, in declaration order.
    pub fn groups(&self) -> &[ResolvedQuery] {
        &self.groups
    }

    /// The shared schema handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }
}

impl Workload for SchemaWorkload {
    fn name(&self) -> String {
        self.name.clone()
    }
    fn domain_size(&self) -> usize {
        self.schema.domain_size()
    }
    fn num_queries(&self) -> usize {
        self.groups.iter().map(ResolvedQuery::rows).sum()
    }
    fn gram(&self) -> Gram {
        let terms: Vec<Arc<dyn LinOp>> = self.groups.iter().map(ResolvedQuery::gram_op).collect();
        Gram::from_arc(Arc::new(SumOp::new(terms)))
    }
    fn evaluate(&self, x: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; self.num_queries()];
        self.evaluate_into(x, &mut out);
        out
    }
    fn evaluate_into(&self, x: &[f64], out: &mut [f64]) {
        assert_eq!(x.len(), self.domain_size());
        assert_eq!(out.len(), self.num_queries());
        let mut local = Vec::new();
        let mut guard = self.scratch.try_lock();
        let scratch: &mut Vec<f64> = match guard {
            Ok(ref mut g) => g,
            Err(_) => &mut local,
        };
        let mut idx = 0;
        for group in &self.groups {
            for row in 0..group.rows() {
                out[idx] = group.value_of(row, x, scratch);
                idx += 1;
            }
        }
    }
    fn schema(&self) -> Option<&Schema> {
        Some(&self.schema)
    }
    fn fingerprint_with_gram(&self, gram: &Gram) -> u64 {
        // Hash the canonical identity, not the display name: user labels
        // are presentation only, so renaming one never invalidates the
        // strategy cache or a checkpoint binding, and two *different*
        // query sets can never alias by sharing labels.
        crate::workload::fingerprint_of(
            &self.canonical,
            self.domain_size(),
            self.num_queries(),
            gram,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::conformance::assert_conformant;
    use ldp_linalg::Matrix;

    fn schema() -> Arc<Schema> {
        Arc::new(Schema::new([("age", 5), ("sex", 2), ("state", 3)]))
    }

    #[test]
    fn marginal_matches_hand_built_table() {
        let s = schema();
        let w = SchemaWorkload::new(Arc::clone(&s), &[Query::marginal(["age", "sex"])]).unwrap();
        assert_eq!(w.num_queries(), 10);
        // One user of each type: every (age, sex) cell counts 3 states.
        let x = vec![1.0; 30];
        assert_eq!(w.evaluate(&x), vec![3.0; 10]);
        // A single user lands in exactly one cell, in schema order
        // (age-major, then sex).
        let mut x = vec![0.0; 30];
        x[s.user_type(&[("age", 3), ("sex", 1), ("state", 2)])
            .unwrap()] = 1.0;
        let answers = w.evaluate(&x);
        let mut expected = vec![0.0; 10];
        expected[3 * 2 + 1] = 1.0;
        assert_eq!(answers, expected);
    }

    #[test]
    fn range_and_predicate_and_total() {
        let s = schema();
        let queries = [
            Query::range("age", 1..4),
            Query::predicate("state", |v| v % 2 == 0),
            Query::total(),
            Query::equals("sex", 1).and_range("age", 3..),
        ];
        let w = SchemaWorkload::new(Arc::clone(&s), &queries).unwrap();
        assert_eq!(w.num_queries(), 4);
        let x = vec![1.0; 30];
        let a = w.evaluate(&x);
        assert_eq!(a[0], 3.0 * 2.0 * 3.0); // ages 1..4, all sexes/states
        assert_eq!(a[1], 5.0 * 2.0 * 2.0); // states {0, 2}
        assert_eq!(a[2], 30.0);
        assert_eq!(a[3], 2.0 * 1.0 * 3.0); // ages {3,4} × sex 1 × all states
    }

    #[test]
    fn schema_workload_is_conformant() {
        let s = schema();
        let w = SchemaWorkload::new(
            s,
            &[
                Query::marginal(["sex", "state"]),
                Query::range("age", 0..2),
                Query::total(),
                Query::values("state", [0, 2]),
            ],
        )
        .unwrap();
        assert_conformant(&w);
    }

    #[test]
    fn gram_is_structured_and_matches_dense_reference() {
        let s = schema();
        let w = SchemaWorkload::new(s, &[Query::marginal(["age"]), Query::range("state", 1..3)])
            .unwrap();
        let gram = w.gram();
        // The operator is a SumOp over Kronecker chains — never a dense
        // matrix.
        assert!(gram.op().as_dense().is_none());
        let dense = w.matrix().gram();
        assert!(gram.to_dense().max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn scalar_answers_match_matrix_rows_bitwise() {
        let s = schema();
        let queries = [
            Query::range("age", 2..5).and_equals("sex", 0),
            Query::predicate("state", |v| v != 1),
            Query::total(),
        ];
        let w = SchemaWorkload::new(Arc::clone(&s), &queries).unwrap();
        let mat = w.matrix();
        let x: Vec<f64> = (0..30).map(|i| ((i * 13 + 5) % 17) as f64 - 8.0).collect();
        let reference = mat.matvec(&x);
        for (i, q) in queries.iter().enumerate() {
            let ad_hoc = s.answer(q, &x).unwrap();
            assert_eq!(ad_hoc.to_bits(), reference[i].to_bits(), "query {i}");
        }
    }

    #[test]
    fn resolution_errors_are_typed() {
        let s = schema();
        let x = vec![0.0; 30];
        assert!(matches!(
            s.answer(&Query::range("zip", 0..1), &x),
            Err(SchemaError::UnknownAttribute { .. })
        ));
        assert!(matches!(
            s.answer(&Query::range("age", 3..9), &x),
            Err(SchemaError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            s.answer(&Query::range("age", 3..3), &x),
            Err(SchemaError::EmptySelection { .. })
        ));
        // Pathological bounds stay on the typed-error path (no overflow
        // panic): an inclusive usize::MAX end saturates and is reported
        // as out of range for the attribute.
        assert!(matches!(
            s.answer(&Query::range("age", 0..=usize::MAX), &x),
            Err(SchemaError::ValueOutOfRange { .. })
        ));
        assert!(matches!(
            s.answer(&Query::predicate("age", |_| false), &x),
            Err(SchemaError::EmptySelection { .. })
        ));
        assert!(matches!(
            s.answer(&Query::marginal(["age"]), &x),
            Err(SchemaError::NotScalar { rows: 5 })
        ));
        assert!(matches!(
            s.answer(&Query::equals("age", 1).and_equals("age", 2), &x),
            Err(SchemaError::DuplicateAttribute { .. })
        ));
        assert!(matches!(
            SchemaWorkload::new(schema(), &[]),
            Err(SchemaError::NoQueries)
        ));
    }

    #[test]
    fn key_queries_route_instead_of_resolving() {
        let s = Arc::new(Schema::new([("age", 5)]).open("url"));
        // The routing hook extracts the point query…
        let q = Query::key("url", "https://example.com/");
        assert_eq!(q.as_key_query(), Some(("url", "https://example.com/")));
        assert_eq!(Query::total().as_key_query(), None);
        assert_eq!(Query::equals("age", 1).as_key_query(), None);
        // …and dense resolution refuses it with the typed signal.
        assert!(matches!(
            q.resolve(&s),
            Err(SchemaError::OpenAttribute { .. })
        ));
        // A key query on a non-open name misses the open namespace.
        assert!(matches!(
            Query::key("age", "x").resolve(&s),
            Err(SchemaError::UnknownAttribute { .. })
        ));
        // Dense conditions cannot touch open attributes either.
        assert!(matches!(
            Query::equals("url", 0).resolve(&s),
            Err(SchemaError::OpenAttribute { .. })
        ));
        assert!(matches!(
            Query::marginal(["url"]).resolve(&s),
            Err(SchemaError::OpenAttribute { .. })
        ));
        // Key terms surface through the introspection iterator.
        let terms: Vec<_> = q.terms().collect();
        assert_eq!(terms.len(), 1);
        assert!(matches!(
            terms[0],
            ("url", QueryTerm::Key("https://example.com/"))
        ));
    }

    #[test]
    fn mixed_schema_dense_queries_ignore_open_attributes() {
        // A schema with open attributes still lowers its dense queries
        // exactly as the all-dense schema would.
        let dense_only = Arc::new(Schema::new([("age", 5), ("sex", 2)]));
        let mixed = Arc::new(Schema::new([("age", 5), ("sex", 2)]).open("url"));
        let queries = [Query::marginal(["age", "sex"]), Query::total()];
        let a = SchemaWorkload::new(dense_only, &queries).unwrap();
        let b = SchemaWorkload::new(mixed, &queries).unwrap();
        assert_eq!(a.num_queries(), b.num_queries());
        let x: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(a.evaluate(&x), b.evaluate(&x));
        // The open attribute is part of the workload identity, so the
        // two fingerprints differ (bindings must not alias).
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn names_are_deterministic_and_discriminating() {
        let build = |hi| {
            SchemaWorkload::new(schema(), &[Query::range("age", 0..hi), Query::total()]).unwrap()
        };
        assert_eq!(build(3).name(), build(3).name());
        assert_ne!(build(3).name(), build(4).name());
        assert!(build(3).name().contains("age:5,sex:2,state:3"));
        // Labels override the canonical description.
        let labeled =
            SchemaWorkload::new(schema(), &[Query::range("age", 0..3).with_label("minors")])
                .unwrap();
        assert!(labeled.name().contains("minors"));
    }

    #[test]
    fn labels_are_display_only_never_identity() {
        // Renaming a label must not invalidate fingerprints (caches,
        // checkpoint bindings)…
        let plain =
            SchemaWorkload::new(schema(), &[Query::range("age", 0..3), Query::total()]).unwrap();
        let labeled = SchemaWorkload::new(
            schema(),
            &[
                Query::range("age", 0..3).with_label("minors"),
                Query::total(),
            ],
        )
        .unwrap();
        assert_eq!(plain.fingerprint(), labeled.fingerprint());
        assert_ne!(plain.name(), labeled.name());

        // …and two *different* query sets must never alias through
        // shared labels (the per-group canonical descriptions, not the
        // labels, are the identity).
        let a = SchemaWorkload::new(
            schema(),
            &[
                Query::range("age", 0..2).with_label("p"),
                Query::range("age", 1..3).with_label("q"),
            ],
        )
        .unwrap();
        let b = SchemaWorkload::new(
            schema(),
            &[
                Query::range("age", 1..3).with_label("p"),
                Query::range("age", 0..2).with_label("q"),
            ],
        )
        .unwrap();
        assert_eq!(a.name(), b.name(), "display names intentionally collide");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.groups()[0].canonical(), b.groups()[1].canonical());
    }

    #[test]
    fn fingerprint_stable_across_instances() {
        let build = || {
            SchemaWorkload::new(
                schema(),
                &[Query::marginal(["age", "sex"]), Query::range("state", 0..2)],
            )
            .unwrap()
        };
        assert_eq!(build().fingerprint(), build().fingerprint());
        let other = SchemaWorkload::new(schema(), &[Query::marginal(["age", "sex"])]).unwrap();
        assert_ne!(build().fingerprint(), other.fingerprint());
    }

    #[test]
    fn large_domain_stays_implicit() {
        // |Ω| = 10⁴: Gram construction, probes, and ad-hoc answers are
        // all O(n) or better — this test is fast because nothing is n².
        let s = Arc::new(Schema::new([("age", 100), ("sex", 2), ("state", 50)]));
        let w = SchemaWorkload::new(
            Arc::clone(&s),
            &[
                Query::marginal(["age", "sex"]),
                Query::range("age", 18..65),
                Query::total(),
            ],
        )
        .unwrap();
        assert_eq!(w.domain_size(), 10_000);
        assert_eq!(w.num_queries(), 202);
        let gram = w.gram();
        assert!(gram.op().as_dense().is_none());
        assert_eq!(gram.trace(), w.frobenius_sq());
        let x = vec![1.0; 10_000];
        assert_eq!(s.answer(&Query::total(), &x).unwrap(), 10_000.0);
        assert_eq!(
            s.answer(&Query::range("age", 18..65).and_equals("sex", 1), &x)
                .unwrap(),
            47.0 * 50.0
        );
    }

    #[test]
    fn single_attribute_schema_degenerates_to_one_dim() {
        let s = Arc::new(Schema::new([("bin", 8)]));
        let w = SchemaWorkload::new(s, &[Query::marginal(["bin"]), Query::total()]).unwrap();
        assert_conformant(&w);
        let hist = crate::Stacked::new(vec![
            Box::new(crate::Histogram::new(8)),
            Box::new(crate::Total::new(8)),
        ]);
        assert!(w.gram().to_dense().max_abs_diff(&hist.gram().to_dense()) < 1e-12);
    }

    #[test]
    fn matrix_row_for_marginal_cells() {
        // Explicit check of the documented cell order against the dense
        // reference on a 2 × 3 schema.
        let s = Arc::new(Schema::new([("a", 2), ("b", 3)]));
        let w = SchemaWorkload::new(s, &[Query::marginal(["b"])]).unwrap();
        let m = w.matrix();
        // Cell for b = j selects columns with u % 3 == j.
        let expect = Matrix::from_fn(3, 6, |j, u| if u % 3 == j { 1.0 } else { 0.0 });
        assert_eq!(m, expect);
    }
}
