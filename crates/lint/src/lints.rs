//! The six contract lints and the suppression-directive machinery.
//!
//! Each lint is a line-oriented token scan over the stripped code text
//! produced by [`crate::source`]; see the crate docs and
//! `crates/lint/README.md` for the catalog and rationale.

use crate::source::SourceFile;
use crate::{Config, Diagnostic, Report, UsedSuppression};

/// Identifier of one contract lint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LintId {
    /// L1 — no `HashMap`/`HashSet` in byte-stable modules.
    UnorderedIteration,
    /// L2 — `unsafe` only in allowlisted kernel modules, under `// SAFETY:`.
    SafetyComment,
    /// L3 — no wall clock or ambient entropy in library code.
    WallClockOrEntropy,
    /// L4 — codec layout goes through `to_le_bytes`/`from_le_bytes`.
    CodecLayout,
    /// L5 — no `unwrap()`/`expect(..)`/`panic!` in library code.
    UnwrapInLib,
    /// L6 — public items in library crates carry doc comments.
    DocCoverage,
}

impl LintId {
    /// All lints, in catalog order.
    pub const ALL: [LintId; 6] = [
        LintId::UnorderedIteration,
        LintId::SafetyComment,
        LintId::WallClockOrEntropy,
        LintId::CodecLayout,
        LintId::UnwrapInLib,
        LintId::DocCoverage,
    ];

    /// The short code used in diagnostics (`L1`..`L6`).
    pub fn code(self) -> &'static str {
        match self {
            LintId::UnorderedIteration => "L1",
            LintId::SafetyComment => "L2",
            LintId::WallClockOrEntropy => "L3",
            LintId::CodecLayout => "L4",
            LintId::UnwrapInLib => "L5",
            LintId::DocCoverage => "L6",
        }
    }

    /// The name accepted by `// ldp-lint: allow(<name>) -- <reason>`.
    pub fn name(self) -> &'static str {
        match self {
            LintId::UnorderedIteration => "no-unordered-iteration",
            LintId::SafetyComment => "safety-comment",
            LintId::WallClockOrEntropy => "no-wall-clock-or-entropy",
            LintId::CodecLayout => "codec-layout-discipline",
            LintId::UnwrapInLib => "no-unwrap-in-lib",
            LintId::DocCoverage => "public-doc-coverage",
        }
    }

    /// Resolves an `allow(…)` name back to a lint.
    pub fn from_name(name: &str) -> Option<LintId> {
        LintId::ALL.into_iter().find(|l| l.name() == name)
    }
}

/// The marker that introduces a suppression directive.
const DIRECTIVE: &str = "ldp-lint:";

/// A parsed suppression directive awaiting a matching diagnostic.
#[derive(Debug)]
struct Slot {
    /// 1-indexed line the directive suppresses (`None` when the directive
    /// trails the file with no code line after it).
    target: Option<usize>,
    /// 1-indexed line the directive was written on.
    decl: usize,
    lint: LintId,
    reason: String,
    used: bool,
}

/// Per-file lint pass: parses directives, runs L1–L6, resolves
/// suppressions, and appends to `report`.
pub fn lint_file(file: &SourceFile, config: &Config, report: &mut Report) {
    let mut ctx = FileCtx {
        file,
        diags: Vec::new(),
        slots: Vec::new(),
    };
    parse_directives(&mut ctx);
    no_unordered_iteration(&mut ctx, config);
    safety_comment(&mut ctx, config);
    no_wall_clock_or_entropy(&mut ctx, config);
    codec_layout_discipline(&mut ctx, config);
    no_unwrap_in_lib(&mut ctx, config);
    public_doc_coverage(&mut ctx, config);
    for slot in &ctx.slots {
        if slot.used {
            report.suppressions.push(UsedSuppression {
                path: file.rel_path.clone(),
                line: slot.target.unwrap_or(slot.decl),
                lint: slot.lint,
                reason: slot.reason.clone(),
            });
        } else {
            ctx.diags.push(Diagnostic {
                path: file.rel_path.clone(),
                line: slot.decl,
                code: "L0",
                name: "unused-suppression",
                message: format!(
                    "suppression for {} never matched a diagnostic; remove it",
                    slot.lint.name()
                ),
            });
        }
    }
    ctx.diags.sort_by_key(|d| d.line);
    report.diagnostics.append(&mut ctx.diags);
}

/// Working state while linting one file.
struct FileCtx<'a> {
    file: &'a SourceFile,
    diags: Vec<Diagnostic>,
    slots: Vec<Slot>,
}

impl FileCtx<'_> {
    /// Records a finding at 1-indexed `line`, unless an unused matching
    /// suppression slot covers it.
    fn report(&mut self, line: usize, lint: LintId, message: String) {
        if let Some(slot) = self
            .slots
            .iter_mut()
            .find(|s| s.target == Some(line) && s.lint == lint)
        {
            slot.used = true;
            return;
        }
        self.diags.push(Diagnostic {
            path: self.file.rel_path.clone(),
            line,
            code: lint.code(),
            name: lint.name(),
            message,
        });
    }

    /// Emits an `L0` directive-syntax diagnostic (never suppressable).
    fn directive_error(&mut self, line: usize, message: String) {
        self.diags.push(Diagnostic {
            path: self.file.rel_path.clone(),
            line,
            code: "L0",
            name: "suppression-syntax",
            message,
        });
    }
}

/// Parses `// ldp-lint: allow(<name>) -- <reason>` directives. A
/// directive on a code line suppresses that line; a directive on a
/// comment-only line suppresses the next code line (stacking with other
/// pending directives).
fn parse_directives(ctx: &mut FileCtx<'_>) {
    let mut pending: Vec<usize> = Vec::new(); // indices into ctx.slots
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        let line_no = idx + 1;
        let comment = line.comment.trim_start();
        // Doc comments only *document* the directive syntax; a live
        // suppression must be a plain comment.
        if comment.starts_with("///") || comment.starts_with("//!") {
            continue;
        }
        if let Some(pos) = line.comment.find(DIRECTIVE) {
            let rest = line.comment[pos + DIRECTIVE.len()..].trim();
            match parse_allow(rest) {
                Ok((lint, reason)) => {
                    let target = line.has_code().then_some(line_no);
                    ctx.slots.push(Slot {
                        target,
                        decl: line_no,
                        lint,
                        reason,
                        used: false,
                    });
                    if target.is_none() {
                        pending.push(ctx.slots.len() - 1);
                    }
                }
                Err(msg) => ctx.directive_error(line_no, msg),
            }
        } else if !line.has_code() && !pending.is_empty() {
            // Plain comment lines between a directive and its code line
            // continue the written reason.
            let cont = line.comment.trim_start().trim_start_matches('/').trim();
            if !cont.is_empty() {
                if let Some(&slot) = pending.last() {
                    let reason = &mut ctx.slots[slot].reason;
                    reason.push(' ');
                    reason.push_str(cont);
                }
            }
        }
        if line.has_code() && !pending.is_empty() {
            for &slot in &pending {
                ctx.slots[slot].target = Some(line_no);
            }
            pending.clear();
        }
    }
}

/// Parses the `allow(<name>) -- <reason>` tail of a directive.
fn parse_allow(rest: &str) -> Result<(LintId, String), String> {
    let Some(inner) = rest.strip_prefix("allow(") else {
        return Err(format!(
            "malformed directive; expected `{DIRECTIVE} allow(<lint>) -- <reason>`"
        ));
    };
    let Some(close) = inner.find(')') else {
        return Err("unterminated `allow(`".to_string());
    };
    let name = inner[..close].trim();
    let Some(lint) = LintId::from_name(name) else {
        let known: Vec<&str> = LintId::ALL.iter().map(|l| l.name()).collect();
        return Err(format!(
            "unknown lint `{name}`; known lints: {}",
            known.join(", ")
        ));
    };
    let tail = inner[close + 1..].trim();
    let Some(reason) = tail.strip_prefix("--") else {
        return Err(format!(
            "suppression of {} carries no reason; write `-- <why this is sound>`",
            lint.name()
        ));
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err(format!(
            "suppression of {} carries an empty reason; write `-- <why this is sound>`",
            lint.name()
        ));
    }
    Ok((lint, reason.to_string()))
}

/// True when `code` contains `token` as a whole identifier (not embedded
/// in a longer identifier).
fn has_token(code: &str, token: &str) -> bool {
    let mut from = 0;
    while let Some(at) = code[from..].find(token) {
        let start = from + at;
        let end = start + token.len();
        let before = code[..start].chars().next_back();
        let after = code[end..].chars().next();
        let ident = |c: Option<char>| c.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if !ident(before) && !ident(after) {
            return true;
        }
        from = end;
    }
    false
}

/// L1 — in byte-stable modules (fingerprints, codecs, snapshots), any
/// reference to an unordered container is rejected: iteration order would
/// leak allocator state into bytes that must be stable.
fn no_unordered_iteration(ctx: &mut FileCtx<'_>, config: &Config) {
    if !Config::matches_any(&ctx.file.rel_path, &config.byte_stable) {
        return;
    }
    let references_unordered =
        ctx.file.lines.iter().any(|l| {
            !l.in_test && (has_token(&l.code, "HashMap") || has_token(&l.code, "HashSet"))
        });
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        if has_token(&line.code, "HashMap") || has_token(&line.code, "HashSet") {
            ctx.report(
                idx + 1,
                LintId::UnorderedIteration,
                "unordered container in a byte-stable module; use BTreeMap/BTreeSet or a Vec"
                    .to_string(),
            );
        } else if references_unordered
            && [
                ".iter()",
                ".keys()",
                ".values()",
                ".drain()",
                ".into_iter()",
            ]
            .iter()
            .any(|p| line.code.contains(p))
        {
            ctx.report(
                idx + 1,
                LintId::UnorderedIteration,
                "iteration in a byte-stable module that references an unordered container"
                    .to_string(),
            );
        }
    }
}

/// L2 — `unsafe` is only permitted in allowlisted kernel modules, and
/// every occurrence must sit under a `// SAFETY:` comment (or a
/// `# Safety` doc section for `unsafe fn`).
fn safety_comment(ctx: &mut FileCtx<'_>, config: &Config) {
    for idx in 0..ctx.file.lines.len() {
        let line = &ctx.file.lines[idx];
        if !has_token(&line.code, "unsafe") {
            continue;
        }
        if !Config::matches_any(&ctx.file.rel_path, &config.unsafe_allowlist) {
            ctx.report(
                idx + 1,
                LintId::SafetyComment,
                "`unsafe` outside the kernel-module allowlist".to_string(),
            );
        } else if !has_safety_comment(ctx.file, idx) {
            ctx.report(
                idx + 1,
                LintId::SafetyComment,
                "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            );
        }
    }
}

/// True when the line at `idx` (0-indexed) carries or is preceded by a
/// `SAFETY:` / `# Safety` annotation within its contiguous block of
/// comment and attribute lines.
fn has_safety_comment(file: &SourceFile, idx: usize) -> bool {
    let is_safety = |c: &str| c.contains("SAFETY:") || c.contains("# Safety");
    if is_safety(&file.lines[idx].comment) {
        return true;
    }
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &file.lines[j];
        if is_safety(&line.comment) {
            return true;
        }
        let code = line.code.trim();
        let attribute = code.starts_with("#[");
        let comment_only = code.is_empty() && !line.comment.is_empty();
        if !attribute && !comment_only {
            return false;
        }
    }
    false
}

/// L3 — wall-clock time and ambient entropy are forbidden in library
/// code: determinism paths thread explicit seeds, and timing lives in
/// the bench harness.
fn no_wall_clock_or_entropy(ctx: &mut FileCtx<'_>, config: &Config) {
    if !config.is_lib(&ctx.file.rel_path) {
        return;
    }
    const SUBSTRINGS: [&str; 3] = ["Instant::now", "SystemTime", "std::time"];
    const TOKENS: [&str; 3] = ["thread_rng", "from_entropy", "OsRng"];
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let hit = SUBSTRINGS
            .iter()
            .find(|p| line.code.contains(*p))
            .copied()
            .or_else(|| TOKENS.iter().find(|t| has_token(&line.code, t)).copied());
        if let Some(what) = hit {
            ctx.report(
                idx + 1,
                LintId::WallClockOrEntropy,
                format!("`{what}` in library code; thread explicit seeds/timers instead"),
            );
        }
    }
}

/// Cast-target types whose layout must go through `to_le_bytes` /
/// `from_le_bytes` in codec modules.
const FIXED_WIDTH: [&str; 12] = [
    "u8", "u16", "u32", "u64", "u128", "i8", "i16", "i32", "i64", "i128", "f32", "f64",
];

/// L4 — in codec modules, numeric layout must be explicit: a bare
/// fixed-width `as` cast on a line that neither uses `*_le_bytes` nor a
/// `put_*` buffer helper is rejected.
fn codec_layout_discipline(ctx: &mut FileCtx<'_>, config: &Config) {
    if !Config::matches_any(&ctx.file.rel_path, &config.codec_modules) {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        if code.contains("_le_bytes") || code.contains("put_") {
            continue;
        }
        for target in cast_targets(code) {
            if FIXED_WIDTH.contains(&target.as_str()) {
                ctx.report(
                    idx + 1,
                    LintId::CodecLayout,
                    format!(
                        "bare `as {target}` in codec layout code; go through \
                         to_le_bytes/from_le_bytes or a put_* helper"
                    ),
                );
            }
        }
    }
}

/// Collects the type tokens following `as` casts in `code`.
fn cast_targets(code: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut from = 0;
    while let Some(at) = code[from..].find(" as ") {
        let after = &code[from + at + 4..];
        let target: String = after
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !target.is_empty() {
            out.push(target);
        }
        from += at + 4;
    }
    out
}

/// L5 — library code never panics on recoverable conditions: `unwrap()`,
/// `expect(..)` and `panic!` are rejected outside tests; typed errors
/// exist, use them.
fn no_unwrap_in_lib(ctx: &mut FileCtx<'_>, config: &Config) {
    if !config.is_lib(&ctx.file.rel_path) {
        return;
    }
    for (idx, line) in ctx.file.lines.iter().enumerate() {
        if line.in_test {
            continue;
        }
        let code = &line.code;
        let mut hits: Vec<&str> = Vec::new();
        if code.contains(".unwrap()") {
            hits.push(".unwrap()");
        }
        if code.contains(".expect(") {
            hits.push(".expect(..)");
        }
        if has_token(code, "panic") && code.contains("panic!") {
            hits.push("panic!");
        }
        for what in hits {
            ctx.report(
                idx + 1,
                LintId::UnwrapInLib,
                format!("`{what}` in library code; return a typed error instead"),
            );
        }
    }
}

/// Item introducers L6 requires documentation for (after the `pub `
/// prefix is stripped).
const PUB_ITEMS: [&str; 8] = [
    "fn ",
    "async fn ",
    "const fn ",
    "unsafe fn ",
    "struct ",
    "enum ",
    "trait ",
    "unsafe trait ",
];

/// L6 — every `pub fn`/`pub struct`/`pub enum`/`pub trait` in library
/// crates carries a doc comment (`///`, `//!` block above, or `#[doc]`).
fn public_doc_coverage(ctx: &mut FileCtx<'_>, config: &Config) {
    if !config.is_lib(&ctx.file.rel_path) {
        return;
    }
    for idx in 0..ctx.file.lines.len() {
        let line = &ctx.file.lines[idx];
        if line.in_test {
            continue;
        }
        let trimmed = line.code.trim_start();
        let Some(rest) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        if !PUB_ITEMS.iter().any(|p| rest.starts_with(p)) {
            continue;
        }
        if !has_doc_comment(ctx.file, idx) {
            let item: String = rest
                .chars()
                .take_while(|c| *c != '(' && *c != '<' && *c != '{' && *c != ';')
                .collect();
            ctx.report(
                idx + 1,
                LintId::DocCoverage,
                format!(
                    "undocumented public item `pub {}`; add a doc comment",
                    item.trim_end()
                ),
            );
        }
    }
}

/// True when the item starting at `idx` (0-indexed) has a doc comment in
/// the contiguous run of attribute/comment lines directly above it.
fn has_doc_comment(file: &SourceFile, idx: usize) -> bool {
    let mut j = idx;
    while j > 0 {
        j -= 1;
        let line = &file.lines[j];
        let code = line.code.trim();
        let comment = line.comment.trim_start();
        if comment.starts_with("///") || comment.starts_with("//!") || code.starts_with("#[doc") {
            return true;
        }
        let attribute = code.starts_with("#[") || (code.ends_with(']') && !code.contains('='));
        let comment_only = code.is_empty() && !comment.is_empty();
        if !attribute && !comment_only {
            return false;
        }
    }
    false
}
