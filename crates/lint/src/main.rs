//! `ldp-lint` CLI — walks the workspace and enforces the contract lints.
//!
//! ```text
//! cargo run -p ldp-lint --              # report, exit 0
//! cargo run -p ldp-lint -- --check      # report, exit 1 on any warning
//! cargo run -p ldp-lint -- --root DIR   # lint a different tree
//! cargo run -p ldp-lint -- --summary F  # also write a markdown summary to F
//! ```

use std::collections::BTreeMap;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use ldp_lint::{lint_root, Config, Report};

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("ldp-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}

/// Parsed command line.
struct Args {
    check: bool,
    root: Option<PathBuf>,
    summary: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        check: false,
        root: None,
        summary: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                args.root = Some(PathBuf::from(v));
            }
            "--summary" => {
                let v = it.next().ok_or("--summary needs a path")?;
                args.summary = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "ldp-lint: contract-enforcing static analysis\n\
                     usage: ldp-lint [--check] [--root DIR] [--summary FILE]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(args)
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args()?;
    let root = match args.root {
        Some(r) => r,
        None => workspace_root()?,
    };
    let config = Config::workspace();
    let report = lint_root(&root, &config).map_err(|e| e.to_string())?;

    for diag in &report.diagnostics {
        println!("{diag}");
    }
    print!("{}", render_summary(&report, &root));
    if let Some(path) = &args.summary {
        let mut f = std::fs::File::create(path).map_err(|e| e.to_string())?;
        f.write_all(render_markdown(&report).as_bytes())
            .map_err(|e| e.to_string())?;
    }
    if args.check && !report.is_clean() {
        Ok(ExitCode::from(1))
    } else {
        Ok(ExitCode::SUCCESS)
    }
}

/// Renders the human/CI summary: warning count, suppression count, and
/// the full suppression table (path, lint, reason) so reviewers watch
/// the allow-list grow.
fn render_summary(report: &Report, root: &Path) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "ldp-lint: {} file(s) scanned under {}: {} warning(s), {} suppression(s) in use\n",
        report.files,
        root.display(),
        report.diagnostics.len(),
        report.suppressions.len(),
    ));
    if !report.suppressions.is_empty() {
        let mut per_lint: BTreeMap<&str, usize> = BTreeMap::new();
        for s in &report.suppressions {
            *per_lint.entry(s.lint.name()).or_insert(0) += 1;
        }
        let counts: Vec<String> = per_lint
            .iter()
            .map(|(name, count)| format!("{name}: {count}"))
            .collect();
        out.push_str(&format!("suppressions by lint: {}\n", counts.join(", ")));
        for s in &report.suppressions {
            out.push_str(&format!(
                "  allowed[{}/{}] {}:{} -- {}\n",
                s.lint.code(),
                s.lint.name(),
                s.path,
                s.line,
                s.reason
            ));
        }
    }
    out
}

/// Renders the `--summary` file as markdown for CI job summaries: the
/// headline counts plus the full suppression table.
fn render_markdown(report: &Report) -> String {
    let mut out = String::from("## ldp-lint\n\n");
    out.push_str(&format!(
        "{} file(s) scanned — **{} warning(s)**, **{} suppression(s)** in use\n\n",
        report.files,
        report.diagnostics.len(),
        report.suppressions.len(),
    ));
    if !report.diagnostics.is_empty() {
        out.push_str("| location | lint | message |\n|---|---|---|\n");
        for d in &report.diagnostics {
            out.push_str(&format!(
                "| `{}:{}` | {}/{} | {} |\n",
                d.path, d.line, d.code, d.name, d.message
            ));
        }
        out.push('\n');
    }
    if !report.suppressions.is_empty() {
        out.push_str("### Suppressions (each carries a written reason)\n\n");
        out.push_str("| location | lint | reason |\n|---|---|---|\n");
        for s in &report.suppressions {
            out.push_str(&format!(
                "| `{}:{}` | {}/{} | {} |\n",
                s.path,
                s.line,
                s.lint.code(),
                s.lint.name(),
                s.reason
            ));
        }
    }
    out
}

/// Finds the workspace root by walking up from the current directory to
/// the first `Cargo.toml` declaring `[workspace]`.
fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| e.to_string())?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest).map_err(|e| e.to_string())?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml found above the current directory".to_string());
        }
    }
}
