//! Line-level lexical analysis: comment/string stripping and
//! `#[cfg(test)]` region tracking.
//!
//! ldp-lint runs in the offline build environment, so `syn` and rustc
//! internals are out of reach. Instead of a full parse, every file goes
//! through a hand-rolled character scan that is exact about the only
//! three questions the lints ask of a line: *what is code*, *what is
//! comment*, and *is this test-only*. Token scans performed by the lints
//! then operate on the stripped code text, so a `panic!` inside a string
//! literal or a doc example never fires a diagnostic.

/// One analyzed source line.
#[derive(Debug, Clone, Default)]
pub struct Line {
    /// Source text with comments removed and string/char literal contents
    /// blanked to spaces (delimiters are kept so the shape of the code
    /// survives). Lint token scans run against this.
    pub code: String,
    /// Comment text on the line, including the `//` / `/*` markers.
    /// Suppression directives and `SAFETY:` annotations are read from
    /// here.
    pub comment: String,
    /// True when the line sits inside a `#[cfg(test)]` item.
    pub in_test: bool,
}

impl Line {
    /// True when the line carries any non-comment source text.
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }
}

/// A fully analyzed source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    /// Analyzed lines in file order; diagnostics report them 1-indexed.
    pub lines: Vec<Line>,
}

/// Scanner state carried across characters (and lines, for multi-line
/// constructs: block comments, plain and raw string literals).
enum State {
    /// Ordinary code.
    Code,
    /// Inside a `"…"` string literal.
    Str,
    /// Inside a raw string literal with `hashes` leading `#`s.
    Raw { hashes: usize },
    /// Inside a (possibly nested) `/* … */` block comment.
    Block { depth: usize },
}

/// Lexes `text` into analyzed lines and marks `#[cfg(test)]` regions.
pub fn analyze(rel_path: &str, text: &str) -> SourceFile {
    let chars: Vec<char> = text.chars().collect();
    let mut lines: Vec<Line> = Vec::new();
    let mut line = Line::default();
    let mut state = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut line));
            i += 1;
            continue;
        }
        let next = chars.get(i + 1).copied();
        match state {
            State::Code => {
                if c == '/' && next == Some('/') {
                    while i < chars.len() && chars[i] != '\n' {
                        line.comment.push(chars[i]);
                        i += 1;
                    }
                } else if c == '/' && next == Some('*') {
                    line.comment.push_str("/*");
                    state = State::Block { depth: 1 };
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Str;
                    i += 1;
                } else if c == 'r' && raw_string_hashes(&chars, i + 1).is_some() {
                    let hashes = raw_string_hashes(&chars, i + 1).unwrap_or(0);
                    line.code.push('r');
                    line.code.push('"');
                    state = State::Raw { hashes };
                    i += 2 + hashes;
                } else if c == '\'' {
                    i = scan_quote(&chars, i, &mut line.code);
                } else {
                    line.code.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' && next.is_some() && next != Some('\n') {
                    line.code.push(' ');
                    i += 2;
                } else if c == '"' {
                    line.code.push('"');
                    state = State::Code;
                    i += 1;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::Raw { hashes } => {
                if c == '"' && closes_raw(&chars, i + 1, hashes) {
                    line.code.push('"');
                    state = State::Code;
                    i += 1 + hashes;
                } else {
                    line.code.push(' ');
                    i += 1;
                }
            }
            State::Block { depth } => {
                if c == '/' && next == Some('*') {
                    line.comment.push_str("/*");
                    state = State::Block { depth: depth + 1 };
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    line.comment.push_str("*/");
                    state = if depth == 1 {
                        State::Code
                    } else {
                        State::Block { depth: depth - 1 }
                    };
                    i += 2;
                } else {
                    line.comment.push(c);
                    i += 1;
                }
            }
        }
    }
    if !line.code.is_empty() || !line.comment.is_empty() {
        lines.push(line);
    }
    mark_cfg_test(&mut lines);
    SourceFile {
        rel_path: rel_path.to_string(),
        lines,
    }
}

/// If `chars[from..]` is the `#…#"` opener of a raw string (the `r` has
/// already been consumed), returns the number of `#`s.
fn raw_string_hashes(chars: &[char], from: usize) -> Option<usize> {
    let mut j = from;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    (chars.get(j) == Some(&'"')).then_some(j - from)
}

/// True when a `"` at `close - 1` is followed by `hashes` `#`s, closing a
/// raw string literal.
fn closes_raw(chars: &[char], close: usize, hashes: usize) -> bool {
    (0..hashes).all(|k| chars.get(close + k) == Some(&'#'))
}

/// Scans a `'` at position `i`: a char literal has its contents blanked,
/// a lifetime keeps only the quote. Returns the next scan position.
fn scan_quote(chars: &[char], i: usize, code: &mut String) -> usize {
    code.push('\'');
    if chars.get(i + 1) == Some(&'\\') {
        // Escaped char literal: '\n', '\'', '\u{…}'.
        let mut j = i + 2;
        code.push(' ');
        while j < chars.len() && chars[j] != '\'' && chars[j] != '\n' {
            code.push(' ');
            j += 1;
        }
        if chars.get(j) == Some(&'\'') {
            code.push('\'');
            j += 1;
        }
        j
    } else if chars.get(i + 2) == Some(&'\'') && chars.get(i + 1).is_some() {
        // Plain char literal: 'x'.
        code.push(' ');
        code.push('\'');
        i + 3
    } else {
        // Lifetime: 'a — keep the quote, scan on.
        i + 1
    }
}

/// Marks every line inside a `#[cfg(test)]` item (attribute line through
/// the matching closing brace) as test-only.
fn mark_cfg_test(lines: &mut [Line]) {
    let mut depth: i64 = 0;
    let mut pending = false;
    let mut region_start: Option<i64> = None;
    for line in lines.iter_mut() {
        if line.code.trim_start().starts_with("#[cfg(test)]") {
            pending = true;
            line.in_test = true;
        }
        let opens = line.code.matches('{').count() as i64;
        let closes = line.code.matches('}').count() as i64;
        if pending && opens > 0 && region_start.is_none() {
            region_start = Some(depth);
            pending = false;
        }
        depth += opens - closes;
        if let Some(start) = region_start {
            line.in_test = true;
            if depth <= start {
                region_start = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(text: &str) -> Vec<String> {
        analyze("t.rs", text)
            .lines
            .iter()
            .map(|l| l.code.clone())
            .collect()
    }

    #[test]
    fn line_comments_are_stripped_into_comment_text() {
        let f = analyze("t.rs", "let x = 1; // trailing panic!()\n");
        assert_eq!(f.lines[0].code, "let x = 1; ");
        assert_eq!(f.lines[0].comment, "// trailing panic!()");
    }

    #[test]
    fn string_contents_are_blanked() {
        let c = codes("let s = \"panic! // not a comment\";\n");
        assert!(!c[0].contains("panic"));
        assert!(c[0].contains('"'));
        assert!(c[0].ends_with(';'));
    }

    #[test]
    fn raw_strings_and_escapes_are_blanked() {
        let c = codes("let s = r#\"unwrap() \"# ; let t = \"\\\"panic!\";\n");
        assert!(!c[0].contains("unwrap"));
        assert!(!c[0].contains("panic"));
        assert!(c[0].ends_with(';'));
    }

    #[test]
    fn multi_line_block_comments_hide_code_tokens() {
        let c = codes("a(); /* panic!\n still comment\n */ b();\n");
        assert!(c[0].starts_with("a(); "));
        assert!(!c.concat().contains("panic"));
        assert!(c[2].contains("b();"));
    }

    #[test]
    fn char_literals_blank_but_lifetimes_survive() {
        let c = codes("let c = 'x'; fn f<'a>(s: &'a str) {}\n");
        assert!(!c[0].contains('x'));
        assert!(c[0].contains("'a"));
        assert!(c[0].contains("&'a str"));
    }

    #[test]
    fn cfg_test_region_is_marked_to_closing_brace() {
        let f = analyze(
            "t.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n",
        );
        let flags: Vec<bool> = f.lines.iter().map(|l| l.in_test).collect();
        assert_eq!(flags, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn multiline_string_spans_lines() {
        let c = codes("let s = \"first\nunwrap()\nlast\"; end();\n");
        assert!(!c[1].contains("unwrap"));
        assert!(c[2].contains("end();"));
    }
}
