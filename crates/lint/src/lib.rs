//! ldp-lint — contract-enforcing static analysis for the ldp workspace.
//!
//! The repo's core promise — Matrix-Mechanism deployments whose estimates
//! are bit-identical across thread counts, restarts, and checkpoint cuts —
//! rests on a handful of source-level contracts that dynamic tests can
//! only sample. This crate walks the workspace tree with a hand-rolled
//! line analyzer (no `syn` in the offline build environment) and enforces
//! them as named, individually suppressable lints:
//!
//! | code | name | contract |
//! |------|------|----------|
//! | `L1` | `no-unordered-iteration` | no `HashMap`/`HashSet` in fingerprint/codec/snapshot/stablehash modules |
//! | `L2` | `safety-comment` | `unsafe` only in kernel allowlist modules, always under `// SAFETY:` |
//! | `L3` | `no-wall-clock-or-entropy` | no `Instant::now`/`SystemTime`/ambient RNG in library code |
//! | `L4` | `codec-layout-discipline` | codec numeric layout goes through `to_le_bytes`/`from_le_bytes` |
//! | `L5` | `no-unwrap-in-lib` | no `unwrap()`/`expect(..)`/`panic!` in library code |
//! | `L6` | `public-doc-coverage` | every `pub fn`/`struct`/`enum`/`trait` in library crates is documented |
//!
//! A diagnostic can be silenced only by an inline directive that names
//! the lint *and* gives a reason:
//!
//! ```text
//! // ldp-lint: allow(no-unwrap-in-lib) -- poisoning only possible if a worker panicked
//! ```
//!
//! Suppressions are counted and reported (CI surfaces the count in the
//! job summary), a directive without a reason is itself a diagnostic,
//! and a directive that never matches a firing lint is flagged as
//! unused — the allow-list can only grow deliberately.
//!
//! Run it with `cargo run -p ldp-lint -- --check`; see `crates/lint/README.md`
//! for the per-lint rationale and before/after examples.

pub mod lints;
pub mod source;

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

pub use lints::LintId;
pub use source::{Line, SourceFile};

/// Path policy for a lint run. All matching is on workspace-relative
/// paths with forward slashes; `skip` and the per-lint lists match by
/// substring, `lib_roots`/`lib_exempt` by prefix.
#[derive(Debug, Clone)]
pub struct Config {
    /// Path substrings excluded from the walk entirely (build output,
    /// VCS metadata, the lint fixture corpus).
    pub skip: Vec<String>,
    /// Prefixes of paths holding library code, the surface where L3, L5
    /// and L6 apply. Within these, files under `tests/`, `benches/`,
    /// `examples/`, `bin/` or `fixtures/` segments, `main.rs`, and
    /// `build.rs` are not library code, and `#[cfg(test)]` regions are
    /// always exempt.
    pub lib_roots: Vec<String>,
    /// Prefixes exempt from the library-code lints even though they live
    /// under a `lib_roots` prefix (the bench harness and the offline
    /// compat shims).
    pub lib_exempt: Vec<String>,
    /// L1: path substrings of byte-stable modules, where unordered
    /// containers are forbidden.
    pub byte_stable: Vec<String>,
    /// L2: path substrings of kernel modules where `unsafe` is permitted
    /// (under a `// SAFETY:` comment). Everywhere else it is rejected
    /// outright.
    pub unsafe_allowlist: Vec<String>,
    /// L4: path substrings of codec modules under layout discipline.
    pub codec_modules: Vec<String>,
}

impl Config {
    /// The policy for this workspace, as documented in the README's
    /// "Static analysis & contracts" section.
    pub fn workspace() -> Self {
        let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect();
        Config {
            skip: s(&["target/", ".git/", "crates/lint/tests/fixtures/"]),
            lib_roots: s(&["src/", "crates/"]),
            lib_exempt: s(&["crates/compat/", "crates/bench/"]),
            byte_stable: s(&[
                "stablehash",
                "fingerprint",
                "crates/store/src/codec.rs",
                "crates/store/src/snapshot.rs",
                "crates/store/src/registry.rs",
                "crates/serve/src/wire.rs",
                "crates/sparse/src/snapshot.rs",
            ]),
            unsafe_allowlist: s(&["crates/linalg/src/simd", "crates/linalg/src/kernels"]),
            codec_modules: s(&[
                "crates/store/src/codec.rs",
                "crates/store/src/snapshot.rs",
                "crates/serve/src/wire.rs",
                "crates/sparse/src/snapshot.rs",
            ]),
        }
    }

    /// True when `rel_path` contains any of the given substrings.
    pub fn matches_any(rel_path: &str, patterns: &[String]) -> bool {
        patterns.iter().any(|p| rel_path.contains(p.as_str()))
    }

    /// True when `rel_path` is library code (see [`Config::lib_roots`]).
    pub fn is_lib(&self, rel_path: &str) -> bool {
        if !self
            .lib_roots
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
        {
            return false;
        }
        if self
            .lib_exempt
            .iter()
            .any(|p| rel_path.starts_with(p.as_str()))
        {
            return false;
        }
        let non_lib_segment = rel_path
            .split('/')
            .any(|seg| matches!(seg, "tests" | "benches" | "examples" | "bin" | "fixtures"));
        let file = rel_path.rsplit('/').next().unwrap_or(rel_path);
        !non_lib_segment && file != "main.rs" && file != "build.rs"
    }
}

/// A single lint finding, printed rustc-style:
/// `path:line: warning[L5/no-unwrap-in-lib]: message`.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Lint code (`L1`..`L6`, or `L0` for directive problems).
    pub code: &'static str,
    /// Lint name as used in `allow(…)` directives.
    pub name: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: warning[{}/{}]: {}",
            self.path, self.line, self.code, self.name, self.message
        )
    }
}

/// An inline suppression that matched at least one firing lint.
#[derive(Debug, Clone)]
pub struct UsedSuppression {
    /// Workspace-relative path of the suppressed line.
    pub path: String,
    /// 1-indexed line the suppression applied to.
    pub line: usize,
    /// The suppressed lint.
    pub lint: LintId,
    /// The mandatory written reason.
    pub reason: String,
}

/// The outcome of a lint run.
#[derive(Debug, Clone, Default)]
pub struct Report {
    /// Unsuppressed findings, in path/line order.
    pub diagnostics: Vec<Diagnostic>,
    /// Suppressions that matched a firing lint, in path/line order.
    pub suppressions: Vec<UsedSuppression>,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

impl Report {
    /// True when the tree is clean under the policy.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Lints every `.rs` file under `root` (or `root` itself when it is a
/// file) and returns the combined report.
///
/// # Errors
/// Propagates I/O errors from walking or reading the tree.
pub fn lint_root(root: &Path, config: &Config) -> io::Result<Report> {
    let mut files = Vec::new();
    collect_rs_files(root, root, config, &mut files)?;
    let base = if root.is_file() {
        root.parent().unwrap_or_else(|| Path::new(""))
    } else {
        root
    };
    let mut report = Report::default();
    for rel in files {
        let text = fs::read_to_string(base.join(&rel))?;
        let analyzed = source::analyze(&rel, &text);
        lints::lint_file(&analyzed, config, &mut report);
        report.files += 1;
    }
    Ok(report)
}

/// Recursively collects workspace-relative `.rs` paths in sorted order,
/// honoring `config.skip`. Sorted traversal keeps the report ordering —
/// like everything else in this workspace — deterministic.
fn collect_rs_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> io::Result<()> {
    if dir.is_file() {
        if let Some(rel) = rel_path(root, dir) {
            out.push(rel);
        }
        return Ok(());
    }
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(rel) = rel_path(root, &path) else {
            continue;
        };
        let probe = if path.is_dir() {
            format!("{rel}/")
        } else {
            rel.clone()
        };
        if Config::matches_any(&probe, &config.skip) {
            continue;
        }
        if path.is_dir() {
            collect_rs_files(root, &path, config, out)?;
        } else if rel.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Normalizes `path` relative to `root` with forward slashes.
fn rel_path(root: &Path, path: &Path) -> Option<String> {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let s = rel.to_str()?;
    if s.is_empty() {
        return path.file_name().and_then(|n| n.to_str()).map(String::from);
    }
    Some(s.replace('\\', "/"))
}
