//! Fixture-corpus tests: every lint has a firing and a clean fixture,
//! and the suppression directive grammar is exercised end to end.
//!
//! Each fixture is linted as a standalone file under a corpus-local
//! [`Config`] whose path markers live in the *file names*
//! (`stablehash_*`, `kernels_*`, `codec_*`), so one file pins down one
//! policy decision.

use std::path::{Path, PathBuf};

use ldp_lint::{lint_root, Config, Report};

fn fixtures_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn fixture_config() -> Config {
    let s = |v: &[&str]| v.iter().map(|p| p.to_string()).collect();
    Config {
        skip: Vec::new(),
        lib_roots: s(&[""]),
        lib_exempt: Vec::new(),
        byte_stable: s(&["stablehash", "sparse_snapshot"]),
        unsafe_allowlist: s(&["kernels", "simd"]),
        codec_modules: s(&["codec"]),
    }
}

fn lint_fixture(rel: &str) -> Report {
    lint_root(&fixtures_root().join(rel), &fixture_config())
        .unwrap_or_else(|e| panic!("fixture {rel} unreadable: {e}"))
}

/// The `(line, code)` pairs of every diagnostic, in report order.
fn findings(report: &Report) -> Vec<(usize, &'static str)> {
    report
        .diagnostics
        .iter()
        .map(|d| (d.line, d.code))
        .collect()
}

fn assert_clean(rel: &str) {
    let report = lint_fixture(rel);
    assert!(
        report.is_clean(),
        "{rel} should be clean, got:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn l1_fires_on_unordered_containers_in_byte_stable_modules() {
    let report = lint_fixture("l1/stablehash_firing.rs");
    assert_eq!(findings(&report), vec![(3, "L1"), (6, "L1"), (8, "L1")]);
}

#[test]
fn l1_clean_on_ordered_containers() {
    assert_clean("l1/stablehash_clean.rs");
}

#[test]
fn l1_fires_on_hash_map_in_sparse_codec_path() {
    let report = lint_fixture("l1/sparse_snapshot_firing.rs");
    assert_eq!(findings(&report), vec![(4, "L1"), (8, "L1"), (10, "L1")]);
}

#[test]
fn l1_clean_on_sorted_key_sparse_codec_path() {
    assert_clean("l1/sparse_snapshot_clean.rs");
}

#[test]
fn l2_fires_on_unsafe_outside_allowlist_even_with_safety_comment() {
    let report = lint_fixture("l2/firing_outside.rs");
    assert_eq!(findings(&report), vec![(6, "L2")]);
    assert!(report.diagnostics[0].message.contains("allowlist"));
}

#[test]
fn l2_fires_on_allowlisted_unsafe_without_safety_comment() {
    let report = lint_fixture("l2/kernels_firing.rs");
    assert_eq!(findings(&report), vec![(5, "L2")]);
    assert!(report.diagnostics[0].message.contains("SAFETY"));
}

#[test]
fn l2_clean_on_allowlisted_unsafe_under_safety_comment() {
    assert_clean("l2/kernels_clean.rs");
}

#[test]
fn l2_clean_on_simd_module_unsafe_under_safety_comment() {
    assert_clean("l2/simd_clean.rs");
}

#[test]
fn l2_fires_on_unsafe_in_optimizer_numeric_module() {
    // The quasi-Newton optimizer class is deliberately unsafe-free;
    // `lbfgs` is not an allowlist marker, so even SAFETY-commented
    // unsafe fires there.
    let report = lint_fixture("l2/lbfgs_firing.rs");
    assert_eq!(findings(&report), vec![(9, "L2")]);
    assert!(report.diagnostics[0].message.contains("allowlist"));
}

#[test]
fn l2_clean_on_unsafe_free_optimizer_numeric_module() {
    assert_clean("l2/lbfgs_clean.rs");
}

#[test]
fn l2_fires_on_kernel_dispatch_unsafe_outside_both_allowlist_markers() {
    let report = lint_fixture("l2/dispatch_firing.rs");
    assert_eq!(findings(&report), vec![(8, "L2")]);
    assert!(report.diagnostics[0].message.contains("allowlist"));
}

#[test]
fn l3_fires_on_wall_clock_in_lib_code() {
    let report = lint_fixture("l3/firing.rs");
    assert_eq!(findings(&report), vec![(3, "L3"), (7, "L3")]);
}

#[test]
fn l3_clean_on_explicit_seeds() {
    assert_clean("l3/clean.rs");
}

#[test]
fn l4_fires_on_bare_cast_in_codec_module() {
    let report = lint_fixture("l4/codec_firing.rs");
    assert_eq!(findings(&report), vec![(5, "L4")]);
    assert!(report.diagnostics[0].message.contains("as u64"));
}

#[test]
fn l4_clean_on_le_bytes_layout() {
    assert_clean("l4/codec_clean.rs");
}

#[test]
fn l5_fires_on_panic_unwrap_expect() {
    let report = lint_fixture("l5/firing.rs");
    assert_eq!(findings(&report), vec![(6, "L5"), (8, "L5"), (13, "L5")]);
}

#[test]
fn l5_clean_on_typed_errors_and_exempts_cfg_test() {
    // The fixture unwraps inside `#[cfg(test)]` — that must not fire.
    assert_clean("l5/clean.rs");
}

#[test]
fn l6_fires_on_undocumented_public_items() {
    let report = lint_fixture("l6/firing.rs");
    assert_eq!(findings(&report), vec![(3, "L6"), (5, "L6")]);
}

#[test]
fn l6_clean_on_documented_surface() {
    assert_clean("l6/clean.rs");
}

#[test]
fn suppression_with_reason_silences_and_is_reported() {
    let report = lint_fixture("suppress/used.rs");
    assert!(report.is_clean(), "the directive should silence L5");
    assert_eq!(report.suppressions.len(), 1);
    let s = &report.suppressions[0];
    assert_eq!(s.lint.code(), "L5");
    assert_eq!(s.line, 10, "suppression binds to the code line");
    // Continuation comment lines extend the recorded reason.
    assert_eq!(
        s.reason,
        "documented `# Panics` contract exercised by the suppression fixtures."
    );
}

#[test]
fn directive_without_reason_is_a_syntax_diagnostic() {
    let report = lint_fixture("suppress/missing_reason.rs");
    assert_eq!(findings(&report), vec![(5, "L0")]);
    assert!(report.diagnostics[0].message.contains("no reason"));
}

#[test]
fn directive_with_unknown_lint_is_a_syntax_diagnostic() {
    let report = lint_fixture("suppress/unknown_lint.rs");
    assert_eq!(findings(&report), vec![(5, "L0")]);
    assert!(report.diagnostics[0].message.contains("no-such-lint"));
    assert!(report.diagnostics[0].message.contains("known lints"));
}

#[test]
fn unused_suppression_is_flagged() {
    let report = lint_fixture("suppress/unused.rs");
    assert_eq!(findings(&report), vec![(5, "L0")]);
    assert_eq!(report.diagnostics[0].name, "unused-suppression");
    assert!(report.suppressions.is_empty());
}

#[test]
fn whole_corpus_walk_is_deterministic_and_complete() {
    let report = lint_root(&fixtures_root(), &fixture_config()).unwrap();
    assert_eq!(report.files, 23, "every fixture file is scanned");
    let again = lint_root(&fixtures_root(), &fixture_config()).unwrap();
    let render = |r: &Report| {
        r.diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    };
    assert_eq!(render(&report), render(&again), "sorted walk is stable");
}
