//! The live workspace must stay clean under the workspace lint policy —
//! the same run CI performs with `cargo run -p ldp-lint -- --check`.

use std::path::Path;

use ldp_lint::{lint_root, Config};

#[test]
fn live_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = lint_root(&root, &Config::workspace()).expect("workspace tree readable");
    assert!(report.files > 50, "walk saw only {} files", report.files);
    assert!(
        report.is_clean(),
        "ldp-lint found {} warning(s) on the live tree:\n{}",
        report.diagnostics.len(),
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    for s in &report.suppressions {
        assert!(
            !s.reason.trim().is_empty(),
            "{}:{} suppression of {} has an empty reason",
            s.path,
            s.line,
            s.lint.name()
        );
    }
}
