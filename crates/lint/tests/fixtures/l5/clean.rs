//! Fixture: typed errors in library code; tests may unwrap.

/// Parses a decimal count.
///
/// # Errors
/// Returns the integer parse error on malformed input.
pub fn parse_count(s: &str) -> Result<u64, std::num::ParseIntError> {
    s.parse()
}

#[cfg(test)]
mod tests {
    #[test]
    fn parses() {
        assert_eq!(super::parse_count("7").unwrap(), 7);
    }
}
