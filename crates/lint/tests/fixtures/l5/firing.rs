//! Fixture: panicking operators in library code.

/// Parses a decimal count. Fires L5 twice: panic and unwrap.
pub fn parse_count(s: &str) -> u64 {
    if s.is_empty() {
        panic!("empty count");
    }
    s.parse().unwrap()
}

/// Front element. Fires L5: expect.
pub fn front(xs: &[u64]) -> u64 {
    xs.first().copied().expect("non-empty")
}
