//! Fixture: bare fixed-width cast in codec layout code.

/// Packs a length header. Fires L4: layout via a bare cast.
pub fn header(len: usize) -> u64 {
    len as u64
}
