//! Fixture: explicit little-endian layout in codec code.

/// Packs a length header as 8 little-endian bytes.
pub fn header(len: u64) -> [u8; 8] {
    len.to_le_bytes()
}

/// Reads the length header back.
pub fn read_header(bytes: [u8; 8]) -> u64 {
    u64::from_le_bytes(bytes)
}
