//! Fixture: an unsafe-free quasi-Newton numeric module — the optimizer
//! class stays outside the kernel allowlist and needs no unsafe at all.

/// One two-loop-recursion inner product over a curvature pair.
pub fn curvature_dot(s: &[f64], y: &[f64]) -> f64 {
    s.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Scales a direction in place by a bit-stable factor.
pub fn scale_direction(d: &mut [f64], gamma: f64) {
    for v in d.iter_mut() {
        *v *= gamma;
    }
}
