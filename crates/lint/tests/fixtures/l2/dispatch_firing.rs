//! Fixture: intrinsics-style `unsafe` in a dispatch file *outside* the
//! `simd`/`kernels` allowlist — fires even with a `SAFETY:` comment,
//! because unsafe code must live in the allowlisted kernel modules.

/// Calls a vector kernel directly instead of going through the backend.
pub fn call_kernel(xs: &[f64]) -> f64 {
    // SAFETY: avx2 was detected at startup.
    unsafe { *xs.get_unchecked(0) }
}
