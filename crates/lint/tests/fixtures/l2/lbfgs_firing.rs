//! Fixture: `unsafe` creeping into an optimizer numeric module — the
//! allowlist reserves unsafe for `kernels`/`simd`, not descent code.

/// Sums a slice without bounds checks.
pub fn unchecked_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for i in 0..xs.len() {
        // SAFETY: i < xs.len() by the loop bound.
        acc += unsafe { *xs.get_unchecked(i) };
    }
    acc
}
