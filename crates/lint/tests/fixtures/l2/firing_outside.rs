//! Fixture: `unsafe` outside the kernel allowlist.

/// Reads the first element without a bounds check.
pub fn first(xs: &[f64]) -> f64 {
    // SAFETY: caller promises xs is non-empty.
    unsafe { *xs.get_unchecked(0) }
}
