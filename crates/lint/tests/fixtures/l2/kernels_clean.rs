//! Fixture: allowlisted `unsafe` under `SAFETY:` / `# Safety`.

/// Reads the first element without a bounds check.
///
/// # Safety
/// `xs` must be non-empty.
pub unsafe fn first_unchecked(xs: &[f64]) -> f64 {
    // SAFETY: the caller upholds the non-empty contract.
    unsafe { *xs.get_unchecked(0) }
}
