//! Fixture: vector-kernel `unsafe` in the `simd` allowlist module, with
//! the full `# Safety` contract + `// SAFETY:` discharge the L2 lint
//! requires — mirrors the shape of `crates/linalg/src/simd.rs`.

/// Sums a slice four lanes at a time.
///
/// # Safety
/// The caller must have verified `avx2` and `fma` support at runtime.
pub unsafe fn sum_lanes(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for chunk in xs.chunks_exact(4) {
        // SAFETY: `chunks_exact(4)` guarantees four readable elements.
        acc += unsafe { chunk.get_unchecked(0) + chunk.get_unchecked(3) };
    }
    acc
}
