//! Fixture: allowlisted module, but the safety comment is missing.

/// Reads the first element without a bounds check.
pub fn first(xs: &[f64]) -> f64 {
    unsafe { *xs.get_unchecked(0) }
}
