//! Fixture: a directive naming a lint that does not exist.

/// Constant two.
pub fn two() -> u64 {
    // ldp-lint: allow(no-such-lint) -- because
    2
}
