//! Fixture: a suppression that matches no firing lint.

/// Adds one.
pub fn add_one(x: u64) -> u64 {
    // ldp-lint: allow(no-unwrap-in-lib) -- nothing actually fires here
    x + 1
}
