//! Fixture: a live suppression with a written reason.

/// Front element.
///
/// # Panics
/// Panics when `xs` is empty.
pub fn front(xs: &[u64]) -> u64 {
    // ldp-lint: allow(no-unwrap-in-lib) -- documented `# Panics`
    // contract exercised by the suppression fixtures.
    xs.first().copied().expect("non-empty")
}
