//! Fixture: a directive without the mandatory reason.

/// Constant one.
pub fn one() -> u64 {
    // ldp-lint: allow(no-unwrap-in-lib)
    1
}
