//! Fixture: documented public surface; private items need no docs.

/// A documented marker type.
pub struct Documented;

/// A documented function.
pub fn documented() {}

fn private_needs_no_docs() {}
