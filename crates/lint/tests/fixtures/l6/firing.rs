//! Fixture: undocumented public surface.

pub struct Undocumented;

pub fn undocumented() {}
