//! Fixture: unordered containers inside a byte-stable module.

use std::collections::HashMap;

/// Hashes the values. Fires L1: iteration order is allocator state.
pub fn fingerprint(values: &HashMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in values.iter() {
        acc ^= v.wrapping_add(k.len() as u64);
    }
    acc
}
