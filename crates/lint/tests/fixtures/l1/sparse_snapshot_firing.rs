//! Fixture: a sparse checkpoint codec that serializes straight out of
//! its hash map — the exact bug the byte-stable list exists to catch.

use std::collections::HashMap;

/// Flattens shard counts for encoding. Fires L1 twice: the container
/// and the iteration both leak allocator state into checkpoint bytes.
pub fn flatten(counts: &HashMap<u64, u64>) -> Vec<u64> {
    let mut flat = Vec::new();
    for (k, c) in counts.iter() {
        flat.push(*k);
        flat.push(*c);
    }
    flat
}
