//! Fixture: ordered containers keep byte-stable modules deterministic.

use std::collections::BTreeMap;

/// Hashes the values in key order.
pub fn fingerprint(values: &BTreeMap<String, u64>) -> u64 {
    let mut acc = 0u64;
    for (k, v) in values.iter() {
        acc ^= v.wrapping_add(k.len() as u64);
    }
    acc
}
