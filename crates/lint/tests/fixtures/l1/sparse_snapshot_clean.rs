//! Fixture: the sparse checkpoint codec iterates a canonical
//! sorted-key export, so the bytes cannot see the shard's container.

/// Flattens canonical strictly-ascending `(key, count)` pairs.
pub fn flatten(pairs: &[(u64, u64)]) -> Vec<u64> {
    let mut flat = Vec::with_capacity(2 * pairs.len());
    for &(k, c) in pairs {
        flat.push(k);
        flat.push(c);
    }
    flat
}
