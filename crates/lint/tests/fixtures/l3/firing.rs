//! Fixture: wall clock in library code.

use std::time::Instant;

/// Times one call of `f`.
pub fn timed(f: impl FnOnce()) -> f64 {
    let start = Instant::now();
    f();
    start.elapsed().as_secs_f64()
}
