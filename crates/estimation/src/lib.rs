//! Estimation and post-processing for LDP mechanism outputs.
//!
//! The factorization mechanism's estimates `Vy = Wx̂` are unbiased but may
//! be *inconsistent* — e.g. negative counts (Remark 1 of the paper). This
//! crate implements the paper's Appendix A extension, **workload
//! non-negative least squares (WNNLS)**:
//!
//! ```text
//! x̃ = argmin_{x ≥ 0} ‖Wx − Vy‖²₂
//! ```
//!
//! after which the workload answers `Wx̃` are consistent (they come from
//! an actual non-negative data vector) and typically have substantially
//! lower variance in the high-privacy / low-data regime (Section 6.7,
//! Figure 4). The paper solves this with scipy's L-BFGS; we use FISTA —
//! an accelerated projected gradient method with the same unique-in-`Wx`
//! minimizer on this convex quadratic (DESIGN.md §4).
//!
//! Everything runs through the Gram matrix: since `Vy = W·x̂` for the
//! unbiased estimate `x̂ = Ky`, the objective is
//! `x ↦ xᵀGx − 2xᵀGx̂ + const`, so workloads with `p ≫ n` queries never
//! materialize `W`.
//!
//! The [`simulate`] module estimates the (normalized) variance of a
//! mechanism empirically, with or without WNNLS — the quantity plotted in
//! Figure 4.

pub mod quantiles;
pub mod simulate;
mod wnnls;

pub use quantiles::{quantile, quantiles_from_estimate, repair_cdf};
pub use simulate::{simulated_normalized_variance, Postprocess};
pub use wnnls::{wnnls, WnnlsOptions};
