//! Monte-Carlo estimation of mechanism variance (used for Figure 4, where
//! WNNLS breaks the closed-form variance expressions).

use ldp_core::{DataVector, LdpMechanism};
use ldp_workloads::Workload;
use rand::RngCore;

use crate::wnnls::{wnnls, WnnlsOptions};

/// Which post-processing to apply to the unbiased estimate before
/// measuring error.
#[derive(Clone, Copy, Debug, Default)]
pub enum Postprocess {
    /// The raw unbiased estimate (the paper's "Default").
    #[default]
    None,
    /// Workload non-negative least squares (the paper's "WNNLS").
    Wnnls(WnnlsOptions),
}

/// Estimates the normalized variance
/// `E[ (1/p)·‖(Wx − M(x))/N‖²₂ ]` (Definition 5.2's data-dependent
/// analogue, the y-axis of Figure 4) by running the mechanism `trials`
/// times on `data`.
///
/// # Panics
/// Panics if `trials == 0` or the workload/mechanism/data domains
/// disagree.
pub fn simulated_normalized_variance(
    workload: &dyn Workload,
    mechanism: &dyn LdpMechanism,
    data: &DataVector,
    trials: usize,
    postprocess: Postprocess,
    rng: &mut dyn RngCore,
) -> f64 {
    assert!(trials > 0, "at least one trial required");
    assert_eq!(workload.domain_size(), mechanism.domain_size());
    assert_eq!(workload.domain_size(), data.domain_size());
    let n_users = data.total();
    assert!(n_users > 0.0, "data must contain users");
    let p = workload.num_queries() as f64;
    let truth = workload.evaluate(data.counts());
    let gram = match postprocess {
        Postprocess::Wnnls(_) => Some(workload.gram()),
        Postprocess::None => None,
    };

    let mut total = 0.0;
    for _ in 0..trials {
        let xhat = mechanism.run(data, rng);
        let estimate = match (&postprocess, &gram) {
            (Postprocess::Wnnls(options), Some(g)) => wnnls(g, &xhat, options),
            _ => xhat,
        };
        let answers = workload.evaluate(&estimate);
        let sq_err: f64 = answers
            .iter()
            .zip(&truth)
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        total += sq_err / (p * n_users * n_users);
    }
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::{FactorizationMechanism, StrategyMatrix};
    use ldp_linalg::Matrix;
    use ldp_workloads::{Histogram, Prefix};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rr(n: usize, eps: f64, gram: &dyn ldp_linalg::LinOp) -> FactorizationMechanism {
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let s = StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap();
        FactorizationMechanism::new_unchecked_privacy(s, gram, eps).unwrap()
    }

    #[test]
    fn simulation_matches_analytic_variance() {
        let n = 4;
        let w = Histogram::new(n);
        let gram = w.gram();
        let mech = rr(n, 1.0, &gram);
        let data = DataVector::from_counts(vec![300.0, 200.0, 400.0, 100.0]);
        let mut rng = StdRng::seed_from_u64(77);
        let sim = simulated_normalized_variance(&w, &mech, &data, 400, Postprocess::None, &mut rng);
        let analytic = mech.data_variance(&gram, &data)
            / (w.num_queries() as f64 * data.total() * data.total());
        let rel = (sim - analytic).abs() / analytic;
        assert!(rel < 0.2, "sim {sim} vs analytic {analytic}");
    }

    #[test]
    fn wnnls_reduces_variance_in_low_data_regime() {
        // Small N, sparse data: the paper's Figure 4 setting. WNNLS should
        // help substantially.
        let n = 16;
        let w = Prefix::new(n);
        let gram = w.gram();
        let mech = rr(n, 1.0, &gram);
        // Sparse data: most mass in two cells.
        let mut counts = vec![0.0; n];
        counts[2] = 60.0;
        counts[9] = 40.0;
        let data = DataVector::from_counts(counts);
        let mut rng = StdRng::seed_from_u64(5);
        let base = simulated_normalized_variance(&w, &mech, &data, 60, Postprocess::None, &mut rng);
        let mut rng = StdRng::seed_from_u64(5);
        let post = simulated_normalized_variance(
            &w,
            &mech,
            &data,
            60,
            Postprocess::Wnnls(WnnlsOptions::default()),
            &mut rng,
        );
        assert!(
            post < base,
            "WNNLS ({post}) should reduce variance vs default ({base})"
        );
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_rejected() {
        let w = Histogram::new(2);
        let gram = w.gram();
        let mech = rr(2, 1.0, &gram);
        let data = DataVector::uniform(2, 10.0);
        let mut rng = StdRng::seed_from_u64(0);
        let _ = simulated_normalized_variance(&w, &mech, &data, 0, Postprocess::None, &mut rng);
    }
}
