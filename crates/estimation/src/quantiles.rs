//! Quantile read-out from privately estimated CDFs.
//!
//! The Prefix workload's answers are the (unnormalized) empirical CDF;
//! the natural downstream product is quantiles. This module inverts an
//! estimated CDF robustly: private CDF estimates can be non-monotone, so
//! a direct `position(c >= target)` scan can be badly wrong; we apply an
//! isotonic clean-up (running maximum, clamped to `[0, N]`) first.

/// Makes an estimated CDF monotone non-decreasing and clamped to
/// `[0, total]` (running-maximum isotonic repair).
pub fn repair_cdf(cdf: &[f64], total: f64) -> Vec<f64> {
    let mut repaired = Vec::with_capacity(cdf.len());
    let mut running = 0.0_f64;
    for &c in cdf {
        running = running.max(c).clamp(0.0, total);
        repaired.push(running);
    }
    repaired
}

/// The `q`-quantile (0 < q ≤ 1) of a repaired CDF: the smallest bin whose
/// cumulative count reaches `q·total`.
///
/// # Panics
/// Panics if `cdf` is empty or `q` is outside `(0, 1]`.
pub fn quantile(cdf: &[f64], total: f64, q: f64) -> usize {
    assert!(!cdf.is_empty(), "CDF must be non-empty");
    assert!(q > 0.0 && q <= 1.0, "quantile must be in (0, 1]");
    let target = q * total;
    cdf.iter()
        .position(|&c| c >= target)
        .unwrap_or(cdf.len() - 1)
}

/// Reads several quantiles from a (possibly noisy) estimated CDF after
/// isotonic repair. Returns `(q, bin)` pairs.
pub fn quantiles_from_estimate(cdf_estimate: &[f64], total: f64, qs: &[f64]) -> Vec<(f64, usize)> {
    let repaired = repair_cdf(cdf_estimate, total);
    qs.iter()
        .map(|&q| (q, quantile(&repaired, total, q)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repair_makes_monotone_and_clamped() {
        let noisy = [5.0, 3.0, -2.0, 11.0, 9.5];
        let fixed = repair_cdf(&noisy, 10.0);
        assert_eq!(fixed, vec![5.0, 5.0, 5.0, 10.0, 10.0]);
        for w in fixed.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn exact_quantiles_on_clean_cdf() {
        // Counts 2,3,5 -> CDF 2,5,10 over total 10.
        let cdf = [2.0, 5.0, 10.0];
        assert_eq!(quantile(&cdf, 10.0, 0.2), 0);
        assert_eq!(quantile(&cdf, 10.0, 0.5), 1);
        assert_eq!(quantile(&cdf, 10.0, 0.51), 2);
        assert_eq!(quantile(&cdf, 10.0, 1.0), 2);
    }

    #[test]
    fn noisy_estimate_still_sane() {
        // True median at bin 1; noise makes the raw scan return bin 0
        // without repair.
        let noisy = [6.0, 4.0, 10.0];
        let out = quantiles_from_estimate(&noisy, 10.0, &[0.5]);
        assert_eq!(out, vec![(0.5, 0)]); // 6.0 >= 5 stands after repair
                                         // A dip below zero never yields a phantom early quantile.
        let dippy = [-3.0, 5.1, 10.0];
        let out = quantiles_from_estimate(&dippy, 10.0, &[0.5]);
        assert_eq!(out, vec![(0.5, 1)]);
    }

    #[test]
    fn quantile_saturates_at_last_bin() {
        let cdf = [1.0, 2.0, 3.0]; // total below target
        assert_eq!(quantile(&cdf, 10.0, 0.9), 2);
    }

    #[test]
    #[should_panic(expected = "quantile must be in")]
    fn rejects_bad_q() {
        let _ = quantile(&[1.0], 1.0, 0.0);
    }
}
