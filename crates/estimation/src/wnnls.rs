//! Workload non-negative least squares via FISTA (Appendix A).
//!
//! The solver touches the workload only through Gram-operator products
//! `x ↦ Gx`, so structured Grams (prefix/range/Kronecker/Hamming-kernel)
//! run each FISTA iteration in `O(n)`–`O(n log n)` instead of the dense
//! `O(n²)`, and nothing here ever materializes `G`.
//!
//! Parallelism comes through those same products: large dense,
//! Kronecker, and Hamming-kernel Grams split their matvecs across the
//! `ldp-parallel` pool by disjoint output rows, so every FISTA iteration
//! (and the power-iteration Lipschitz estimate) is multi-core while the
//! solution stays bit-identical at any thread count. The FISTA vector
//! updates themselves stay serial — they are memory-bound `O(n)` loops
//! that would not amortize a thread handoff per iteration.

use ldp_linalg::LinOp;

/// Options controlling the FISTA solve.
#[derive(Clone, Copy, Debug)]
pub struct WnnlsOptions {
    /// Maximum FISTA iterations.
    pub max_iterations: usize,
    /// Relative improvement threshold for early stopping.
    pub tolerance: f64,
}

impl Default for WnnlsOptions {
    fn default() -> Self {
        Self {
            max_iterations: 2000,
            tolerance: 1e-10,
        }
    }
}

/// Solves `argmin_{x ≥ 0} ‖Wx − Wx̂‖²₂ = argmin_{x ≥ 0} xᵀGx − 2xᵀGx̂`
/// given the workload Gram matrix `G` and the unbiased data-vector
/// estimate `x̂ = Ky` (whose workload image equals the paper's `Vy`).
///
/// Uses FISTA with a power-iteration Lipschitz estimate; the objective is
/// convex so the minimizer in `Wx` is unique.
///
/// # Panics
/// Panics if `gram` is not square or `xhat.len() != gram.rows()`.
pub fn wnnls(gram: &dyn LinOp, xhat: &[f64], options: &WnnlsOptions) -> Vec<f64> {
    assert!(gram.is_square(), "Gram matrix must be square");
    let n = gram.rows();
    assert_eq!(xhat.len(), n, "estimate length must match the domain");
    if n == 0 {
        return Vec::new();
    }

    // Lipschitz constant of ∇f(x) = 2(Gx − Gx̂) is 2λ_max(G).
    let lipschitz = 2.0 * spectral_radius_psd(gram).max(f64::MIN_POSITIVE);
    let step = 1.0 / lipschitz;
    let g_xhat = gram.matvec(xhat);

    // FISTA state: x (main), yv (momentum point), t (momentum scalar),
    // with two reused product buffers — the loop allocates nothing.
    let mut x: Vec<f64> = xhat.iter().map(|&v| v.max(0.0)).collect();
    let mut yv = x.clone();
    let mut gy = vec![0.0; n];
    let mut x_next = vec![0.0; n];
    let mut t = 1.0_f64;
    let objective = |x: &[f64], gx: &mut [f64]| -> f64 {
        gram.matvec_into(x, gx);
        ldp_linalg::dot(x, gx) - 2.0 * ldp_linalg::dot(x, &g_xhat)
    };
    let mut prev_obj = objective(&x, &mut gy);

    for iter in 0..options.max_iterations {
        // Gradient step at the momentum point, then project onto x ≥ 0.
        gram.matvec_into(&yv, &mut gy);
        for i in 0..n {
            let grad_i = 2.0 * (gy[i] - g_xhat[i]);
            x_next[i] = (yv[i] - step * grad_i).max(0.0);
        }
        let t_next = 0.5 * (1.0 + (1.0 + 4.0 * t * t).sqrt());
        let momentum = (t - 1.0) / t_next;
        for i in 0..n {
            yv[i] = x_next[i] + momentum * (x_next[i] - x[i]);
        }
        std::mem::swap(&mut x, &mut x_next);
        t = t_next;

        // Cheap convergence check every few iterations.
        if iter % 16 == 15 {
            let obj = objective(&x, &mut gy);
            let scale = prev_obj.abs().max(1.0);
            if (prev_obj - obj).abs() <= options.tolerance * scale {
                break;
            }
            // FISTA is not monotone; restart momentum if we regressed.
            if obj > prev_obj {
                yv.copy_from_slice(&x);
                t = 1.0;
            }
            prev_obj = obj;
        }
    }
    x
}

/// Largest eigenvalue of a PSD matrix by power iteration (deterministic
/// start vector; 60 iterations is far more than needed at the accuracy a
/// step size requires).
fn spectral_radius_psd(g: &dyn LinOp) -> f64 {
    let n = g.rows();
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    let mut lambda = 0.0;
    for _ in 0..60 {
        let w = g.matvec(&v);
        let norm = ldp_linalg::norm2(&w);
        if norm == 0.0 {
            return 0.0;
        }
        lambda = norm / ldp_linalg::norm2(&v).max(f64::MIN_POSITIVE);
        let inv = 1.0 / norm;
        v = w.into_iter().map(|x| x * inv).collect();
        // v normalized; λ via Rayleigh quotient on the next pass.
    }
    // One Rayleigh quotient for a tighter value.
    let w = g.matvec(&v);
    let rq = ldp_linalg::dot(&v, &w) / ldp_linalg::dot(&v, &v).max(f64::MIN_POSITIVE);
    rq.max(lambda * 0.99)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_linalg::Matrix;

    fn prefix_gram(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64)
    }

    #[test]
    fn nonnegative_input_is_fixed_point() {
        // If x̂ ≥ 0 already, it is the unconstrained minimizer and WNNLS
        // must return (the workload image of) it.
        let gram = prefix_gram(5);
        let xhat = vec![1.0, 2.0, 0.5, 3.0, 0.0];
        let x = wnnls(&gram, &xhat, &WnnlsOptions::default());
        // Compare in the G-metric (the solution is unique in Wx).
        let diff: Vec<f64> = x.iter().zip(&xhat).map(|(a, b)| a - b).collect();
        let gd = gram.matvec(&diff);
        let err = ldp_linalg::dot(&diff, &gd);
        assert!(err < 1e-8, "G-metric error {err}");
    }

    #[test]
    fn output_is_nonnegative() {
        let gram = prefix_gram(6);
        let xhat = vec![3.0, -2.0, 1.0, -0.5, 2.0, -1.0];
        let x = wnnls(&gram, &xhat, &WnnlsOptions::default());
        assert!(x.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn improves_objective_over_clamping() {
        // WNNLS must be at least as good as naive clamp-at-zero in the
        // workload metric.
        let gram = prefix_gram(8);
        let xhat = vec![5.0, -3.0, 2.0, -1.0, 4.0, -2.0, 1.0, -0.2];
        let obj = |x: &[f64]| -> f64 {
            let diff: Vec<f64> = x.iter().zip(&xhat).map(|(a, b)| a - b).collect();
            let gd = gram.matvec(&diff);
            ldp_linalg::dot(&diff, &gd)
        };
        let solved = wnnls(&gram, &xhat, &WnnlsOptions::default());
        let clamped: Vec<f64> = xhat.iter().map(|&v| v.max(0.0)).collect();
        assert!(
            obj(&solved) <= obj(&clamped) + 1e-9,
            "WNNLS {} worse than clamping {}",
            obj(&solved),
            obj(&clamped)
        );
    }

    #[test]
    fn matches_kkt_conditions() {
        // At the optimum: x_i > 0 ⇒ gradient_i ≈ 0; x_i = 0 ⇒ gradient_i ≥ 0.
        let gram = prefix_gram(7);
        let xhat = vec![2.0, -1.5, 0.5, -2.0, 3.0, 0.1, -0.7];
        let x = wnnls(
            &gram,
            &xhat,
            &WnnlsOptions {
                max_iterations: 20_000,
                tolerance: 1e-14,
            },
        );
        let gx = gram.matvec(&x);
        let gh = gram.matvec(&xhat);
        let scale = gram.max_abs();
        for i in 0..7 {
            let grad = 2.0 * (gx[i] - gh[i]);
            if x[i] > 1e-6 {
                assert!(grad.abs() < 1e-4 * scale, "active grad {grad} at {i}");
            } else {
                assert!(grad > -1e-4 * scale, "violated KKT at {i}: {grad}");
            }
        }
    }

    #[test]
    fn identity_gram_reduces_to_clamping() {
        // With G = I the problem separates: x_i = max(x̂_i, 0).
        let gram = Matrix::identity(4);
        let xhat = vec![1.0, -2.0, 3.0, -4.0];
        let x = wnnls(&gram, &xhat, &WnnlsOptions::default());
        let expected = [1.0, 0.0, 3.0, 0.0];
        for (a, b) in x.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spectral_radius_estimate() {
        let g = Matrix::diag(&[1.0, 5.0, 3.0]);
        let l = spectral_radius_psd(&g);
        assert!((l - 5.0).abs() < 1e-6);
    }

    #[test]
    fn empty_domain() {
        let x = wnnls(&Matrix::zeros(0, 0), &[], &WnnlsOptions::default());
        assert!(x.is_empty());
    }
}
