//! The optimization objective `L(Q) = tr[(QᵀD⁻¹Q)†(WᵀW)]`
//! (Theorem 3.11) and its analytic gradient.
//!
//! The paper computes the gradient with automatic differentiation; we
//! derive it in closed form. Write `D = Diag(Q1)`, `B = D⁻¹Q`,
//! `M = QᵀB`, and `H = M⁻¹ G M⁻¹` (pseudo-inverses when singular). Then
//! for a perturbation `dQ`:
//!
//! ```text
//! dL = −tr[M⁻¹ dM M⁻¹ G]                 (derivative of the inverse)
//! dM = dQᵀB + BᵀdQ − QᵀD⁻¹ dD D⁻¹Q,      dD = Diag(dQ·1)
//! ⇒ ∇_Q L = −2·B·H + diag(B·H·Bᵀ)·1ᵀ
//! ```
//!
//! where `diag(BHBᵀ)_o = (BH)_{o,:}·B_{o,:}` is computed without forming
//! the `m × m` product. The per-evaluation cost is `O(n²m + n³)`,
//! matching the paper's complexity analysis (Section 4).
//!
//! `M` is solved with Cholesky when positive definite (the common case —
//! the paper notes the iterates stay in the interior where `M` has full
//! rank) and falls back to the eigendecomposition pseudo-inverse
//! otherwise, so rank-deficient strategies are still handled correctly.
//!
//! The hot entry point is [`evaluate_into`], which runs entirely inside a
//! preallocated [`ObjectiveWorkspace`] — zero heap allocation per call on
//! the Cholesky path, so a 250-iteration PGD run reuses one set of
//! buffers throughout. [`evaluate`] is the allocating convenience wrapper
//! and accepts any [`LinOp`] Gram.

use ldp_linalg::{dense_of, pinv_symmetric, Cholesky, LinOp, Matrix, PinvOptions};

/// The objective value and gradient at a strategy iterate.
#[derive(Clone, Debug)]
pub struct ObjectiveEvaluation {
    /// `L(Q) = tr[M†G]`.
    pub value: f64,
    /// `∇_Q L` (same shape as `Q`).
    pub gradient: Matrix,
}

/// Preallocated buffers for [`evaluate_into`]: everything an
/// objective/gradient evaluation touches, sized once for an `m × n`
/// strategy iterate and reused across iterations and restarts.
#[derive(Clone, Debug)]
pub struct ObjectiveWorkspace {
    /// Row sums `D = Q·1` (`m`).
    d: Vec<f64>,
    /// `1/D` (`m`).
    d_inv: Vec<f64>,
    /// `B = D⁻¹Q` (`m × n`).
    b: Matrix,
    /// `M = QᵀB` (`n × n`).
    m_mat: Matrix,
    /// Cholesky factor of `M` (`n × n`).
    l: Matrix,
    /// `Y = M⁻¹G` (`n × n`).
    y: Matrix,
    /// `H = M⁻¹GM⁻¹` (`n × n`).
    h: Matrix,
    /// `B·H` (`m × n`).
    bh: Matrix,
    /// Column/solve scratch (`n`).
    col: Vec<f64>,
}

impl ObjectiveWorkspace {
    /// Buffers for `m × n` iterates over an `n`-type domain.
    pub fn new(m: usize, n: usize) -> Self {
        Self {
            d: vec![0.0; m],
            d_inv: vec![0.0; m],
            b: Matrix::zeros(m, n),
            m_mat: Matrix::zeros(n, n),
            l: Matrix::zeros(n, n),
            y: Matrix::zeros(n, n),
            h: Matrix::zeros(n, n),
            bh: Matrix::zeros(m, n),
            col: vec![0.0; n],
        }
    }

    /// `(m, n)` this workspace was sized for.
    pub fn shape(&self) -> (usize, usize) {
        self.b.shape()
    }
}

/// Evaluates `L(Q)` and `∇_Q L` for a column-stochastic iterate `q` (not
/// necessarily validated as a [`ldp_core::StrategyMatrix`] — the optimizer
/// calls this on raw projected iterates) against the workload Gram matrix.
///
/// Allocating wrapper over [`evaluate_into`]; accepts any [`LinOp`] Gram
/// and materializes it once if it is not already dense.
///
/// # Panics
/// Panics if shapes disagree or if `q` has a zero row sum (an output with
/// probability zero everywhere — callers keep `z > 0`, which prevents
/// this).
pub fn evaluate(q: &Matrix, gram: &dyn LinOp) -> ObjectiveEvaluation {
    let (m, n) = q.shape();
    let mut ws = ObjectiveWorkspace::new(m, n);
    let mut gradient = Matrix::zeros(m, n);
    let dense = dense_of(gram);
    let value = evaluate_into(q, dense.as_ref(), &mut ws, &mut gradient);
    ObjectiveEvaluation { value, gradient }
}

/// [`evaluate`] into preallocated buffers: writes `∇_Q L` into `gradient`
/// and returns `L(Q)`. On the Cholesky path (full-rank `M`, the steady
/// state of the optimizer) this performs **no heap allocation**; the
/// rank-deficient pseudo-inverse fallback allocates, but reaching it means
/// the iterate collapsed, which the descent loop treats as a rewind.
///
/// # Panics
/// Panics if shapes disagree with the workspace or if `q` has a zero row
/// sum.
pub fn evaluate_into(
    q: &Matrix,
    gram: &Matrix,
    ws: &mut ObjectiveWorkspace,
    gradient: &mut Matrix,
) -> f64 {
    let (m, n) = q.shape();
    assert_eq!(gram.shape(), (n, n), "Gram must be n x n");
    assert_eq!(
        ws.shape(),
        (m, n),
        "workspace sized for a different problem"
    );
    assert_eq!(gradient.shape(), (m, n), "gradient buffer shape");
    q.row_sums_into(&mut ws.d);
    assert!(
        ws.d.iter().all(|&v| v > 0.0),
        "strategy has an output with zero total probability"
    );
    for (inv, &v) in ws.d_inv.iter_mut().zip(&ws.d) {
        *inv = 1.0 / v;
    }

    // B = D⁻¹Q, M = QᵀB (symmetric PSD).
    q.scale_rows_into(&ws.d_inv, &mut ws.b);
    q.t_matmul_into(&ws.b, &mut ws.m_mat);
    ws.m_mat.symmetrize();

    // Y = M⁻¹G and H = M⁻¹GM⁻¹, via Cholesky when possible.
    let value = if Cholesky::factor_into(&ws.m_mat, &mut ws.l) {
        for j in 0..n {
            gram.col_into(j, &mut ws.col);
            Cholesky::solve_in_place_with(&ws.l, &mut ws.col);
            ws.y.set_col(j, &ws.col);
        }
        let value = ws.y.trace();
        // H = M⁻¹(G M⁻¹) = M⁻¹Yᵀ: column j of H solves against row j of Y.
        for j in 0..n {
            ws.col.copy_from_slice(ws.y.row(j));
            Cholesky::solve_in_place_with(&ws.l, &mut ws.col);
            ws.h.set_col(j, &ws.col);
        }
        ws.h.symmetrize();
        value
    } else {
        let pinv = pinv_symmetric(&ws.m_mat, PinvOptions::default_for_dim(n)).pinv;
        let y = pinv.matmul(gram);
        // With singular M the trace formula is only valid when the
        // workload stays in range(M) (= the row space of Q). When it
        // leaves, the true objective is +∞ (Problem 3.12's constraint
        // W = WQ†Q fails) — report exactly that so the optimizer never
        // mistakes a rank-collapsed iterate for progress.
        let residual = (&ws.m_mat.matmul(&y) - gram).max_abs();
        if residual > 1e-6 * gram.max_abs().max(1.0) {
            gradient.as_mut_slice().fill(0.0);
            return f64::INFINITY;
        }
        let value = y.trace();
        let mut h = pinv.matmul(&y.transpose());
        h.symmetrize();
        ws.h.copy_from(&h);
        value
    };

    // ∇_Q = −2·B·H + diag(B·H·Bᵀ)·1ᵀ.
    ws.b.matmul_into(&ws.h, &mut ws.bh);
    gradient.copy_from(&ws.bh);
    gradient.scale_mut(-2.0);
    for o in 0..m {
        let s_oo = ldp_linalg::dot(ws.bh.row(o), ws.b.row(o));
        for v in gradient.row_mut(o) {
            *v += s_oo;
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random column-stochastic strictly positive matrix.
    fn random_stochastic(m: usize, n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut q = Matrix::from_fn(m, n, |_, _| rng.gen_range(0.05..1.0));
        let sums = q.col_sums();
        for i in 0..m {
            for j in 0..n {
                q[(i, j)] /= sums[j];
            }
        }
        q
    }

    fn prefix_gram(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64)
    }

    #[test]
    fn value_matches_core_strategy_objective() {
        let q = random_stochastic(10, 4, 5);
        let gram = prefix_gram(4);
        let eval = evaluate(&q, &gram);
        let s = ldp_core::StrategyMatrix::new(q).unwrap();
        let reference = ldp_core::variance::strategy_objective(&s, &gram);
        assert!(
            (eval.value - reference).abs() < 1e-7 * reference.abs(),
            "{} vs {reference}",
            eval.value
        );
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // Two evaluations through one workspace, interleaved with a fresh
        // wrapper call, must agree bit-for-bit with independent calls.
        let (m, n) = (12, 5);
        let gram = prefix_gram(n);
        let q1 = random_stochastic(m, n, 3);
        let q2 = random_stochastic(m, n, 4);
        let mut ws = ObjectiveWorkspace::new(m, n);
        let mut grad = Matrix::zeros(m, n);
        let v1 = evaluate_into(&q1, &gram, &mut ws, &mut grad);
        let fresh1 = evaluate(&q1, &gram);
        assert_eq!(v1, fresh1.value);
        assert_eq!(grad, fresh1.gradient);
        let v2 = evaluate_into(&q2, &gram, &mut ws, &mut grad);
        let fresh2 = evaluate(&q2, &gram);
        assert_eq!(v2, fresh2.value);
        assert_eq!(grad, fresh2.gradient);
    }

    #[test]
    fn structured_gram_matches_dense_gram_bitwise() {
        // The structured Prefix Gram materializes to exactly the closed
        // form the dense path used, so the objective agrees bit-for-bit.
        let (m, n) = (16, 6);
        let q = random_stochastic(m, n, 11);
        let dense = evaluate(&q, &prefix_gram(n));
        let structured = evaluate(&q, &ldp_linalg::StructuredGram::prefix(n));
        assert_eq!(dense.value, structured.value);
        assert_eq!(dense.gradient, structured.gradient);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Central differences on raw entries (L is defined on an open
        // neighbourhood of the iterate; no constraints involved here).
        let (m, n) = (8, 4);
        let q = random_stochastic(m, n, 9);
        let gram = prefix_gram(n);
        let eval = evaluate(&q, &gram);
        let h = 1e-6;
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let o = rng.gen_range(0..m);
            let u = rng.gen_range(0..n);
            let mut qp = q.clone();
            qp[(o, u)] += h;
            let mut qm = q.clone();
            qm[(o, u)] -= h;
            let fd = (evaluate(&qp, &gram).value - evaluate(&qm, &gram).value) / (2.0 * h);
            let an = eval.gradient[(o, u)];
            assert!(
                (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                "entry ({o},{u}): fd {fd} vs analytic {an}"
            );
        }
    }

    #[test]
    fn gradient_matches_on_identity_gram() {
        let (m, n) = (6, 3);
        let q = random_stochastic(m, n, 13);
        let gram = Matrix::identity(n);
        let eval = evaluate(&q, &gram);
        let h = 1e-6;
        for o in 0..m {
            for u in 0..n {
                let mut qp = q.clone();
                qp[(o, u)] += h;
                let mut qm = q.clone();
                qm[(o, u)] -= h;
                let fd = (evaluate(&qp, &gram).value - evaluate(&qm, &gram).value) / (2.0 * h);
                let an = eval.gradient[(o, u)];
                assert!(
                    (fd - an).abs() < 1e-3 * (1.0 + fd.abs()),
                    "entry ({o},{u}): fd {fd} vs analytic {an}"
                );
            }
        }
    }

    #[test]
    fn rank_deficient_strategy_uses_pinv_path() {
        // Duplicate columns make M singular; evaluation must not panic and
        // value must be finite against a Gram supported on the row space.
        let base = random_stochastic(6, 2, 21);
        // Q with two identical columns: rank 2 in a 3-type domain.
        let q = Matrix::from_fn(6, 3, |o, u| base[(o, u.min(1))]);
        // Workload = total count (in the row space of any stochastic Q).
        let gram = Matrix::filled(3, 3, 1.0);
        let eval = evaluate(&q, &gram);
        assert!(eval.value.is_finite());
        assert!(eval.gradient.is_finite());
    }

    #[test]
    fn objective_blows_up_near_rank_deficiency() {
        // The paper's "free" handling of W = WQ†Q relies on L(Q) → ∞ as Q
        // approaches losing the workload's row space. Interpolate between
        // a full-rank strategy and a rank-1 strategy and watch L grow.
        let n = 3;
        let gram = Matrix::identity(n);
        let full = random_stochastic(6, n, 33);
        let flat = Matrix::from_fn(6, n, |o, _| full.row(o).iter().sum::<f64>() / n as f64);
        let mut last = 0.0;
        for (i, t) in [0.0, 0.9, 0.99].iter().enumerate() {
            let q = &full.scaled(1.0 - t) + &flat.scaled(*t);
            let v = evaluate(&q, &gram).value;
            if i > 0 {
                assert!(v > last, "objective should grow toward degeneracy");
            }
            last = v;
        }
    }
}
