//! Strategy optimization for the workload factorization mechanism —
//! Sections 3.2 and 4 of the paper.
//!
//! Given a workload Gram matrix `G = WᵀW` and a privacy budget ε, this
//! crate solves Problem 3.12:
//!
//! ```text
//! minimize_{Q, z}   tr[(QᵀD_Q⁻¹Q)†(WᵀW)]
//! subject to        W = WQ†Q
//!                   Qᵀ1 = 1
//!                   0 ≤ z ≤ q_u ≤ e^ε·z   for every column u
//! ```
//!
//! by projected gradient descent (Algorithm 2), using the bounded
//! probability-simplex projection of Algorithm 1. Components:
//!
//! * [`projection`] — Algorithm 1 (`O(m log m)` per column) plus the exact
//!   backpropagation of gradients through the projection onto `z` (the
//!   paper delegates this to autodiff; we derive it by hand, see the
//!   module docs).
//! * [`objective`] — the loss `L(Q)` and its analytic gradient `∇_Q L`.
//! * [`pgd`] — Algorithm 2 with random initialization, step-size search,
//!   and multi-restart support.
//! * [`lbfgs`] — a projected L-BFGS alternative to Algorithm 2's descent
//!   loop (quasi-Newton directions, Armijo line search on the projected
//!   path, convergence-based stopping), selected via
//!   [`pgd::Algorithm::Lbfgs`]; it reaches PGD-quality objectives in
//!   several-fold fewer objective evaluations.
//!
//! The high-level entry point is [`optimize_strategy`] /
//! [`optimized_mechanism`]:
//!
//! ```
//! use ldp_core::LdpMechanism;
//! use ldp_opt::{optimized_mechanism, OptimizerConfig};
//! use ldp_workloads::{Prefix, Workload};
//!
//! let workload = Prefix::new(8);
//! let config = OptimizerConfig::quick(42);
//! let mech = optimized_mechanism(&workload.gram(), 1.0, &config).unwrap();
//! assert_eq!(mech.domain_size(), 8);
//! ```

pub mod lbfgs;
pub mod objective;
pub mod pgd;
pub mod projection;

pub use objective::{ObjectiveEvaluation, ObjectiveWorkspace};
pub use pgd::{
    optimize_strategy, optimize_strategy_with, optimized_mechanism, Algorithm, OptimizationResult,
    OptimizerConfig, Workspace,
};
pub use projection::{
    project_columns, project_columns_into, ProjectionJacobian, ProjectionScratch,
};
