//! Projection onto the bounded probability simplex (Algorithm 1 /
//! Problem 4.1 of the paper) and its derivative with respect to the bound
//! vector `z`.
//!
//! For each column `r` of the iterate, the projection solves
//!
//! ```text
//! minimize_q ‖q − r‖²   s.t.   1ᵀq = 1,  z ≤ q ≤ e^ε·z
//! ```
//!
//! whose solution is `q = clip(r + λ, z, e^ε·z)` for the scalar Lagrange
//! multiplier `λ` making the coordinates sum to one (Proposition 4.2).
//! `φ(λ) = Σ_o clip(r_o + λ, z_o, e^ε z_o)` is a nondecreasing piecewise
//! linear function whose breakpoints are `z_o − r_o` and `e^ε z_o − r_o`;
//! sorting the `2m` breakpoints and scanning once finds the crossing in
//! `O(m log m)` (the paper's Algorithm 1). A bisection fallback guards
//! against degenerate all-clipped configurations and doubles as a test
//! oracle.
//!
//! ## Differentiating through the projection
//!
//! Algorithm 2 needs `∇_z L` where `Q = Π_{z,ε}(R)`: the projection is
//! piecewise linear in `(r, z)`, so on each linearity region the Jacobian
//! is determined by the partition of coordinates into *lower-clipped*
//! (`q_o = z_o`), *active* (`q_o = r_o + λ`), and *upper-clipped*
//! (`q_o = e^ε z_o`). With `E = e^ε`, `A` the active set and `g` an
//! upstream gradient w.r.t. `q`:
//!
//! ```text
//! λ = (1 − Σ_{L} z_o − E·Σ_{U} z_o − Σ_{A} r_o) / |A|
//! ∂q_i/∂z_j = δ_ij·1{i∈L} + E·δ_ij·1{i∈U} + 1{i∈A}·∂λ/∂z_j
//! ∂λ/∂z_j  = −(1{j∈L} + E·1{j∈U}) / |A|
//! ⇒ (∂q/∂z)ᵀg |_j = (1{j∈L} + E·1{j∈U})·(g_j − mean_{A}(g))
//! ```
//!
//! which is what [`ProjectionJacobian::backprop_z`] computes.

use ldp_linalg::Matrix;

/// Minimum `m·n` before the column loop fans out across the thread pool:
/// scoped-thread spawn costs tens of microseconds, so small projections
/// (every unit-test instance) stay on the allocation-free serial path.
/// Bit-identity does not depend on this constant — the parallel path
/// computes every column with the serial arithmetic — it only gates when
/// parallelism pays.
const PAR_MIN_WORK: usize = 8_192;

/// How a coordinate ended up after projection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ClipState {
    Lower,
    Active,
    Upper,
}

/// The per-column clip pattern of a projection, retained so gradients can
/// be backpropagated onto `z`. Stored flat (column-major) so the buffer
/// is reusable across iterations without reallocation.
#[derive(Clone, Debug)]
pub struct ProjectionJacobian {
    /// `states[u·m + o]` — clip state of entry `(o, u)`.
    states: Vec<ClipState>,
    m: usize,
    n: usize,
    exp_eps: f64,
}

impl ProjectionJacobian {
    /// An empty jacobian to be filled by [`project_columns_into`].
    pub fn empty() -> Self {
        Self {
            states: Vec::new(),
            m: 0,
            n: 0,
            exp_eps: 1.0,
        }
    }

    /// Resizes (reusing capacity) for an `m × n` projection.
    fn reset(&mut self, m: usize, n: usize, exp_eps: f64) {
        self.states.clear();
        self.states.resize(m * n, ClipState::Active);
        self.m = m;
        self.n = n;
        self.exp_eps = exp_eps;
    }

    /// Pulls a gradient w.r.t. the projected matrix `Q` back onto the
    /// bound vector `z`, summing contributions over all columns.
    ///
    /// # Panics
    /// Panics if `grad_q`'s shape disagrees with the recorded projection.
    pub fn backprop_z(&self, grad_q: &Matrix) -> Vec<f64> {
        let mut grad_z = vec![0.0; grad_q.rows()];
        self.backprop_z_into(grad_q, &mut grad_z);
        grad_z
    }

    /// [`ProjectionJacobian::backprop_z`] into a preallocated buffer
    /// (overwritten). No allocation.
    ///
    /// # Panics
    /// Panics if shapes disagree with the recorded projection.
    pub fn backprop_z_into(&self, grad_q: &Matrix, grad_z: &mut [f64]) {
        let m = grad_q.rows();
        let n = grad_q.cols();
        assert_eq!(self.n, n, "column count mismatch");
        assert_eq!(self.m, m, "row count mismatch");
        assert_eq!(grad_z.len(), m, "gradient buffer length");
        grad_z.fill(0.0);
        for u in 0..n {
            let states = &self.states[u * m..(u + 1) * m];
            // Mean of the upstream gradient over the active set.
            let mut active_sum = 0.0;
            let mut active_count = 0usize;
            for (o, &s) in states.iter().enumerate() {
                if s == ClipState::Active {
                    active_sum += grad_q[(o, u)];
                    active_count += 1;
                }
            }
            let active_mean = if active_count > 0 {
                active_sum / active_count as f64
            } else {
                0.0
            };
            for (o, &s) in states.iter().enumerate() {
                match s {
                    ClipState::Lower => grad_z[o] += grad_q[(o, u)] - active_mean,
                    ClipState::Upper => grad_z[o] += self.exp_eps * (grad_q[(o, u)] - active_mean),
                    ClipState::Active => {}
                }
            }
        }
    }
}

/// Reusable scratch for [`project_columns_into`] (breakpoint list, one
/// column buffer, and the per-column multipliers of the parallel path),
/// so repeated projections allocate nothing on the serial path.
#[derive(Clone, Debug, Default)]
pub struct ProjectionScratch {
    breakpoints: Vec<(f64, f64)>,
    col: Vec<f64>,
    lambdas: Vec<f64>,
}

impl ProjectionScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Projects every column of `r` onto the bounded simplex
/// `{q : 1ᵀq = 1, z ≤ q ≤ e^ε z}` (Algorithm 1 applied column-wise).
///
/// Returns the projected matrix and the clip pattern for `z`-gradients.
///
/// # Panics
/// Panics if the constraint set is empty (`Σz > 1` or `e^ε·Σz < 1`), if
/// shapes disagree, or if some `z_o < 0`.
pub fn project_columns(r: &Matrix, z: &[f64], epsilon: f64) -> (Matrix, ProjectionJacobian) {
    let (m, n) = r.shape();
    let mut q = Matrix::zeros(m, n);
    let mut jacobian = ProjectionJacobian::empty();
    let mut scratch = ProjectionScratch::new();
    project_columns_into(r, z, epsilon, &mut q, &mut jacobian, &mut scratch);
    (q, jacobian)
}

/// [`project_columns`] into preallocated buffers: the projected matrix
/// lands in `q`, the clip pattern in `jacobian`, and `scratch` holds the
/// breakpoint list. After the first call at a given size, repeated
/// projections perform no heap allocation — this is what keeps each PGD
/// iteration allocation-free.
///
/// # Panics
/// As [`project_columns`], plus if `q`'s shape disagrees with `r`.
pub fn project_columns_into(
    r: &Matrix,
    z: &[f64],
    epsilon: f64,
    q: &mut Matrix,
    jacobian: &mut ProjectionJacobian,
    scratch: &mut ProjectionScratch,
) {
    let (m, n) = r.shape();
    assert_eq!(q.shape(), (m, n), "output shape");
    assert_eq!(z.len(), m, "z must have one entry per output");
    assert!(z.iter().all(|&v| v >= 0.0), "z must be non-negative");
    let exp_eps = epsilon.exp();
    let z_sum: f64 = z.iter().sum();
    assert!(
        z_sum <= 1.0 + 1e-9 && exp_eps * z_sum >= 1.0 - 1e-9,
        "infeasible bounds: need Σz ≤ 1 ≤ e^ε·Σz (Σz = {z_sum}, e^ε·Σz = {})",
        exp_eps * z_sum
    );

    jacobian.reset(m, n, exp_eps);
    let pool = ldp_parallel::pool();
    if pool.threads() > 1 && m * n >= PAR_MIN_WORK {
        // Parallel path: the expensive part of a column — the sorted
        // breakpoint scan — depends only on that column of `r` and the
        // shared `z`, so the multipliers are computed one column per
        // granule with nothing shared between workers. Each λ_u is
        // produced by exactly the arithmetic the serial loop runs on
        // exactly the same inputs, so the result is bit-identical at
        // every thread count (the crate-wide determinism contract). The
        // cheap clip/classify pass then runs serially below.
        scratch.lambdas.clear();
        scratch.lambdas.resize(n, 0.0);
        pool.par_chunks(&mut scratch.lambdas, 1, |u0, chunk| {
            let mut col = vec![0.0; m];
            let mut breakpoints = Vec::with_capacity(2 * m);
            for (i, slot) in chunk.iter_mut().enumerate() {
                let u = u0 + i;
                for (o, c) in col.iter_mut().enumerate() {
                    *c = r[(o, u)];
                }
                *slot = solve_lambda(&col, z, exp_eps, &mut breakpoints);
            }
        });
        for u in 0..n {
            let lambda = scratch.lambdas[u];
            let col_states = &mut jacobian.states[u * m..(u + 1) * m];
            for o in 0..m {
                let (lo, hi) = (z[o], exp_eps * z[o]);
                let v = r[(o, u)] + lambda;
                let (clipped, state) = if v <= lo {
                    (lo, ClipState::Lower)
                } else if v >= hi {
                    (hi, ClipState::Upper)
                } else {
                    (v, ClipState::Active)
                };
                q[(o, u)] = clipped;
                col_states[o] = state;
            }
        }
        return;
    }
    scratch.col.clear();
    scratch.col.resize(m, 0.0);
    for u in 0..n {
        for o in 0..m {
            scratch.col[o] = r[(o, u)];
        }
        let lambda = solve_lambda(&scratch.col, z, exp_eps, &mut scratch.breakpoints);
        let col_states = &mut jacobian.states[u * m..(u + 1) * m];
        for o in 0..m {
            let (lo, hi) = (z[o], exp_eps * z[o]);
            let v = scratch.col[o] + lambda;
            let (clipped, state) = if v <= lo {
                (lo, ClipState::Lower)
            } else if v >= hi {
                (hi, ClipState::Upper)
            } else {
                (v, ClipState::Active)
            };
            q[(o, u)] = clipped;
            col_states[o] = state;
        }
    }
}

/// Finds `λ` with `Σ_o clip(r_o + λ, z_o, E z_o) = 1` by the sorted
/// breakpoint scan of Algorithm 1, falling back to bisection if the scan
/// is defeated by degenerate ties.
fn solve_lambda(r: &[f64], z: &[f64], exp_eps: f64, breakpoints: &mut Vec<(f64, f64)>) -> f64 {
    let m = r.len();
    // Breakpoints: at λ = z_o − r_o coordinate o starts increasing
    // (slope +1); at λ = E·z_o − r_o it saturates (slope −1 relative).
    breakpoints.clear();
    breakpoints.reserve(2 * m);
    for o in 0..m {
        breakpoints.push((z[o] - r[o], 1.0));
        breakpoints.push((exp_eps * z[o] - r[o], -1.0));
    }
    breakpoints.sort_by(|a, b| a.0.total_cmp(&b.0));

    // Below every breakpoint, φ(λ) = Σ z (all at lower clip), slope 0.
    let mut phi: f64 = z.iter().sum();
    let mut slope = 0.0;
    let mut prev = breakpoints[0].0;
    for &(bp, ds) in breakpoints.iter() {
        let next_phi = phi + slope * (bp - prev);
        if next_phi >= 1.0 && slope > 0.0 {
            // Crossing inside (prev, bp].
            return prev + (1.0 - phi) / slope;
        }
        phi = next_phi;
        slope += ds;
        prev = bp;
    }
    if slope > 0.0 {
        // Crossing beyond the last breakpoint (cannot happen when the
        // feasibility precondition holds, but handle it).
        return prev + (1.0 - phi) / slope;
    }
    // φ is flat at Σ E z ≥ 1 past the last breakpoint; equality case.
    if (phi - 1.0).abs() < 1e-9 {
        return prev;
    }
    bisect_lambda(r, z, exp_eps)
}

/// Bisection oracle for `λ` — slower but unconditionally robust. Public
/// within the crate for use as a test oracle.
pub(crate) fn bisect_lambda(r: &[f64], z: &[f64], exp_eps: f64) -> f64 {
    let phi = |lambda: f64| -> f64 {
        r.iter()
            .zip(z)
            .map(|(&ri, &zi)| (ri + lambda).clamp(zi, exp_eps * zi))
            .sum()
    };
    let r_max = r.iter().cloned().fold(f64::MIN, f64::max);
    let r_min = r.iter().cloned().fold(f64::MAX, f64::min);
    let z_max = z.iter().cloned().fold(0.0, f64::max);
    let mut lo = -r_max - exp_eps * z_max - 1.0;
    let mut hi = -r_min + exp_eps * z_max + 1.0;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < 1.0 {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-15 * (1.0 + hi.abs()) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn feasible_z(m: usize, epsilon: f64) -> Vec<f64> {
        // The paper's initialization: z = (1 + e^{−ε})/(2m)·1, which
        // satisfies Σz ≤ 1 ≤ e^ε Σz.
        vec![(1.0 + (-epsilon).exp()) / (2.0 * m as f64); m]
    }

    fn check_column_feasible(q: &[f64], z: &[f64], epsilon: f64) {
        let e = epsilon.exp();
        let sum: f64 = q.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "column sums to {sum}");
        for (qi, zi) in q.iter().zip(z) {
            assert!(*qi >= zi - 1e-12, "below lower bound");
            assert!(*qi <= e * zi + 1e-12, "above upper bound");
        }
    }

    #[test]
    fn projects_onto_constraints() {
        let mut rng = StdRng::seed_from_u64(1);
        let (m, n, eps) = (12, 5, 1.0);
        let z = feasible_z(m, eps);
        let r = Matrix::from_fn(m, n, |_, _| rng.gen_range(-0.5..1.5));
        let (q, _) = project_columns(&r, &z, eps);
        for u in 0..n {
            check_column_feasible(&q.col(u), &z, eps);
        }
    }

    #[test]
    fn feasible_point_is_fixed() {
        // A column already in the set projects to itself.
        let eps = 1.0_f64;
        let m = 4;
        let z = feasible_z(m, eps);
        // Build a feasible column: start at z, distribute the slack.
        let slack = 1.0 - z.iter().sum::<f64>();
        let mut col = z.clone();
        let headroom: Vec<f64> = z.iter().map(|zi| (eps.exp() - 1.0) * zi).collect();
        let total_head: f64 = headroom.iter().sum();
        for (c, h) in col.iter_mut().zip(&headroom) {
            *c += slack * h / total_head;
        }
        let r = Matrix::from_fn(m, 1, |o, _| col[o]);
        let (q, _) = project_columns(&r, &z, eps);
        for o in 0..m {
            assert!((q[(o, 0)] - col[o]).abs() < 1e-9);
        }
    }

    #[test]
    fn matches_bisection_oracle() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..50 {
            let m = rng.gen_range(2..20);
            let eps: f64 = rng.gen_range(0.2..4.0);
            // Random feasible z: uniform entries scaled into the window.
            let raw: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..1.0)).collect();
            let s: f64 = raw.iter().sum();
            // Scale so that Σz = t with e^{-ε} < t < 1.
            let t = rng.gen_range(((-eps).exp() + 1e-3)..0.999);
            let z: Vec<f64> = raw.iter().map(|v| v * t / s).collect();
            let r: Vec<f64> = (0..m).map(|_| rng.gen_range(-1.0..2.0)).collect();
            let fast = solve_lambda(&r, &z, eps.exp(), &mut Vec::new());
            let slow = bisect_lambda(&r, &z, eps.exp());
            // Compare the clipped results (λ itself may be non-unique on
            // flat segments).
            for o in 0..m {
                let qf = (r[o] + fast).clamp(z[o], eps.exp() * z[o]);
                let qs = (r[o] + slow).clamp(z[o], eps.exp() * z[o]);
                assert!(
                    (qf - qs).abs() < 1e-7,
                    "trial {trial}: entry {o} differs: {qf} vs {qs}"
                );
            }
        }
    }

    #[test]
    fn projection_is_idempotent() {
        let mut rng = StdRng::seed_from_u64(3);
        let (m, n, eps) = (8, 4, 0.8);
        let z = feasible_z(m, eps);
        let r = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let (q1, _) = project_columns(&r, &z, eps);
        let (q2, _) = project_columns(&q1, &z, eps);
        assert!(q1.max_abs_diff(&q2) < 1e-9);
    }

    #[test]
    fn projected_matrix_is_ldp() {
        // Entries within [z_o, e^ε z_o] per row imply row ratio ≤ e^ε.
        let mut rng = StdRng::seed_from_u64(4);
        let (m, n, eps) = (16, 4, 1.3);
        let z = feasible_z(m, eps);
        let r = Matrix::from_fn(m, n, |_, _| rng.gen::<f64>());
        let (q, _) = project_columns(&r, &z, eps);
        let s = ldp_core::StrategyMatrix::new(q).expect("valid strategy");
        assert!(s.epsilon() <= eps + 1e-9);
    }

    #[test]
    #[should_panic(expected = "infeasible")]
    fn rejects_infeasible_bounds() {
        let r = Matrix::zeros(3, 1);
        // Σz = 1.5 > 1.
        let _ = project_columns(&r, &[0.5, 0.5, 0.5], 1.0);
    }

    #[test]
    fn backprop_z_matches_finite_differences() {
        // f(z) = <C, Π_z(R)> for a fixed coefficient matrix C; compare
        // the analytic pullback to central differences at a generic point.
        let mut rng = StdRng::seed_from_u64(11);
        let (m, n, eps) = (7usize, 3usize, 1.1);
        let z0 = feasible_z(m, eps);
        let r = Matrix::from_fn(m, n, |_, _| rng.gen_range(-0.3..0.8));
        let c = Matrix::from_fn(m, n, |_, _| rng.gen_range(-1.0..1.0));
        let f = |z: &[f64]| -> f64 {
            let (q, _) = project_columns(&r, z, eps);
            q.as_slice()
                .iter()
                .zip(c.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let (_, jac) = project_columns(&r, &z0, eps);
        let grad = jac.backprop_z(&c);
        let h = 1e-7;
        for j in 0..m {
            let mut zp = z0.clone();
            zp[j] += h;
            let mut zm = z0.clone();
            zm[j] -= h;
            let fd = (f(&zp) - f(&zm)) / (2.0 * h);
            assert!(
                (fd - grad[j]).abs() < 1e-4 * (1.0 + fd.abs()),
                "coordinate {j}: fd {fd} vs analytic {}",
                grad[j]
            );
        }
    }

    #[test]
    fn parallel_path_is_bit_identical_to_serial() {
        // m·n = 128·80 = 10 240 crosses PAR_MIN_WORK, so the multi-worker
        // runs genuinely take the fan-out λ path; the 1-worker run takes
        // the serial loop. Byte equality, not approximate.
        let mut rng = StdRng::seed_from_u64(21);
        let (m, n, eps) = (128usize, 80usize, 1.0);
        assert!(m * n >= PAR_MIN_WORK, "instance must engage the pool");
        let z = feasible_z(m, eps);
        let r = Matrix::from_fn(m, n, |_, _| rng.gen_range(-0.5..1.5));
        let run = || {
            let mut q = Matrix::zeros(m, n);
            let mut jac = ProjectionJacobian::empty();
            let mut scratch = ProjectionScratch::new();
            project_columns_into(&r, &z, eps, &mut q, &mut jac, &mut scratch);
            let grad = Matrix::from_fn(m, n, |o, u| ((o * 7 + u) % 5) as f64 - 2.0);
            (q.as_slice().to_vec(), jac.backprop_z(&grad))
        };
        ldp_parallel::set_thread_override(Some(1));
        let serial = run();
        for workers in [2usize, 4] {
            ldp_parallel::set_thread_override(Some(workers));
            let parallel = run();
            assert_eq!(parallel, serial, "projection diverged at {workers} workers");
        }
        ldp_parallel::set_thread_override(None);
    }

    #[test]
    fn degenerate_all_clipped_column() {
        // r so large that everything clips to the upper bound except what
        // must come down: still sums to one and stays in bounds.
        let eps = 0.5_f64;
        let m = 5;
        let z = feasible_z(m, eps);
        let r = Matrix::filled(m, 1, 100.0);
        let (q, _) = project_columns(&r, &z, eps);
        check_column_feasible(&q.col(0), &z, eps);
    }
}
