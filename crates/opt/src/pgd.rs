//! Projected gradient descent over strategy matrices (Algorithm 2).
//!
//! Each iteration evaluates the objective and its gradient
//! ([`crate::objective::evaluate_into`]), backpropagates the gradient
//! through the previous projection onto the bound vector `z`
//! ([`crate::projection::ProjectionJacobian::backprop_z_into`]), takes
//! gradient steps on `z` and `Q`, and re-projects `Q` onto the ε-LDP
//! bounded simplex. Following the paper:
//!
//! * `m = 4n` outputs by default (the paper's empirical sweet spot);
//! * random initialization `R ~ U\[0,1\]^{m×n}`, `z = (1+e^{−ε})/(2m)·1`
//!   (the paper's `(1+e^{−ε})/(8n)` with `m = 4n`), `Q = Π_{z,ε}(R)`;
//! * the `z` step size is `α = β/(n·e^ε)` — deliberately smaller than the
//!   `Q` step `β` for robustness;
//! * the row-space constraint `W = WQ†Q` is handled "for free": the
//!   objective blows up near the boundary, so descent steps never cross it
//!   (Section 4); a full-rank random initialization starts inside.
//!
//! Because projected iterates always satisfy `z ≤ q_u ≤ e^ε·z`
//! coordinate-wise, *every* iterate is a valid ε-LDP strategy — privacy
//! never depends on convergence.
//!
//! ## Allocation discipline
//!
//! The whole descent runs inside a preallocated [`Workspace`]: iterate,
//! step, best-iterate, gradient, objective and projection buffers are
//! sized once per problem and reused across **every iteration and every
//! restart** (and, via [`optimize_strategy_with`], across repeated
//! optimizer calls at the same problem size). On the hot path — the
//! Cholesky branch of the objective plus the simplex projection — a PGD
//! iteration performs zero heap allocation.
//!
//! ## Parallel restarts
//!
//! With `restarts > 1` and more than one [`ldp_parallel`] thread, the
//! restarts run concurrently, each in a private workspace with its own
//! seed stream (the same per-restart seeds the sequential schedule
//! draws). Restart results are reduced in restart order with a strict
//! `<` argmin — exactly the sequential fold — so the optimizer's output
//! is bit-identical at every thread count.

use ldp_core::{FactorizationMechanism, LdpError, StrategyMatrix};
use ldp_linalg::stablehash::Fnv64;
use ldp_linalg::{LinOp, Matrix};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::lbfgs::LbfgsState;
use crate::objective::{evaluate_into, ObjectiveWorkspace};
use crate::projection::{project_columns_into, ProjectionJacobian, ProjectionScratch};

/// Which descent algorithm [`optimize_strategy`] runs over the bounded
/// ε-LDP simplex.
///
/// Both algorithms share the whole surrounding machinery — the paper's
/// initialization, the [`crate::projection`] simplex projection with its
/// `z`-backpropagation, multi-restart argmin reduction, best-iterate
/// tracking — and both honor the determinism contract (bit-identical
/// results across `LDP_THREADS` worker counts, per kernel backend).
/// They differ only in how the next iterate is chosen, and they produce
/// *different* strategies from the same seed, so the
/// [`OptimizerConfig::fingerprint`] keys them separately and the
/// `StrategyRegistry` never aliases one for the other.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// The paper's Algorithm 2: first-order projected gradient descent
    /// with a geometric step-size search. The default.
    Pgd,
    /// Projected L-BFGS: quasi-Newton directions from a bounded
    /// curvature-pair history (two-loop recursion), a projection-aware
    /// Armijo backtracking line search, and convergence-based stopping.
    /// Reaches PGD-quality objectives in several-fold fewer
    /// objective/gradient evaluations — the cold-deploy fast path.
    Lbfgs,
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Algorithm::Pgd => "pgd",
            Algorithm::Lbfgs => "lbfgs",
        })
    }
}

impl std::str::FromStr for Algorithm {
    type Err = LdpError;

    /// Parses an algorithm name as used on CLI flags and environment
    /// variables (`pgd`, `lbfgs`; case, `-` and `_` are ignored).
    fn from_str(s: &str) -> Result<Self, LdpError> {
        let mut norm = s.trim().to_ascii_lowercase();
        norm.retain(|c| !matches!(c, '-' | '_' | ' '));
        match norm.as_str() {
            "pgd" | "projectedgradientdescent" => Ok(Algorithm::Pgd),
            "lbfgs" | "lbfgsb" => Ok(Algorithm::Lbfgs),
            _ => Err(LdpError::OptimizationFailed(format!(
                "unknown optimizer algorithm '{s}' (expected 'pgd' or 'lbfgs')"
            ))),
        }
    }
}

/// Configuration for [`optimize_strategy`].
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Number of mechanism outputs `m`; defaults to `4n` (paper §4).
    pub num_outputs: Option<usize>,
    /// Descent iterations per restart. For [`Algorithm::Pgd`] this is an
    /// exact budget; for [`Algorithm::Lbfgs`] (or whenever a stopping
    /// rule below is set) it is a cap the convergence tests usually beat.
    pub iterations: usize,
    /// Number of random restarts; the best strategy wins.
    pub restarts: usize,
    /// Fixed `Q` step size `β`. `None` runs a short geometric search
    /// (the paper's hyper-parameter search, §4). Ignored by
    /// [`Algorithm::Lbfgs`], whose line search scales steps itself.
    pub step_size: Option<f64>,
    /// Iterations used per candidate during the step-size search.
    pub search_iterations: usize,
    /// RNG seed for the random initialization.
    pub seed: u64,
    /// Optional warm start: initialize from an existing strategy matrix
    /// instead of randomly (the paper's §4 alternative initialization).
    /// Because the best iterate is tracked, the result is then never
    /// worse than the warm-start strategy. Overrides `num_outputs`.
    pub initial_strategy: Option<StrategyMatrix>,
    /// Which descent algorithm to run. Defaults to [`Algorithm::Pgd`]
    /// (the paper's Algorithm 2); see [`OptimizerConfig::lbfgs`] for the
    /// quasi-Newton preset.
    pub algorithm: Algorithm,
    /// Convergence-based stopping on the projected-gradient mapping
    /// norm `‖Π_{z,ε}(Q − s·∇L) − Q‖_F / s ≤ tol·(1 + |L(Q)|)` — the
    /// first-order stationarity measure that vanishes exactly at a
    /// constrained minimum (`s` is PGD's current step `β`, or `1` for
    /// the L-BFGS probe). `None` disables the test — PGD then runs its
    /// exact historical iteration count with bit-identical results. The
    /// decision is computed from the same bit-stable scalars as the
    /// iterates, so stopping points are identical at every
    /// `LDP_THREADS` setting.
    pub gradient_tol: Option<f64>,
    /// Convergence-based stopping on an objective plateau: stop after
    /// this many consecutive iterations without a relative best-objective
    /// improvement above `1e-9`. `None` disables the test (PGD keeps its
    /// exact historical behavior).
    pub plateau_window: Option<usize>,
    /// Target-objective stopping (L-BFGS-B's `f_target`): stop as soon as
    /// the best objective reaches this value. Turns a run into a
    /// **time-to-target** measurement — "how long until the optimizer is
    /// at least this good" — rather than a fixed-budget one. `None`
    /// disables the test (the default; no behavior change).
    pub target_objective: Option<f64>,
}

impl OptimizerConfig {
    /// The paper-faithful default configuration.
    pub fn new(seed: u64) -> Self {
        Self {
            num_outputs: None,
            iterations: 250,
            restarts: 1,
            step_size: None,
            search_iterations: 15,
            seed,
            initial_strategy: None,
            algorithm: Algorithm::Pgd,
            gradient_tol: None,
            plateau_window: None,
            target_objective: None,
        }
    }

    /// A cheaper configuration for tests, examples, and `--quick` bench
    /// runs: fewer iterations, shorter search.
    pub fn quick(seed: u64) -> Self {
        Self {
            num_outputs: None,
            iterations: 80,
            restarts: 1,
            step_size: None,
            search_iterations: 8,
            seed,
            initial_strategy: None,
            algorithm: Algorithm::Pgd,
            gradient_tol: None,
            plateau_window: None,
            target_objective: None,
        }
    }

    /// The projected L-BFGS preset: quasi-Newton descent with
    /// convergence-based stopping. Targets the same final objective as
    /// [`OptimizerConfig::new`] in several-fold fewer objective/gradient
    /// evaluations; the iteration count is a cap, not a budget — the
    /// stopping rules usually fire long before it.
    pub fn lbfgs(seed: u64) -> Self {
        Self {
            num_outputs: None,
            iterations: 500,
            restarts: 1,
            step_size: None,
            search_iterations: 0,
            seed,
            initial_strategy: None,
            algorithm: Algorithm::Lbfgs,
            gradient_tol: Some(1e-7),
            plateau_window: Some(9),
            target_objective: None,
        }
    }

    /// Selects the descent algorithm, keeping every other knob.
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Test-harness hook: overrides the algorithm from the
    /// `LDP_TEST_ALGORITHM` environment variable (`pgd` | `lbfgs`),
    /// returning `self` unchanged when it is unset or unrecognized.
    ///
    /// This is how CI runs the integration suite once under the
    /// quasi-Newton descent without forking every config literal. It is
    /// strictly opt-in — constructors never read the environment — so
    /// identity-sensitive suites (fingerprint goldens, the PGD/L-BFGS
    /// parity tests) that name an algorithm explicitly stay pinned to
    /// it regardless of the ambient variable.
    pub fn with_env_algorithm(self) -> Self {
        match std::env::var("LDP_TEST_ALGORITHM").ok().as_deref() {
            Some("lbfgs") => self.with_algorithm(Algorithm::Lbfgs),
            Some("pgd") => self.with_algorithm(Algorithm::Pgd),
            _ => self,
        }
    }

    /// Sets (or clears) the projected-gradient-norm stopping tolerance.
    pub fn with_gradient_tol(mut self, tol: Option<f64>) -> Self {
        self.gradient_tol = tol;
        self
    }

    /// Sets (or clears) the objective-plateau stopping window.
    pub fn with_plateau_window(mut self, window: Option<usize>) -> Self {
        self.plateau_window = window;
        self
    }

    /// Sets (or clears) the target-objective stop: the run ends as soon
    /// as the best objective is at or below `target`.
    pub fn with_target_objective(mut self, target: Option<f64>) -> Self {
        self.target_objective = target;
        self
    }

    /// Warm-starts the optimizer from an existing strategy; the result is
    /// never worse than the given strategy (the best iterate is kept).
    pub fn with_warm_start(mut self, strategy: StrategyMatrix) -> Self {
        self.initial_strategy = Some(strategy);
        self
    }

    /// Overrides the number of outputs `m`.
    pub fn with_num_outputs(mut self, m: usize) -> Self {
        self.num_outputs = Some(m);
        self
    }

    /// Overrides the iteration budget.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the number of random restarts.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// The number of outputs `m` this configuration produces for an
    /// `n`-type domain (warm start wins, then the override, then `4n`).
    pub fn resolved_num_outputs(&self, n: usize) -> usize {
        match &self.initial_strategy {
            Some(warm) => warm.num_outputs(),
            None => self.num_outputs.unwrap_or(4 * n).max(n),
        }
    }

    /// A stable 64-bit fingerprint of every field that influences the
    /// optimizer's output — two configs with equal fingerprints drive
    /// Algorithm 2 to bit-identical strategies on the same problem (the
    /// descent is deterministic given the seed and hyper-parameters,
    /// PR 3's thread-count-invariance included). `ldp-store` combines
    /// this with the workload fingerprint and ε to content-address
    /// cached strategies.
    ///
    /// A warm-start strategy participates by exact matrix bit pattern,
    /// so warm-started runs never alias cold-started ones.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv64::new();
        h.write_str("ldp-optimizer-config/1");
        match self.num_outputs {
            None => h.write_u64(0),
            Some(m) => {
                h.write_u64(1);
                h.write_u64(m as u64);
            }
        }
        h.write_u64(self.iterations as u64);
        h.write_u64(self.restarts as u64);
        match self.step_size {
            None => h.write_u64(0),
            Some(beta) => {
                h.write_u64(1);
                h.write_f64(beta);
            }
        }
        h.write_u64(self.search_iterations as u64);
        h.write_u64(self.seed);
        match &self.initial_strategy {
            None => h.write_u64(0),
            Some(warm) => {
                h.write_u64(1);
                let q = warm.matrix();
                h.write_u64(q.rows() as u64);
                h.write_u64(q.cols() as u64);
                for &v in q.as_slice() {
                    h.write_f64(v);
                }
            }
        }
        // Post-/1 fields are hashed only when they leave their defaults,
        // so every fingerprint minted before they existed — including the
        // committed goldens and any strategy store in the field — is
        // unchanged. A non-default algorithm or stopping rule changes the
        // iterate stream, so it must (and does) change the key.
        let extended = self.algorithm != Algorithm::Pgd
            || self.gradient_tol.is_some()
            || self.plateau_window.is_some()
            || self.target_objective.is_some();
        if extended {
            h.write_str("ldp-optimizer-config/2");
            h.write_u64(match self.algorithm {
                Algorithm::Pgd => 0,
                Algorithm::Lbfgs => 1,
            });
            match self.gradient_tol {
                None => h.write_u64(0),
                Some(tol) => {
                    h.write_u64(1);
                    h.write_f64(tol);
                }
            }
            match self.plateau_window {
                None => h.write_u64(0),
                Some(w) => {
                    h.write_u64(1);
                    h.write_u64(w as u64);
                }
            }
            match self.target_objective {
                None => h.write_u64(0),
                Some(t) => {
                    h.write_u64(1);
                    h.write_f64(t);
                }
            }
        }
        h.finish()
    }
}

/// The outcome of a strategy optimization.
#[derive(Clone, Debug)]
pub struct OptimizationResult {
    /// The best strategy found (a valid ε-LDP strategy by construction).
    pub strategy: StrategyMatrix,
    /// Its objective value `L(Q)`.
    pub objective: f64,
    /// Objective value at every iteration of the best restart.
    pub history: Vec<f64>,
    /// Total objective/gradient evaluations spent across **all**
    /// restarts, step-size search included — the work metric the
    /// L-BFGS-vs-PGD parity gate compares (each unit is one
    /// [`crate::objective::evaluate_into`] call, the `O(n³)` dominant
    /// cost of an iteration).
    pub evaluations: usize,
}

/// Every buffer Algorithm 2 touches, preallocated for an `m × n` problem
/// and reused across iterations, restarts, and (when callers hold on to
/// it) whole optimizer invocations.
pub struct Workspace {
    /// Projected initial iterate of the current restart (`m × n`).
    pub(crate) q0: Matrix,
    /// Initial bound vector of the current restart (`m`).
    pub(crate) z0: Vec<f64>,
    /// Current iterate (`m × n`).
    pub(crate) q: Matrix,
    /// Gradient-step scratch `Q − β∇` (`m × n`).
    pub(crate) stepped: Matrix,
    /// Best iterate so far (`m × n`).
    pub(crate) best_q: Matrix,
    /// Previous iterate, kept only while a stopping rule needs the
    /// per-iteration displacement (`m × n`).
    pub(crate) prev_q: Matrix,
    /// Objective gradient (`m × n`).
    pub(crate) gradient: Matrix,
    /// Bound vector (`m`).
    pub(crate) z: Vec<f64>,
    /// Gradient w.r.t. `z` (`m`).
    pub(crate) grad_z: Vec<f64>,
    /// Clip pattern of the latest projection.
    pub(crate) jacobian: ProjectionJacobian,
    /// Projection breakpoint scratch.
    pub(crate) proj: ProjectionScratch,
    /// Objective/gradient buffers.
    pub(crate) obj: ObjectiveWorkspace,
    /// Per-iteration objective history of the current descent.
    pub(crate) history: Vec<f64>,
    /// Densified-Gram buffer for structured operators, kept across
    /// [`optimize_strategy_with`] calls so re-optimizations refill it in
    /// place instead of reallocating `n²` entries.
    pub(crate) gram_buf: Option<Matrix>,
    /// L-BFGS curvature ring and line-search buffers, allocated on the
    /// first [`Algorithm::Lbfgs`] descent through this workspace and
    /// reused (like `gram_buf`) for every one after it. PGD-only
    /// workspaces never pay for it.
    pub(crate) lbfgs: Option<LbfgsState>,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("m", &self.q.rows())
            .field("n", &self.q.cols())
            .finish_non_exhaustive()
    }
}

impl Workspace {
    /// Buffers for `m`-output strategies over an `n`-type domain.
    pub fn new(m: usize, n: usize) -> Self {
        Self {
            q0: Matrix::zeros(m, n),
            z0: vec![0.0; m],
            q: Matrix::zeros(m, n),
            stepped: Matrix::zeros(m, n),
            best_q: Matrix::zeros(m, n),
            prev_q: Matrix::zeros(m, n),
            gradient: Matrix::zeros(m, n),
            z: vec![0.0; m],
            grad_z: vec![0.0; m],
            jacobian: ProjectionJacobian::empty(),
            proj: ProjectionScratch::new(),
            obj: ObjectiveWorkspace::new(m, n),
            history: Vec::new(),
            gram_buf: None,
            lbfgs: None,
        }
    }

    /// Buffers sized for `config` on an `n`-type domain.
    pub fn for_config(config: &OptimizerConfig, n: usize) -> Self {
        Self::new(config.resolved_num_outputs(n), n)
    }

    /// `(m, n)` this workspace was sized for.
    pub fn shape(&self) -> (usize, usize) {
        self.q.shape()
    }
}

/// Runs Algorithm 2 and returns the best strategy found across restarts.
///
/// Accepts the workload Gram as any [`LinOp`] — a dense matrix or a
/// structured operator. The operator is materialized once into the
/// iteration workspace (the objective's `n × n` solves need dense
/// right-hand sides); everything after that is allocation-free per
/// iteration.
///
/// # Errors
/// [`LdpError::InvalidEpsilon`] for a bad budget;
/// [`LdpError::OptimizationFailed`] if no finite-objective iterate was
/// ever produced (does not occur for well-formed Gram matrices).
///
/// # Panics
/// Panics if `gram` is not square.
pub fn optimize_strategy(
    gram: &dyn LinOp,
    epsilon: f64,
    config: &OptimizerConfig,
) -> Result<OptimizationResult, LdpError> {
    let mut workspace = Workspace::for_config(config, gram.rows());
    optimize_strategy_with(gram, epsilon, config, &mut workspace)
}

/// [`optimize_strategy`] with a caller-provided [`Workspace`], so repeated
/// optimizations at one problem size (benchmarks, hyper-parameter sweeps,
/// re-optimization on workload drift) reuse every buffer.
///
/// # Errors
/// As [`optimize_strategy`].
///
/// # Panics
/// Panics if `gram` is not square or the workspace shape disagrees with
/// the problem implied by `gram` and `config`.
pub fn optimize_strategy_with(
    gram: &dyn LinOp,
    epsilon: f64,
    config: &OptimizerConfig,
    workspace: &mut Workspace,
) -> Result<OptimizationResult, LdpError> {
    if epsilon.is_nan() || epsilon <= 0.0 || !epsilon.is_finite() {
        return Err(LdpError::InvalidEpsilon(epsilon));
    }
    assert!(gram.is_square(), "Gram matrix must be square");
    let n = gram.rows();
    let m = config.resolved_num_outputs(n);
    assert_eq!(
        workspace.shape(),
        (m, n),
        "workspace sized for a different problem"
    );
    // Structured Grams materialize once per optimization into a buffer
    // the workspace keeps across calls (dense matrices are borrowed
    // as-is); every iteration then reuses it.
    let owned: Option<Matrix> = if gram.as_dense().is_some() {
        None
    } else {
        let mut buf = workspace
            .gram_buf
            .take()
            .filter(|b| b.shape() == (n, n))
            .unwrap_or_else(|| Matrix::zeros(n, n));
        gram.materialize_into(&mut buf);
        Some(buf)
    };
    let result = {
        let g: &Matrix = match &owned {
            Some(buf) => buf,
            None => gram.as_dense().ok_or_else(|| {
                LdpError::OptimizationFailed(
                    "Gram operator offered no dense view and no materialization".to_string(),
                )
            })?,
        };
        let restarts = config.restarts.max(1);
        let pool = ldp_parallel::pool();
        let runs: Vec<Result<OptimizationResult, LdpError>> = if restarts > 1 && pool.threads() > 1
        {
            // Parallel restarts: each runs in its own private
            // workspace with its own seed stream. A restart's
            // computation never depends on workspace contents (the
            // descent overwrites every buffer it reads — property
            // `workspace_reuse_across_calls_is_bit_identical`), so
            // per-restart outputs match the sequential schedule bit
            // for bit; the reduction below scans in restart order,
            // making the whole result thread-count independent.
            pool.par_map(restarts, |restart| {
                let seed = restart_seed(config.seed, restart);
                let mut private = Workspace::new(m, n);
                single_run(g, epsilon, config, seed, &mut private)
            })
        } else {
            // No `?` here: an early return would drop the taken gram
            // buffer instead of restoring it below.
            let mut runs = Vec::with_capacity(restarts);
            for restart in 0..restarts {
                let seed = restart_seed(config.seed, restart);
                let run = single_run(g, epsilon, config, seed, workspace);
                let failed = run.is_err();
                runs.push(run);
                if failed {
                    break;
                }
            }
            runs
        };
        // Deterministic reduction, identical to the historical
        // sequential loop: the first error (in restart order) wins, and
        // ties in the objective keep the earliest restart (strict `<`).
        // The winner's `evaluations` reports the whole invocation's work
        // (every restart's evals summed), since that is the cost a caller
        // actually paid for the returned strategy.
        let mut best: Option<OptimizationResult> = None;
        let mut failure: Option<LdpError> = None;
        let mut total_evals = 0usize;
        for run in runs {
            match run {
                Ok(result) => {
                    total_evals += result.evaluations;
                    let better = best
                        .as_ref()
                        .map(|b| result.objective < b.objective)
                        .unwrap_or(true);
                    if better {
                        best = Some(result);
                    }
                }
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => match best {
                Some(mut winner) => {
                    winner.evaluations = total_evals;
                    Ok(winner)
                }
                None => Err(LdpError::OptimizationFailed(
                    "no restart produced a strategy".into(),
                )),
            },
        }
    };
    if owned.is_some() {
        workspace.gram_buf = owned;
    }
    result
}

/// Convenience wrapper: optimizes a strategy and assembles the
/// factorization mechanism (named `"Optimized"`, as in the paper's
/// figures) with the optimal reconstruction of Theorem 3.10.
///
/// # Errors
/// Propagates optimization and mechanism-construction failures.
pub fn optimized_mechanism(
    gram: &dyn LinOp,
    epsilon: f64,
    config: &OptimizerConfig,
) -> Result<FactorizationMechanism, LdpError> {
    let result = optimize_strategy(gram, epsilon, config)?;
    Ok(
        FactorizationMechanism::new_unchecked_privacy(result.strategy, gram, epsilon)?
            .with_name("Optimized"),
    )
}

/// The seed of restart `restart` — a fixed affine stream so restart `r`
/// draws the same initialization whether restarts run sequentially in a
/// shared workspace or concurrently in private ones.
fn restart_seed(seed: u64, restart: usize) -> u64 {
    seed.wrapping_add(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(restart as u64))
}

/// One restart: init, optional step-size search, main loop.
fn single_run(
    gram: &Matrix,
    epsilon: f64,
    config: &OptimizerConfig,
    seed: u64,
    ws: &mut Workspace,
) -> Result<OptimizationResult, LdpError> {
    let n = gram.rows();
    match &config.initial_strategy {
        Some(warm) => {
            assert_eq!(
                warm.domain_size(),
                n,
                "warm start domain must match workload"
            );
            // z = per-row minima of the warm strategy puts the strategy
            // inside (or on the boundary of) the projection's feasible
            // set whenever it is ε-LDP, so the first iterate *is* the
            // warm strategy up to clipping slack.
            let q = warm.matrix();
            for (zo, o) in ws.z0.iter_mut().zip(0..q.rows()) {
                *zo = q.row(o).iter().copied().fold(f64::MAX, f64::min).max(1e-12);
            }
            project_columns_into(
                q,
                &ws.z0,
                epsilon,
                &mut ws.q0,
                &mut ws.jacobian,
                &mut ws.proj,
            );
        }
        None => {
            // Paper initialization: R ~ U[0,1], z = (1+e^{−ε})/(2m)·1.
            let m = ws.z0.len();
            let mut rng = StdRng::seed_from_u64(seed);
            ws.z0.fill((1.0 + (-epsilon).exp()) / (2.0 * m as f64));
            for v in ws.stepped.as_mut_slice() {
                *v = rng.gen::<f64>();
            }
            let Workspace {
                q0,
                z0,
                stepped,
                jacobian,
                proj,
                ..
            } = ws;
            project_columns_into(stepped, z0, epsilon, q0, jacobian, proj);
        }
    }

    let mut evals = 0usize;
    let objective = match config.algorithm {
        Algorithm::Pgd => {
            // Step-size selection.
            let beta = match config.step_size {
                Some(b) => b,
                None => search_step_size(gram, epsilon, config, ws, &mut evals),
            };
            descend(
                gram,
                epsilon,
                beta,
                config.iterations,
                config,
                ws,
                &mut evals,
            )
        }
        // L-BFGS scales its own steps via the line search, so the whole
        // geometric step-size search (and its eval budget) is skipped.
        Algorithm::Lbfgs => crate::lbfgs::descend(gram, epsilon, config, ws, &mut evals),
    };
    if !objective.is_finite() {
        return Err(LdpError::OptimizationFailed(format!(
            "objective diverged to {objective}"
        )));
    }
    // Projection output is stochastic up to rounding; renormalize exactly.
    let strategy = StrategyMatrix::from_unnormalized(ws.best_q.clone())?;
    Ok(OptimizationResult {
        strategy,
        objective,
        history: ws.history.clone(),
        evaluations: evals,
    })
}

/// Relative best-objective improvement below which an iteration counts
/// toward the [`OptimizerConfig::plateau_window`] stopping rule.
pub(crate) const PLATEAU_REL: f64 = 5e-4;

/// Whether `value` improves on `best` by more than [`PLATEAU_REL`]
/// relative — the shared "did this iteration make progress" test of both
/// algorithms' plateau stopping rules.
pub(crate) fn significant_improvement(value: f64, best: f64) -> bool {
    !best.is_finite() || value < best - PLATEAU_REL * best.abs()
}

/// The core descent loop, starting from the workspace's `(q0, z0)`.
/// Leaves the best iterate in `ws.best_q` and the per-iteration objective
/// history in `ws.history` (entry `t` is the objective *before* iteration
/// `t`'s step; the final entry is the best objective found, which is also
/// the return value). Allocation-free after workspace warm-up.
///
/// With both of `config`'s stopping rules `None` the loop is byte-for-byte
/// the historical fixed-budget schedule: no extra arithmetic runs, so
/// iterates, history, and iteration counts are bit-identical to every
/// release before the rules existed.
fn descend(
    gram: &Matrix,
    epsilon: f64,
    beta0: f64,
    iterations: usize,
    config: &OptimizerConfig,
    ws: &mut Workspace,
    evals: &mut usize,
) -> f64 {
    let n = gram.rows();
    let exp_eps = epsilon.exp();
    // Paper: α = β/(n·e^ε), a deliberately smaller step for z.
    let mut beta = beta0;
    let Workspace {
        q0,
        z0,
        q,
        stepped,
        best_q,
        prev_q,
        gradient,
        z,
        grad_z,
        jacobian,
        proj,
        obj,
        history,
        ..
    } = ws;
    z.copy_from_slice(z0);
    // Initial projection to establish a Jacobian for z-backprop.
    project_columns_into(q0, z, epsilon, q, jacobian, proj);

    best_q.copy_from(q);
    let mut best_obj = f64::INFINITY;
    let mut prev_obj = f64::INFINITY;
    let mut since_improve = 0usize;
    history.clear();
    history.reserve(iterations + 1);

    for _ in 0..iterations {
        let value = evaluate_into(q, gram, obj, gradient);
        *evals += 1;
        history.push(value);
        if !value.is_finite() || !gradient.is_finite() {
            // The iterate crossed the W = WQ†Q boundary (rank collapse) or
            // became ill-conditioned enough to produce non-finite
            // derivatives: rewind to the best iterate with a halved step.
            beta *= 0.5;
            if best_obj.is_finite() {
                project_columns_into(best_q, z, epsilon, q, jacobian, proj);
            }
            // Either way, never step along a non-finite gradient.
            prev_obj = f64::INFINITY;
            if let Some(window) = config.plateau_window {
                since_improve += 1;
                if since_improve >= window {
                    break;
                }
            }
            continue;
        }
        let significant = significant_improvement(value, best_obj);
        if value < best_obj {
            best_obj = value;
            best_q.copy_from(q);
        }
        if config.target_objective.is_some_and(|tgt| best_obj <= tgt) {
            break;
        }
        if let Some(window) = config.plateau_window {
            if significant {
                since_improve = 0;
            } else {
                since_improve += 1;
                if since_improve >= window {
                    break;
                }
            }
        }
        if value > prev_obj {
            // Overshoot: decay the step (simple trust heuristic; the
            // paper likewise recommends decaying step sizes).
            beta *= 0.5;
        }
        prev_obj = value;

        // z step (Algorithm 2 line 1), then Q step + projection (line 2).
        let alpha = beta / (n as f64 * exp_eps);
        jacobian.backprop_z_into(gradient, grad_z);
        for (zo, g) in z.iter_mut().zip(grad_z.iter()) {
            *zo = (*zo - alpha * g).clamp(1e-12, 1.0);
        }
        enforce_feasible_bounds(z, exp_eps);

        for ((s, &qv), &gv) in stepped
            .as_mut_slice()
            .iter_mut()
            .zip(q.as_slice())
            .zip(gradient.as_slice())
        {
            *s = qv - gv * beta;
        }
        if config.gradient_tol.is_some() {
            prev_q.copy_from(q);
        }
        project_columns_into(stepped, z, epsilon, q, jacobian, proj);
        if let Some(tol) = config.gradient_tol {
            // Projected-gradient mapping norm ‖Π(Q − β∇L) − Q‖_F / β: the
            // first-order stationarity measure that is exactly zero at a
            // constrained minimum. A plain sequential sum keeps the
            // stopping decision bit-stable at every thread count.
            let mut acc = 0.0;
            for (a, b) in q.as_slice().iter().zip(prev_q.as_slice()) {
                let d = a - b;
                acc += d * d;
            }
            if acc.sqrt() / beta <= tol * (1.0 + value.abs()) {
                break;
            }
        }
    }
    history.push(best_obj);
    best_obj
}

/// Keeps the bound vector inside the region where the projection is
/// feasible for every column: `Σz ≤ 1 ≤ e^ε·Σz` (with a small margin).
pub(crate) fn enforce_feasible_bounds(z: &mut [f64], exp_eps: f64) {
    const MARGIN: f64 = 1e-9;
    let sum: f64 = z.iter().sum();
    if sum > 1.0 - MARGIN {
        let scale = (1.0 - MARGIN) / sum;
        for v in z.iter_mut() {
            *v *= scale;
        }
    }
    let sum: f64 = z.iter().sum();
    if exp_eps * sum < 1.0 + MARGIN {
        let scale = (1.0 + MARGIN) / (exp_eps * sum);
        for v in z.iter_mut() {
            *v = (*v * scale).min(1.0);
        }
    }
}

/// Short geometric search for the `Q` step size (the paper's
/// hyper-parameter search): each candidate runs a few iterations from the
/// workspace's `(q0, z0)` initialization; the best short-horizon objective
/// wins.
fn search_step_size(
    gram: &Matrix,
    epsilon: f64,
    config: &OptimizerConfig,
    ws: &mut Workspace,
    evals: &mut usize,
) -> f64 {
    // Scale-aware base: a step that could move an entry by about its own
    // magnitude (1/m) against the initial gradient.
    evaluate_into(&ws.q0, gram, &mut ws.obj, &mut ws.gradient);
    *evals += 1;
    let base = 1.0 / (ws.q0.rows() as f64 * ws.gradient.max_abs().max(f64::MIN_POSITIVE));
    let mut best_beta = base;
    let mut best_obj = f64::INFINITY;
    for factor in [0.01, 0.1, 0.3, 1.0, 3.0, 10.0] {
        let beta = base * factor;
        let obj = descend(
            gram,
            epsilon,
            beta,
            config.search_iterations,
            config,
            ws,
            evals,
        );
        if obj.is_finite() && obj < best_obj {
            best_obj = obj;
            best_beta = beta;
        }
    }
    best_beta
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_core::variance::strategy_objective;
    use ldp_core::{bounds, LdpMechanism};
    use ldp_linalg::StructuredGram;

    fn prefix_gram(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64)
    }

    fn rr_objective(n: usize, epsilon: f64, gram: &Matrix) -> f64 {
        let e = epsilon.exp();
        let z = e + n as f64 - 1.0;
        let s = StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap();
        strategy_objective(&s, gram)
    }

    #[test]
    fn produces_valid_private_strategy() {
        let gram = Matrix::identity(6);
        let result = optimize_strategy(&gram, 1.0, &OptimizerConfig::quick(7)).unwrap();
        assert!(result.strategy.epsilon() <= 1.0 + 1e-6);
        assert_eq!(result.strategy.domain_size(), 6);
        assert_eq!(result.strategy.num_outputs(), 24); // m = 4n
    }

    #[test]
    fn objective_improves_from_initialization() {
        let gram = prefix_gram(8);
        let result = optimize_strategy(&gram, 1.0, &OptimizerConfig::quick(3)).unwrap();
        let first = result.history[0];
        assert!(
            result.objective < first,
            "final {} should beat initial {first}",
            result.objective
        );
    }

    #[test]
    fn structured_gram_matches_dense_bitwise() {
        // The acceptance contract of the operator refactor: optimizing
        // against the structured Prefix/AllRange Grams is bit-identical to
        // the historical dense path (the materialized closed forms are the
        // same f64s, and the iteration arithmetic is unchanged).
        for n in [6usize, 9] {
            let config = OptimizerConfig::quick(17);
            let dense = optimize_strategy(&prefix_gram(n), 1.0, &config).unwrap();
            let structured = optimize_strategy(&StructuredGram::prefix(n), 1.0, &config).unwrap();
            assert_eq!(dense.objective, structured.objective);
            assert_eq!(dense.history, structured.history);
            assert_eq!(
                dense.strategy.matrix().as_slice(),
                structured.strategy.matrix().as_slice()
            );

            let range_dense =
                Matrix::from_fn(n, n, |j, k| ((j.min(k) + 1) * (n - j.max(k))) as f64);
            let a = optimize_strategy(&range_dense, 1.0, &config).unwrap();
            let b = optimize_strategy(&StructuredGram::all_range(n), 1.0, &config).unwrap();
            assert_eq!(a.objective, b.objective);
            assert_eq!(
                a.strategy.matrix().as_slice(),
                b.strategy.matrix().as_slice()
            );
        }
    }

    #[test]
    fn workspace_reuse_across_calls_is_bit_identical() {
        let gram = prefix_gram(7);
        let config = OptimizerConfig::quick(23);
        let fresh_a = optimize_strategy(&gram, 1.0, &config).unwrap();
        let mut ws = Workspace::for_config(&config, 7);
        let reused_a = optimize_strategy_with(&gram, 1.0, &config, &mut ws).unwrap();
        // Run a second, different optimization through the same workspace,
        // then repeat the first: stale buffer contents must not leak.
        let _ = optimize_strategy_with(&gram, 0.5, &OptimizerConfig::quick(99), &mut ws).unwrap();
        let reused_b = optimize_strategy_with(&gram, 1.0, &config, &mut ws).unwrap();
        assert_eq!(fresh_a.objective, reused_a.objective);
        assert_eq!(fresh_a.objective, reused_b.objective);
        assert_eq!(fresh_a.history, reused_a.history);
        assert_eq!(
            fresh_a.strategy.matrix().as_slice(),
            reused_b.strategy.matrix().as_slice()
        );
    }

    #[test]
    fn respects_svd_lower_bound() {
        for (n, eps) in [(6usize, 0.5), (8, 1.0)] {
            let gram = prefix_gram(n);
            let result = optimize_strategy(&gram, eps, &OptimizerConfig::quick(1)).unwrap();
            let bound = bounds::svd_bound_objective(&gram, eps);
            assert!(
                result.objective >= bound * (1.0 - 1e-9),
                "objective {} below SVD bound {bound}",
                result.objective
            );
        }
    }

    #[test]
    fn beats_randomized_response_on_prefix() {
        // The paper's headline: the optimized mechanism dominates the
        // baselines. RR is in the search class, so with enough iterations
        // the optimizer should at least match it on any workload.
        let n = 8;
        let gram = prefix_gram(n);
        let eps = 1.0;
        let config = OptimizerConfig::new(5).with_iterations(200);
        let result = optimize_strategy(&gram, eps, &config).unwrap();
        let rr = rr_objective(n, eps, &gram);
        assert!(
            result.objective < rr,
            "optimized {} should beat RR {rr} on Prefix",
            result.objective
        );
    }

    #[test]
    fn optimized_mechanism_integrates_with_core() {
        let gram = Matrix::identity(5);
        let mech = optimized_mechanism(&gram, 1.0, &OptimizerConfig::quick(11)).unwrap();
        assert_eq!(mech.name(), "Optimized");
        let profile = mech.variance_profile(&gram);
        assert_eq!(profile.len(), 5);
        assert!(profile.iter().all(|t| t.is_finite() && *t >= 0.0));
    }

    #[test]
    fn restarts_pick_the_best() {
        let gram = prefix_gram(5);
        let single =
            optimize_strategy(&gram, 1.0, &OptimizerConfig::quick(2).with_restarts(1)).unwrap();
        let multi =
            optimize_strategy(&gram, 1.0, &OptimizerConfig::quick(2).with_restarts(3)).unwrap();
        assert!(multi.objective <= single.objective + 1e-9);
    }

    #[test]
    fn warm_start_never_worse_than_baseline() {
        // Initialize from randomized response on Histogram at high ε; the
        // result must match or beat RR's objective (the paper's §4
        // intuition made precise by best-iterate tracking).
        let n = 8;
        let eps = 4.0_f64;
        let gram = Matrix::identity(n);
        let e = eps.exp();
        let z = e + n as f64 - 1.0;
        let rr = StrategyMatrix::new(Matrix::from_fn(
            n,
            n,
            |o, u| {
                if o == u {
                    e / z
                } else {
                    1.0 / z
                }
            },
        ))
        .unwrap();
        let rr_objective = ldp_core::variance::strategy_objective(&rr, &gram);
        let config = OptimizerConfig::quick(3).with_warm_start(rr);
        let result = optimize_strategy(&gram, eps, &config).unwrap();
        assert!(
            result.objective <= rr_objective * (1.0 + 1e-6),
            "warm-started {} should not exceed RR {rr_objective}",
            result.objective
        );
        assert!(result.strategy.epsilon() <= eps + 1e-6);
    }

    #[test]
    fn rejects_invalid_epsilon() {
        let gram = Matrix::identity(3);
        assert!(matches!(
            optimize_strategy(&gram, 0.0, &OptimizerConfig::quick(0)),
            Err(LdpError::InvalidEpsilon(_))
        ));
        assert!(matches!(
            optimize_strategy(&gram, f64::INFINITY, &OptimizerConfig::quick(0)),
            Err(LdpError::InvalidEpsilon(_))
        ));
    }

    #[test]
    fn custom_output_count() {
        let gram = Matrix::identity(4);
        let config = OptimizerConfig::quick(9).with_num_outputs(10);
        let result = optimize_strategy(&gram, 1.0, &config).unwrap();
        assert_eq!(result.strategy.num_outputs(), 10);
    }

    #[test]
    fn config_fingerprint_tracks_every_field() {
        let base = OptimizerConfig::new(7);
        assert_eq!(base.fingerprint(), OptimizerConfig::new(7).fingerprint());
        let variants = [
            OptimizerConfig::new(8),
            OptimizerConfig::new(7).with_iterations(99),
            OptimizerConfig::new(7).with_restarts(3),
            OptimizerConfig::new(7).with_num_outputs(12),
            OptimizerConfig {
                step_size: Some(0.1),
                ..OptimizerConfig::new(7)
            },
            OptimizerConfig {
                search_iterations: 3,
                ..OptimizerConfig::new(7)
            },
            OptimizerConfig::new(7).with_algorithm(Algorithm::Lbfgs),
            OptimizerConfig::new(7).with_gradient_tol(Some(1e-7)),
            OptimizerConfig::new(7).with_plateau_window(Some(9)),
            OptimizerConfig::new(7).with_target_objective(Some(10.0)),
        ];
        for v in &variants {
            assert_ne!(base.fingerprint(), v.fingerprint(), "{v:?}");
        }
        // The post-/1 fields are hashed only away from their defaults, so
        // every historical fingerprint (committed goldens, field strategy
        // stores) is unchanged by their mere existence.
        let defaulted = OptimizerConfig::new(7)
            .with_algorithm(Algorithm::Pgd)
            .with_gradient_tol(None)
            .with_plateau_window(None)
            .with_target_objective(None);
        assert_eq!(base.fingerprint(), defaulted.fingerprint());
        // A warm start keys on the exact matrix bits.
        let e = 1.0_f64.exp();
        let z = e + 1.0;
        let q = Matrix::from_fn(2, 2, |o, u| if o == u { e / z } else { 1.0 / z });
        let warm = StrategyMatrix::new(q).unwrap();
        let warmed = OptimizerConfig::new(7).with_warm_start(warm);
        assert_ne!(base.fingerprint(), warmed.fingerprint());
    }

    #[test]
    fn env_algorithm_override_is_opt_in() {
        // The only test touching this variable; the prior value is
        // restored so the ambient CI lane (which sets it process-wide)
        // is undisturbed.
        let prior = std::env::var("LDP_TEST_ALGORITHM").ok();
        std::env::set_var("LDP_TEST_ALGORITHM", "lbfgs");
        assert_eq!(
            OptimizerConfig::quick(1).with_env_algorithm().algorithm,
            Algorithm::Lbfgs
        );
        // Constructors never read the environment.
        assert_eq!(OptimizerConfig::quick(1).algorithm, Algorithm::Pgd);
        std::env::set_var("LDP_TEST_ALGORITHM", "pgd");
        assert_eq!(
            OptimizerConfig::lbfgs(1).with_env_algorithm().algorithm,
            Algorithm::Pgd
        );
        // Unrecognized values and an unset variable are both no-ops.
        std::env::set_var("LDP_TEST_ALGORITHM", "bogus");
        assert_eq!(
            OptimizerConfig::quick(1).with_env_algorithm().algorithm,
            Algorithm::Pgd
        );
        std::env::remove_var("LDP_TEST_ALGORITHM");
        assert_eq!(
            OptimizerConfig::lbfgs(1).with_env_algorithm().algorithm,
            Algorithm::Lbfgs
        );
        match prior {
            Some(v) => std::env::set_var("LDP_TEST_ALGORITHM", v),
            None => std::env::remove_var("LDP_TEST_ALGORITHM"),
        }
    }

    #[test]
    fn feasibility_enforcement() {
        let mut z = vec![0.4, 0.4, 0.4]; // Σ = 1.2 > 1
        enforce_feasible_bounds(&mut z, 1.0_f64.exp());
        let s: f64 = z.iter().sum();
        assert!(s <= 1.0);
        assert!(1.0_f64.exp() * s >= 1.0);

        let mut z = vec![0.01, 0.01]; // e^ε Σ = 0.054 < 1 at ε=1
        enforce_feasible_bounds(&mut z, 1.0_f64.exp());
        let s: f64 = z.iter().sum();
        assert!(1.0_f64.exp() * s >= 1.0);
        assert!(s <= 1.0 + 1e-9);
    }
}
