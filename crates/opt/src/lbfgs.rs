//! Projected L-BFGS descent over strategy matrices — the quasi-Newton
//! alternative to Algorithm 2's first-order loop, selected with
//! [`crate::pgd::Algorithm::Lbfgs`].
//!
//! PGD pays for its simplicity twice: a geometric step-size search burns
//! `~6·search_iterations` objective evaluations before the real descent
//! even starts, and the fixed iteration budget keeps evaluating long
//! after the objective has flattened. Cold deploys — every new
//! schema/query set at production scale — sit directly on that path.
//! This module replaces the descent loop (and only the descent loop:
//! initialization, the bounded-simplex projection with its
//! `z`-backpropagation, best-iterate tracking, and multi-restart
//! reduction are shared with [`crate::pgd`]) with L-BFGS over the
//! **joint** variable `x = (Q, z)`:
//!
//! * **Joint curvature.** Problem 3.12 minimizes over the strategy *and*
//!   its bound vector together, and the two interact strongly (moving
//!   `z` reshapes the feasible set every column is projected onto).
//!   First-order `z` steps are exactly why PGD needs hundreds of
//!   iterations; here `z` sits inside the quasi-Newton model, so its
//!   steps are curvature-scaled and line-searched like everything else.
//! * **Two-loop recursion over a bounded history ring.** The last
//!   [`HISTORY`] curvature pairs `(s, y)` of the joint iterate live in
//!   two flat preallocated rings; the classic two-loop recursion turns
//!   them into a direction in `O(HISTORY·(mn+m))` flops with **zero
//!   per-iteration allocation** — the same discipline as the rest of
//!   the workspace. With an empty ring the direction reduces to scaled
//!   steepest descent with PGD's step ratio (`z` moves `n·e^ε` times
//!   more cautiously than `Q`, the paper's own robustness choice).
//! * **Projection-aware Armijo line search.** A raw step leaves the
//!   ε-LDP simplex, so a trial at step `t` is retracted:
//!   `z_t = feasible(z + t·d_z)`, `Q_t = Π_{z_t,ε}(Q + t·d_Q)`, and the
//!   Armijo model uses the *retracted* displacement — accept when
//!   `L(Q_t) ≤ L(Q) + c₁·(⟨∇_Q L, Q_t − Q⟩ + ⟨∇_z L, z_t − z⟩)`.
//!   Backtracking halves `t`; because every trial is projected,
//!   **every** iterate is a valid ε-LDP strategy and privacy never
//!   depends on convergence — exactly the invariant PGD maintains.
//! * **Deterministic degeneracy handling.** Pairs with degenerate
//!   curvature (`sᵀy ≤ ε_c·‖s‖‖y‖`, the standard cautious-update test)
//!   are skipped; a non-descent direction drops the ring and retries as
//!   steepest descent; an exhausted line search falls back to a
//!   projected gradient step at a halved deterministic scale. No
//!   randomness, no clocks — the whole trajectory is a pure function of
//!   the seed and config.
//! * **Convergence-based stopping.** [`crate::pgd::OptimizerConfig`]'s
//!   `gradient_tol` (projected-gradient mapping norm of the joint
//!   iterate at unit step) and `plateau_window` (consecutive iterations
//!   without relative improvement) make `iterations` a cap rather than
//!   a budget. Both decisions are computed from sequentially-reduced
//!   scalars, so the stopping point — like every iterate — is
//!   bit-identical at every `LDP_THREADS` setting.
//!
//! The net effect, gated by `tests/optimizer_parity.rs`: the same final
//! objective as PGD (within `1e-6` relative) on every conformance
//! workload family at several-fold fewer objective/gradient
//! evaluations, which is what turns into the cold-deploy speedup
//! measured by `BENCH_SERVE.json`.

use ldp_linalg::{axpy, dot, Matrix};

use crate::objective::evaluate_into;
use crate::pgd::{enforce_feasible_bounds, significant_improvement, OptimizerConfig, Workspace};
use crate::projection::{project_columns_into, ProjectionJacobian};

/// Curvature pairs kept in the two-loop recursion ring. Classic L-BFGS
/// guidance is 5–10; eight captures the objective's local curvature well
/// while keeping the ring (`2·HISTORY·(mn+m)` doubles) a small multiple
/// of the workspace the descent already holds.
pub const HISTORY: usize = 8;

/// Armijo sufficient-decrease constant `c₁`.
const ARMIJO_C: f64 = 1e-4;

/// Line-search backtracking cap: `t` reaches `2⁻²³ ≈ 1.2e-7` before the
/// iteration falls back to a projected gradient step. Backtracks whose
/// retracted move does not point downhill cost no evaluation, so the cap
/// is generous; [`MAX_EVAL_TRIALS`] bounds the expensive kind.
const MAX_BACKTRACKS: usize = 12;

/// Objective evaluations a single line search may spend before giving
/// up. Failed searches signal a stale curvature model (the projection's
/// active set moved), so burning the full backtrack schedule on
/// evaluations buys nothing — bail early, reset the model, take the
/// deterministic gradient fallback.
const MAX_EVAL_TRIALS: usize = 4;

/// Cautious-update threshold: a pair is stored only if
/// `sᵀy > CURV_EPS·‖s‖·‖y‖`, so near-orthogonal (or negative-curvature)
/// pairs never poison the inverse-Hessian model.
const CURV_EPS: f64 = 1e-8;

/// Relative-progress tail threshold: the run is considered converged
/// once the best objective improves by less than this fraction of the
/// total descent achieved so far over one full plateau window. Unlike
/// the absolute plateau test (see
/// [`OptimizerConfig::plateau_window`](crate::OptimizerConfig)), this is
/// scale-free in the *trajectory*: late oscillating steps that still
/// shave whole objective units on a large instance no longer postpone
/// termination when they amount to well under a percent of the descent.
const PROGRESS_FRAC: f64 = 0.001;

/// Restart-pulse horizon, as a divisor of the iteration cap: a plateau
/// reached within the first `iterations / PULSE_HORIZON_DIV` iterations
/// spends the pulse (the stall is young — likely the fallback trust
/// scale mis-calibrated, which a fresh scale and an empty curvature
/// ring reliably dislodge); a plateau reached later is sustained
/// convergence, and restarting there only re-explores the same basin
/// at the cost of a full extra plateau window of evaluations.
const PULSE_HORIZON_DIV: usize = 5;

/// L-BFGS curvature history and line-search buffers for the joint
/// `(Q, z)` iterate, owned by [`Workspace`] and allocated once on the
/// first L-BFGS descent through it (PGD-only workspaces never pay).
/// Everything is preallocated: an iteration of [`descend`] performs
/// zero heap allocation.
pub(crate) struct LbfgsState {
    /// Joint displacements `s = x⁺ − x`, [`HISTORY`] flat `mn+m` slots
    /// (`Q` block first, then `z`).
    s_ring: Vec<f64>,
    /// Joint gradient displacements `y = ∇L(x⁺) − ∇L(x)`, same layout.
    y_ring: Vec<f64>,
    /// `1/(sᵀy)` per committed ring slot.
    rho: [f64; HISTORY],
    /// First-pass coefficients of the two-loop recursion.
    alpha: [f64; HISTORY],
    /// Initial inverse-Hessian scaling `γ = sᵀy/yᵀy` of the newest pair.
    gamma: f64,
    /// Next ring slot to write.
    write: usize,
    /// Committed pairs (`≤ HISTORY`).
    pairs: usize,
    /// Joint gradient `[∇_Q L | ∇_z L]` at the current iterate (`mn+m`).
    grad: Vec<f64>,
    /// Joint search direction (`mn+m`).
    dir: Vec<f64>,
    /// Projected line-search trial strategy (`m × n`).
    trial: Matrix,
    /// Gradient at the trial strategy (`m × n`).
    trial_grad: Matrix,
    /// Trial bound vector (`m`).
    trial_z: Vec<f64>,
    /// `∇_z L` backpropagated through the trial's projection (`m`).
    trial_gz: Vec<f64>,
    /// Jacobian of the stopping-probe projection, kept separate so the
    /// probe never clobbers the live Jacobian the `z`-backprop needs.
    probe_jac: ProjectionJacobian,
    /// Problem shape this state was sized for.
    m: usize,
    /// Domain size.
    n: usize,
}

impl LbfgsState {
    /// Buffers for `m`-output strategies over an `n`-type domain.
    pub(crate) fn new(m: usize, n: usize) -> Self {
        let dim = m * n + m;
        Self {
            s_ring: vec![0.0; HISTORY * dim],
            y_ring: vec![0.0; HISTORY * dim],
            rho: [0.0; HISTORY],
            alpha: [0.0; HISTORY],
            gamma: 1.0,
            write: 0,
            pairs: 0,
            grad: vec![0.0; dim],
            dir: vec![0.0; dim],
            trial: Matrix::zeros(m, n),
            trial_grad: Matrix::zeros(m, n),
            trial_z: vec![0.0; m],
            trial_gz: vec![0.0; m],
            probe_jac: ProjectionJacobian::empty(),
            m,
            n,
        }
    }

    /// `(m, n)` this state was sized for.
    pub(crate) fn shape(&self) -> (usize, usize) {
        (self.m, self.n)
    }

    /// Joint-vector length `mn + m`.
    fn dim(&self) -> usize {
        self.m * self.n + self.m
    }

    /// Forgets every stored curvature pair (the inverse-Hessian model
    /// resets to the scaled block identity).
    fn clear_pairs(&mut self) {
        self.pairs = 0;
        self.write = 0;
    }

    /// Refreshes the joint gradient buffer from the per-block gradients.
    fn load_grad(&mut self, grad_q: &Matrix, grad_z: &[f64]) {
        let mn = self.m * self.n;
        self.grad[..mn].copy_from_slice(grad_q.as_slice());
        self.grad[mn..].copy_from_slice(grad_z);
    }

    /// Writes the candidate pair `s = trial − x`, `y = trial_grad − ∇L(x)`
    /// into the next ring slot and commits it iff the curvature passes
    /// the cautious-update test (otherwise the slot is simply reused by
    /// the next candidate — a deterministic skip). Returns `sᵀs` for the
    /// caller's bookkeeping.
    fn push_pair(&mut self, q: &Matrix, z: &[f64]) -> f64 {
        let mn = self.m * self.n;
        let dim = self.dim();
        let slot = self.write;
        let s = &mut self.s_ring[slot * dim..(slot + 1) * dim];
        let y = &mut self.y_ring[slot * dim..(slot + 1) * dim];
        for i in 0..mn {
            s[i] = self.trial.as_slice()[i] - q.as_slice()[i];
            y[i] = self.trial_grad.as_slice()[i] - self.grad[i];
        }
        for i in 0..self.m {
            s[mn + i] = self.trial_z[i] - z[i];
            y[mn + i] = self.trial_gz[i] - self.grad[mn + i];
        }
        let ss = dot(s, s);
        let sy = dot(s, y);
        let yy = dot(y, y);
        if sy.is_finite()
            && yy.is_finite()
            && ss.is_finite()
            && sy > CURV_EPS * ss.sqrt() * yy.sqrt()
        {
            self.rho[slot] = 1.0 / sy;
            self.gamma = sy / yy;
            self.write = (slot + 1) % HISTORY;
            self.pairs = (self.pairs + 1).min(HISTORY);
        }
        ss
    }

    /// The two-loop recursion: `dir ← −H·grad`, where `H` is the L-BFGS
    /// inverse-Hessian model built from the committed pairs (scaled
    /// identity `γ·I` at the core). With an empty ring `H` is the block
    /// diagonal `diag(q_scale·I, z_scale·I)` — scaled steepest descent
    /// with PGD's deliberate `Q`/`z` step ratio.
    /// `O(HISTORY·(mn+m))`, allocation-free.
    fn two_loop(&mut self, q_scale: f64, z_scale: f64) {
        let mn = self.m * self.n;
        let dim = self.dim();
        let Self {
            s_ring,
            y_ring,
            rho,
            alpha,
            gamma,
            write,
            pairs,
            grad,
            dir,
            ..
        } = self;
        dir.copy_from_slice(grad);
        let k = *pairs;
        // Newest to oldest.
        for j in 0..k {
            let slot = (*write + HISTORY - 1 - j) % HISTORY;
            let s = &s_ring[slot * dim..(slot + 1) * dim];
            let y = &y_ring[slot * dim..(slot + 1) * dim];
            let a = rho[slot] * dot(s, dir);
            alpha[slot] = a;
            axpy(-a, y, dir);
        }
        if k > 0 {
            for v in dir.iter_mut() {
                *v *= *gamma;
            }
        } else {
            for v in dir[..mn].iter_mut() {
                *v *= q_scale;
            }
            for v in dir[mn..].iter_mut() {
                *v *= z_scale;
            }
        }
        // Oldest to newest.
        for j in (0..k).rev() {
            let slot = (*write + HISTORY - 1 - j) % HISTORY;
            let s = &s_ring[slot * dim..(slot + 1) * dim];
            let y = &y_ring[slot * dim..(slot + 1) * dim];
            let b = rho[slot] * dot(y, dir);
            axpy(alpha[slot] - b, s, dir);
        }
        for v in dir.iter_mut() {
            *v = -*v;
        }
    }
}

/// The projected L-BFGS descent loop, starting from the workspace's
/// `(q0, z0)` — the [`Algorithm::Lbfgs`](crate::pgd::Algorithm::Lbfgs)
/// counterpart of PGD's inner loop, with the same contract: the best
/// iterate ends in `ws.best_q`, the per-iteration objective history in
/// `ws.history` (final entry = best objective = return value), and the
/// whole loop is allocation-free after the workspace (plus this
/// module's state, created on first use) is warm.
pub(crate) fn descend(
    gram: &Matrix,
    epsilon: f64,
    config: &OptimizerConfig,
    ws: &mut Workspace,
    evals: &mut usize,
) -> f64 {
    let n = gram.rows();
    let (m, _) = ws.shape();
    let mn = m * n;
    let exp_eps = epsilon.exp();
    let iterations = config.iterations;
    let mut st = ws
        .lbfgs
        .take()
        .filter(|s| s.shape() == (m, n))
        .unwrap_or_else(|| LbfgsState::new(m, n));
    st.clear_pairs();
    let Workspace {
        q0,
        z0,
        q,
        stepped,
        best_q,
        gradient,
        z,
        grad_z,
        jacobian,
        proj,
        obj,
        history,
        ..
    } = ws;

    z.copy_from_slice(z0);
    // Initial projection establishes the Jacobian for z-backprop.
    project_columns_into(q0, z, epsilon, q, jacobian, proj);
    history.clear();
    history.reserve(iterations + 2);

    let mut f = evaluate_into(q, gram, obj, gradient);
    *evals += 1;
    history.push(f);
    if !f.is_finite() || !gradient.is_finite() {
        // The (interior) initialization always evaluates finite; only a
        // degenerate warm start lands here. Mirror PGD's outcome for an
        // unrecoverable start: report divergence to the caller.
        history.push(f64::INFINITY);
        ws.lbfgs = Some(st);
        return f64::INFINITY;
    }
    jacobian.backprop_z_into(gradient, grad_z);
    let mut best = f;
    let f_init = f;
    best_q.copy_from(q);
    let mut since_improve = 0usize;
    // Stall-restart pulses left: when the plateau window first fills,
    // the descent gets a fresh start (full trust scale, empty ring)
    // from the stalled iterate instead of stopping — the deterministic
    // analogue of a momentum restart, which reliably dislodges shallow
    // stalls. Only after the pulses are spent does a full window of
    // insignificant progress actually end the run.
    let mut pulses_left = 1usize;
    // Ring of the best objective seen at each of the last
    // `plateau_window` iterations, for the relative-progress tail test
    // (see PROGRESS_FRAC). Sized once per descent; the loop itself
    // stays allocation-free.
    let mut progress_ring = vec![0.0f64; config.plateau_window.unwrap_or(0)];
    let mut progress_at = 0usize;
    let mut progress_filled = false;

    // Scale of steepest-descent fallback steps in the Q block: PGD's
    // scale-aware base (a step that can move an entry by about its own
    // magnitude, 1/m), halved on every line-search failure and recovered
    // on every accepted step — a monotone shrink would freeze the
    // iterate at a non-stationary point once a rough patch passed. The
    // z block steps n·e^ε more cautiously, exactly PGD's α/β ratio.
    let base_scale = 1.0 / (m as f64 * gradient.max_abs().max(f64::MIN_POSITIVE));
    let mut fallback_scale = base_scale;

    for it in 0..iterations {
        // Stopping: projected-gradient mapping norm of the joint iterate
        // at unit step, ‖retract(x − ∇L) − x‖ ≤ tol·(1 + |L|). The probe
        // projection uses its own Jacobian so the live one stays
        // attached to Q, and the probe's z never replaces the real one.
        if let Some(tol) = config.gradient_tol {
            for ((pz, &zv), &gz) in st.trial_z.iter_mut().zip(z.iter()).zip(grad_z.iter()) {
                *pz = (zv - gz).clamp(1e-12, 1.0);
            }
            enforce_feasible_bounds(&mut st.trial_z, exp_eps);
            for ((sv, &qv), &gv) in stepped
                .as_mut_slice()
                .iter_mut()
                .zip(q.as_slice())
                .zip(gradient.as_slice())
            {
                *sv = qv - gv;
            }
            project_columns_into(
                stepped,
                &st.trial_z,
                epsilon,
                &mut st.trial,
                &mut st.probe_jac,
                proj,
            );
            let mut acc = 0.0;
            for (a, b) in st.trial.as_slice().iter().zip(q.as_slice()) {
                let d = a - b;
                acc += d * d;
            }
            for (a, b) in st.trial_z.iter().zip(z.iter()) {
                let d = a - b;
                acc += d * d;
            }
            if acc.sqrt() <= tol * (1.0 + f.abs()) {
                break;
            }
        }

        // Quasi-Newton direction over the joint (Q, z) vector; a
        // non-descent direction means the stored curvature went stale —
        // drop it and retry as scaled steepest descent (always a descent
        // direction for a non-zero gradient).
        st.load_grad(gradient, grad_z);
        let z_fallback = fallback_scale / (n as f64 * exp_eps);
        st.two_loop(fallback_scale, z_fallback);
        let slope = dot(&st.dir, &st.grad);
        if slope >= 0.0 {
            st.clear_pairs();
            st.two_loop(fallback_scale, z_fallback);
        }
        // Trust cap on the z block: a unit step may move no bound by
        // more than a fraction of itself. Moving z reshapes the feasible
        // set of every column at once, so an overlong z component turns
        // the line search into a cliff hunt; uniformly shortening the
        // direction (slope sign is preserved) keeps t = 1 meaningful.
        let mut shrink = 1.0f64;
        for (&dz, &zv) in st.dir[mn..].iter().zip(z.iter()) {
            let cap = 0.25 * zv;
            if dz.abs() > cap {
                shrink = shrink.min(cap / dz.abs());
            }
        }
        if shrink < 1.0 {
            for v in st.dir.iter_mut() {
                *v *= shrink;
            }
        }

        // Projection-aware Armijo backtracking on the retracted path:
        // z_t = feasible(z + t·d_z), Q_t = Π_{z_t,ε}(Q + t·d_Q), with
        // sufficient decrease measured along the retracted displacement.
        let mut accepted = false;
        let mut f_new = f;
        let mut t = 1.0;
        let mut eval_trials = 0usize;
        for _ in 0..MAX_BACKTRACKS {
            for ((zt, &zv), &dz) in st.trial_z.iter_mut().zip(z.iter()).zip(st.dir[mn..].iter()) {
                *zt = (zv + t * dz).clamp(1e-12, 1.0);
            }
            enforce_feasible_bounds(&mut st.trial_z, exp_eps);
            for ((sv, &qv), &dv) in stepped
                .as_mut_slice()
                .iter_mut()
                .zip(q.as_slice())
                .zip(st.dir[..mn].iter())
            {
                *sv = qv + t * dv;
            }
            project_columns_into(stepped, &st.trial_z, epsilon, &mut st.trial, jacobian, proj);
            let mut pred = 0.0;
            for ((&tv, &qv), &gv) in st
                .trial
                .as_slice()
                .iter()
                .zip(q.as_slice())
                .zip(gradient.as_slice())
            {
                pred += gv * (tv - qv);
            }
            // No explicit z term: the objective depends on z only through
            // the projection, and the retracted displacement Q_t − Q
            // already carries the full first-order effect of moving the
            // bounds. Adding ⟨∇_z L, z_t − z⟩ here would double-count it
            // and systematically overstate the predicted decrease.
            // Only spend an evaluation when the retracted move still
            // points downhill (the projection can annihilate or even
            // reverse a too-long step; a shorter one may re-enter).
            if pred < 0.0 {
                let ft = evaluate_into(&st.trial, gram, obj, &mut st.trial_grad);
                *evals += 1;
                eval_trials += 1;
                let finite = ft.is_finite() && st.trial_grad.is_finite();
                // Sufficient decrease is the target, but near the
                // boundary the projection eats most of a step's
                // predicted progress; refusing a strict improvement
                // there just re-spends the evaluation on a smaller t.
                // Any strict decrease is accepted — the Armijo test
                // only decides whether to stop backtracking early.
                if finite && (ft <= f + ARMIJO_C * pred || ft < f) {
                    accepted = true;
                    f_new = ft;
                    break;
                }
                if eval_trials >= MAX_EVAL_TRIALS {
                    break;
                }
                if finite && ft > f {
                    // Safeguarded quadratic interpolation: fit
                    // φ(τ) ≈ f + (pred/t)·τ + a·τ² through φ(t) = ft and
                    // jump to its minimizer. Near the boundary the
                    // projection carves valleys orders of magnitude
                    // shorter than the model step; plain halving cannot
                    // reach them within the evaluation budget, the
                    // interpolated step can.
                    let denom = ft - f - pred;
                    let t_min = if denom > 0.0 {
                        -pred * t / (2.0 * denom)
                    } else {
                        0.5 * t
                    };
                    t = t_min.clamp(0.01 * t, 0.5 * t);
                    continue;
                }
            }
            t *= 0.5;
        }
        if !accepted {
            // The quasi-Newton trial was refused — freely, when the
            // retracted path ascends at every backtracked t (no pred < 0
            // trial is ever evaluated). Fall back to Algorithm 2's
            // first-order step at the current trust scale, accepted
            // unconditionally: the projection geometry makes transient
            // increases part of any successful trajectory (a z move
            // redistributes bound mass before the objective can follow),
            // so monotone acceptance stalls exactly where PGD sails
            // through. The scale halves whenever a fallback step failed
            // to descend — PGD's own decay heuristic — which keeps the
            // excursions bounded.
            let z_step = fallback_scale / (n as f64 * exp_eps);
            for ((zt, &zv), &gz) in st.trial_z.iter_mut().zip(z.iter()).zip(grad_z.iter()) {
                *zt = (zv - z_step * gz).clamp(1e-12, 1.0);
            }
            enforce_feasible_bounds(&mut st.trial_z, exp_eps);
            for ((sv, &qv), &gv) in stepped
                .as_mut_slice()
                .iter_mut()
                .zip(q.as_slice())
                .zip(gradient.as_slice())
            {
                *sv = qv - fallback_scale * gv;
            }
            project_columns_into(stepped, &st.trial_z, epsilon, &mut st.trial, jacobian, proj);
            let ft = evaluate_into(&st.trial, gram, obj, &mut st.trial_grad);
            *evals += 1;
            if !ft.is_finite() || !st.trial_grad.is_finite() {
                // Crossed the W = WQ†Q boundary: rewind to the best
                // iterate (PGD's recovery) and drop the history.
                fallback_scale *= 0.5;
                project_columns_into(best_q, z, epsilon, q, jacobian, proj);
                f = evaluate_into(q, gram, obj, gradient);
                *evals += 1;
                st.clear_pairs();
                history.push(f);
                if best < f_init {
                    since_improve += 1;
                    if config.plateau_window.is_some_and(|w| since_improve >= w) {
                        break;
                    }
                }
                if !f.is_finite() || !gradient.is_finite() {
                    // Even the best iterate re-evaluates non-finite under
                    // the current bounds; keep the stored best and stop.
                    break;
                }
                jacobian.backprop_z_into(gradient, grad_z);
                continue;
            }
            if ft > f {
                fallback_scale *= 0.5;
            } else {
                fallback_scale = (2.0 * fallback_scale).min(base_scale);
            }
            f_new = ft;
        }

        // Gradient of the accepted trial (the live Jacobian is the
        // trial's), then the curvature pair, then advance the iterate.
        jacobian.backprop_z_into(&st.trial_grad, &mut st.trial_gz);
        st.push_pair(q, z);
        q.copy_from(&st.trial);
        gradient.copy_from(&st.trial_grad);
        z.copy_from_slice(&st.trial_z);
        grad_z.copy_from_slice(&st.trial_gz);
        f = f_new;
        history.push(f);
        let significant = significant_improvement(f, best);
        if f < best {
            best = f;
            best_q.copy_from(q);
        }
        if config.target_objective.is_some_and(|tgt| best <= tgt) {
            break;
        }
        if let Some(window) = config.plateau_window {
            if significant {
                since_improve = 0;
            } else if best < f_init {
                // The plateau counter only runs once the descent has
                // genuinely begun: the first iterations of a run may
                // climb away from the initialization (the fallback trust
                // scale calibrating itself), and "no improvement on the
                // starting point yet" is not convergence.
                since_improve += 1;
                if since_improve >= window {
                    if pulses_left == 0 || it >= iterations / PULSE_HORIZON_DIV {
                        break;
                    }
                    pulses_left -= 1;
                    fallback_scale = base_scale;
                    st.clear_pairs();
                    since_improve = window / 2;
                    progress_at = 0;
                    progress_filled = false;
                }
            }
            // Relative-progress tail test: the absolute plateau counter
            // above can be kept alive indefinitely by oscillating
            // fallback steps whose improvements are large in absolute
            // terms yet a vanishing fraction of the total descent. If
            // the best value gained less than PROGRESS_FRAC of the full
            // descent-so-far over one whole window, the run is in its
            // tail: spend the restart pulse, or stop.
            let slot = progress_at % window;
            let oldest = progress_filled.then(|| progress_ring[slot]);
            progress_ring[slot] = best;
            progress_at += 1;
            if progress_at >= window {
                progress_filled = true;
            }
            if let Some(old) = oldest {
                if best < f_init && old - best <= PROGRESS_FRAC * (f_init - best) {
                    if pulses_left == 0 || it >= iterations / PULSE_HORIZON_DIV {
                        break;
                    }
                    pulses_left -= 1;
                    fallback_scale = base_scale;
                    st.clear_pairs();
                    since_improve = window / 2;
                    progress_at = 0;
                    progress_filled = false;
                }
            }
        }
    }
    history.push(best);
    ws.lbfgs = Some(st);
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pgd::{optimize_strategy, Algorithm};

    fn prefix_gram(n: usize) -> Matrix {
        Matrix::from_fn(n, n, |j, k| (n - j.max(k)) as f64)
    }

    #[test]
    fn reaches_pgd_objective_with_fewer_evaluations() {
        let gram = prefix_gram(8);
        let pgd = optimize_strategy(&gram, 1.0, &OptimizerConfig::new(7)).unwrap();
        let lbfgs = optimize_strategy(&gram, 1.0, &OptimizerConfig::lbfgs(7)).unwrap();
        assert!(
            lbfgs.objective <= pgd.objective * (1.0 + 1e-6),
            "lbfgs {} vs pgd {}",
            lbfgs.objective,
            pgd.objective
        );
        assert!(
            lbfgs.evaluations * 3 <= pgd.evaluations,
            "lbfgs used {} evals, pgd {}",
            lbfgs.evaluations,
            pgd.evaluations
        );
    }

    #[test]
    fn produces_valid_private_strategy() {
        let gram = Matrix::identity(6);
        let result = optimize_strategy(&gram, 1.0, &OptimizerConfig::lbfgs(7)).unwrap();
        assert!(result.strategy.epsilon() <= 1.0 + 1e-6);
        assert_eq!(result.strategy.domain_size(), 6);
        assert_eq!(result.strategy.num_outputs(), 24);
    }

    #[test]
    fn stopping_rules_fire_before_the_cap() {
        let gram = prefix_gram(6);
        let result = optimize_strategy(&gram, 1.0, &OptimizerConfig::lbfgs(3)).unwrap();
        // history = initial + one entry per iteration + final best.
        let config = OptimizerConfig::lbfgs(3);
        assert!(
            result.history.len() < config.iterations + 2,
            "expected convergence stop before the {}-iteration cap, got {} entries",
            config.iterations,
            result.history.len()
        );
    }

    #[test]
    fn deterministic_across_repeated_runs() {
        let gram = prefix_gram(7);
        let config = OptimizerConfig::lbfgs(11);
        let a = optimize_strategy(&gram, 1.0, &config).unwrap();
        let b = optimize_strategy(&gram, 1.0, &config).unwrap();
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluations, b.evaluations);
        assert_eq!(
            a.strategy.matrix().as_slice(),
            b.strategy.matrix().as_slice()
        );
    }

    #[test]
    fn curvature_ring_skips_degenerate_pairs() {
        let mut st = LbfgsState::new(2, 2);
        // A zero displacement must not be committed.
        let q = Matrix::zeros(2, 2);
        let z = [0.0, 0.0];
        st.push_pair(&q, &z);
        assert_eq!(st.pairs, 0);
        // A genuine positive-curvature pair is.
        st.trial = Matrix::from_fn(2, 2, |_, _| 0.1);
        st.trial_grad = Matrix::from_fn(2, 2, |_, _| 0.2);
        st.push_pair(&q, &z);
        assert_eq!(st.pairs, 1);
    }

    #[test]
    fn two_loop_matches_steepest_descent_when_empty() {
        let mut st = LbfgsState::new(2, 3);
        let g = Matrix::from_fn(2, 3, |i, j| (i * 3 + j) as f64 - 2.5);
        let gz = [0.5, -1.5];
        st.load_grad(&g, &gz);
        st.two_loop(0.25, 0.125);
        for (d, gv) in st.dir[..6].iter().zip(g.as_slice()) {
            assert_eq!(*d, -0.25 * gv);
        }
        for (d, gz) in st.dir[6..].iter().zip(gz.iter()) {
            assert_eq!(*d, -0.125 * gz);
        }
    }

    #[test]
    fn algorithm_parses_from_str() {
        assert_eq!("pgd".parse::<Algorithm>().unwrap(), Algorithm::Pgd);
        assert_eq!("L-BFGS".parse::<Algorithm>().unwrap(), Algorithm::Lbfgs);
        assert_eq!("lbfgs".parse::<Algorithm>().unwrap(), Algorithm::Lbfgs);
        assert!("newton".parse::<Algorithm>().is_err());
        assert_eq!(Algorithm::Lbfgs.to_string(), "lbfgs");
    }
}
