//! Criterion benchmark for Algorithm 1: the bounded-simplex projection.
//! The paper's complexity claim is O(m log m) per column,
//! O(n·m log m) per full-matrix projection.
//!
//! Two paths are measured: the allocating `project_columns` (one fresh
//! matrix + jacobian per call) and the workspace path
//! `project_columns_into` the PGD hot loop uses, which reuses every
//! buffer across calls.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_linalg::Matrix;
use ldp_opt::{project_columns, project_columns_into, ProjectionJacobian, ProjectionScratch};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_projection(c: &mut Criterion) {
    let mut group = c.benchmark_group("algorithm1_projection");
    for &n in &[64usize, 256, 1024] {
        let m = 4 * n;
        let epsilon = 1.0_f64;
        let mut rng = StdRng::seed_from_u64(1);
        let z = vec![(1.0 + (-epsilon).exp()) / (2.0 * m as f64); m];
        let r = Matrix::from_fn(m, n, |_, _| rng.gen_range(-0.5..1.5));
        group.bench_with_input(BenchmarkId::new("fresh", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(project_columns(&r, &z, epsilon)));
        });
        group.bench_with_input(BenchmarkId::new("workspace", n), &n, |b, _| {
            let mut q = Matrix::zeros(m, n);
            let mut jacobian = ProjectionJacobian::empty();
            let mut scratch = ProjectionScratch::new();
            b.iter(|| {
                project_columns_into(&r, &z, epsilon, &mut q, &mut jacobian, &mut scratch);
                std::hint::black_box(q.as_slice()[0])
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
