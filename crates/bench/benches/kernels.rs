//! Criterion benchmarks for the blocked compute kernels and the
//! deterministic parallel runtime.
//!
//! Three claims are measured:
//!
//! 1. **The blocked matmul beats the seed's i-k-j kernel.** `matmul/*`
//!    compares [`ldp_bench::kernels::naive_matmul_into`] (the exact
//!    pre-blocking loop) against `Matrix::matmul_into` at n ∈ {128, 512}
//!    on one thread; `AᵀB` gets the same treatment.
//! 2. **Threading costs nothing when it cannot help.** `matmul_threads/*`
//!    runs the blocked kernel under explicit 1- and 4-worker pools. On a
//!    multi-core host the 4-worker cell drops near-linearly; on a 1-core
//!    container it shows only the scoped-spawn overhead. Either way the
//!    products are asserted bit-identical first.
//! 3. **Large structured products parallelize too.** `fwht` at
//!    n = 2¹⁷ and the dense matvec at 1024² under both worker counts.
//!
//! `cargo run --release -p ldp-bench --bin kernels` distills the same
//! measurements into `BENCH_KERNELS.json` for regression tracking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_bench::kernels::{naive_matmul_into, test_matrix};
use ldp_linalg::{fwht, Matrix};
use ldp_parallel::set_thread_override;

fn bench_matmul_vs_naive(c: &mut Criterion) {
    set_thread_override(Some(1));
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let a = test_matrix(n, n, 1);
        let b = test_matrix(n, n, 2);
        let mut out = Matrix::zeros(n, n);
        group.bench_with_input(BenchmarkId::new("naive", n), &n, |bch, _| {
            bch.iter(|| naive_matmul_into(&a, &b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("blocked", n), &n, |bch, _| {
            bch.iter(|| a.matmul_into(&b, &mut out));
        });
        group.bench_with_input(BenchmarkId::new("blocked_t_matmul", n), &n, |bch, _| {
            bch.iter(|| a.t_matmul_into(&b, &mut out));
        });
    }
    group.finish();
    set_thread_override(None);
}

fn bench_matmul_threads(c: &mut Criterion) {
    let n = 512;
    let a = test_matrix(n, n, 3);
    let b = test_matrix(n, n, 4);
    let mut out = Matrix::zeros(n, n);

    // Bit-identity across worker counts before timing anything.
    set_thread_override(Some(1));
    let serial = a.matmul(&b);
    set_thread_override(Some(4));
    let threaded = a.matmul(&b);
    assert_eq!(
        serial.as_slice(),
        threaded.as_slice(),
        "parallel matmul must be bit-identical to serial"
    );

    let mut group = c.benchmark_group("matmul_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4] {
        set_thread_override(Some(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| a.matmul_into(&b, &mut out));
        });
    }
    group.finish();
    set_thread_override(None);
}

fn bench_structured_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("fwht_131072");
    let base: Vec<f64> = (0..1 << 17).map(|i| (i % 23) as f64 - 11.0).collect();
    let mut data = base.clone();
    for &threads in &[1usize, 4] {
        set_thread_override(Some(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| {
                data.copy_from_slice(&base);
                fwht(&mut data);
            });
        });
    }
    group.finish();

    let n = 1024;
    let m = test_matrix(n, n, 5);
    let x: Vec<f64> = (0..n).map(|i| (i % 13) as f64 * 0.5 - 3.0).collect();
    let mut out = vec![0.0; n];
    let mut group = c.benchmark_group("dense_matvec_1024");
    for &threads in &[1usize, 4] {
        set_thread_override(Some(threads));
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |bch, _| {
            bch.iter(|| ldp_linalg::LinOp::matvec_into(&m, &x, &mut out));
        });
    }
    group.finish();
    set_thread_override(None);
}

criterion_group!(
    kernels,
    bench_matmul_vs_naive,
    bench_matmul_threads,
    bench_structured_kernels
);
criterion_main!(kernels);
