//! Criterion benchmark backing Figure 3c: per-iteration cost of strategy
//! optimization (one objective/gradient evaluation + one projection) as
//! the domain size grows. The paper's claim is O(n³) growth.
//!
//! Measured both through the allocating `objective::evaluate` +
//! `project_columns` wrappers (the historical per-iteration path) and
//! through the preallocated workspace path (`evaluate_into` +
//! `project_columns_into`) that `optimize_strategy` now runs on — the
//! delta is the allocator traffic the refactor removed from the hot loop.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_linalg::Matrix;
use ldp_opt::{
    objective, project_columns, project_columns_into, ObjectiveWorkspace, ProjectionJacobian,
    ProjectionScratch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3c_per_iteration");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let m = 4 * n;
        let epsilon = 1.0_f64;
        let gram = Matrix::identity(n);
        let mut rng = StdRng::seed_from_u64(0);
        let z = vec![(1.0 + (-epsilon).exp()) / (2.0 * m as f64); m];
        let r = Matrix::from_fn(m, n, |_, _| rng.gen::<f64>());
        let (q, _) = project_columns(&r, &z, epsilon);
        let step = 1e-4;
        group.bench_with_input(BenchmarkId::new("allocating", n), &n, |b, _| {
            b.iter(|| {
                let eval = objective::evaluate(&q, &gram);
                let stepped = &q - &eval.gradient.scaled(step);
                let (q_next, _) = project_columns(&stepped, &z, epsilon);
                std::hint::black_box(q_next)
            });
        });
        group.bench_with_input(BenchmarkId::new("workspace", n), &n, |b, _| {
            let mut ws = ObjectiveWorkspace::new(m, n);
            let mut gradient = Matrix::zeros(m, n);
            let mut stepped = Matrix::zeros(m, n);
            let mut q_next = Matrix::zeros(m, n);
            let mut jacobian = ProjectionJacobian::empty();
            let mut scratch = ProjectionScratch::new();
            b.iter(|| {
                let value = objective::evaluate_into(&q, &gram, &mut ws, &mut gradient);
                for ((s, &qv), &gv) in stepped
                    .as_mut_slice()
                    .iter_mut()
                    .zip(q.as_slice())
                    .zip(gradient.as_slice())
                {
                    *s = qv - gv * step;
                }
                project_columns_into(
                    &stepped,
                    &z,
                    epsilon,
                    &mut q_next,
                    &mut jacobian,
                    &mut scratch,
                );
                std::hint::black_box(value)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
