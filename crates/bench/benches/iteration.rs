//! Criterion benchmark backing Figure 3c: per-iteration cost of strategy
//! optimization (one objective/gradient evaluation + one projection) as
//! the domain size grows. The paper's claim is O(n³) growth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_linalg::Matrix;
use ldp_opt::{objective, project_columns};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_iteration(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3c_per_iteration");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let m = 4 * n;
        let epsilon = 1.0_f64;
        let gram = Matrix::identity(n);
        let mut rng = StdRng::seed_from_u64(0);
        let z = vec![(1.0 + (-epsilon).exp()) / (2.0 * m as f64); m];
        let r = Matrix::from_fn(m, n, |_, _| rng.gen::<f64>());
        let (q, _) = project_columns(&r, &z, epsilon);
        let step = 1e-4;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let eval = objective::evaluate(&q, &gram);
                let stepped = &q - &eval.gradient.scaled(step);
                let (q_next, _) = project_columns(&stepped, &z, epsilon);
                std::hint::black_box(q_next)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iteration);
criterion_main!(benches);
