//! Criterion benchmarks for the analysis pipeline shared by every figure:
//! building a mechanism's optimal reconstruction (Theorem 3.10) and
//! computing its variance profile (Theorem 3.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_core::{LdpMechanism, StrategyMatrix};
use ldp_linalg::Matrix;
use ldp_mechanisms::randomized_response;
use ldp_workloads::{AllRange, Workload};

fn rr_strategy(n: usize, eps: f64) -> StrategyMatrix {
    let e = eps.exp();
    let z = e + n as f64 - 1.0;
    StrategyMatrix::new(Matrix::from_fn(
        n,
        n,
        |o, u| {
            if o == u {
                e / z
            } else {
                1.0 / z
            }
        },
    ))
    .unwrap()
}

fn bench_reconstruction(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimal_reconstruction");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        let s = rr_strategy(n, 1.0);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(ldp_core::variance::optimal_reconstruction(&s)));
        });
    }
    group.finish();
}

fn bench_variance_profile(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance_profile_allrange");
    group.sample_size(10);
    for &n in &[32usize, 64, 128] {
        // All Range has p = n(n+1)/2 queries but the Gram-based profile is
        // O(n²m) regardless — that scaling is the point of this bench.
        let w = AllRange::new(n);
        let gram = w.gram();
        let mech = randomized_response(n, 1.0, &gram).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| std::hint::black_box(mech.variance_profile(&gram)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reconstruction, bench_variance_profile);
criterion_main!(benches);
