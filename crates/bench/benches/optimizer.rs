//! Criterion benchmarks for the structured-operator refactor: Gram
//! construction cost and end-to-end PGD optimizer throughput.
//!
//! Two claims are measured:
//!
//! 1. **`gram()` is free for structured workloads.** Prefix/All Range at
//!    n ∈ {256, 1024, 4096} build an `O(n)` operator; the historical dense
//!    path (reproduced here via `Gram::to_dense`) assembles `n²` entries.
//!    At n = 4096 the dense Gram alone is 128 MiB — the structured path is
//!    the only one that scales, so the dense comparison stops at 1024.
//! 2. **Workspace-reuse PGD adds zero per-iteration allocation.** A
//!    200-iteration optimization through one preallocated
//!    [`ldp_opt::Workspace`] (`optimize_strategy_with`) is compared with
//!    the fresh-workspace entry point at the same configuration; both
//!    produce bit-identical objectives (asserted), so the delta is pure
//!    allocator/locality overhead.
//!
//! The PGD cells default to n ∈ {16, 32} so `cargo bench` finishes at
//! laptop scale; set `LDP_BENCH_FULL=1` to add the paper-scale n = 1024 /
//! 200-iteration cell (minutes of wall clock on one core).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ldp_opt::{optimize_strategy, optimize_strategy_with, OptimizerConfig, Workspace};
use ldp_workloads::{AllRange, Prefix, Workload};

fn full_scale() -> bool {
    std::env::var("LDP_BENCH_FULL").is_ok_and(|v| v == "1")
}

fn bench_gram_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram_structured");
    for &n in &[256usize, 1024, 4096] {
        group.bench_with_input(BenchmarkId::new("prefix", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(Prefix::new(n).gram()));
        });
        group.bench_with_input(BenchmarkId::new("all_range", n), &n, |b, &n| {
            b.iter(|| std::hint::black_box(AllRange::new(n).gram()));
        });
    }
    group.finish();

    // The historical dense assembly, for the pre/post comparison. Capped
    // at n = 1024: the 4096² dense Gram (128 MiB) exists only as an
    // explicit opt-in and has no place in a timing loop.
    let mut group = c.benchmark_group("gram_densified");
    group.sample_size(10);
    for &n in &[256usize, 1024] {
        group.bench_with_input(BenchmarkId::new("prefix", n), &n, |b, &n| {
            let w = Prefix::new(n);
            b.iter(|| std::hint::black_box(w.gram().to_dense()));
        });
        group.bench_with_input(BenchmarkId::new("all_range", n), &n, |b, &n| {
            let w = AllRange::new(n);
            b.iter(|| std::hint::black_box(w.gram().to_dense()));
        });
    }
    group.finish();

    // Gram matvec: the O(n) structured product that replaces an O(n²)
    // dense row sweep — the primitive behind WNNLS and variance profiles.
    let mut group = c.benchmark_group("gram_matvec");
    for &n in &[256usize, 1024, 4096] {
        let gram = AllRange::new(n).gram();
        let x: Vec<f64> = (0..n).map(|i| (i % 7) as f64 - 3.0).collect();
        let mut out = vec![0.0; n];
        group.bench_with_input(BenchmarkId::new("all_range", n), &n, |b, _| {
            b.iter(|| {
                gram.matvec_into(&x, &mut out);
                std::hint::black_box(out[n / 2])
            });
        });
    }
    group.finish();
}

/// 200-iteration PGD with a fixed step size (the step-size search is
/// excluded so the measurement is the descent loop itself).
fn pgd_config() -> OptimizerConfig {
    let mut config = OptimizerConfig::new(7).with_iterations(200);
    config.step_size = Some(1e-3);
    config
}

fn bench_pgd(c: &mut Criterion) {
    let mut sizes = vec![16usize, 32];
    if full_scale() {
        sizes.push(1024);
    }
    let mut group = c.benchmark_group("pgd_200_iterations");
    group.sample_size(10);
    for &n in &sizes {
        let workload = Prefix::new(n);
        let gram = workload.gram();
        let config = pgd_config();

        // Reference objective: both paths must agree bit-for-bit.
        let fresh = optimize_strategy(&gram, 1.0, &config).unwrap().objective;

        group.bench_with_input(BenchmarkId::new("fresh_workspace", n), &n, |b, _| {
            b.iter(|| {
                let r = optimize_strategy(&gram, 1.0, &config).unwrap();
                assert_eq!(r.objective, fresh, "objective must be deterministic");
                std::hint::black_box(r.objective)
            });
        });
        group.bench_with_input(BenchmarkId::new("reused_workspace", n), &n, |b, _| {
            let mut ws = Workspace::for_config(&config, n);
            b.iter(|| {
                let r = optimize_strategy_with(&gram, 1.0, &config, &mut ws).unwrap();
                assert_eq!(r.objective, fresh, "workspace reuse must be bit-identical");
                std::hint::black_box(r.objective)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gram_construction, bench_pgd);
criterion_main!(benches);
