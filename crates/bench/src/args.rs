//! Minimal command-line flag parsing shared by the figure binaries
//! (no external dependency needed for `--flag` / `--key value` pairs).

use std::collections::BTreeMap;

/// Parsed command-line arguments: boolean flags and `--key value` options.
#[derive(Clone, Debug, Default)]
pub struct Args {
    flags: Vec<String>,
    values: BTreeMap<String, String>,
}

impl Args {
    /// Parses `std::env::args()` (skipping the binary name).
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Parses an explicit token stream (exposed for tests).
    pub fn parse(tokens: impl Iterator<Item = String>) -> Self {
        let mut args = Args::default();
        let mut tokens = tokens.peekable();
        while let Some(token) = tokens.next() {
            let Some(name) = token.strip_prefix("--") else {
                eprintln!("warning: ignoring positional argument '{token}'");
                continue;
            };
            // `--key value` when the next token is not itself a flag.
            let takes_value = tokens
                .peek()
                .map(|next| !next.starts_with("--"))
                .unwrap_or(false);
            if takes_value {
                let value = tokens.next().expect("peeked value exists");
                args.values.insert(name.to_string(), value);
            } else {
                args.flags.push(name.to_string());
            }
        }
        args
    }

    /// True if `--name` was passed as a bare flag.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// The raw value of `--name value`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Parses `--name value` into any `FromStr` type, with a default.
    ///
    /// # Panics
    /// Panics with a clear message if the value fails to parse.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.value(name) {
            None => default,
            Some(raw) => raw
                .parse()
                .unwrap_or_else(|_| panic!("invalid value '{raw}' for --{name}")),
        }
    }

    /// Parses a comma-separated list, e.g. `--epsilons 0.5,1.0,2.0`.
    ///
    /// # Panics
    /// Panics if any element fails to parse.
    pub fn get_list<T: std::str::FromStr + Clone>(&self, name: &str, default: &[T]) -> Vec<T> {
        match self.value(name) {
            None => default.to_vec(),
            Some(raw) => raw
                .split(',')
                .map(|tok| {
                    tok.trim()
                        .parse()
                        .unwrap_or_else(|_| panic!("invalid element '{tok}' in --{name}"))
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_values() {
        let a = parse(&["--quick", "--domain", "128", "--seed", "7"]);
        assert!(a.flag("quick"));
        assert!(!a.flag("full"));
        assert_eq!(a.get_or("domain", 512usize), 128);
        assert_eq!(a.get_or("seed", 0u64), 7);
        assert_eq!(a.get_or("alpha", 0.01f64), 0.01);
    }

    #[test]
    fn lists() {
        let a = parse(&["--epsilons", "0.5,1.0, 2.0"]);
        assert_eq!(a.get_list("epsilons", &[4.0]), vec![0.5, 1.0, 2.0]);
        assert_eq!(a.get_list("domains", &[8usize, 16]), vec![8, 16]);
    }

    #[test]
    fn negative_numbers_are_values_not_flags() {
        // "-1" does not start with "--" so it is treated as a value.
        let a = parse(&["--offset", "-1"]);
        assert_eq!(a.get_or("offset", 0i64), -1);
    }

    #[test]
    #[should_panic(expected = "invalid value")]
    fn bad_value_panics() {
        let a = parse(&["--domain", "abc"]);
        let _ = a.get_or("domain", 1usize);
    }
}
