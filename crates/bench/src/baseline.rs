//! Reading committed benchmark baselines back.
//!
//! The bench binaries emit flat two-level JSON (`"section": {"key":
//! number}`) via hand-rolled formatting (the offline environment has no
//! serde). This module is the matching reader: just enough parsing to
//! pull named numbers back out for the CI perf gate, with no general
//! JSON ambitions.

/// Extracts `"section": { … "key": <number> … }` from a baseline JSON
/// document. Returns `None` when the section or key is absent or the
/// value does not parse as a number.
pub fn json_number(text: &str, section: &str, key: &str) -> Option<f64> {
    let sec_start = find_key(text, section, 0)?;
    let open = text[sec_start..].find('{')? + sec_start;
    let close = matching_brace(text, open)?;
    let body = &text[open..close];
    let key_pos = find_key(body, key, 0)?;
    let colon = body[key_pos..].find(':')? + key_pos;
    let rest = body[colon + 1..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E')))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts a top-level `"key": "<string>"` value from a baseline JSON
/// document. Returns `None` when the key is absent or its value is not a
/// quoted string. Used by the perf gate to compare like-with-like (the
/// recorded kernel backend) before trusting numeric ratios.
pub fn json_string(text: &str, key: &str) -> Option<String> {
    let key_pos = find_key(text, key, 0)?;
    let colon = text[key_pos..].find(':')? + key_pos;
    let rest = text[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

/// Byte offset just past the quoted key `"name"` at nesting depth one,
/// scanning from `from`.
fn find_key(text: &str, name: &str, from: usize) -> Option<usize> {
    let needle = format!("\"{name}\"");
    text[from..].find(&needle).map(|p| from + p + needle.len())
}

/// Offset of the `}` matching the `{` at `open`.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (i, c) in text[open..].char_indices() {
        match c {
            '{' => depth += 1,
            '}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + i);
                }
            }
            _ => {}
        }
    }
    None
}

/// One perf-gate comparison. For throughput-style metrics (the default),
/// `fresh` must reach at least `tolerance × baseline`; for latency-style
/// metrics (`lower_is_better`), `fresh` must stay at or below
/// `baseline / tolerance`. Either way `tolerance` < 1 loosens the gate
/// symmetrically, so one knob serves both orientations.
#[derive(Clone, Debug)]
pub struct GateCheck {
    /// `section.key` path of the metric.
    pub metric: String,
    /// Value recorded in the committed baseline.
    pub baseline: f64,
    /// Value measured by this run.
    pub fresh: f64,
    /// Gate looseness in `(0, 1]`: the floor is `tolerance × baseline`
    /// (or the ceiling `baseline / tolerance` when lower is better).
    pub tolerance: f64,
    /// Orientation: `true` for metrics where smaller is better
    /// (wall-clock seconds), `false` for rates and speedups.
    pub lower_is_better: bool,
}

impl GateCheck {
    /// Whether the fresh measurement clears the gate.
    pub fn passes(&self) -> bool {
        if self.lower_is_better {
            self.fresh <= self.baseline / self.tolerance
        } else {
            self.fresh >= self.tolerance * self.baseline
        }
    }

    /// Human-readable verdict line for CI logs.
    pub fn verdict(&self) -> String {
        let (bound, limit) = if self.lower_is_better {
            ("ceiling", self.baseline / self.tolerance)
        } else {
            ("floor", self.tolerance * self.baseline)
        };
        format!(
            "{} {}: fresh {:.4} vs baseline {:.4} ({bound} {limit:.4})",
            if self.passes() { "ok  " } else { "FAIL" },
            self.metric,
            self.fresh,
            self.baseline,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "schema": "ldp-bench-kernels/1",
  "matmul": {
    "n": 512.0000,
    "blocked_vs_naive": 1.5303
  },
  "pgd": {
    "n": 32.0000,
    "iters_per_s_1t": 6303.2259
  }
}"#;

    #[test]
    fn extracts_nested_numbers() {
        assert_eq!(json_number(DOC, "matmul", "blocked_vs_naive"), Some(1.5303));
        assert_eq!(json_number(DOC, "pgd", "iters_per_s_1t"), Some(6303.2259));
        assert_eq!(json_number(DOC, "pgd", "n"), Some(32.0));
    }

    #[test]
    fn absent_paths_are_none() {
        assert_eq!(json_number(DOC, "matmul", "missing"), None);
        assert_eq!(json_number(DOC, "missing", "n"), None);
    }

    #[test]
    fn extracts_top_level_strings() {
        assert_eq!(
            json_string(DOC, "schema").as_deref(),
            Some("ldp-bench-kernels/1")
        );
        assert_eq!(json_string(DOC, "backend"), None, "absent key");
        assert_eq!(json_string(DOC, "matmul"), None, "object, not a string");
    }

    #[test]
    fn gate_check_verdicts() {
        let pass = GateCheck {
            metric: "matmul.blocked_vs_naive".into(),
            baseline: 1.5,
            fresh: 1.4,
            tolerance: 0.5,
            lower_is_better: false,
        };
        assert!(pass.passes());
        assert!(pass.verdict().starts_with("ok"));
        let fail = GateCheck { fresh: 0.6, ..pass };
        assert!(!fail.passes());
        assert!(fail.verdict().starts_with("FAIL"));
    }

    #[test]
    fn gate_check_lower_is_better() {
        let pass = GateCheck {
            metric: "deploy.cold_s".into(),
            baseline: 0.2,
            fresh: 0.5,
            tolerance: 0.5,
            lower_is_better: true,
        };
        // Ceiling is baseline / tolerance = 0.4 — 0.5 regresses past it.
        assert!(!pass.passes());
        assert!(pass.verdict().contains("ceiling"));
        let ok = GateCheck {
            fresh: 0.39,
            ..pass.clone()
        };
        assert!(ok.passes());
        // A faster-than-baseline run always clears a latency gate.
        let faster = GateCheck {
            fresh: 0.05,
            ..pass
        };
        assert!(faster.passes());
    }
}
