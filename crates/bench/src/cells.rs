//! Construction of the paper's seven compared mechanisms for a given
//! workload/ε cell. The figure binaries sweep cells with
//! [`ldp_parallel::Pool::par_map`] (one optimizer-heavy cell per task).

use ldp_core::LdpMechanism;
use ldp_linalg::LinOp;
use ldp_mechanisms::{
    hadamard_response, hierarchical, randomized_response, Calibration, Fourier,
    LocalMatrixMechanism,
};
use ldp_opt::OptimizerConfig;
use ldp_workloads::Workload;

/// The seven mechanisms of Figures 1–3 in plot order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MechanismKind {
    /// Warner's randomized response \[44\].
    RandomizedResponse,
    /// Hadamard response \[2\].
    Hadamard,
    /// The hierarchical mechanism \[13, 42\].
    Hierarchical,
    /// The Fourier mechanism \[12\].
    Fourier,
    /// The distributed Matrix Mechanism, L1 calibration \[17, 27\].
    MatrixMechanismL1,
    /// The distributed Matrix Mechanism, L2 calibration \[17, 27\].
    MatrixMechanismL2,
    /// This paper's workload factorization mechanism.
    Optimized,
}

/// All seven mechanisms in the order the paper's legends use.
pub const ALL_MECHANISMS: [MechanismKind; 7] = [
    MechanismKind::RandomizedResponse,
    MechanismKind::Hadamard,
    MechanismKind::Hierarchical,
    MechanismKind::Fourier,
    MechanismKind::MatrixMechanismL1,
    MechanismKind::MatrixMechanismL2,
    MechanismKind::Optimized,
];

/// The display labels in legend order.
pub fn mechanism_labels() -> Vec<&'static str> {
    vec![
        "Randomized Response",
        "Hadamard",
        "Hierarchical",
        "Fourier",
        "Matrix Mechanism (L1)",
        "Matrix Mechanism (L2)",
        "Optimized",
    ]
}

/// Effort knobs for mechanism construction, scaled down by `--quick`.
#[derive(Clone, Copy, Debug)]
pub struct Effort {
    /// Iterations for the factorization-mechanism optimizer.
    pub optimizer_iterations: usize,
    /// Iterations used during the optimizer's step-size search.
    pub search_iterations: usize,
    /// Iterations for the Matrix Mechanism strategy optimizer.
    pub mm_iterations: usize,
}

impl Effort {
    /// Paper-faithful effort.
    pub fn full() -> Self {
        Self {
            optimizer_iterations: 250,
            search_iterations: 15,
            mm_iterations: 40,
        }
    }

    /// Laptop-scale effort for `--quick` runs.
    pub fn quick() -> Self {
        Self {
            optimizer_iterations: 80,
            search_iterations: 8,
            mm_iterations: 15,
        }
    }

    /// Chooses by flag.
    pub fn from_quick_flag(quick: bool) -> Self {
        if quick {
            Self::quick()
        } else {
            Self::full()
        }
    }
}

/// Builds one mechanism for a workload cell.
///
/// For the Fourier mechanism the character support follows the paper's
/// usage: the low-order support it was designed with (orders ≤ 3) on the
/// low-order binary-domain workloads (K-way marginals, parity), and the
/// full character basis otherwise (required for full-rank workloads such
/// as Histogram; the domain is interpreted as `{0,1}^{log₂ n}`).
///
/// # Panics
/// Panics if construction fails (all paper workloads are supported by all
/// seven mechanisms) or if Fourier is requested for a non-power-of-two
/// domain.
pub fn build_mechanism(
    kind: MechanismKind,
    workload: &dyn Workload,
    gram: &dyn LinOp,
    epsilon: f64,
    effort: Effort,
    seed: u64,
) -> Box<dyn LdpMechanism> {
    let n = workload.domain_size();
    match kind {
        MechanismKind::RandomizedResponse => {
            Box::new(randomized_response(n, epsilon, gram).expect("RR supports any workload"))
        }
        MechanismKind::Hadamard => {
            Box::new(hadamard_response(n, epsilon, gram).expect("Hadamard supports any workload"))
        }
        MechanismKind::Hierarchical => {
            Box::new(hierarchical(n, epsilon, gram).expect("Hierarchical supports any workload"))
        }
        MechanismKind::Fourier => {
            assert!(
                n.is_power_of_two(),
                "Fourier interprets the domain as {{0,1}}^d"
            );
            let d = n.trailing_zeros() as usize;
            let name = workload.name();
            let low_order =
                name.contains("Marginals") && name != "All Marginals" || name.contains("Parity");
            let fourier = if low_order {
                Fourier::up_to(d, 3.min(d), epsilon)
            } else {
                Fourier::full(d, epsilon)
            };
            Box::new(
                fourier
                    .mechanism(gram)
                    .expect("Fourier support covers this workload"),
            )
        }
        MechanismKind::MatrixMechanismL1 => Box::new(LocalMatrixMechanism::optimized(
            gram,
            epsilon,
            Calibration::L1,
            effort.mm_iterations,
        )),
        MechanismKind::MatrixMechanismL2 => Box::new(LocalMatrixMechanism::optimized(
            gram,
            epsilon,
            Calibration::L2,
            effort.mm_iterations,
        )),
        MechanismKind::Optimized => {
            // Two initializations per the paper's §4 discussion: the
            // default random start, plus a warm start from randomized
            // response (which guarantees the optimized mechanism is never
            // worse than RR — relevant in the high-ε regime where RR is
            // already near-optimal). Keep whichever converges lower.
            let base = OptimizerConfig {
                iterations: effort.optimizer_iterations,
                search_iterations: effort.search_iterations,
                ..OptimizerConfig::new(seed)
            };
            let random =
                ldp_opt::optimize_strategy(gram, epsilon, &base).expect("optimizer succeeds");
            let warm_config = OptimizerConfig {
                initial_strategy: Some(
                    ldp_mechanisms::randomized_response::randomized_response_strategy(n, epsilon),
                ),
                iterations: effort.optimizer_iterations / 2,
                ..base
            };
            let warm = ldp_opt::optimize_strategy(gram, epsilon, &warm_config)
                .expect("warm-started optimizer succeeds");
            let best = if warm.objective < random.objective {
                warm
            } else {
                random
            };
            Box::new(
                ldp_core::FactorizationMechanism::new_unchecked_privacy(
                    best.strategy,
                    gram,
                    epsilon,
                )
                .expect("optimized strategy answers the workload")
                .with_name("Optimized"),
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_workloads::{Histogram, KWayMarginals, Prefix};

    #[test]
    fn builds_all_seven_on_histogram() {
        let w = Histogram::new(8);
        let gram = w.gram();
        for (kind, label) in ALL_MECHANISMS.iter().zip(mechanism_labels()) {
            let mech = build_mechanism(*kind, &w, &gram, 1.0, Effort::quick(), 0);
            assert_eq!(mech.name(), label);
            assert_eq!(mech.domain_size(), 8);
            let profile = mech.variance_profile(&gram);
            assert!(
                profile.iter().all(|t| t.is_finite() && *t >= 0.0),
                "{label}"
            );
        }
    }

    #[test]
    fn fourier_uses_low_order_support_on_marginals() {
        let w = KWayMarginals::new(4, 3);
        let gram = w.gram();
        let mech = build_mechanism(MechanismKind::Fourier, &w, &gram, 1.0, Effort::quick(), 0);
        assert_eq!(mech.name(), "Fourier");
    }

    #[test]
    fn optimized_wins_on_prefix_quick() {
        // Even at quick effort the optimized mechanism should beat RR.
        let w = Prefix::new(16);
        let gram = w.gram();
        let rr = build_mechanism(
            MechanismKind::RandomizedResponse,
            &w,
            &gram,
            1.0,
            Effort::quick(),
            3,
        );
        let opt = build_mechanism(MechanismKind::Optimized, &w, &gram, 1.0, Effort::quick(), 3);
        let p = w.num_queries();
        let sc_rr = rr.sample_complexity(&gram, p, 0.01);
        let sc_opt = opt.sample_complexity(&gram, p, 0.01);
        assert!(sc_opt < sc_rr, "optimized {sc_opt} vs RR {sc_rr}");
    }
}
