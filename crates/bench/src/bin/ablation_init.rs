//! Ablation: optimizer initialization strategies (Section 4 of the paper
//! discusses two options — random initialization, which the authors
//! adopt, and warm-starting from an existing mechanism's strategy).
//!
//! For each workload and ε, runs the optimizer from (a) the paper's
//! random initialization, (b) a warm start from randomized response, and
//! (c) a warm start from Hadamard response, all with the same iteration
//! budget, and reports the converged objective ratio to the best of the
//! three. Reproduces the paper's observation that random initialization
//! "tends to work better" at moderate ε, while warm starts win when ε is
//! large.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin ablation_init -- --quick
//! ```
//!
//! Output: CSV `workload,epsilon,init,objective,ratio_to_best`.

use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_mechanisms::hadamard::hadamard_strategy;
use ldp_mechanisms::randomized_response::randomized_response_strategy;
use ldp_opt::{optimize_strategy, OptimizerConfig};
use ldp_parallel::pool;
use ldp_workloads::paper_suite;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get_or("domain", if quick { 32 } else { 64 });
    let iterations: usize = args.get_or("iterations", if quick { 80 } else { 200 });
    let seed: u64 = args.get_or("seed", 0);
    let epsilons: Vec<f64> = args.get_list("epsilons", &[0.5, 1.0, 2.0, 4.0]);

    banner(
        "ablation_init",
        &format!("n={n}, iterations={iterations}, eps={epsilons:?}"),
    );

    let workload_count = paper_suite(n).len();
    let cells = workload_count * epsilons.len();
    let results = pool().par_map(cells, |cell| {
        let w_idx = cell / epsilons.len();
        let eps = epsilons[cell % epsilons.len()];
        let workload = &paper_suite(n)[w_idx];
        let gram = workload.gram();
        let base = OptimizerConfig {
            iterations,
            ..OptimizerConfig::new(seed + cell as u64)
        };

        let variants: Vec<(&str, OptimizerConfig)> = vec![
            ("random", base.clone()),
            (
                "warm-RR",
                base.clone()
                    .with_warm_start(randomized_response_strategy(n, eps)),
            ),
            (
                "warm-Hadamard",
                base.clone().with_warm_start(hadamard_strategy(n, eps)),
            ),
        ];
        let objectives: Vec<(String, f64)> = variants
            .into_iter()
            .map(|(name, config)| {
                let result = optimize_strategy(&gram, eps, &config).expect("optimizer succeeds");
                (name.to_string(), result.objective)
            })
            .collect();
        banner(
            "ablation_init",
            &format!("done {} eps={eps}", workload.name()),
        );
        (workload.name(), eps, objectives)
    });

    let mut rows = Vec::new();
    for (workload, eps, objectives) in results {
        let best = objectives
            .iter()
            .map(|(_, o)| *o)
            .fold(f64::INFINITY, f64::min);
        for (init, objective) in objectives {
            rows.push(vec![
                workload.clone(),
                format!("{eps}"),
                init,
                fmt(objective),
                format!("{:.4}", objective / best),
            ]);
        }
    }
    write_csv(
        &mut std::io::stdout().lock(),
        &["workload", "epsilon", "init", "objective", "ratio_to_best"],
        &rows,
    );
}
