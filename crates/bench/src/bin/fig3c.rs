//! Figure 3c (Section 6.6): per-iteration time of strategy optimization
//! for increasing domain sizes.
//!
//! Matches the paper's protocol: `W = I` (the per-iteration cost depends
//! on `WᵀW` only through its size), `Q` a random `4n × n` strategy, and
//! the time of one objective + gradient evaluation plus one projection,
//! averaged over `--iters` iterations (paper: 15).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig3c            # up to n = 2048
//! cargo run --release -p ldp-bench --bin fig3c -- --quick # up to n = 256
//! cargo run --release -p ldp-bench --bin fig3c -- --domains 16,64,256,1024,4096
//! ```
//!
//! Output: CSV `domain,m,seconds_per_iteration` on stdout. The paper's
//! claim is the O(n³) growth rate (also the subject of the Criterion
//! bench `iteration.rs`).

// Figure 3c measures wall-clock per-iteration time by design.
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_linalg::Matrix;
use ldp_opt::{objective, project_columns};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let default_domains: &[usize] = if quick {
        &[16, 32, 64, 128, 256]
    } else {
        &[16, 32, 64, 128, 256, 512, 1024, 2048]
    };
    let domains: Vec<usize> = args.get_list("domains", default_domains);
    let iters: usize = args.get_or("iters", 15);
    let seed: u64 = args.get_or("seed", 0);

    banner(
        "fig3c",
        &format!("domains={domains:?}, {iters} iterations each"),
    );

    let mut rows = Vec::new();
    for &n in &domains {
        let m = 4 * n;
        let gram = Matrix::identity(n);
        let epsilon = 1.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let z = vec![(1.0 + (-epsilon_f(epsilon)).exp()) / (2.0 * m as f64); m];
        let r = Matrix::from_fn(m, n, |_, _| rng.gen::<f64>());
        let (mut q, _) = project_columns(&r, &z, epsilon);

        // One warm-up iteration (page-in, allocator effects).
        let eval = objective::evaluate(&q, &gram);
        let step = 1e-3 / eval.gradient.max_abs().max(1e-12);

        let start = Instant::now();
        for _ in 0..iters {
            let eval = objective::evaluate(&q, &gram);
            let stepped = &q - &eval.gradient.scaled(step);
            let (q_next, _) = project_columns(&stepped, &z, epsilon);
            q = q_next;
        }
        let per_iter = start.elapsed().as_secs_f64() / iters as f64;
        banner("fig3c", &format!("n={n}: {per_iter:.4}s per iteration"));
        rows.push(vec![format!("{n}"), format!("{m}"), fmt(per_iter)]);
    }
    write_csv(
        &mut std::io::stdout().lock(),
        &["domain", "m", "seconds_per_iteration"],
        &rows,
    );
}

/// Keeps the `-epsilon` literal readable above (avoids a unary-minus on a
/// method call chain).
fn epsilon_f(e: f64) -> f64 {
    e
}
