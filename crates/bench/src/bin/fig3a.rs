//! Figure 3a (Section 6.4): sample complexity on benchmark datasets for
//! the Prefix workload (paper: n = 512, ε = 1.0), versus the worst case.
//!
//! The paper's datasets are DPBench's HEPTH, MEDCOST and NETTRACE; this
//! reproduction uses the shape-matched synthetic generators of `ldp-data`
//! (see DESIGN.md §4). The quantity reported per dataset is Corollary 5.4
//! with the worst case replaced by the variance under the dataset's
//! empirical distribution (Section 6.4).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig3a            # n = 512
//! cargo run --release -p ldp-bench --bin fig3a -- --quick # n = 64
//! ```
//!
//! Output: CSV `dataset,mechanism,samples` on stdout.

use ldp_bench::cells::{build_mechanism, Effort, ALL_MECHANISMS};
use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_core::complexity;
use ldp_parallel::pool;
use ldp_workloads::{Prefix, Workload};

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get_or("domain", if quick { 64 } else { 512 });
    let epsilon: f64 = args.get_or("epsilon", 1.0);
    let alpha: f64 = args.get_or("alpha", 0.01);
    let seed: u64 = args.get_or("seed", 0);
    let effort = Effort::from_quick_flag(quick);

    banner(
        "fig3a",
        &format!("Prefix workload, n={n}, epsilon={epsilon}"),
    );

    let workload = Prefix::new(n);
    let gram = workload.gram();
    let p = workload.num_queries();

    // Dataset shapes: the data-dependent sample complexity only needs the
    // normalized distribution, so expected shapes are exact here.
    let datasets: Vec<(&str, Option<Vec<f64>>)> = vec![
        (
            "HEPTH",
            Some(ldp_data::hepth_shape(n).probabilities().to_vec()),
        ),
        (
            "MEDCOST",
            Some(ldp_data::medcost_shape(n).probabilities().to_vec()),
        ),
        (
            "NETTRACE",
            Some(ldp_data::nettrace_shape(n).probabilities().to_vec()),
        ),
        ("Worst-case", None),
    ];

    // Build each mechanism once (profiles are data-independent), then
    // evaluate all datasets against its variance profile.
    let profiles = pool().par_map(ALL_MECHANISMS.len(), |idx| {
        let kind = ALL_MECHANISMS[idx];
        let mech = build_mechanism(kind, &workload, &gram, epsilon, effort, seed);
        banner("fig3a", &format!("profiled {}", mech.name()));
        (mech.name(), mech.variance_profile(&gram))
    });

    let mut rows = Vec::new();
    for (dataset, shape) in &datasets {
        for (name, profile) in &profiles {
            let samples = match shape {
                Some(shape) => complexity::data_sample_complexity(profile, shape, p, alpha),
                None => complexity::sample_complexity(profile, p, alpha),
            };
            rows.push(vec![dataset.to_string(), name.clone(), fmt(samples)]);
        }
    }
    write_csv(
        &mut std::io::stdout().lock(),
        &["dataset", "mechanism", "samples"],
        &rows,
    );
}
