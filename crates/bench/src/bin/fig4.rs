//! Figure 4 (Section 6.7): normalized variance of the optimized mechanism
//! with and without the WNNLS non-negativity/consistency extension.
//!
//! Paper setting: ε = 1.0, N = 10³ users sampled from the HEPTH dataset,
//! n = 512, 100 simulations per (workload, variant). This reproduction
//! samples from the HEPTH-like synthetic shape (DESIGN.md §4).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig4            # paper scale
//! cargo run --release -p ldp-bench --bin fig4 -- --quick # n = 64, 20 runs
//! ```
//!
//! Output: CSV `workload,variant,normalized_variance` on stdout; the
//! paper's claim is that WNNLS reduces variance on every workload (by
//! 1.96–5.6× in their setting).

use ldp_bench::cells::{build_mechanism, Effort, MechanismKind};
use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_data::hepth_shape;
use ldp_estimation::{simulated_normalized_variance, Postprocess, WnnlsOptions};
use ldp_parallel::pool;
use ldp_workloads::paper_suite;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get_or("domain", if quick { 64 } else { 512 });
    let epsilon: f64 = args.get_or("epsilon", 1.0);
    let n_users: u64 = args.get_or("users", 1000);
    let trials: usize = args.get_or("trials", if quick { 20 } else { 100 });
    let seed: u64 = args.get_or("seed", 0);
    let effort = Effort::from_quick_flag(quick);

    banner(
        "fig4",
        &format!("n={n}, epsilon={epsilon}, N={n_users}, {trials} simulations"),
    );

    let workload_count = paper_suite(n).len();
    let results = pool().par_map(workload_count, |w_idx| {
        let workload = &paper_suite(n)[w_idx];
        let gram = workload.gram();
        let mech = build_mechanism(
            MechanismKind::Optimized,
            workload.as_ref(),
            &gram,
            epsilon,
            effort,
            seed,
        );
        let data = hepth_shape(n).sample(n_users, &mut StdRng::seed_from_u64(seed + 17));

        let mut rng = StdRng::seed_from_u64(seed + 100 + w_idx as u64);
        let default_var = simulated_normalized_variance(
            workload.as_ref(),
            mech.as_ref(),
            &data,
            trials,
            Postprocess::None,
            &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(seed + 100 + w_idx as u64);
        let wnnls_var = simulated_normalized_variance(
            workload.as_ref(),
            mech.as_ref(),
            &data,
            trials,
            Postprocess::Wnnls(WnnlsOptions::default()),
            &mut rng,
        );
        banner(
            "fig4",
            &format!(
                "{}: default {default_var:.4e}, WNNLS {wnnls_var:.4e} ({:.2}x)",
                workload.name(),
                default_var / wnnls_var
            ),
        );
        vec![
            vec![workload.name(), "Default".to_string(), fmt(default_var)],
            vec![workload.name(), "WNNLS".to_string(), fmt(wnnls_var)],
        ]
    });

    let rows: Vec<Vec<String>> = results.into_iter().flatten().collect();
    write_csv(
        &mut std::io::stdout().lock(),
        &["workload", "variant", "normalized_variance"],
        &rows,
    );
}
