//! Ad-hoc query serving throughput over schema-first deployments.
//!
//! Three cells, covering the serving story end to end:
//!
//! 1. **`deploy`** — a real deployment (baseline selected with
//!    `--baseline`, parsed via `Baseline::from_str`) over a 3-attribute
//!    schema: measures `Estimate::answer` throughput (resolution + row
//!    assembly + dot + per-query variance) and full-workload extraction
//!    via the allocation-free `Estimate::answers_into`, asserting one
//!    answer bit-identical to the explicit-matrix path first.
//! 2. **`adhoc_1e4`** — the workload-layer serving hot path
//!    (`Schema::answer_with`: resolve + assemble + dot, no variance) at
//!    |Ω| = 10⁴ (age × sex × state).
//! 3. **`adhoc_1e6`** — the same at |Ω| = 10⁶ over a 4-attribute schema,
//!    the scale where anything non-structured would have stopped working
//!    long ago (a dense Gram would be 8 TB).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin schema_serving -- \
//!     [--quick] [--baseline rr] [--bench] [--out BENCH_SCHEMA_SERVING.json]
//! ```
//!
//! `--bench` writes the JSON report to `--out`.

// Serving benchmarks measure wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use ldp::prelude::*;
use ldp_bench::args::Args;
use ldp_bench::report::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Answers `queries` round-robin against `answer` until at least
/// `min_iters` calls have run, returning answers/second.
fn throughput(min_iters: usize, queries: &[Query], mut answer: impl FnMut(&Query) -> f64) -> f64 {
    let mut sink = 0.0f64;
    let t = Instant::now();
    let mut calls = 0usize;
    while calls < min_iters {
        for q in queries {
            sink += answer(q);
            calls += 1;
        }
    }
    let secs = t.elapsed().as_secs_f64();
    assert!(sink.is_finite(), "answers must stay finite");
    calls as f64 / secs
}

fn adhoc_queries(age_max: usize) -> Vec<Query> {
    vec![
        Query::total(),
        Query::range("age", age_max / 4..age_max / 2),
        Query::equals("sex", 1).and_range("age", 0..age_max / 3),
        Query::predicate("age", |v| v % 2 == 0),
    ]
}

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let out_path = args.get_or("out", "BENCH_SCHEMA_SERVING.json".to_string());
    let baseline: Baseline = args
        .get_or("baseline", "randomized-response".to_string())
        .parse()
        .expect("valid --baseline name");

    // --- 1. Deployment-level serving with error bars. ------------------
    let (age, state) = if quick { (8, 4) } else { (16, 8) };
    let schema = Schema::new([("age", age), ("sex", 2), ("state", state)]);
    let n = schema.domain_size();
    let deployment = Pipeline::for_schema(schema)
        .queries([
            Query::marginal(["age", "sex"]),
            Query::range("age", 1..age - 1),
            Query::total(),
        ])
        .epsilon(1.0)
        .baseline(baseline)
        .expect("baseline deployment");
    let mut rng = StdRng::seed_from_u64(5);
    let estimate = deployment.simulate(&DataVector::uniform(n, 200_000.0), &mut rng);

    // Correctness anchor: the served value is bit-identical to the
    // explicit-matrix path at the range query's row (cells come first).
    let range_query = Query::range("age", 1..age - 1);
    let reference = deployment
        .workload()
        .matrix()
        .matvec(estimate.data_vector());
    let served = estimate.answer(&range_query).expect("scalar query");
    assert_eq!(
        served.value.to_bits(),
        reference[age * 2].to_bits(),
        "answer() must match the matrix path bitwise"
    );

    let queries = adhoc_queries(age);
    let answers_per_s = throughput(if quick { 2_000 } else { 20_000 }, &queries, |q| {
        estimate.answer(q).expect("valid query").value
    });
    let mut buf = Vec::new();
    let extract_iters = if quick { 500 } else { 5_000 };
    let t = Instant::now();
    for _ in 0..extract_iters {
        estimate.answers_into(&mut buf);
    }
    let extracts_per_s = extract_iters as f64 / t.elapsed().as_secs_f64();
    banner(
        "schema_serving",
        &format!(
            "deploy n={n} ({baseline}): {answers_per_s:.0} ad-hoc answers/s \
             (±stddev attached), {extracts_per_s:.0} full extractions/s \
             ({} queries each)",
            deployment.workload().num_queries()
        ),
    );

    // --- 2. Workload-layer ad-hoc answers at |Ω| = 10⁴. ----------------
    let census = Schema::new([("age", 100), ("sex", 2), ("state", 50)]);
    let x4: Vec<f64> = (0..census.domain_size())
        .map(|u| ((u * 31 + 7) % 101) as f64)
        .collect();
    let mut scratch = Vec::new();
    let queries4 = adhoc_queries(100);
    let qps_1e4 = throughput(if quick { 400 } else { 4_000 }, &queries4, |q| {
        census
            .answer_with(q, &x4, &mut scratch)
            .expect("valid query")
    });
    banner(
        "schema_serving",
        &format!("adhoc |Ω|=1e4: {qps_1e4:.0} answers/s"),
    );

    // --- 3. Workload-layer ad-hoc answers at |Ω| = 10⁶. ----------------
    let wide = Schema::new([("age", 100), ("income", 50), ("state", 50), ("group", 4)]);
    assert_eq!(wide.domain_size(), 1_000_000);
    let x6: Vec<f64> = (0..wide.domain_size())
        .map(|u| ((u * 17 + 3) % 257) as f64)
        .collect();
    let queries6 = vec![
        Query::total(),
        Query::range("age", 18..65),
        Query::range("income", 10..40).and_equals("group", 2),
        Query::predicate("state", |v| v % 5 == 0).and_range("age", 30..60),
    ];
    let qps_1e6 = throughput(if quick { 24 } else { 200 }, &queries6, |q| {
        wide.answer_with(q, &x6, &mut scratch).expect("valid query")
    });
    banner(
        "schema_serving",
        &format!("adhoc |Ω|=1e6 (4 attributes): {qps_1e6:.0} answers/s"),
    );

    let json = format!(
        "{{\n  \"schema\": \"ldp-bench-schema-serving/1\",\n  \"quick\": {quick},\n  \
         \"deploy\": {{\n    \"n\": {n},\n    \"answers_per_s\": {answers_per_s:.0},\n    \
         \"extracts_per_s\": {extracts_per_s:.0}\n  }},\n  \
         \"adhoc_1e4\": {{\n    \"n\": 10000,\n    \"answers_per_s\": {qps_1e4:.0}\n  }},\n  \
         \"adhoc_1e6\": {{\n    \"n\": 1000000,\n    \"answers_per_s\": {qps_1e6:.0}\n  }}\n}}\n"
    );
    println!("{json}");
    if args.flag("bench") {
        std::fs::write(&out_path, &json).expect("write report JSON");
        banner("schema_serving", &format!("wrote {out_path}"));
    }
}
