//! Figure 2 (Section 6.3): sample complexity of 7 mechanisms on 6
//! workloads as the domain size ranges over n ∈ \[8, 1024\], at fixed
//! ε = 1.0 (α = 0.01).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig2            # paper scale
//! cargo run --release -p ldp-bench --bin fig2 -- --quick # up to n = 128
//! ```
//!
//! Output: CSV `workload,domain,mechanism,samples` on stdout. The paper's
//! headline here is the *slope* in log-log space: ≈0.5 for the
//! workload-adaptive mechanisms versus ≈1.0 for the fixed ones.

use ldp_bench::cells::{build_mechanism, Effort, ALL_MECHANISMS};
use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_parallel::pool;
use ldp_workloads::paper_suite;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let default_domains: &[usize] = if quick {
        &[8, 16, 32, 64, 128]
    } else {
        &[8, 16, 32, 64, 128, 256, 512, 1024]
    };
    let domains: Vec<usize> = args.get_list("domains", default_domains);
    let epsilon: f64 = args.get_or("epsilon", 1.0);
    let alpha: f64 = args.get_or("alpha", 0.01);
    let seed: u64 = args.get_or("seed", 0);
    let effort = Effort::from_quick_flag(quick);

    let workload_count = paper_suite(domains[0]).len();
    let total_cells = workload_count * domains.len();
    banner(
        "fig2",
        &format!("epsilon={epsilon}, domains={domains:?}, {total_cells} cells"),
    );

    let results = pool().par_map(total_cells, |cell| {
        let w_idx = cell / domains.len();
        let n = domains[cell % domains.len()];
        let workload = &paper_suite(n)[w_idx];
        let gram = workload.gram();
        let p = workload.num_queries();
        let mut rows = Vec::new();
        for kind in ALL_MECHANISMS {
            let mech = build_mechanism(kind, workload.as_ref(), &gram, epsilon, effort, seed);
            let samples = mech.sample_complexity(&gram, p, alpha);
            rows.push(vec![
                workload.name(),
                format!("{n}"),
                mech.name(),
                fmt(samples),
            ]);
        }
        banner("fig2", &format!("done {} n={n}", workload.name()));
        rows
    });

    let rows: Vec<Vec<String>> = results.into_iter().flatten().collect();
    write_csv(
        &mut std::io::stdout().lock(),
        &["workload", "domain", "mechanism", "samples"],
        &rows,
    );
}
