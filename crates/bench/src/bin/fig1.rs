//! Figure 1 (Section 6.2): sample complexity of 7 mechanisms on 6
//! workloads as the privacy budget ε ranges over [0.5, 4.0], at fixed
//! domain size (paper: n = 512, α = 0.01).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig1            # paper scale
//! cargo run --release -p ldp-bench --bin fig1 -- --quick # n = 64, fast
//! ```
//!
//! Output: CSV `workload,epsilon,mechanism,samples` on stdout.

use ldp_bench::cells::{build_mechanism, Effort, ALL_MECHANISMS};
use ldp_bench::report::{banner, fmt, write_csv};
use ldp_bench::Args;
use ldp_parallel::pool;
use ldp_workloads::paper_suite;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get_or("domain", if quick { 64 } else { 512 });
    let alpha: f64 = args.get_or("alpha", 0.01);
    let seed: u64 = args.get_or("seed", 0);
    let epsilons: Vec<f64> = args.get_list("epsilons", &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0]);
    let effort = Effort::from_quick_flag(quick);

    let workload_count = paper_suite(n).len();
    let total_cells = workload_count * epsilons.len();
    banner(
        "fig1",
        &format!(
            "n={n}, alpha={alpha}, {} epsilons, {total_cells} cells",
            epsilons.len()
        ),
    );

    // One cell = (workload, epsilon); all 7 mechanisms are evaluated per
    // cell so the expensive Gram matrix is built once.
    let results = pool().par_map(total_cells, |cell| {
        let w_idx = cell / epsilons.len();
        let eps = epsilons[cell % epsilons.len()];
        let workload = &paper_suite(n)[w_idx];
        let gram = workload.gram();
        let p = workload.num_queries();
        let mut rows = Vec::new();
        for kind in ALL_MECHANISMS {
            let mech = build_mechanism(kind, workload.as_ref(), &gram, eps, effort, seed);
            let samples = mech.sample_complexity(&gram, p, alpha);
            rows.push(vec![
                workload.name(),
                format!("{eps}"),
                mech.name(),
                fmt(samples),
            ]);
        }
        banner("fig1", &format!("done {} eps={eps}", workload.name()));
        rows
    });

    let rows: Vec<Vec<String>> = results.into_iter().flatten().collect();
    write_csv(
        &mut std::io::stdout().lock(),
        &["workload", "epsilon", "mechanism", "samples"],
        &rows,
    );
}
