//! Open-domain serving load test: streams millions of frequency-oracle
//! reports through sharded sparse aggregation, asserting the sparse
//! determinism contract while measuring throughput.
//!
//! What it exercises (the `ldp-sparse` tentpole end-to-end):
//!
//! 1. **Sharded ingestion** — the report stream is absorbed through N
//!    hash-map shards and merged canonically; the resulting checkpoint
//!    bytes must be **byte-equal** to a single shard absorbing
//!    everything (gated on every run, not just in CI).
//! 2. **Snapshot codec** — the merged state round-trips through the
//!    `RecordKind::SparseCheckpoint` LDPS record; encode/decode times
//!    and the record size are recorded.
//! 3. **Serving** — repeated top-k heavy-hitter minings over a
//!    candidate set and point queries against the merged state
//!    (answers/s for each).
//!
//! ```text
//! cargo run --release -p ldp-bench --bin sparse_load -- \
//!     [--quick] [--reports N] [--shards S] [--candidates C] \
//!     [--bench] [--out BENCH_SPARSE.json] \
//!     [--check BENCH_SPARSE.json] [--tolerance 0.2]
//! ```
//!
//! `--check <baseline.json>` turns the run into a perf gate (the CI
//! sparse-smoke job). Every gated metric is wall-clock, so the gate
//! only runs **like-with-like**: when the baseline records a different
//! kernel backend than this run measures (or predates the schema), the
//! gate is skipped with a loud warning instead of failing spuriously —
//! the same rule as the kernels and serve gates. The byte-equality
//! assertions always run.

// Load tests measure wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]
use std::time::Instant;

use ldp::sparse::{
    decode_sparse_checkpoint, encode_sparse_checkpoint, key_hash, SparseCheckpoint,
    SparseDeployment, SparseShard,
};
use ldp_bench::args::Args;
use ldp_bench::baseline::{json_number, json_string, GateCheck};
use ldp_bench::report::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let total: usize = args.get_or("reports", if quick { 500_000 } else { 2_000_000 });
    let shards: usize = args.get_or("shards", 4).max(1);
    let num_candidates: usize = args.get_or("candidates", if quick { 2_000 } else { 10_000 });
    let out_path = args.get_or("out", "BENCH_SPARSE.json".to_string());

    let deployment = SparseDeployment::hadamard("url", 2.0, 16).expect("valid oracle params");
    let client = deployment.client();

    // --- 1. Report stream: Zipf-flavored head plus a cold tail. --------
    let keys: Vec<u64> = (1..=num_candidates)
        .map(|rank| key_hash(&format!("https://example.com/item/{rank}")))
        .collect();
    let mut rng = StdRng::seed_from_u64(3);
    let t = Instant::now();
    let reports: Vec<u64> = (0..total)
        .map(|i| {
            // Ranks repeat with harmonic-ish frequency; every 8th report
            // is a tail key seen once.
            let kh = if i % 8 == 7 {
                key_hash(&format!("https://example.com/tail/{i}"))
            } else {
                keys[(i * i) % num_candidates.min(1 + i)]
            };
            client.respond_hashed(kh, &mut rng)
        })
        .collect();
    let respond_secs = t.elapsed().as_secs_f64();

    // Sharded ingestion + canonical merge, timed.
    let ingest = |n: usize| -> (Vec<u8>, f64) {
        let t = Instant::now();
        let mut parts: Vec<SparseShard> = (0..n).map(|_| SparseShard::new()).collect();
        for (chunk, part) in reports
            .chunks(total.div_ceil(n).max(1))
            .zip(parts.iter_mut())
        {
            part.absorb_batch(chunk);
        }
        let mut ingestor = deployment.ingestor();
        for (idx, part) in parts.iter_mut().enumerate() {
            // One logical submission split across shards: batch
            // accounting must not see the sharding.
            ingestor.absorb(part, u64::from(idx == 0));
        }
        let secs = t.elapsed().as_secs_f64();
        let (epoch, batches, binding, pairs) = ingestor.checkpoint();
        let record = encode_sparse_checkpoint(&SparseCheckpoint {
            epoch,
            batches,
            binding,
            reports: total as u64,
            pairs,
        });
        (record, secs)
    };
    let (reference_record, _) = ingest(1);
    let (record, ingest_secs) = ingest(shards);
    assert_eq!(
        record, reference_record,
        "{shards} shards must produce checkpoint bytes byte-equal to 1"
    );
    let ingest_per_s = total as f64 / ingest_secs;
    banner(
        "sparse_load",
        &format!(
            "ingest {total} reports: {:.1}M reports/s through {shards} shards \
             (randomize {:.1}M/s); {shards}-vs-1 shard checkpoints byte-equal",
            ingest_per_s / 1e6,
            total as f64 / respond_secs / 1e6,
        ),
    );

    // --- 2. Snapshot codec round trip. ---------------------------------
    let t = Instant::now();
    let cp = decode_sparse_checkpoint(&record, deployment.binding()).expect("valid record");
    let decode_secs = t.elapsed().as_secs_f64();
    let snapshot_bytes = record.len();
    banner(
        "sparse_load",
        &format!(
            "snapshot: {snapshot_bytes} B ({} distinct reports), decode {:.1}ms",
            cp.pairs.len(),
            decode_secs * 1e3,
        ),
    );

    // --- 3. Serving: heavy hitters and point queries. ------------------
    let hh_rounds = if quick { 10 } else { 40 };
    let t = Instant::now();
    let mut admitted = 0usize;
    for _ in 0..hh_rounds {
        admitted = deployment.heavy_hitters(&cp.pairs, &keys, 10, 4.0).len();
    }
    let hh_secs = t.elapsed().as_secs_f64();
    assert!(admitted > 0, "the head must clear the admission threshold");
    let hh_per_s = hh_rounds as f64 / hh_secs;

    let point_rounds = if quick { 200 } else { 1_000 };
    let t = Instant::now();
    let mut acc = 0.0f64;
    for i in 0..point_rounds {
        acc += deployment.point(&cp.pairs, keys[i % keys.len()]);
    }
    let point_secs = t.elapsed().as_secs_f64();
    assert!(acc.is_finite());
    let points_per_s = point_rounds as f64 / point_secs;
    banner(
        "sparse_load",
        &format!(
            "serve: {hh_per_s:.1} top-10 minings/s over {num_candidates} candidates \
             ({admitted} admitted), {points_per_s:.0} point queries/s",
        ),
    );

    let backend = ldp_linalg::kernels::backend().as_str();
    let json = format!(
        "{{\n  \"schema\": \"ldp-bench-sparse/1\",\n  \"quick\": {quick},\n  \
         \"backend\": \"{backend}\",\n  \
         \"ingest\": {{\n    \"reports\": {total},\n    \"shards\": {shards},\n    \
         \"distinct\": {},\n    \"reports_per_s\": {ingest_per_s:.0}\n  }},\n  \
         \"snapshot\": {{\n    \"bytes\": {snapshot_bytes},\n    \
         \"decode_ms\": {:.3}\n  }},\n  \
         \"query\": {{\n    \"candidates\": {num_candidates},\n    \
         \"admitted\": {admitted},\n    \"hh_per_s\": {hh_per_s:.1},\n    \
         \"points_per_s\": {points_per_s:.0}\n  }}\n}}\n",
        cp.pairs.len(),
        decode_secs * 1e3,
    );
    println!("{json}");
    if args.flag("bench") {
        std::fs::write(&out_path, &json).expect("write report JSON");
        banner("sparse_load", &format!("wrote {out_path}"));
    }
    if let Some(baseline_path) = args.value("check") {
        let tolerance = args.get_or("tolerance", 0.2f64);
        check_against_baseline(baseline_path, &json, tolerance);
    }
}

/// Gates the throughput metrics against a committed baseline, exiting
/// non-zero on a regression beyond tolerance. All metrics here are
/// wall-clock, so the whole gate runs like-with-like only: a baseline
/// recorded under a different kernel backend (or with no backend
/// field) is skipped with a warning, mirroring the kernels gate.
fn check_against_baseline(baseline_path: &str, fresh: &str, tolerance: f64) {
    let committed = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let fresh_backend = json_string(fresh, "backend").expect("fresh run records its backend");
    let baseline_backend = json_string(&committed, "backend");
    if baseline_backend.as_deref() != Some(fresh_backend.as_str()) {
        banner(
            "perf-gate",
            &format!(
                "WARNING: baseline {} vs measured '{fresh_backend}'; \
                 skipping the wall-clock sparse gates (not comparable)",
                baseline_backend
                    .map_or_else(|| "records no backend".into(), |b| format!("backend '{b}'")),
            ),
        );
        return;
    }
    let metric = |section: &str, key: &str| -> GateCheck {
        let read = |doc: &str, which: &str| {
            json_number(doc, section, key)
                .unwrap_or_else(|| panic!("{section}.{key} missing from {which} report"))
        };
        GateCheck {
            metric: format!("{section}.{key}"),
            baseline: read(&committed, "baseline"),
            fresh: read(fresh, "fresh"),
            tolerance,
            lower_is_better: false,
        }
    };
    let checks = [
        metric("ingest", "reports_per_s"),
        metric("query", "hh_per_s"),
        metric("query", "points_per_s"),
    ];
    let mut failed = false;
    for check in &checks {
        banner("perf-gate", &check.verdict());
        failed |= !check.passes();
    }
    if failed {
        banner(
            "perf-gate",
            "sparse throughput regressed beyond tolerance vs the committed baseline",
        );
        std::process::exit(1);
    }
}
