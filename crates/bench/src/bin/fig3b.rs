//! Figure 3b (Section 6.5): sensitivity of the optimized strategy to the
//! random initialization and to the number of outputs m.
//!
//! For each workload (paper: n = 64, ε = 1.0) and each
//! m ∈ {n, 4n, 8n, 12n, 16n}, run the optimizer from `--trials` (paper:
//! 10) random initializations, record the worst-case variance of each
//! optimized strategy, normalize by the best found across *all* trials
//! and m for that workload, and report median/min/max of the ratio.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin fig3b            # paper scale
//! cargo run --release -p ldp-bench --bin fig3b -- --quick # 3 trials
//! ```
//!
//! Output: CSV `workload,m_multiple,median_ratio,min_ratio,max_ratio`.

use ldp_bench::report::{banner, write_csv};
use ldp_bench::Args;
use ldp_core::{variance, LdpMechanism};
use ldp_opt::{optimized_mechanism, OptimizerConfig};
use ldp_parallel::pool;
use ldp_workloads::paper_suite;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let n: usize = args.get_or("domain", 64);
    let epsilon: f64 = args.get_or("epsilon", 1.0);
    let trials: usize = args.get_or("trials", if quick { 3 } else { 10 });
    let iterations: usize = args.get_or("iterations", if quick { 60 } else { 150 });
    let seed: u64 = args.get_or("seed", 0);
    let multiples: Vec<usize> = args.get_list("multiples", &[1, 4, 8, 12, 16]);

    banner(
        "fig3b",
        &format!("n={n}, epsilon={epsilon}, trials={trials}, multiples={multiples:?}"),
    );

    let suite = paper_suite(n);
    let workload_count = suite.len();
    let cells = workload_count * multiples.len() * trials;

    // Each cell: one optimization run; record (workload, multiple, worst
    // per-user variance of the optimized mechanism).
    let results = pool().par_map(cells, |cell| {
        let trial = cell % trials;
        let m_idx = (cell / trials) % multiples.len();
        let w_idx = cell / (trials * multiples.len());
        let workload = &paper_suite(n)[w_idx];
        let gram = workload.gram();
        let m = multiples[m_idx] * n;
        let config = OptimizerConfig {
            num_outputs: Some(m),
            iterations,
            search_iterations: if quick { 6 } else { 10 },
            ..OptimizerConfig::new(
                seed.wrapping_add(trial as u64)
                    .wrapping_add((m_idx as u64) << 16)
                    .wrapping_add((w_idx as u64) << 32),
            )
        };
        let mech = optimized_mechanism(&gram, epsilon, &config).expect("optimizer succeeds");
        let profile = mech.variance_profile(&gram);
        let worst = variance::worst_case_variance(&profile, 1.0);
        (w_idx, m_idx, worst)
    });

    // Normalize by the best strategy found per workload; aggregate
    // median/min/max across trials.
    let mut rows = Vec::new();
    for (w_idx, workload) in suite.iter().enumerate() {
        let best = results
            .iter()
            .filter(|(w, _, _)| *w == w_idx)
            .map(|(_, _, v)| *v)
            .fold(f64::INFINITY, f64::min);
        for (m_idx, multiple) in multiples.iter().enumerate() {
            let mut ratios: Vec<f64> = results
                .iter()
                .filter(|(w, m, _)| *w == w_idx && *m == m_idx)
                .map(|(_, _, v)| v / best)
                .collect();
            ratios.sort_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
            let median = ratios[ratios.len() / 2];
            rows.push(vec![
                workload.name(),
                format!("{multiple}n"),
                format!("{median:.4}"),
                format!("{:.4}", ratios.first().copied().unwrap_or(f64::NAN)),
                format!("{:.4}", ratios.last().copied().unwrap_or(f64::NAN)),
            ]);
        }
    }
    write_csv(
        &mut std::io::stdout().lock(),
        &[
            "workload",
            "m_multiple",
            "median_ratio",
            "min_ratio",
            "max_ratio",
        ],
        &rows,
    );
}
