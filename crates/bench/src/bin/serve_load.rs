//! Durable-serving load test: replays millions of synthetic reports
//! through a registry-backed deployment **across simulated process
//! restarts**, asserting the durability contracts while measuring
//! throughput.
//!
//! What it exercises (the `ldp-store` tentpole end-to-end):
//!
//! 1. **Strategy registry** — the first deployment optimizes (cold) and
//!    persists; a second deployment of the same `(workload, ε, config)`
//!    must be a warm hit, skip PGD entirely, and carry a bit-identical
//!    strategy matrix. Both wall-clock times are recorded.
//! 2. **Resumable streaming ingestion** — the report stream is replayed
//!    twice: once uninterrupted, once interrupted every few batches by a
//!    full checkpoint-to-disk → drop → resume-from-disk cycle. The final
//!    estimates must be **byte-equal**; the restart run's throughput
//!    (checkpoint overhead included) is recorded next to the
//!    uninterrupted one.
//! 3. **TCP serving** (the `ldp-serve` tentpole) — the same deployment
//!    is hosted by an in-process [`ldp_serve::Server`] and hammered by a
//!    closed-loop load generator: `--clients N` concurrent connections
//!    submit the report stream over the wire (reports/s), then answer
//!    the deployed workload repeatedly (answers/s). The N-connection
//!    run's answers must be **byte-equal** to a single connection
//!    submitting every batch — the serving determinism contract, gated
//!    on every run.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin serve_load -- \
//!     [--quick] [--reports N] [--batch B] [--restarts R] [--clients C] \
//!     [--dir DIR] [--bench] [--out BENCH_SERVE.json] \
//!     [--check BENCH_SERVE.json] [--tolerance 0.2]
//! ```
//!
//! `--dir` holds the registry and checkpoint files (default: a
//! process-unique directory under the system temp dir, removed at
//! exit). `--bench` writes the JSON report to `--out`.
//!
//! `--check <baseline.json>` turns the run into a **perf gate** (the CI
//! perf-smoke job) over four metrics:
//!
//! * `deploy.warm_speedup` — the cold-vs-warm ratio must reach at least
//!   `tolerance ×` the baseline value. A registry that stops skipping
//!   the optimizer collapses this to ~1, far below any floor.
//! * `deploy.target_speedup` — the PGD-vs-L-BFGS **time-to-target**
//!   ratio (see below); a quasi-Newton regression that stops beating
//!   first-order descent to deploy-grade quality collapses it toward 1.
//! * `deploy.cold_s` and `deploy.cold_lbfgs_s` — wall-clock times must
//!   stay at or below `baseline / tolerance` (lower is better): the
//!   regression guards on the optimizers themselves.
//!
//! The time-to-target pair measures the cold-deploy question directly:
//! at deploy scale (`n = 128`, the paper-faithful default config), how
//! long does each optimizer need to produce a strategy of the quality
//! the PGD deploy actually ships? `pgd_target_s` times the full
//! fixed-budget PGD run — its final objective *is* the target, first
//! attained at the end of the budget — and `cold_lbfgs_s` times an
//! L-BFGS run with `target_objective` set to exactly that value, which
//! stops the moment it matches it ([`OptimizerConfig`]'s L-BFGS-B-style
//! `f_target` stop). The run asserts the target was genuinely reached.
//!
//! Wall-clock gates are only meaningful like-with-like: when the
//! baseline predates the `/2` schema or records a different kernel
//! backend than this run uses, the two `cold_*` gates are skipped with a
//! loud warning (mirroring the kernels gate) and only the ratio metrics
//! (`warm_speedup`, `target_speedup`) are enforced. The default
//! tolerance of 0.2 is deliberately generous — it flags order-of-
//! magnitude structural regressions, not CI noise.

// Load tests measure wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]
use std::path::PathBuf;
use std::time::Instant;

use ldp::prelude::*;
use ldp_bench::args::Args;
use ldp_bench::baseline::{json_number, json_string, GateCheck};
use ldp_bench::report::banner;
use ldp_serve::{ServeClient, Server, ServerConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let total: usize = args.get_or("reports", if quick { 400_000 } else { 2_000_000 });
    let batch: usize = args.get_or("batch", 1 << 15);
    let restarts: usize = args.get_or("restarts", 4).max(1);
    let out_path = args.get_or("out", "BENCH_SERVE.json".to_string());
    let (dir, ephemeral) = match args.value("dir") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("ldp-serve-load-{}", std::process::id())),
            true,
        ),
    };

    let n = 64;
    let epsilon = 1.0;
    let config = OptimizerConfig {
        iterations: if quick { 30 } else { 80 },
        search_iterations: if quick { 4 } else { 8 },
        ..OptimizerConfig::quick(7)
    };
    let registry = StrategyRegistry::open(dir.join("strategies")).expect("open registry");

    // --- 1. Cold vs warm deployment through the registry. -------------
    let t = Instant::now();
    let (cold, outcome) = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized_cached(&config, &registry)
        .expect("cold deploy");
    let cold_secs = t.elapsed().as_secs_f64();
    assert_eq!(outcome, CacheOutcome::Cold, "fresh registry must be cold");

    let t = Instant::now();
    let (warm, outcome) = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized_cached(&config, &registry)
        .expect("warm deploy");
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(outcome, CacheOutcome::Warm, "second deploy must hit");
    let cold_q = cold.mechanism();
    let warm_q = warm.mechanism();
    assert_eq!(
        cold_q.reconstruction_matrix().as_slice(),
        warm_q.reconstruction_matrix().as_slice(),
        "warm deployment must be bit-identical"
    );

    banner(
        "serve_load",
        &format!(
            "deploy: cold {cold_secs:.2}s (PGD), warm {warm_secs:.4}s from registry \
             ({:.0}x faster)",
            cold_secs / warm_secs.max(1e-9)
        ),
    );

    // --- 1b. Time-to-target at deploy scale. ---------------------------
    // The cold-deploy question, asked directly: how long does each
    // optimizer need to produce deploy-grade quality? PGD's fixed-budget
    // default run sets the bar — its final objective is only attained at
    // the end of the budget, so the run's wall time is its
    // time-to-target. L-BFGS then chases exactly that objective with the
    // `target_objective` stop (plateau stopping off, so nothing else can
    // end the run early) and is timed to the moment it matches it.
    let target_n = 128;
    let target_gram = Prefix::new(target_n).gram();
    let pgd_config = OptimizerConfig::new(7);
    let t = Instant::now();
    let pgd_run =
        optimize_strategy(&target_gram, epsilon, &pgd_config).expect("PGD deploy-grade run");
    let pgd_target_secs = t.elapsed().as_secs_f64();
    let lbfgs_config = OptimizerConfig {
        target_objective: Some(pgd_run.objective),
        plateau_window: None,
        ..OptimizerConfig::lbfgs(7)
    };
    assert_ne!(
        pgd_config.fingerprint(),
        lbfgs_config.fingerprint(),
        "L-BFGS configs must fingerprint apart from PGD's in the registry"
    );
    let t = Instant::now();
    let lbfgs_run =
        optimize_strategy(&target_gram, epsilon, &lbfgs_config).expect("L-BFGS targeted run");
    let cold_lbfgs_secs = t.elapsed().as_secs_f64();
    assert!(
        lbfgs_run.objective <= pgd_run.objective,
        "L-BFGS stopped at {} without reaching the PGD target {}",
        lbfgs_run.objective,
        pgd_run.objective,
    );
    let target_speedup = pgd_target_secs / cold_lbfgs_secs.max(1e-9);
    banner(
        "serve_load",
        &format!(
            "time-to-target (n = {target_n}, objective {:.1}): PGD {pgd_target_secs:.2}s \
             ({} evals), L-BFGS {cold_lbfgs_secs:.2}s ({} evals) — {target_speedup:.2}x",
            pgd_run.objective, pgd_run.evaluations, lbfgs_run.evaluations,
        ),
    );

    // --- 2. Synthetic report stream. -----------------------------------
    let client = warm.client();
    let mut rng = StdRng::seed_from_u64(1);
    let reports: Vec<usize> = (0..total)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();
    let batches: Vec<&[usize]> = reports.chunks(batch).collect();

    // Uninterrupted replay.
    let t = Instant::now();
    let mut stream = warm.stream();
    for b in &batches {
        stream.ingest_batch(b).expect("valid batch");
    }
    let uninterrupted_secs = t.elapsed().as_secs_f64();
    let baseline_estimate = stream.estimate();

    // Interrupted replay: checkpoint to disk, drop, resume, every
    // `batches / restarts` batches — a full process-restart simulation
    // minus the exec.
    let checkpoint_path = dir.join("serve.ckpt");
    let interval = batches.len().div_ceil(restarts).max(1);
    let t = Instant::now();
    let mut checkpoints = 0usize;
    let mut checkpoint_bytes = 0usize;
    let mut stream = warm.stream();
    for (i, b) in batches.iter().enumerate() {
        stream.ingest_batch(b).expect("valid batch");
        if (i + 1) % interval == 0 && i + 1 < batches.len() {
            let bytes = stream.checkpoint();
            checkpoint_bytes = bytes.len();
            std::fs::write(&checkpoint_path, &bytes).expect("write checkpoint");
            drop(stream);
            let restored = std::fs::read(&checkpoint_path).expect("read checkpoint");
            stream = warm.resume(&restored).expect("resume");
            checkpoints += 1;
        }
    }
    let resumed_secs = t.elapsed().as_secs_f64();
    let resumed_estimate = stream.estimate();

    assert_eq!(
        resumed_estimate.data_vector(),
        baseline_estimate.data_vector(),
        "resumed run must be byte-equal to the uninterrupted run"
    );
    assert_eq!(resumed_estimate.reports(), total as u64);
    banner(
        "serve_load",
        &format!(
            "ingest {total} reports: {:.1}M reports/s uninterrupted, \
             {:.1}M with {checkpoints} restart cycles ({checkpoint_bytes} B/checkpoint); \
             estimates byte-equal",
            total as f64 / uninterrupted_secs / 1e6,
            total as f64 / resumed_secs / 1e6,
        ),
    );

    // --- 3. TCP serving: N concurrent connections over the wire. -------
    // The same deployment, fronted by the real daemon stack (frame
    // codec, connection workers, per-connection shards, merge barrier).
    let clients: usize = args.get_or("clients", if quick { 4 } else { 8 });
    let wire_reports: Vec<u64> = reports.iter().map(|&r| r as u64).collect();
    let client_chunks: Vec<&[u64]> = wire_reports
        .chunks(total.div_ceil(clients).max(1))
        .collect();

    let spawn_server = || {
        let mut server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            dir: None,
            workers: clients + 1,
        })
        .expect("bind serve socket");
        server.host("bench", warm.clone()).expect("host deployment");
        let addr = server.local_addr();
        (addr, server.spawn().expect("spawn server"))
    };

    // Reference: one connection submits everything.
    let (addr, handle) = spawn_server();
    let mut lone = ServeClient::connect(addr).expect("connect");
    for chunk in &client_chunks {
        for b in chunk.chunks(batch) {
            lone.submit("bench", b).expect("submit");
        }
    }
    let reference = lone.answers("bench").expect("answers");
    lone.shutdown().expect("shutdown");
    handle.join().expect("server exit");

    // Load run: the same batches race in over `clients` connections.
    let (addr, handle) = spawn_server();
    let t = Instant::now();
    std::thread::scope(|scope| {
        for chunk in &client_chunks {
            scope.spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                for b in chunk.chunks(batch) {
                    c.submit("bench", b).expect("submit");
                }
            });
        }
    });
    let serve_ingest_secs = t.elapsed().as_secs_f64();

    // Closed-loop answer phase against the fully merged state.
    let answer_rounds: usize = if quick { 25 } else { 100 };
    let t = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..clients {
            scope.spawn(move || {
                let mut c = ServeClient::connect(addr).expect("connect");
                for _ in 0..answer_rounds {
                    let a = c.answers("bench").expect("answers");
                    assert_eq!(a.reports, total as u64);
                }
            });
        }
    });
    let serve_answer_secs = t.elapsed().as_secs_f64();
    let total_answers = clients * answer_rounds;

    let mut probe = ServeClient::connect(addr).expect("connect");
    let loaded = probe.answers("bench").expect("answers");
    probe.shutdown().expect("shutdown");
    handle.join().expect("server exit");

    let reference_bits: Vec<u64> = reference.answers.iter().map(|a| a.to_bits()).collect();
    let loaded_bits: Vec<u64> = loaded.answers.iter().map(|a| a.to_bits()).collect();
    assert_eq!(
        reference_bits, loaded_bits,
        "{clients} connections must be byte-equal to one"
    );
    let serve_reports_per_s = total as f64 / serve_ingest_secs;
    let serve_answers_per_s = total_answers as f64 / serve_answer_secs;
    banner(
        "serve_load",
        &format!(
            "serve: {clients} clients over TCP — {:.2}M reports/s ingest, \
             {serve_answers_per_s:.0} workload answers/s; N-vs-1 connections byte-equal",
            serve_reports_per_s / 1e6,
        ),
    );

    let backend = ldp_linalg::kernels::backend().as_str();
    let json = format!(
        "{{\n  \"schema\": \"ldp-bench-serve/3\",\n  \"quick\": {quick},\n  \
         \"backend\": \"{backend}\",\n  \
         \"deploy\": {{\n    \"cold_s\": {cold_secs:.4},\n    \
         \"warm_s\": {warm_secs:.6},\n    \"warm_speedup\": {:.1},\n    \
         \"target_n\": {target_n},\n    \"target_objective\": {:.4},\n    \
         \"pgd_target_s\": {pgd_target_secs:.4},\n    \
         \"cold_lbfgs_s\": {cold_lbfgs_secs:.4},\n    \
         \"target_speedup\": {target_speedup:.2}\n  }},\n  \
         \"ingest\": {{\n    \"reports\": {total},\n    \
         \"restart_cycles\": {checkpoints},\n    \"checkpoint_bytes\": {checkpoint_bytes},\n    \
         \"reports_per_s\": {:.0},\n    \"reports_per_s_resumed\": {:.0}\n  }},\n  \
         \"serve\": {{\n    \"clients\": {clients},\n    \
         \"reports_per_s\": {serve_reports_per_s:.0},\n    \
         \"answers\": {total_answers},\n    \
         \"answers_per_s\": {serve_answers_per_s:.0}\n  }}\n}}\n",
        cold_secs / warm_secs.max(1e-9),
        pgd_run.objective,
        total as f64 / uninterrupted_secs,
        total as f64 / resumed_secs,
    );
    println!("{json}");
    if args.flag("bench") {
        std::fs::write(&out_path, &json).expect("write report JSON");
        banner("serve_load", &format!("wrote {out_path}"));
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Some(baseline_path) = args.value("check") {
        let tolerance = args.get_or("tolerance", 0.2f64);
        check_against_baseline(baseline_path, &json, tolerance);
    }
}

/// Gates the deploy metrics against a committed baseline report and
/// exits non-zero on a regression beyond the tolerance. The
/// backend-insensitive ratios (`warm_speedup`, `target_speedup`) are
/// always enforced; the wall-clock `cold_s`/`cold_lbfgs_s` gates only
/// run like-with-like (same schema generation, same recorded kernel
/// backend) and are skipped with a warning otherwise, mirroring the
/// kernels gate.
fn check_against_baseline(baseline_path: &str, fresh: &str, tolerance: f64) {
    let committed = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let metric = |key: &str, lower_is_better: bool| -> GateCheck {
        let read = |doc: &str, which: &str| {
            json_number(doc, "deploy", key)
                .unwrap_or_else(|| panic!("deploy.{key} missing from {which} report"))
        };
        GateCheck {
            metric: format!("deploy.{key}"),
            baseline: read(&committed, "baseline"),
            fresh: read(fresh, "fresh"),
            tolerance,
            lower_is_better,
        }
    };
    let mut checks = vec![metric("warm_speedup", false)];
    // Pre-/2 baselines have no target_speedup column; skip the ratio
    // gate (with the wall-clock ones, below) until one is committed.
    if json_number(&committed, "deploy", "target_speedup").is_some() {
        checks.push(metric("target_speedup", false));
    }
    let fresh_backend = json_string(fresh, "backend").expect("fresh run records its backend");
    let baseline_backend = json_string(&committed, "backend");
    if baseline_backend.as_deref() == Some(fresh_backend.as_str()) {
        checks.push(metric("cold_s", true));
        checks.push(metric("cold_lbfgs_s", true));
        // The TCP serving throughputs (schema /3) are wall-clock too:
        // gate them like-with-like only, and only against a baseline
        // that has them.
        for key in ["reports_per_s", "answers_per_s"] {
            if let (Some(baseline), Some(fresh)) = (
                json_number(&committed, "serve", key),
                json_number(fresh, "serve", key),
            ) {
                checks.push(GateCheck {
                    metric: format!("serve.{key}"),
                    baseline,
                    fresh,
                    tolerance,
                    lower_is_better: false,
                });
            }
        }
    } else {
        banner(
            "perf-gate",
            &format!(
                "WARNING: baseline {} vs measured '{fresh_backend}'; \
                 skipping wall-clock cold-deploy gates (not comparable), \
                 gating the speedup ratios only",
                baseline_backend.map_or_else(
                    || "records no backend (pre-/2 schema)".into(),
                    |b| format!("backend '{b}'")
                ),
            ),
        );
    }
    let mut failed = false;
    for check in &checks {
        banner("perf-gate", &check.verdict());
        failed |= !check.passes();
    }
    if failed {
        banner(
            "perf-gate",
            "deploy metrics regressed beyond tolerance vs the committed baseline",
        );
        std::process::exit(1);
    }
}
