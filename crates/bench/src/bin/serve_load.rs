//! Durable-serving load test: replays millions of synthetic reports
//! through a registry-backed deployment **across simulated process
//! restarts**, asserting the durability contracts while measuring
//! throughput.
//!
//! What it exercises (the `ldp-store` tentpole end-to-end):
//!
//! 1. **Strategy registry** — the first deployment optimizes (cold) and
//!    persists; a second deployment of the same `(workload, ε, config)`
//!    must be a warm hit, skip PGD entirely, and carry a bit-identical
//!    strategy matrix. Both wall-clock times are recorded.
//! 2. **Resumable streaming ingestion** — the report stream is replayed
//!    twice: once uninterrupted, once interrupted every few batches by a
//!    full checkpoint-to-disk → drop → resume-from-disk cycle. The final
//!    estimates must be **byte-equal**; the restart run's throughput
//!    (checkpoint overhead included) is recorded next to the
//!    uninterrupted one.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin serve_load -- \
//!     [--quick] [--reports N] [--batch B] [--restarts R] \
//!     [--dir DIR] [--bench] [--out BENCH_SERVE.json] \
//!     [--check BENCH_SERVE.json] [--tolerance 0.2]
//! ```
//!
//! `--dir` holds the registry and checkpoint files (default: a
//! process-unique directory under the system temp dir, removed at
//! exit). `--bench` writes the JSON report to `--out`.
//!
//! `--check <baseline.json>` turns the run into a **perf gate** (the CI
//! perf-smoke job): the cold-vs-warm deploy ratio `deploy.warm_speedup`
//! must reach at least `tolerance ×` the committed baseline value or the
//! process exits non-zero. The default tolerance of 0.2 is deliberately
//! generous — a registry that stops skipping PGD collapses the ratio to
//! ~1, orders of magnitude below any floor, while CI noise moves it by
//! percents.

// Load tests measure wall-clock throughput by design.
#![allow(clippy::disallowed_methods)]
use std::path::PathBuf;
use std::time::Instant;

use ldp::prelude::*;
use ldp_bench::args::Args;
use ldp_bench::baseline::{json_number, GateCheck};
use ldp_bench::report::banner;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let total: usize = args.get_or("reports", if quick { 400_000 } else { 2_000_000 });
    let batch: usize = args.get_or("batch", 1 << 15);
    let restarts: usize = args.get_or("restarts", 4).max(1);
    let out_path = args.get_or("out", "BENCH_SERVE.json".to_string());
    let (dir, ephemeral) = match args.value("dir") {
        Some(d) => (PathBuf::from(d), false),
        None => (
            std::env::temp_dir().join(format!("ldp-serve-load-{}", std::process::id())),
            true,
        ),
    };

    let n = 64;
    let epsilon = 1.0;
    let config = OptimizerConfig {
        iterations: if quick { 30 } else { 80 },
        search_iterations: if quick { 4 } else { 8 },
        ..OptimizerConfig::quick(7)
    };
    let registry = StrategyRegistry::open(dir.join("strategies")).expect("open registry");

    // --- 1. Cold vs warm deployment through the registry. -------------
    let t = Instant::now();
    let (cold, outcome) = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized_cached(&config, &registry)
        .expect("cold deploy");
    let cold_secs = t.elapsed().as_secs_f64();
    assert_eq!(outcome, CacheOutcome::Cold, "fresh registry must be cold");

    let t = Instant::now();
    let (warm, outcome) = Pipeline::for_workload(Prefix::new(n))
        .epsilon(epsilon)
        .optimized_cached(&config, &registry)
        .expect("warm deploy");
    let warm_secs = t.elapsed().as_secs_f64();
    assert_eq!(outcome, CacheOutcome::Warm, "second deploy must hit");
    let cold_q = cold.mechanism();
    let warm_q = warm.mechanism();
    assert_eq!(
        cold_q.reconstruction_matrix().as_slice(),
        warm_q.reconstruction_matrix().as_slice(),
        "warm deployment must be bit-identical"
    );
    banner(
        "serve_load",
        &format!(
            "deploy: cold {:.2}s (PGD), warm {:.4}s from registry ({:.0}x faster)",
            cold_secs,
            warm_secs,
            cold_secs / warm_secs.max(1e-9)
        ),
    );

    // --- 2. Synthetic report stream. -----------------------------------
    let client = warm.client();
    let mut rng = StdRng::seed_from_u64(1);
    let reports: Vec<usize> = (0..total)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();
    let batches: Vec<&[usize]> = reports.chunks(batch).collect();

    // Uninterrupted replay.
    let t = Instant::now();
    let mut stream = warm.stream();
    for b in &batches {
        stream.ingest_batch(b).expect("valid batch");
    }
    let uninterrupted_secs = t.elapsed().as_secs_f64();
    let baseline_estimate = stream.estimate();

    // Interrupted replay: checkpoint to disk, drop, resume, every
    // `batches / restarts` batches — a full process-restart simulation
    // minus the exec.
    let checkpoint_path = dir.join("serve.ckpt");
    let interval = batches.len().div_ceil(restarts).max(1);
    let t = Instant::now();
    let mut checkpoints = 0usize;
    let mut checkpoint_bytes = 0usize;
    let mut stream = warm.stream();
    for (i, b) in batches.iter().enumerate() {
        stream.ingest_batch(b).expect("valid batch");
        if (i + 1) % interval == 0 && i + 1 < batches.len() {
            let bytes = stream.checkpoint();
            checkpoint_bytes = bytes.len();
            std::fs::write(&checkpoint_path, &bytes).expect("write checkpoint");
            drop(stream);
            let restored = std::fs::read(&checkpoint_path).expect("read checkpoint");
            stream = warm.resume(&restored).expect("resume");
            checkpoints += 1;
        }
    }
    let resumed_secs = t.elapsed().as_secs_f64();
    let resumed_estimate = stream.estimate();

    assert_eq!(
        resumed_estimate.data_vector(),
        baseline_estimate.data_vector(),
        "resumed run must be byte-equal to the uninterrupted run"
    );
    assert_eq!(resumed_estimate.reports(), total as u64);
    banner(
        "serve_load",
        &format!(
            "ingest {total} reports: {:.1}M reports/s uninterrupted, \
             {:.1}M with {checkpoints} restart cycles ({checkpoint_bytes} B/checkpoint); \
             estimates byte-equal",
            total as f64 / uninterrupted_secs / 1e6,
            total as f64 / resumed_secs / 1e6,
        ),
    );

    let json = format!(
        "{{\n  \"schema\": \"ldp-bench-serve/1\",\n  \"quick\": {quick},\n  \
         \"deploy\": {{\n    \"cold_s\": {cold_secs:.4},\n    \"warm_s\": {warm_secs:.6},\n    \
         \"warm_speedup\": {:.1}\n  }},\n  \"ingest\": {{\n    \"reports\": {total},\n    \
         \"restart_cycles\": {checkpoints},\n    \"checkpoint_bytes\": {checkpoint_bytes},\n    \
         \"reports_per_s\": {:.0},\n    \"reports_per_s_resumed\": {:.0}\n  }}\n}}\n",
        cold_secs / warm_secs.max(1e-9),
        total as f64 / uninterrupted_secs,
        total as f64 / resumed_secs,
    );
    println!("{json}");
    if args.flag("bench") {
        std::fs::write(&out_path, &json).expect("write report JSON");
        banner("serve_load", &format!("wrote {out_path}"));
    }
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    if let Some(baseline_path) = args.value("check") {
        let tolerance = args.get_or("tolerance", 0.2f64);
        check_against_baseline(baseline_path, &json, tolerance);
    }
}

/// Gates the cold-vs-warm deploy ratio against a committed baseline
/// report and exits non-zero on a regression beyond the tolerance.
fn check_against_baseline(baseline_path: &str, fresh: &str, tolerance: f64) {
    let committed = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let read = |doc: &str| {
        json_number(doc, "deploy", "warm_speedup")
            .unwrap_or_else(|| panic!("deploy.warm_speedup missing from report"))
    };
    let check = GateCheck {
        metric: "deploy.warm_speedup".into(),
        baseline: read(&committed),
        fresh: read(fresh),
        tolerance,
    };
    banner("perf-gate", &check.verdict());
    if !check.passes() {
        banner(
            "perf-gate",
            "registry warm-start speedup regressed beyond tolerance vs the committed baseline",
        );
        std::process::exit(1);
    }
}
