//! Kernel performance baseline emitter: measures the hot compute paths
//! at 1 and N `ldp-parallel` workers and writes `BENCH_KERNELS.json` so
//! future PRs have a recorded baseline to regress against.
//!
//! Measurements:
//!
//! * **matmul** — GFLOP/s of the seed's naive i-k-j kernel vs the
//!   blocked kernel at n = 512, single-threaded and at N workers
//!   (bit-identity across worker counts asserted before timing);
//! * **dot** — GFLOP/s of the dispatched dot-product kernel;
//! * **fwht** — element-passes/s of the in-place Walsh–Hadamard
//!   transform (`n log₂ n` butterfly elements per transform);
//! * **pgd** — optimizer iterations/s of a multi-restart PGD run
//!   (restarts parallelize; the outputs are asserted byte-equal across
//!   worker counts);
//! * **ingestion** — reports/s of `Deployment::aggregate` over a
//!   pre-drawn randomized-report stream (exactness asserted).
//!
//! Every run records the active kernel backend (`"backend"`) so baseline
//! comparisons are like-with-like: `--check` skips the perf gate with a
//! loud warning when the committed baseline was measured under a
//! different backend (e.g. an AVX2 baseline checked on a scalar-only
//! host), instead of failing spuriously. On 1-core hosts the `"nt_mode"`
//! field marks the N-worker columns as spawn-overhead measurements.
//!
//! ```text
//! cargo run --release -p ldp-bench --bin kernels -- --bench \
//!     [--quick] [--threads N] [--out BENCH_KERNELS.json] \
//!     [--check BENCH_KERNELS.json] [--tolerance 0.4]
//! ```
//!
//! Without `--bench` the binary prints the measurements but skips the
//! JSON write (useful for ad-hoc timing).
//!
//! `--check <baseline.json>` turns the run into a **perf gate** (the CI
//! `perf-smoke` job): the fresh `matmul.blocked_vs_naive` ratio and
//! `pgd.iters_per_s_1t` must reach at least `tolerance ×` the committed
//! baseline values or the process exits non-zero. The default tolerance
//! is deliberately generous (0.4) because CI machines are noisy,
//! differently-sized, and `--quick` measures smaller problems than the
//! committed full run — the gate catches *collapses* (a kernel silently
//! falling back to the naive path, an optimizer slowdown of 2.5×+), not
//! single-digit-percent drift.

use ldp::prelude::*;
use ldp_bench::args::Args;
use ldp_bench::baseline::{json_number, json_string, GateCheck};
use ldp_bench::kernels::{matmul_gflops, naive_matmul_into, test_matrix, time_secs};
use ldp_bench::report::banner;
use ldp_linalg::{fwht, Matrix};
use ldp_opt::{optimize_strategy, OptimizerConfig};
use ldp_parallel::set_thread_override;
use ldp_workloads::Prefix;
use ldp_workloads::Workload;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let args = Args::from_env();
    let quick = args.flag("quick");
    let threads = args.get_or("threads", 4usize).max(2);
    let out_path = args.get_or("out", "BENCH_KERNELS.json".to_string());

    let backend = ldp_linalg::kernels::backend().as_str();
    let hardware = std::thread::available_parallelism().map_or(1, |p| p.get());
    let nt_mode = if hardware == 1 {
        "spawn-overhead"
    } else {
        "parallel-speedup"
    };
    banner(
        "kernels",
        &format!("kernel backend: {backend}, hardware threads: {hardware}"),
    );
    if hardware == 1 {
        banner(
            "kernels",
            &format!(
                "1-core host: the @{threads}T columns measure scoped-spawn \
                 overhead, not parallel speedup (nt_speedup < 1 is expected)"
            ),
        );
    }

    let matmul = measure_matmul(quick, threads);
    let dot = measure_dot(quick);
    let fwht_section = measure_fwht(quick);
    let pgd = measure_pgd(quick, threads);
    let ingestion = measure_ingestion(quick, threads);
    set_thread_override(None);

    let json = format!(
        "{{\n  \"schema\": \"ldp-bench-kernels/2\",\n  \"quick\": {quick},\n  \
         \"backend\": \"{backend}\",\n  \
         \"hardware_threads\": {hardware},\n  \"measured_threads\": {threads},\n  \
         \"nt_mode\": \"{nt_mode}\",\n  \
         \"note\": \"N-worker numbers only speed up on multi-core hardware; on a 1-core host (nt_mode = spawn-overhead) they measure scoped-spawn cost, so nt_speedup < 1 is expected and not a regression. Bit-identity across worker counts is asserted before every measurement. Perf columns are only comparable between runs with the same backend.\",\n\
         {matmul},\n{dot},\n{fwht_section},\n{pgd},\n{ingestion}\n}}\n"
    );
    println!("{json}");
    if args.flag("bench") {
        std::fs::write(&out_path, &json).expect("write baseline JSON");
        banner("kernels", &format!("wrote {out_path}"));
    }
    if let Some(baseline_path) = args.value("check") {
        let tolerance = args.get_or("tolerance", 0.4f64);
        check_against_baseline(baseline_path, &json, tolerance);
    }
}

/// Compares this run's measurements against a committed baseline JSON
/// and exits non-zero on a regression beyond the tolerance.
///
/// The comparison is only meaningful like-with-like: if the baseline
/// records a different kernel backend than this run used (or predates
/// the `"backend"` field), the gate is skipped with a loud warning
/// instead of failing spuriously — e.g. an AVX2 baseline must not gate a
/// scalar-only fallback host.
fn check_against_baseline(baseline_path: &str, fresh: &str, tolerance: f64) {
    let baseline = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
    let fresh_backend = json_string(fresh, "backend").expect("fresh run records its backend");
    let baseline_backend = json_string(&baseline, "backend");
    if baseline_backend.as_deref() != Some(fresh_backend.as_str()) {
        banner(
            "perf-gate",
            &format!(
                "WARNING: backend mismatch — baseline {} vs measured '{fresh_backend}'; \
                 the numbers are not comparable, SKIPPING the perf gate. \
                 Re-record the baseline on this host class to restore gating.",
                baseline_backend.map_or_else(
                    || "records no backend (pre-/2 schema)".into(),
                    |b| format!("'{b}'")
                ),
            ),
        );
        return;
    }
    let metric = |section: &str, key: &str| -> GateCheck {
        let path = format!("{section}.{key}");
        let read = |doc: &str, which: &str| {
            json_number(doc, section, key)
                .unwrap_or_else(|| panic!("metric {path} missing from {which} measurements"))
        };
        GateCheck {
            baseline: read(&baseline, "baseline"),
            fresh: read(fresh, "fresh"),
            metric: path,
            tolerance,
            lower_is_better: false,
        }
    };
    let checks = [
        metric("matmul", "blocked_vs_naive"),
        metric("pgd", "iters_per_s_1t"),
    ];
    let mut failed = false;
    for check in &checks {
        banner("perf-gate", &check.verdict());
        failed |= !check.passes();
    }
    if failed {
        banner(
            "perf-gate",
            "kernel performance regressed beyond tolerance vs the committed baseline",
        );
        std::process::exit(1);
    }
}

/// Formats one `"name": {...}` JSON object from key/value pairs.
fn json_object(name: &str, fields: &[(&str, f64)]) -> String {
    let body: Vec<String> = fields
        .iter()
        .map(|(k, v)| format!("    \"{k}\": {v:.4}"))
        .collect();
    format!("  \"{name}\": {{\n{}\n  }}", body.join(",\n"))
}

fn measure_matmul(quick: bool, threads: usize) -> String {
    let n = if quick { 256 } else { 512 };
    let reps = if quick { 10 } else { 4 };
    let a = test_matrix(n, n, 1);
    let b = test_matrix(n, n, 2);
    let mut out = Matrix::zeros(n, n);

    set_thread_override(Some(1));
    let serial = a.matmul(&b);
    set_thread_override(Some(threads));
    assert_eq!(
        serial.as_slice(),
        a.matmul(&b).as_slice(),
        "parallel matmul must be bit-identical"
    );

    set_thread_override(Some(1));
    let naive = matmul_gflops(n, time_secs(reps, || naive_matmul_into(&a, &b, &mut out)));
    let blocked_1t = matmul_gflops(n, time_secs(reps, || a.matmul_into(&b, &mut out)));
    set_thread_override(Some(threads));
    let blocked_nt = matmul_gflops(n, time_secs(reps, || a.matmul_into(&b, &mut out)));
    banner(
        "kernels",
        &format!(
            "matmul n={n}: naive {naive:.2} GFLOP/s, blocked {blocked_1t:.2} @1T, \
             {blocked_nt:.2} @{threads}T"
        ),
    );
    json_object(
        "matmul",
        &[
            ("n", n as f64),
            ("naive_gflops", naive),
            ("blocked_gflops_1t", blocked_1t),
            ("blocked_gflops_nt", blocked_nt),
            ("blocked_vs_naive", blocked_1t / naive),
            ("nt_speedup", blocked_nt / blocked_1t),
        ],
    )
}

/// GFLOP/s of the dispatched dot-product kernel (2 flops per element),
/// single-threaded: `dot` is the innermost primitive under Cholesky,
/// `matvec`, and `matmul_t`, so its lane throughput is worth a column of
/// its own.
fn measure_dot(quick: bool) -> String {
    let len: usize = if quick { 1 << 14 } else { 1 << 16 };
    let reps = if quick { 200 } else { 100 };
    let a: Vec<f64> = (0..len)
        .map(|i| ((i * 13 + 5) % 19) as f64 * 0.03)
        .collect();
    let b: Vec<f64> = (0..len).map(|i| ((i * 7 + 2) % 23) as f64 * 0.04).collect();
    set_thread_override(Some(1));
    // 16 dots per timed call so each call is comfortably above timer
    // granularity even on fast hosts.
    let inner = 16;
    let secs = time_secs(reps, || {
        for _ in 0..inner {
            std::hint::black_box(ldp_linalg::dot(
                std::hint::black_box(&a),
                std::hint::black_box(&b),
            ));
        }
    });
    let gflops = (2 * len * inner) as f64 / secs / 1e9;
    banner(
        "kernels",
        &format!("dot len={len}: {gflops:.2} GFLOP/s @1T"),
    );
    json_object("dot", &[("len", len as f64), ("dot_gflops", gflops)])
}

/// Million butterfly element-passes per second of the in-place FWHT
/// (`n log₂ n` element-passes per transform), single-threaded.
fn measure_fwht(quick: bool) -> String {
    let n: usize = if quick { 1 << 14 } else { 1 << 16 };
    let reps = 40;
    // The transform is unnormalized, so repeated application grows the
    // entries by up to ×n per pass; starting near 1e-150 keeps ~40
    // timed applications comfortably finite without rescaling between
    // calls (which would pollute the timing).
    let mut data: Vec<f64> = (0..n)
        .map(|i| (((i * 11 + 3) % 17) as f64 - 8.0) * 1e-150)
        .collect();
    set_thread_override(Some(1));
    let secs = time_secs(reps, || fwht(std::hint::black_box(&mut data)));
    assert!(
        data.iter().all(|v| v.is_finite()),
        "FWHT bench overflowed; shrink reps or the initial magnitude"
    );
    let passes = n as f64 * (n.trailing_zeros() as f64);
    let melems = passes / secs / 1e6;
    banner(
        "kernels",
        &format!("fwht n={n}: {melems:.1}M element-passes/s @1T"),
    );
    json_object("fwht", &[("n", n as f64), ("fwht_melems_per_s", melems)])
}

fn measure_pgd(quick: bool, threads: usize) -> String {
    let n = if quick { 16 } else { 32 };
    let iterations = if quick { 40 } else { 80 };
    let restarts = 4;
    let gram = Prefix::new(n).gram();
    let config = OptimizerConfig {
        iterations,
        restarts,
        step_size: Some(0.05),
        search_iterations: 0,
        ..OptimizerConfig::new(7)
    };

    set_thread_override(Some(1));
    let serial = optimize_strategy(&gram, 1.0, &config).expect("optimizer succeeds");
    set_thread_override(Some(threads));
    let threaded = optimize_strategy(&gram, 1.0, &config).expect("optimizer succeeds");
    assert_eq!(
        serial.strategy.matrix().as_slice(),
        threaded.strategy.matrix().as_slice(),
        "parallel restarts must be bit-identical"
    );
    assert_eq!(serial.history, threaded.history);

    let total_iters = (iterations * restarts) as f64;
    set_thread_override(Some(1));
    let iters_1t = total_iters
        / time_secs(2, || {
            std::hint::black_box(optimize_strategy(&gram, 1.0, &config).expect("ok"));
        });
    set_thread_override(Some(threads));
    let iters_nt = total_iters
        / time_secs(2, || {
            std::hint::black_box(optimize_strategy(&gram, 1.0, &config).expect("ok"));
        });
    banner(
        "kernels",
        &format!(
            "pgd n={n} x{restarts} restarts: {iters_1t:.0} iters/s @1T, \
             {iters_nt:.0} @{threads}T"
        ),
    );
    json_object(
        "pgd",
        &[
            ("n", n as f64),
            ("restarts", restarts as f64),
            ("iters_per_s_1t", iters_1t),
            ("iters_per_s_nt", iters_nt),
            ("nt_speedup", iters_nt / iters_1t),
        ],
    )
}

fn measure_ingestion(quick: bool, threads: usize) -> String {
    let n = 256;
    let total = if quick { 400_000 } else { 2_000_000 };
    let deployment = Pipeline::for_workload(Histogram::new(n))
        .epsilon(1.0)
        .baseline(Baseline::RandomizedResponse)
        .expect("deployable");
    let client = deployment.client();
    let mut rng = StdRng::seed_from_u64(0);
    let reports: Vec<usize> = (0..total)
        .map(|i| client.respond(i % n, &mut rng))
        .collect();

    let mut sequential = deployment.aggregator();
    sequential.ingest_batch(&reports).expect("valid reports");
    set_thread_override(Some(threads));
    let parallel = deployment.aggregate(&reports).expect("valid reports");
    assert_eq!(
        parallel.counts(),
        sequential.counts(),
        "parallel ingestion must be exact"
    );

    set_thread_override(Some(1));
    let rps_1t = total as f64
        / time_secs(3, || {
            std::hint::black_box(deployment.aggregate(&reports).expect("ok"));
        });
    set_thread_override(Some(threads));
    let rps_nt = total as f64
        / time_secs(3, || {
            std::hint::black_box(deployment.aggregate(&reports).expect("ok"));
        });
    banner(
        "kernels",
        &format!(
            "ingestion {total} reports: {:.1}M reports/s @1T, {:.1}M @{threads}T",
            rps_1t / 1e6,
            rps_nt / 1e6
        ),
    );
    json_object(
        "ingestion",
        &[
            ("reports", total as f64),
            ("reports_per_s_1t", rps_1t),
            ("reports_per_s_nt", rps_nt),
            ("nt_speedup", rps_nt / rps_1t),
        ],
    )
}
