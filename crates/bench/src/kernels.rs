//! Shared pieces of the compute-kernel benchmarks: the seed's naive
//! matmul (the baseline the blocked kernel must beat), deterministic
//! test-matrix generators, and a tiny wall-clock measurement helper used
//! by both the `kernels` criterion bench and the `kernels` binary that
//! emits `BENCH_KERNELS.json`.

use std::time::Instant;

use ldp_linalg::Matrix;

/// The seed repository's i-k-j matmul kernel (pre-blocking), kept as the
/// regression baseline: `BENCH_KERNELS.json` records blocked-vs-naive so
/// future PRs can spot a kernel regression.
pub fn naive_matmul_into(a: &Matrix, rhs: &Matrix, out: &mut Matrix) {
    assert_eq!(a.cols(), rhs.rows(), "inner dimensions must agree");
    assert_eq!(out.shape(), (a.rows(), rhs.cols()), "output shape");
    out.as_mut_slice().fill(0.0);
    for i in 0..a.rows() {
        let a_row = a.row(i);
        for (k, &aik) in a_row.iter().enumerate() {
            if aik == 0.0 {
                continue;
            }
            let b_row = rhs.row(k);
            let out_row = out.row_mut(i);
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += aik * b;
            }
        }
    }
}

/// A deterministic dense test matrix with entries in roughly `[-1.5, 3]`.
pub fn test_matrix(rows: usize, cols: usize, salt: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |i, j| {
        ((i * 7 + j * 13 + salt * 5) % 17) as f64 * 0.27 - 1.5
    })
}

/// Mean seconds per call of `f` over `reps` timed repetitions (after one
/// warmup call).
pub fn time_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..reps.max(1) {
        f();
    }
    start.elapsed().as_secs_f64() / reps.max(1) as f64
}

/// GFLOP/s of an `n × n × n` matmul that took `secs` per call.
pub fn matmul_gflops(n: usize, secs: f64) -> f64 {
    2.0 * (n as f64).powi(3) / secs / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naive_and_blocked_agree() {
        let a = test_matrix(37, 29, 1);
        let b = test_matrix(29, 41, 2);
        let mut naive = Matrix::zeros(37, 41);
        naive_matmul_into(&a, &b, &mut naive);
        let blocked = a.matmul(&b);
        assert!(naive.max_abs_diff(&blocked) < 1e-12);
    }

    #[test]
    fn timer_returns_positive() {
        let secs = time_secs(3, || {
            std::hint::black_box((0..100).sum::<usize>());
        });
        assert!(secs >= 0.0);
        assert!(matmul_gflops(64, secs.max(1e-9)) > 0.0);
    }
}
