//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (Section 6). Each figure has a binary:
//!
//! | Binary | Reproduces | Paper section |
//! |--------|------------|---------------|
//! | `fig1` | sample complexity vs ε, 7 mechanisms × 6 workloads | §6.2, Figure 1 |
//! | `fig2` | sample complexity vs domain size n | §6.3, Figure 2 |
//! | `fig3a` | sample complexity on benchmark datasets (Prefix) | §6.4, Figure 3a |
//! | `fig3b` | optimized worst-case variance ratio vs m, 10 restarts | §6.5, Figure 3b |
//! | `fig3c` | per-iteration optimization time vs n | §6.6, Figure 3c |
//! | `fig4` | normalized variance with/without WNNLS | §6.7, Figure 4 |
//!
//! Table 1 (mechanisms as strategy matrices) is reproduced by the
//! `examples/table1_strategies.rs` binary and by entry-level unit tests in
//! `ldp-mechanisms`.
//!
//! All binaries print CSV to stdout with the same series names as the
//! paper's plots, accept `--quick` for a laptop-scale run (smaller n,
//! fewer iterations — the *shape* of every curve is preserved), and are
//! deterministic given `--seed`.

// Wall-clock reads are this harness's whole job.
#![allow(clippy::disallowed_methods)]
pub mod args;
pub mod baseline;
pub mod cells;
pub mod kernels;
pub mod report;

pub use args::Args;
pub use cells::{build_mechanism, mechanism_labels, MechanismKind, ALL_MECHANISMS};
