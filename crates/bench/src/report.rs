//! CSV emission helpers for the figure binaries.

use std::io::Write;

/// Writes a CSV header plus rows to a writer, flushing at the end.
///
/// # Panics
/// Panics on I/O errors (the binaries write to stdout) or if a row's
/// width disagrees with the header.
pub fn write_csv<W: Write>(out: &mut W, header: &[&str], rows: &[Vec<String>]) {
    writeln!(out, "{}", header.join(",")).expect("write header");
    for row in rows {
        assert_eq!(row.len(), header.len(), "row width must match header");
        writeln!(out, "{}", row.join(",")).expect("write row");
    }
    out.flush().expect("flush output");
}

/// Formats a float compactly for CSV (6 significant digits).
pub fn fmt(value: f64) -> String {
    if value == 0.0 {
        return "0".to_string();
    }
    if !value.is_finite() {
        return value.to_string();
    }
    format!("{value:.6e}")
}

/// Prints a small banner on stderr so progress is visible without
/// polluting the CSV on stdout.
pub fn banner(name: &str, detail: &str) {
    eprintln!("[{name}] {detail}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_roundtrip() {
        let mut buf = Vec::new();
        write_csv(
            &mut buf,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["x".into(), "y".into()]],
        );
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text, "a,b\n1,2\nx,y\n");
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt(0.0), "0");
        assert!(fmt(12345.678).contains('e'));
        assert_eq!(fmt(f64::INFINITY), "inf");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut buf = Vec::new();
        write_csv(&mut buf, &["a", "b"], &[vec!["1".into()]]);
    }
}
