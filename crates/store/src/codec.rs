//! The snapshot wire format: a versioned, checksummed binary envelope
//! with strict little-endian primitives.
//!
//! The build environment is offline, so there is no serde; the format is
//! specified here, entirely:
//!
//! ```text
//! envelope := magic:[4]u8 ("LDPS")
//!             version:u16                 (little-endian, currently 1)
//!             kind:u16                    (record type tag, see RecordKind)
//!             payload_len:u64
//!             payload:[payload_len]u8
//!             checksum:u64                (FNV-1a over everything above)
//! ```
//!
//! Decoding is **strict**: truncated input, a bad magic, an unknown
//! version or record kind, a checksum mismatch, and trailing bytes after
//! a complete record are all distinct typed [`StoreError`]s, never
//! panics and never silent acceptance. A snapshot that decodes at all is
//! therefore byte-for-byte the snapshot that was written.

use std::fmt;

use ldp_core::LdpError;
use ldp_linalg::stablehash::fnv1a64;

/// Magic bytes opening every record.
pub const MAGIC: [u8; 4] = *b"LDPS";

/// Current format version. Bump on any layout change; decoders reject
/// versions they do not understand rather than guessing.
pub const VERSION: u16 = 1;

/// Record type tags, so a strategy snapshot can never be mistakenly
/// decoded as an aggregator checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum RecordKind {
    /// An [`AggregatorShard`](ldp_core::AggregatorShard): bare counts.
    Shard = 1,
    /// A full [`Aggregator`](ldp_core::Aggregator): counts plus the
    /// reconstruction matrix.
    Aggregator = 2,
    /// An optimized strategy: the matrix plus the budget it was
    /// optimized for (a registry entry).
    Strategy = 3,
    /// A streaming-ingestion checkpoint: counts plus stream position and
    /// a deployment binding.
    Checkpoint = 4,
    /// A sparse (open-domain) ingestion checkpoint: sorted
    /// `(key-hash, count)` pairs plus stream position and a deployment
    /// binding. Encoded and decoded by `ldp-sparse`'s snapshot module;
    /// the tag lives here so the record-kind namespace has one owner.
    SparseCheckpoint = 5,
}

impl RecordKind {
    /// The tag as written on the wire (the header's `kind:u16` field).
    /// Every encode/compare site goes through here, so the enum-to-layout
    /// cast exists exactly once.
    fn wire_tag(self) -> u16 {
        // ldp-lint: allow(codec-layout-discipline) -- the `#[repr(u16)]`
        // discriminant *is* the wire tag; this is the one sanctioned cast.
        self as u16
    }
}

/// Decodes up to 8 little-endian bytes into a `u64`. Callers guarantee
/// `b.len() == 8` (via `take(8)` or explicit bounds checks); a shorter
/// slice zero-extends instead of panicking, keeping the decode path free
/// of panic branches.
fn u64_le(b: &[u8]) -> u64 {
    let mut buf = [0u8; 8];
    let n = b.len().min(8);
    buf[..n].copy_from_slice(&b[..n]);
    u64::from_le_bytes(buf)
}

/// Errors raised by snapshot encoding/decoding and the strategy registry.
#[derive(Clone, Debug, PartialEq)]
pub enum StoreError {
    /// The input ended before a complete record was read.
    Truncated {
        /// Bytes the decoder needed next.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// The input does not start with the `LDPS` magic.
    BadMagic,
    /// The record's format version is not supported by this build.
    UnsupportedVersion {
        /// Version found in the record.
        found: u16,
        /// Version this build writes and reads.
        supported: u16,
    },
    /// The record is of a different type than the decoder expected.
    WrongKind {
        /// Kind tag expected by the caller.
        expected: u16,
        /// Kind tag found in the record.
        found: u16,
    },
    /// The checksum does not match the record contents (corruption).
    ChecksumMismatch {
        /// Checksum stored in the record.
        stored: u64,
        /// Checksum recomputed over the received bytes.
        computed: u64,
    },
    /// Structurally invalid payload (bad lengths, inconsistent
    /// dimensions, trailing bytes).
    Malformed(String),
    /// A checkpoint decoded cleanly but is bound to a *different*
    /// deployment — its binding fingerprint (workload schema/queries,
    /// mechanism dimensions, budget, reconstruction bits) disagrees with
    /// the deployment trying to resume it. Resuming would silently pair
    /// counts with the wrong reconstruction, so this fails closed.
    BindingMismatch {
        /// Binding fingerprint carried by the checkpoint.
        checkpoint: u64,
        /// Binding fingerprint of the resuming deployment.
        deployment: u64,
    },
    /// Filesystem failure in the registry (message carries the
    /// `std::io::Error` text).
    Io(String),
    /// A decoded object failed domain validation, or optimization inside
    /// [`StrategyRegistry`](crate::StrategyRegistry) failed.
    Mechanism(LdpError),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Truncated { needed, remaining } => write!(
                f,
                "snapshot truncated: needed {needed} more bytes, {remaining} remain"
            ),
            StoreError::BadMagic => write!(f, "not a snapshot: bad magic bytes"),
            StoreError::UnsupportedVersion { found, supported } => write!(
                f,
                "unsupported snapshot version {found} (this build supports {supported})"
            ),
            StoreError::WrongKind { expected, found } => write!(
                f,
                "wrong record kind: expected tag {expected}, found {found}"
            ),
            StoreError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot corrupt: stored checksum {stored:#018x}, computed {computed:#018x}"
            ),
            StoreError::Malformed(msg) => write!(f, "malformed snapshot payload: {msg}"),
            StoreError::BindingMismatch {
                checkpoint,
                deployment,
            } => write!(
                f,
                "checkpoint was written by a different deployment \
                 (binding {checkpoint:#018x}, this deployment is {deployment:#018x})"
            ),
            StoreError::Io(msg) => write!(f, "registry I/O failure: {msg}"),
            StoreError::Mechanism(e) => write!(f, "decoded state failed validation: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<LdpError> for StoreError {
    fn from(e: LdpError) -> Self {
        StoreError::Mechanism(e)
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e.to_string())
    }
}

/// Builds a record payload out of little-endian primitives.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty payload writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer whose buffer is pre-sized for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a `u64` (little-endian).
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` by exact bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed `u64` slice.
    pub fn put_u64s(&mut self, vs: &[u64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_u64(v);
        }
    }

    /// Appends a length-prefixed `f64` slice (exact bit patterns).
    pub fn put_f64s(&mut self, vs: &[f64]) {
        self.put_u64(vs.len() as u64);
        for &v in vs {
            self.put_f64(v);
        }
    }

    /// Seals the payload into a complete checksummed record of the given
    /// kind.
    pub fn seal(self, kind: RecordKind) -> Vec<u8> {
        let payload = self.buf;
        let mut out = Vec::with_capacity(payload.len() + 24);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&kind.wire_tag().to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let checksum = fnv1a64(&out);
        out.extend_from_slice(&checksum.to_le_bytes());
        out
    }
}

/// Strict cursor over a record payload.
#[derive(Debug)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let remaining = self.bytes.len() - self.pos;
        if remaining < n {
            return Err(StoreError::Truncated {
                needed: n,
                remaining,
            });
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads a `u64`.
    ///
    /// # Errors
    /// [`StoreError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_u64(&mut self) -> Result<u64, StoreError> {
        let b = self.take(8)?;
        Ok(u64_le(b))
    }

    /// Reads an `f64` by exact bit pattern.
    ///
    /// # Errors
    /// [`StoreError::Truncated`] if fewer than 8 bytes remain.
    pub fn get_f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a `u64` and checks it fits in `usize` and is at most
    /// `limit` — length fields are validated before any allocation, so a
    /// corrupt length can never trigger a huge reservation.
    ///
    /// # Errors
    /// [`StoreError::Malformed`] for lengths beyond `limit`.
    pub fn get_len(&mut self, limit: usize, what: &str) -> Result<usize, StoreError> {
        let raw = self.get_u64()?;
        let len = usize::try_from(raw)
            .map_err(|_| StoreError::Malformed(format!("{what} length {raw} overflows usize")))?;
        if len > limit {
            return Err(StoreError::Malformed(format!(
                "{what} length {len} exceeds limit {limit}"
            )));
        }
        Ok(len)
    }

    /// Reads a length-prefixed `u64` slice.
    ///
    /// # Errors
    /// Truncation or a length exceeding the remaining payload.
    pub fn get_u64s(&mut self, what: &str) -> Result<Vec<u64>, StoreError> {
        let len = self.get_len((self.bytes.len() - self.pos) / 8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_u64()?);
        }
        Ok(out)
    }

    /// Reads a length-prefixed `f64` slice (exact bit patterns).
    ///
    /// # Errors
    /// Truncation or a length exceeding the remaining payload.
    pub fn get_f64s(&mut self, what: &str) -> Result<Vec<f64>, StoreError> {
        let len = self.get_len((self.bytes.len() - self.pos) / 8, what)?;
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.get_f64()?);
        }
        Ok(out)
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    /// [`StoreError::Malformed`] if bytes remain — a record carrying
    /// extra data is not the record that was encoded.
    pub fn finish(self) -> Result<(), StoreError> {
        if self.pos != self.bytes.len() {
            return Err(StoreError::Malformed(format!(
                "{} trailing payload bytes",
                self.bytes.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Verifies a record's envelope (magic, version, kind, length, checksum)
/// and returns a strict [`Reader`] over its payload.
///
/// # Errors
/// Every envelope defect maps to its own [`StoreError`] variant; see the
/// module docs for the exhaustive list.
pub fn open(bytes: &[u8], expected: RecordKind) -> Result<Reader<'_>, StoreError> {
    const HEADER: usize = 4 + 2 + 2 + 8;
    if bytes.len() < HEADER + 8 {
        return Err(StoreError::Truncated {
            needed: HEADER + 8,
            remaining: bytes.len(),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != VERSION {
        return Err(StoreError::UnsupportedVersion {
            found: version,
            supported: VERSION,
        });
    }
    let kind_raw = u16::from_le_bytes([bytes[6], bytes[7]]);
    let payload_len = u64_le(&bytes[8..16]) as usize;
    let total = HEADER
        .checked_add(payload_len)
        .and_then(|t| t.checked_add(8))
        .ok_or_else(|| StoreError::Malformed("payload length overflows".into()))?;
    if bytes.len() < total {
        return Err(StoreError::Truncated {
            needed: total,
            remaining: bytes.len(),
        });
    }
    if bytes.len() > total {
        return Err(StoreError::Malformed(format!(
            "{} trailing bytes after record",
            bytes.len() - total
        )));
    }
    let stored = u64_le(&bytes[total - 8..]);
    let computed = fnv1a64(&bytes[..total - 8]);
    if stored != computed {
        return Err(StoreError::ChecksumMismatch { stored, computed });
    }
    // Kind is checked *after* the checksum so a bit flip in the tag reads
    // as corruption, not as a confusing wrong-kind report; past this
    // point a mismatched tag really is a caller/record type confusion.
    if kind_raw != expected.wire_tag() {
        return Err(StoreError::WrongKind {
            expected: expected.wire_tag(),
            found: kind_raw,
        });
    }
    Ok(Reader {
        bytes: &bytes[HEADER..total - 8],
        pos: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_record() -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(7);
        w.put_f64s(&[1.5, -0.0, f64::INFINITY]);
        w.seal(RecordKind::Shard)
    }

    #[test]
    fn round_trip() {
        let rec = sample_record();
        let mut r = open(&rec, RecordKind::Shard).unwrap();
        assert_eq!(r.get_u64().unwrap(), 7);
        let vs = r.get_f64s("vals").unwrap();
        assert_eq!(vs.len(), 3);
        assert_eq!(vs[0], 1.5);
        assert!(vs[1] == 0.0 && vs[1].is_sign_negative());
        assert_eq!(vs[2], f64::INFINITY);
        r.finish().unwrap();
    }

    #[test]
    fn every_truncation_is_a_typed_error() {
        let rec = sample_record();
        for len in 0..rec.len() {
            let err = open(&rec[..len], RecordKind::Shard).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. }),
                "truncation at {len} gave {err:?}"
            );
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let rec = sample_record();
        for byte in 0..rec.len() {
            for bit in 0..8 {
                let mut corrupt = rec.clone();
                corrupt[byte] ^= 1 << bit;
                assert!(
                    open(&corrupt, RecordKind::Shard).is_err(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
    }

    #[test]
    fn version_mismatch_is_typed() {
        let mut rec = sample_record();
        rec[4] = 0x2a; // version low byte
                       // Recompute the checksum so only the version differs.
        let body = rec.len() - 8;
        let sum = fnv1a64(&rec[..body]);
        rec[body..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            open(&rec, RecordKind::Shard).unwrap_err(),
            StoreError::UnsupportedVersion {
                found: 0x2a,
                supported: VERSION
            }
        );
    }

    #[test]
    fn wrong_kind_is_typed() {
        let rec = sample_record();
        let err = open(&rec, RecordKind::Strategy).unwrap_err();
        assert_eq!(
            err,
            StoreError::WrongKind {
                expected: RecordKind::Strategy as u16,
                found: RecordKind::Shard as u16
            }
        );
    }

    #[test]
    fn kind_bit_flip_reads_as_corruption_not_wrong_kind() {
        // A flipped kind byte in an otherwise-valid record must be
        // reported as a checksum failure (storage rot), not as the
        // caller passing the wrong record type.
        let mut rec = sample_record();
        rec[6] ^= 0x04; // Shard (1) -> 5
        assert!(matches!(
            open(&rec, RecordKind::Shard).unwrap_err(),
            StoreError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut rec = sample_record();
        rec.push(0);
        assert!(matches!(
            open(&rec, RecordKind::Shard).unwrap_err(),
            StoreError::Malformed(_)
        ));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut rec = sample_record();
        rec[0] = b'X';
        assert_eq!(
            open(&rec, RecordKind::Shard).unwrap_err(),
            StoreError::BadMagic
        );
    }

    #[test]
    fn corrupt_inner_length_cannot_overallocate() {
        // A payload claiming a giant slice length must be rejected by the
        // length guard, not by attempting the allocation. Build a payload
        // whose length prefix exceeds the remaining bytes.
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // absurd length prefix with no data behind it
        let rec = w.seal(RecordKind::Shard);
        let mut r = open(&rec, RecordKind::Shard).unwrap();
        assert!(matches!(
            r.get_u64s("counts").unwrap_err(),
            StoreError::Malformed(_)
        ));
    }

    #[test]
    fn error_display_is_informative() {
        let e = StoreError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("corrupt"));
        let e = StoreError::Truncated {
            needed: 8,
            remaining: 3,
        };
        assert!(e.to_string().contains('3'));
    }
}
