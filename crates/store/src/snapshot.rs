//! Snapshot records for the aggregation state machine: shards,
//! aggregators, optimized strategies, and streaming-ingestion
//! checkpoints.
//!
//! Counts are persisted as the exact `u64`s the protocol collects and
//! matrices by exact `f64` bit pattern, so a decode is bit-identical to
//! the state that was encoded — the estimates computed after a resume
//! are byte-equal to the ones an uninterrupted run would produce.

use ldp_core::{Aggregator, AggregatorShard, StrategyMatrix};
use ldp_linalg::Matrix;

use crate::codec::{open, Reader, RecordKind, StoreError, Writer};

/// Largest matrix side length a decoder will accept (keeps a corrupt
/// header from requesting a multi-terabyte allocation; n = 4096 with
/// m = 4n is comfortably inside).
const MAX_DIM: usize = 1 << 24;

pub(crate) fn put_matrix(w: &mut Writer, m: &Matrix) {
    w.put_u64(m.rows() as u64);
    w.put_u64(m.cols() as u64);
    for &v in m.as_slice() {
        w.put_f64(v);
    }
}

pub(crate) fn get_matrix(r: &mut Reader<'_>, what: &str) -> Result<Matrix, StoreError> {
    let rows = r.get_len(MAX_DIM, what)?;
    let cols = r.get_len(MAX_DIM, what)?;
    let len = rows.checked_mul(cols).ok_or_else(|| {
        StoreError::Malformed(format!("{what} dimensions {rows}x{cols} overflow"))
    })?;
    let mut data = Vec::with_capacity(len.min(1 << 20));
    for _ in 0..len {
        data.push(r.get_f64()?);
    }
    Ok(Matrix::from_vec(rows, cols, data))
}

/// Encodes a shard's exact integer counts.
pub fn encode_shard(shard: &AggregatorShard) -> Vec<u8> {
    let mut w = Writer::with_capacity(8 * (shard.num_outputs() + 4));
    w.put_u64s(shard.counts());
    w.seal(RecordKind::Shard)
}

/// Decodes a shard snapshot.
///
/// # Errors
/// Any envelope or payload defect, as a typed [`StoreError`].
pub fn decode_shard(bytes: &[u8]) -> Result<AggregatorShard, StoreError> {
    let mut r = open(bytes, RecordKind::Shard)?;
    let counts = r.get_u64s("shard counts")?;
    r.finish()?;
    Ok(AggregatorShard::from_counts(counts))
}

/// Encodes a full aggregator: counts plus the reconstruction matrix, so
/// the decoded aggregator can produce estimates standalone.
pub fn encode_aggregator(agg: &Aggregator) -> Vec<u8> {
    let k = agg.reconstruction();
    let mut w = Writer::with_capacity(8 * (agg.counts().len() + k.rows() * k.cols() + 8));
    w.put_u64s(agg.counts());
    put_matrix(&mut w, k);
    w.seal(RecordKind::Aggregator)
}

/// Decodes an aggregator snapshot, revalidating that the counts match
/// the reconstruction's output dimension.
///
/// # Errors
/// Any envelope or payload defect; [`StoreError::Mechanism`] if the
/// decoded pieces disagree dimensionally.
pub fn decode_aggregator(bytes: &[u8]) -> Result<Aggregator, StoreError> {
    let mut r = open(bytes, RecordKind::Aggregator)?;
    let counts = r.get_u64s("aggregator counts")?;
    let k = get_matrix(&mut r, "reconstruction matrix")?;
    r.finish()?;
    Ok(Aggregator::from_parts(
        k,
        AggregatorShard::from_counts(counts),
    )?)
}

/// Encodes an optimized strategy together with the privacy budget it was
/// optimized for — the registry's on-disk entry.
pub fn encode_strategy(strategy: &StrategyMatrix, epsilon: f64) -> Vec<u8> {
    let q = strategy.matrix();
    let mut w = Writer::with_capacity(8 * (q.rows() * q.cols() + 6));
    w.put_f64(epsilon);
    put_matrix(&mut w, q);
    w.seal(RecordKind::Strategy)
}

/// Decodes a strategy snapshot, re-running full [`StrategyMatrix`]
/// validation (column stochasticity, probability bounds) on the decoded
/// matrix — a registry entry that passes both the checksum and this
/// validation is exactly the strategy that was optimized.
///
/// # Errors
/// Any envelope or payload defect; [`StoreError::Mechanism`] if the
/// decoded matrix is no longer a valid strategy.
pub fn decode_strategy(bytes: &[u8]) -> Result<(StrategyMatrix, f64), StoreError> {
    let mut r = open(bytes, RecordKind::Strategy)?;
    let epsilon = r.get_f64()?;
    let q = get_matrix(&mut r, "strategy matrix")?;
    r.finish()?;
    Ok((StrategyMatrix::new(q)?, epsilon))
}

/// A streaming-ingestion checkpoint: the exact aggregation counts plus
/// the stream position (epoch and batch index) and a binding fingerprint
/// of the deployment that wrote it, so a checkpoint can never be resumed
/// into a different mechanism.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IngestCheckpoint {
    /// Checkpoint generation: incremented on every `checkpoint()` call.
    pub epoch: u64,
    /// Batches ingested since the stream started.
    pub batches: u64,
    /// Exact per-output report counts at the checkpoint.
    pub counts: Vec<u64>,
    /// Stable fingerprint of the deployment (mechanism dimensions,
    /// budget, and reconstruction bits) that produced the counts.
    pub binding: u64,
}

/// Encodes a streaming checkpoint.
pub fn encode_checkpoint(cp: &IngestCheckpoint) -> Vec<u8> {
    let mut w = Writer::with_capacity(8 * (cp.counts.len() + 6));
    w.put_u64(cp.epoch);
    w.put_u64(cp.batches);
    w.put_u64(cp.binding);
    w.put_u64s(&cp.counts);
    w.seal(RecordKind::Checkpoint)
}

/// Decodes a streaming checkpoint.
///
/// # Errors
/// Any envelope or payload defect, as a typed [`StoreError`].
pub fn decode_checkpoint(bytes: &[u8]) -> Result<IngestCheckpoint, StoreError> {
    let mut r = open(bytes, RecordKind::Checkpoint)?;
    let epoch = r.get_u64()?;
    let batches = r.get_u64()?;
    let binding = r.get_u64()?;
    let counts = r.get_u64s("checkpoint counts")?;
    r.finish()?;
    Ok(IngestCheckpoint {
        epoch,
        batches,
        counts,
        binding,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_round_trip_is_exact() {
        let mut shard = AggregatorShard::new(5);
        shard.ingest_batch(&[0, 4, 4, 2, 1, 1, 1]).unwrap();
        let decoded = decode_shard(&encode_shard(&shard)).unwrap();
        assert_eq!(decoded, shard);
    }

    #[test]
    fn aggregator_round_trip_preserves_estimates_bitwise() {
        let k = Matrix::from_fn(3, 4, |i, j| (i * 4 + j) as f64 * 0.37 - 0.5);
        let mut agg = Aggregator::from_reconstruction(k);
        agg.ingest_batch(&[0, 1, 2, 3, 3, 3, 1]).unwrap();
        let decoded = decode_aggregator(&encode_aggregator(&agg)).unwrap();
        assert_eq!(decoded.counts(), agg.counts());
        assert_eq!(decoded.estimate(), agg.estimate());
        assert_eq!(
            decoded.reconstruction().as_slice(),
            agg.reconstruction().as_slice()
        );
    }

    #[test]
    fn strategy_round_trip_is_bit_identical() {
        let e = 1.25_f64.exp();
        let z = e + 2.0;
        let q = Matrix::from_fn(3, 3, |o, u| if o == u { e / z } else { 1.0 / z });
        let s = StrategyMatrix::new(q).unwrap();
        let bytes = encode_strategy(&s, 1.25);
        let (decoded, eps) = decode_strategy(&bytes).unwrap();
        assert_eq!(eps.to_bits(), 1.25f64.to_bits());
        assert_eq!(decoded.matrix().as_slice(), s.matrix().as_slice());
    }

    #[test]
    fn strategy_decode_revalidates_stochasticity() {
        // Hand-build a Strategy record whose matrix is not column
        // stochastic: the envelope is valid, domain validation rejects.
        let mut w = Writer::new();
        w.put_f64(1.0);
        put_matrix(&mut w, &Matrix::filled(2, 2, 0.9));
        let bytes = w.seal(RecordKind::Strategy);
        assert!(matches!(
            decode_strategy(&bytes).unwrap_err(),
            StoreError::Mechanism(_)
        ));
    }

    #[test]
    fn checkpoint_round_trip() {
        let cp = IngestCheckpoint {
            epoch: 3,
            batches: 17,
            counts: vec![5, 0, 9, 2],
            binding: 0xdead_beef_cafe_f00d,
        };
        assert_eq!(decode_checkpoint(&encode_checkpoint(&cp)).unwrap(), cp);
    }

    #[test]
    fn records_do_not_cross_decode() {
        let shard = AggregatorShard::from_counts(vec![1, 2, 3]);
        let bytes = encode_shard(&shard);
        assert!(matches!(
            decode_checkpoint(&bytes).unwrap_err(),
            StoreError::WrongKind { .. }
        ));
        assert!(matches!(
            decode_strategy(&bytes).unwrap_err(),
            StoreError::WrongKind { .. }
        ));
    }

    #[test]
    fn aggregator_decode_rejects_dimension_mismatch() {
        // Counts length disagreeing with K's columns must be caught by
        // revalidation even though the envelope is intact.
        let mut w = Writer::new();
        w.put_u64s(&[1, 2, 3]); // 3 counts
        put_matrix(&mut w, &Matrix::identity(2)); // K expects 2 outputs
        let bytes = w.seal(RecordKind::Aggregator);
        assert!(matches!(
            decode_aggregator(&bytes).unwrap_err(),
            StoreError::Mechanism(_)
        ));
    }
}
