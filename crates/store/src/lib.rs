//! Durability layer for LDP deployments: snapshots and a strategy
//! registry.
//!
//! The paper's mechanism splits into a one-time, expensive strategy
//! optimization and cheap per-report collection. A service that restarts
//! must not repeat the expensive half or lose the cheap half's state, so
//! this crate persists both:
//!
//! * [`codec`] — the wire format: a versioned, checksummed binary
//!   envelope (magic `LDPS`, explicit little-endian layout — no serde;
//!   the build environment is offline) with **strict** decoding:
//!   truncation, bit flips, version or kind mismatches, and trailing
//!   bytes each produce a distinct typed [`StoreError`].
//! * [`snapshot`] — records for the aggregation state machine:
//!   [`AggregatorShard`](ldp_core::AggregatorShard) counts,
//!   full [`Aggregator`](ldp_core::Aggregator)s, optimized strategies,
//!   and streaming-ingestion checkpoints ([`IngestCheckpoint`]). Counts
//!   are exact `u64`s and matrices exact `f64` bit patterns, so decoded
//!   state is bit-identical to what was encoded.
//! * [`registry`] — the [`StrategyRegistry`]: optimized strategies
//!   content-addressed by a stable [`Fingerprint`] of
//!   `(workload, ε, OptimizerConfig)`. Repeat deployments skip PGD
//!   entirely and warm-start from disk with bit-identical strategy
//!   matrices.
//!
//! The deployment-facing integration — checkpoint/resume streaming
//! ingestion and the registry-backed `Pipeline::optimized_cached` — lives
//! in the root `ldp` crate's pipeline module; this crate stays
//! independent of the pipeline so lower layers (bench harnesses,
//! external services) can persist state directly.

pub mod codec;
pub mod registry;
pub mod snapshot;

pub use codec::{RecordKind, StoreError};
pub use registry::{CacheOutcome, Fingerprint, StrategyRegistry};
pub use snapshot::{
    decode_aggregator, decode_checkpoint, decode_shard, decode_strategy, encode_aggregator,
    encode_checkpoint, encode_shard, encode_strategy, IngestCheckpoint,
};
