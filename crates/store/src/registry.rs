//! Content-addressed persistence for optimized strategies.
//!
//! Strategy optimization (Algorithm 2) is the expensive, one-time half
//! of the paper's mechanism; per-report collection is the cheap half. A
//! production service therefore treats the optimized strategy as a
//! reusable artifact: the [`StrategyRegistry`] addresses each strategy
//! by a stable fingerprint of *exactly the inputs that determine the
//! optimizer's output* — the workload (through its Gram operator), the
//! domain size, the privacy budget, and every [`OptimizerConfig`] field
//! — and replays it from disk on repeat deployments.
//!
//! Because PGD is deterministic given those inputs (seeded
//! initialization, thread-count-invariant restarts), a warm hit is not
//! an approximation: the decoded strategy is **bit-identical** to the
//! one a fresh optimization would produce, so warm and cold deployments
//! are indistinguishable downstream.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use ldp_core::{LdpError, StrategyMatrix};
use ldp_linalg::stablehash::Fnv64;
use ldp_linalg::Gram;
use ldp_opt::{optimize_strategy, OptimizerConfig};
use ldp_workloads::Workload;

use crate::codec::StoreError;
use crate::snapshot::{decode_strategy, encode_strategy};

/// A 128-bit content address: two independent FNV-1a streams over the
/// same token sequence. 64 bits would already make accidental collisions
/// implausible within one registry; doubling is cheap insurance for a
/// key that silently selects a mechanism.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Fingerprint {
    hi: u64,
    lo: u64,
}

impl Fingerprint {
    /// The fingerprint of a `(workload, ε, optimizer config)` triple.
    pub fn of(workload: &dyn Workload, epsilon: f64, config: &OptimizerConfig) -> Self {
        Self::with_gram(workload, &workload.gram(), epsilon, config)
    }

    /// [`Fingerprint::of`] for a caller that already constructed the
    /// workload's Gram operator — avoids rebuilding it (Gram assembly is
    /// real work for dense/marginal workloads). `gram` must be the
    /// workload's own [`Workload::gram`], whose entry bits are
    /// backend-independent by that method's contract — a dense operator
    /// materialized under the ambient kernel backend would key
    /// differently across hosts and orphan every cached strategy.
    pub fn with_gram(
        workload: &dyn Workload,
        gram: &Gram,
        epsilon: f64,
        config: &OptimizerConfig,
    ) -> Self {
        let tokens = [
            workload.fingerprint_with_gram(gram),
            workload.domain_size() as u64,
            epsilon.to_bits(),
            config.fingerprint(),
        ];
        let mut hi = Fnv64::new();
        let mut lo = Fnv64::with_basis(0x9e37_79b9_7f4a_7c15);
        for h in [&mut hi, &mut lo] {
            h.write_str("ldp-strategy-key/1");
            for &t in &tokens {
                h.write_u64(t);
            }
        }
        Self {
            hi: hi.finish(),
            lo: lo.finish(),
        }
    }

    /// The 32-hex-digit file stem for this fingerprint.
    pub fn hex(&self) -> String {
        format!("{:016x}{:016x}", self.hi, self.lo)
    }
}

/// Whether a registry lookup reused a persisted strategy or had to run
/// the optimizer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The strategy was decoded from disk; PGD was skipped entirely.
    Warm,
    /// No (valid) entry existed; the optimizer ran and the result was
    /// persisted.
    Cold,
}

/// A directory of optimized strategies addressed by [`Fingerprint`].
///
/// ```no_run
/// use ldp_opt::OptimizerConfig;
/// use ldp_store::{CacheOutcome, StrategyRegistry};
/// use ldp_workloads::Prefix;
///
/// let registry = StrategyRegistry::open("strategies")?;
/// let (s1, o1) = registry.get_or_optimize(&Prefix::new(64), 1.0, &OptimizerConfig::new(7))?;
/// let (s2, o2) = registry.get_or_optimize(&Prefix::new(64), 1.0, &OptimizerConfig::new(7))?;
/// assert_eq!(o1, CacheOutcome::Cold);
/// assert_eq!(o2, CacheOutcome::Warm);
/// // The warm hit is bit-identical, not merely equivalent.
/// assert_eq!(s1.matrix().as_slice(), s2.matrix().as_slice());
/// # Ok::<(), ldp_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct StrategyRegistry {
    root: PathBuf,
}

/// Monotonic suffix so concurrent writers in one process never collide
/// on a temp file name (cross-process uniqueness comes from the pid).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

impl StrategyRegistry {
    /// Opens (creating if needed) a registry rooted at `dir`.
    ///
    /// # Errors
    /// [`StoreError::Io`] if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(Self { root })
    }

    /// The directory this registry persists into.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn entry_path(&self, key: Fingerprint) -> PathBuf {
        self.root.join(format!("{}.ldps", key.hex()))
    }

    /// Loads the strategy stored under `key`, if any. A present-but-
    /// corrupt entry is an error, not a silent miss — an operator should
    /// see storage rot, not mysteriously slow deploys.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failure, or any decode error for
    /// a corrupt entry.
    pub fn load(&self, key: Fingerprint) -> Result<Option<(StrategyMatrix, f64)>, StoreError> {
        let path = self.entry_path(key);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        decode_strategy(&bytes).map(Some)
    }

    /// Persists `strategy` under `key`, atomically (temp file + rename),
    /// so a crash mid-write can never leave a half-record a later decode
    /// would have to reject.
    ///
    /// # Errors
    /// [`StoreError::Io`] on filesystem failure.
    pub fn store(
        &self,
        key: Fingerprint,
        strategy: &StrategyMatrix,
        epsilon: f64,
    ) -> Result<(), StoreError> {
        let bytes = encode_strategy(strategy, epsilon);
        let final_path = self.entry_path(key);
        let tmp = self.root.join(format!(
            "{}.tmp.{}.{}",
            key.hex(),
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        fs::write(&tmp, &bytes)?;
        match fs::rename(&tmp, &final_path) {
            Ok(()) => Ok(()),
            Err(e) => {
                let _ = fs::remove_file(&tmp);
                Err(e.into())
            }
        }
    }

    /// The heart of durable deployment: returns the optimized strategy
    /// for `(workload, epsilon, config)`, running PGD only on a cache
    /// miss and persisting the result for every future deployment.
    ///
    /// On a warm hit the optimizer is **skipped entirely** and the
    /// returned strategy is bit-identical to what a fresh optimization
    /// would produce (asserted in `tests/durability.rs`). The stored
    /// budget is cross-checked against the requested one as a defense in
    /// depth against key collisions.
    ///
    /// # Errors
    /// [`StoreError::Mechanism`] wrapping optimizer failures (including
    /// [`LdpError::InvalidEpsilon`], checked before any disk or
    /// optimizer work), I/O and decode errors from the registry itself.
    pub fn get_or_optimize(
        &self,
        workload: &dyn Workload,
        epsilon: f64,
        config: &OptimizerConfig,
    ) -> Result<(StrategyMatrix, CacheOutcome), StoreError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(LdpError::InvalidEpsilon(epsilon).into());
        }
        let gram = workload.gram();
        let key = Fingerprint::with_gram(workload, &gram, epsilon, config);
        self.get_or_optimize_keyed(key, &gram, epsilon, config)
    }

    /// [`StrategyRegistry::get_or_optimize`] for a caller that already
    /// holds the workload's Gram operator and its [`Fingerprint`] — the
    /// pipeline uses this so a deployment constructs the Gram exactly
    /// once across keying, optimization, and assembly.
    ///
    /// # Errors
    /// As [`StrategyRegistry::get_or_optimize`].
    pub fn get_or_optimize_keyed(
        &self,
        key: Fingerprint,
        gram: &Gram,
        epsilon: f64,
        config: &OptimizerConfig,
    ) -> Result<(StrategyMatrix, CacheOutcome), StoreError> {
        if !epsilon.is_finite() || epsilon <= 0.0 {
            return Err(LdpError::InvalidEpsilon(epsilon).into());
        }
        if let Some((strategy, stored_eps)) = self.load(key)? {
            if stored_eps.to_bits() != epsilon.to_bits() {
                return Err(StoreError::Malformed(format!(
                    "registry entry {} stores budget {stored_eps}, requested {epsilon}",
                    key.hex()
                )));
            }
            return Ok((strategy, CacheOutcome::Warm));
        }
        let result = optimize_strategy(gram, epsilon, config)?;
        self.store(key, &result.strategy, epsilon)?;
        Ok((result.strategy, CacheOutcome::Cold))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ldp_workloads::{Histogram, Prefix};

    fn temp_registry(tag: &str) -> StrategyRegistry {
        let dir = std::env::temp_dir().join(format!(
            "ldp-store-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        StrategyRegistry::open(dir).unwrap()
    }

    #[test]
    fn fingerprint_separates_all_key_components() {
        let cfg = OptimizerConfig::quick(1);
        let base = Fingerprint::of(&Prefix::new(8), 1.0, &cfg);
        assert_eq!(base, Fingerprint::of(&Prefix::new(8), 1.0, &cfg));
        assert_ne!(base, Fingerprint::of(&Prefix::new(16), 1.0, &cfg));
        assert_ne!(base, Fingerprint::of(&Histogram::new(8), 1.0, &cfg));
        assert_ne!(base, Fingerprint::of(&Prefix::new(8), 2.0, &cfg));
        assert_ne!(
            base,
            Fingerprint::of(&Prefix::new(8), 1.0, &OptimizerConfig::quick(2))
        );
        assert_eq!(base.hex().len(), 32);
    }

    #[test]
    fn cold_then_warm_with_identical_bits() {
        let reg = temp_registry("warm");
        let cfg = OptimizerConfig {
            iterations: 15,
            search_iterations: 3,
            ..OptimizerConfig::quick(3)
        };
        let w = Prefix::new(6);
        let (cold, o1) = reg.get_or_optimize(&w, 1.0, &cfg).unwrap();
        assert_eq!(o1, CacheOutcome::Cold);
        let (warm, o2) = reg.get_or_optimize(&w, 1.0, &cfg).unwrap();
        assert_eq!(o2, CacheOutcome::Warm);
        assert_eq!(warm.matrix().as_slice(), cold.matrix().as_slice());
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn corrupt_entry_is_an_error_not_a_miss() {
        let reg = temp_registry("corrupt");
        let cfg = OptimizerConfig {
            iterations: 10,
            search_iterations: 2,
            ..OptimizerConfig::quick(4)
        };
        let w = Histogram::new(4);
        reg.get_or_optimize(&w, 1.0, &cfg).unwrap();
        let key = Fingerprint::of(&w, 1.0, &cfg);
        let path = reg.entry_path(key);
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(reg.get_or_optimize(&w, 1.0, &cfg).is_err());
        let _ = fs::remove_dir_all(reg.root());
    }

    #[test]
    fn invalid_epsilon_rejected_before_any_work() {
        let reg = temp_registry("eps");
        let cfg = OptimizerConfig::quick(5);
        for eps in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = reg.get_or_optimize(&Histogram::new(4), eps, &cfg);
            assert!(
                matches!(err, Err(StoreError::Mechanism(LdpError::InvalidEpsilon(_)))),
                "eps {eps} gave {err:?}"
            );
        }
        let _ = fs::remove_dir_all(reg.root());
    }
}
