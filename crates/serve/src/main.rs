//! `ldp-served` — the packaged LDP serving daemon.
//!
//! ```text
//! ldp-served --addr 127.0.0.1:7700 --dir ./snapshots \
//!     --deploy survey:color=3,size=2:eps=1.0:baseline=rr
//! ```
//!
//! Each `--deploy` hosts one schema'd deployment whose workload is the
//! full contingency table over its attributes plus the total count. The
//! daemon prints `ldp-served listening on ADDR` once it accepts
//! connections (tooling parses this line to learn an ephemeral port),
//! resumes any snapshot found under `--dir`, and exits when a client
//! sends `Shutdown` — persisting final snapshots on the way out.

use std::path::PathBuf;
use std::process::ExitCode;

use ldp::prelude::*;
use ldp_serve::{Server, ServerConfig};

const USAGE: &str = "\
usage: ldp-served [OPTIONS] --deploy SPEC [--deploy SPEC ...]

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral port)
  --dir DIR          snapshot directory; enables checkpoint persistence
                     and resume-on-start
  --workers N        connection worker threads (default: compute pool size)

deploy spec:
  NAME:attr=K,attr=K[,...][:eps=F][:baseline=rr|hadamard|hier]
  e.g.  survey:color=3,size=2:eps=1.0:baseline=rr
  The deployed workload is the full contingency table over the listed
  attributes plus the total count; ad-hoc queries may ask anything the
  schema can express.
";

struct DeploySpec {
    name: String,
    attributes: Vec<(String, usize)>,
    epsilon: f64,
    baseline: Baseline,
}

fn parse_deploy(spec: &str) -> Result<DeploySpec, String> {
    let mut parts = spec.split(':');
    let name = parts
        .next()
        .filter(|n| !n.is_empty())
        .ok_or_else(|| format!("deploy spec {spec:?}: missing name"))?
        .to_string();
    let schema_part = parts
        .next()
        .ok_or_else(|| format!("deploy spec {spec:?}: missing schema (attr=K,...)"))?;
    let mut attributes = Vec::new();
    for pair in schema_part.split(',') {
        let (attr, k) = pair
            .split_once('=')
            .ok_or_else(|| format!("deploy spec {spec:?}: bad attribute {pair:?}"))?;
        let k: usize = k
            .parse()
            .map_err(|_| format!("deploy spec {spec:?}: bad cardinality {k:?}"))?;
        attributes.push((attr.to_string(), k));
    }
    if attributes.is_empty() {
        return Err(format!("deploy spec {spec:?}: empty schema"));
    }
    let mut epsilon = 1.0;
    let mut baseline = Baseline::RandomizedResponse;
    for extra in parts {
        if let Some(e) = extra.strip_prefix("eps=") {
            epsilon = e
                .parse()
                .map_err(|_| format!("deploy spec {spec:?}: bad epsilon {e:?}"))?;
        } else if let Some(b) = extra.strip_prefix("baseline=") {
            baseline = match b {
                "rr" => Baseline::RandomizedResponse,
                "hadamard" => Baseline::HadamardResponse,
                "hier" => Baseline::Hierarchical,
                other => {
                    return Err(format!(
                        "deploy spec {spec:?}: unknown baseline {other:?} (rr|hadamard|hier)"
                    ))
                }
            };
        } else {
            return Err(format!("deploy spec {spec:?}: unknown option {extra:?}"));
        }
    }
    Ok(DeploySpec {
        name,
        attributes,
        epsilon,
        baseline,
    })
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut dir: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut specs: Vec<DeploySpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                let v = value("--workers")?;
                workers = v
                    .parse()
                    .map_err(|_| format!("--workers: bad count {v:?}"))?;
            }
            "--deploy" => specs.push(parse_deploy(&value("--deploy")?)?),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    if specs.is_empty() {
        return Err(format!("at least one --deploy is required\n\n{USAGE}"));
    }

    let mut server =
        Server::bind(ServerConfig { addr, dir, workers }).map_err(|e| e.to_string())?;
    for spec in specs {
        let schema = Schema::new(spec.attributes.clone());
        let attribute_names: Vec<String> = spec.attributes.iter().map(|(n, _)| n.clone()).collect();
        let deployment = Pipeline::for_schema(schema)
            .queries([Query::marginal(attribute_names), Query::total()])
            .epsilon(spec.epsilon)
            .baseline(spec.baseline)
            .map_err(|e| format!("deploy {:?}: {e}", spec.name))?;
        let resumed = server
            .host(&spec.name, deployment)
            .map_err(|e| format!("deploy {:?}: {e}", spec.name))?;
        println!(
            "ldp-served hosting {:?}{}",
            spec.name,
            if resumed {
                " (resumed from snapshot)"
            } else {
                ""
            }
        );
    }
    println!("ldp-served listening on {}", server.local_addr());
    // Tooling (tests, CI) waits for the line above before connecting.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ldp-served: {message}");
            ExitCode::FAILURE
        }
    }
}
