//! `ldp-served` — the packaged LDP serving daemon.
//!
//! ```text
//! ldp-served --addr 127.0.0.1:7700 --dir ./snapshots \
//!     --deploy survey:color=3,size=2:eps=1.0:baseline=rr \
//!     --deploy urls:open=url:eps=2.0:bits=18
//! ```
//!
//! Each `--deploy` hosts one deployment. A dense spec
//! (`NAME:attr=K,...`) deploys a schema'd workload — the full
//! contingency table over its attributes plus the total count. An open
//! spec (`NAME:open=ATTR`) deploys a sparse frequency oracle serving
//! point and heavy-hitter queries over an unbounded key domain. The
//! daemon prints `ldp-served listening on ADDR` once it accepts
//! connections (tooling parses this line to learn an ephemeral port),
//! resumes any snapshot found under `--dir`, and exits when a client
//! sends `Shutdown` — persisting final snapshots on the way out.

use std::path::PathBuf;
use std::process::ExitCode;

use ldp::prelude::*;
use ldp_serve::{Server, ServerConfig};
use ldp_sparse::SparseDeployment;

const USAGE: &str = "\
usage: ldp-served [OPTIONS] --deploy SPEC [--deploy SPEC ...]

options:
  --addr HOST:PORT   bind address (default 127.0.0.1:0 = ephemeral port)
  --dir DIR          snapshot directory; enables checkpoint persistence
                     and resume-on-start
  --workers N        connection worker threads (default: compute pool size)

dense deploy spec:
  NAME:attr=K,attr=K[,...][:eps=F][:baseline=rr|hadamard|hier]
  e.g.  survey:color=3,size=2:eps=1.0:baseline=rr
  The deployed workload is the full contingency table over the listed
  attributes plus the total count; ad-hoc queries may ask anything the
  schema can express.

open deploy spec:
  NAME:open=ATTR[:eps=F][:oracle=olh|hadamard][:bits=B]
  e.g.  urls:open=url:eps=2.0:bits=18
  Hosts a sparse frequency oracle over an unbounded key domain
  (default oracle=hadamard with bits=16 buckets-log2; oracle=olh takes
  no bits). Serves point queries and top-k heavy hitters.
";

/// One parsed `--deploy` argument.
enum DeploySpec {
    /// `NAME:attr=K,...` — a dense schema'd workload deployment.
    Dense {
        name: String,
        attributes: Vec<(String, usize)>,
        epsilon: f64,
        baseline: Baseline,
    },
    /// `NAME:open=ATTR` — an open-domain sparse oracle deployment.
    Open {
        name: String,
        attribute: String,
        epsilon: f64,
        /// `None` selects OLH; `Some(bits)` the sparse Hadamard oracle.
        bits: Option<u32>,
    },
}

/// Which sparse oracle an open spec names (before bits are applied).
#[derive(Clone, Copy, PartialEq)]
enum OracleChoice {
    Olh,
    Hadamard,
}

/// Default buckets-log2 for open deployments that don't say `bits=`.
const DEFAULT_BITS: u32 = 16;

fn parse_open_deploy(
    spec: &str,
    name: String,
    attribute: &str,
    parts: std::str::Split<'_, char>,
) -> Result<DeploySpec, String> {
    if attribute.is_empty() {
        return Err(format!("deploy spec {spec:?}: empty open attribute"));
    }
    let mut epsilon = 1.0;
    let mut oracle = None;
    let mut bits = None;
    for extra in parts {
        if let Some(e) = extra.strip_prefix("eps=") {
            epsilon = e
                .parse()
                .map_err(|_| format!("deploy spec {spec:?}: bad epsilon {e:?}"))?;
        } else if let Some(o) = extra.strip_prefix("oracle=") {
            oracle = Some(match o {
                "olh" => OracleChoice::Olh,
                "hadamard" => OracleChoice::Hadamard,
                other => {
                    return Err(format!(
                        "deploy spec {spec:?}: unknown oracle {other:?} (olh|hadamard)"
                    ))
                }
            });
        } else if let Some(b) = extra.strip_prefix("bits=") {
            bits = Some(
                b.parse()
                    .map_err(|_| format!("deploy spec {spec:?}: bad bits {b:?}"))?,
            );
        } else {
            return Err(format!("deploy spec {spec:?}: unknown option {extra:?}"));
        }
    }
    let bits = match (oracle, bits) {
        (Some(OracleChoice::Olh), Some(_)) => {
            return Err(format!(
                "deploy spec {spec:?}: oracle=olh takes no bits= option"
            ))
        }
        (Some(OracleChoice::Olh), None) => None,
        (Some(OracleChoice::Hadamard) | None, b) => Some(b.unwrap_or(DEFAULT_BITS)),
    };
    Ok(DeploySpec::Open {
        name,
        attribute: attribute.to_string(),
        epsilon,
        bits,
    })
}

fn parse_deploy(spec: &str) -> Result<DeploySpec, String> {
    let mut parts = spec.split(':');
    let name = parts
        .next()
        .filter(|n| !n.is_empty())
        .ok_or_else(|| format!("deploy spec {spec:?}: missing name"))?
        .to_string();
    let schema_part = parts
        .next()
        .ok_or_else(|| format!("deploy spec {spec:?}: missing schema (attr=K,... or open=ATTR)"))?;
    if let Some(attribute) = schema_part.strip_prefix("open=") {
        return parse_open_deploy(spec, name, attribute, parts);
    }
    let mut attributes = Vec::new();
    for pair in schema_part.split(',') {
        let (attr, k) = pair
            .split_once('=')
            .ok_or_else(|| format!("deploy spec {spec:?}: bad attribute {pair:?}"))?;
        let k: usize = k
            .parse()
            .map_err(|_| format!("deploy spec {spec:?}: bad cardinality {k:?}"))?;
        attributes.push((attr.to_string(), k));
    }
    if attributes.is_empty() {
        return Err(format!("deploy spec {spec:?}: empty schema"));
    }
    let mut epsilon = 1.0;
    let mut baseline = Baseline::RandomizedResponse;
    for extra in parts {
        if let Some(e) = extra.strip_prefix("eps=") {
            epsilon = e
                .parse()
                .map_err(|_| format!("deploy spec {spec:?}: bad epsilon {e:?}"))?;
        } else if let Some(b) = extra.strip_prefix("baseline=") {
            baseline = match b {
                "rr" => Baseline::RandomizedResponse,
                "hadamard" => Baseline::HadamardResponse,
                "hier" => Baseline::Hierarchical,
                other => {
                    return Err(format!(
                        "deploy spec {spec:?}: unknown baseline {other:?} (rr|hadamard|hier)"
                    ))
                }
            };
        } else {
            return Err(format!("deploy spec {spec:?}: unknown option {extra:?}"));
        }
    }
    Ok(DeploySpec::Dense {
        name,
        attributes,
        epsilon,
        baseline,
    })
}

fn host_spec(server: &mut Server, spec: DeploySpec) -> Result<(String, bool), String> {
    match spec {
        DeploySpec::Dense {
            name,
            attributes,
            epsilon,
            baseline,
        } => {
            let schema = Schema::new(attributes.clone());
            let attribute_names: Vec<String> = attributes.iter().map(|(n, _)| n.clone()).collect();
            let deployment = Pipeline::for_schema(schema)
                .queries([Query::marginal(attribute_names), Query::total()])
                .epsilon(epsilon)
                .baseline(baseline)
                .map_err(|e| format!("deploy {name:?}: {e}"))?;
            let resumed = server
                .host(&name, deployment)
                .map_err(|e| format!("deploy {name:?}: {e}"))?;
            Ok((name, resumed))
        }
        DeploySpec::Open {
            name,
            attribute,
            epsilon,
            bits,
        } => {
            let deployment = match bits {
                None => SparseDeployment::olh(attribute, epsilon),
                Some(bits) => SparseDeployment::hadamard(attribute, epsilon, bits),
            }
            .map_err(|e| format!("deploy {name:?}: {e}"))?;
            let resumed = server
                .host_sparse(&name, deployment)
                .map_err(|e| format!("deploy {name:?}: {e}"))?;
            Ok((name, resumed))
        }
    }
}

fn run() -> Result<(), String> {
    let mut addr = "127.0.0.1:0".to_string();
    let mut dir: Option<PathBuf> = None;
    let mut workers = 0usize;
    let mut specs: Vec<DeploySpec> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} needs a value\n\n{USAGE}"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?,
            "--dir" => dir = Some(PathBuf::from(value("--dir")?)),
            "--workers" => {
                let v = value("--workers")?;
                workers = v
                    .parse()
                    .map_err(|_| format!("--workers: bad count {v:?}"))?;
            }
            "--deploy" => specs.push(parse_deploy(&value("--deploy")?)?),
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(());
            }
            other => return Err(format!("unknown argument {other:?}\n\n{USAGE}")),
        }
    }
    if specs.is_empty() {
        return Err(format!("at least one --deploy is required\n\n{USAGE}"));
    }

    let mut server =
        Server::bind(ServerConfig { addr, dir, workers }).map_err(|e| e.to_string())?;
    for spec in specs {
        let (name, resumed) = host_spec(&mut server, spec)?;
        println!(
            "ldp-served hosting {name:?}{}",
            if resumed {
                " (resumed from snapshot)"
            } else {
                ""
            }
        );
    }
    println!("ldp-served listening on {}", server.local_addr());
    // Tooling (tests, CI) waits for the line above before connecting.
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.run().map_err(|e| e.to_string())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("ldp-served: {message}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn err(spec: &str) -> String {
        match parse_deploy(spec) {
            Err(e) => e,
            Ok(_) => panic!("spec {spec:?} should not parse"),
        }
    }

    #[test]
    fn open_spec_defaults_to_hadamard_16() {
        match parse_deploy("urls:open=url").unwrap() {
            DeploySpec::Open {
                name,
                attribute,
                epsilon,
                bits,
            } => {
                assert_eq!(name, "urls");
                assert_eq!(attribute, "url");
                assert_eq!(epsilon, 1.0);
                assert_eq!(bits, Some(DEFAULT_BITS));
            }
            DeploySpec::Dense { .. } => panic!("expected an open spec"),
        }
    }

    #[test]
    fn open_spec_full_form_parses() {
        match parse_deploy("urls:open=url:eps=2.0:oracle=hadamard:bits=18").unwrap() {
            DeploySpec::Open { epsilon, bits, .. } => {
                assert_eq!(epsilon, 2.0);
                assert_eq!(bits, Some(18));
            }
            DeploySpec::Dense { .. } => panic!("expected an open spec"),
        }
    }

    #[test]
    fn open_spec_olh_has_no_bits() {
        match parse_deploy("urls:open=url:oracle=olh").unwrap() {
            DeploySpec::Open { bits, .. } => assert_eq!(bits, None),
            DeploySpec::Dense { .. } => panic!("expected an open spec"),
        }
    }

    #[test]
    fn open_spec_empty_attribute_is_an_error() {
        assert!(err("urls:open=").contains("empty open attribute"));
    }

    #[test]
    fn open_spec_bad_epsilon_is_an_error() {
        assert!(err("urls:open=url:eps=fast").contains("bad epsilon"));
    }

    #[test]
    fn open_spec_bad_bits_is_an_error() {
        assert!(err("urls:open=url:bits=many").contains("bad bits"));
    }

    #[test]
    fn open_spec_unknown_oracle_is_an_error() {
        assert!(err("urls:open=url:oracle=bloom").contains("unknown oracle"));
    }

    #[test]
    fn open_spec_olh_with_bits_is_an_error() {
        assert!(err("urls:open=url:oracle=olh:bits=8").contains("takes no bits"));
    }

    #[test]
    fn open_spec_unknown_option_is_an_error() {
        assert!(err("urls:open=url:salt=3").contains("unknown option"));
    }

    #[test]
    fn dense_spec_still_parses() {
        match parse_deploy("survey:color=3,size=2:eps=0.5:baseline=hier").unwrap() {
            DeploySpec::Dense {
                name,
                attributes,
                epsilon,
                ..
            } => {
                assert_eq!(name, "survey");
                assert_eq!(attributes.len(), 2);
                assert_eq!(epsilon, 0.5);
            }
            DeploySpec::Open { .. } => panic!("expected a dense spec"),
        }
    }

    #[test]
    fn missing_schema_is_an_error() {
        assert!(err("survey").contains("missing schema"));
    }
}
