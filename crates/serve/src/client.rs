//! The blocking client handle for the ldp-serve protocol.

use std::io::{BufReader, BufWriter};
use std::net::{TcpStream, ToSocketAddrs};

use ldp_sparse::{key_hash, HeavyHitter};
use ldp_workloads::Query;

use crate::wire::{read_frame, write_frame, DeploymentInfo, Message, WireError, WireQuery};

/// The acknowledgement for an accepted report batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitAck {
    /// Reports counted from this batch (all of them; admission is
    /// atomic).
    pub accepted: u64,
    /// Reports sitting in this connection's server-side shard awaiting
    /// the next merge barrier.
    pub pending: u64,
}

/// One ad-hoc query answer from the server, with its analytic error bar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServeAnswer {
    /// The estimated count `w·x̂`.
    pub value: f64,
    /// Worst-case variance at the observed report count.
    pub variance: f64,
    /// `sqrt(variance)` — the ± error bar in user-count units.
    pub stddev: f64,
    /// Reports contributing to the estimate.
    pub reports: u64,
}

/// The full deployed-workload evaluation `W·x̂`.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadAnswers {
    /// One answer per workload query, in workload order, exact bits as
    /// computed server-side.
    pub answers: Vec<f64>,
    /// Reports contributing to the estimate.
    pub reports: u64,
}

/// The admitted heavy hitters for one open-domain deployment.
#[derive(Clone, Debug, PartialEq)]
pub struct HeavyHittersAnswer {
    /// Admitted candidates, ordered by estimate descending with
    /// key-hash-ascending tie-break, at most the requested `k`.
    pub hitters: Vec<HeavyHitter>,
    /// Reports contributing to the estimates.
    pub reports: u64,
}

/// The acknowledgement for a durable checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CheckpointAck {
    /// Checkpoint generation after this write.
    pub epoch: u64,
    /// Snapshot record size in bytes.
    pub bytes: u64,
}

/// A blocking connection to an ldp-serve daemon: one request in flight
/// at a time, framed per `docs/WIRE_PROTOCOL.md`.
///
/// ```
/// use ldp::prelude::*;
/// use ldp_serve::{Server, ServerConfig, ServeClient};
///
/// // An in-process server on an ephemeral port.
/// let deployment = Pipeline::for_schema(Schema::new([("bin", 4)]))
///     .queries([Query::marginal(["bin"])])
///     .epsilon(1.0)
///     .baseline(Baseline::RandomizedResponse)
///     .unwrap();
/// let mut server = Server::bind(ServerConfig::default()).unwrap();
/// server.host("demo", deployment).unwrap();
/// let handle = server.spawn().unwrap();
///
/// // Submit privatized reports, ask a question, shut down.
/// let mut client = ServeClient::connect(handle.addr()).unwrap();
/// client.submit("demo", &[0, 1, 2, 3, 3]).unwrap();
/// let answer = client.answer("demo", &Query::equals("bin", 3)).unwrap();
/// assert_eq!(answer.reports, 5);
/// assert!(answer.value.is_finite() && answer.stddev >= 0.0);
/// client.shutdown().unwrap();
/// handle.join().unwrap();
/// ```
#[derive(Debug)]
pub struct ServeClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl ServeClient {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// [`WireError::Io`] if the TCP connection fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, WireError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        let writer = BufWriter::new(stream);
        Ok(Self { reader, writer })
    }

    /// One request/response exchange. Error frames surface as
    /// [`WireError::Remote`]; any other unexpected kind as
    /// [`WireError::UnexpectedKind`] via the caller's match.
    fn roundtrip(&mut self, request: &Message) -> Result<Message, WireError> {
        write_frame(&mut self.writer, request)?;
        match read_frame(&mut self.reader)? {
            Some(Message::Error { code, message }) => Err(WireError::Remote { code, message }),
            Some(response) => Ok(response),
            None => Err(WireError::Truncated {
                needed: 16,
                remaining: 0,
            }),
        }
    }

    /// Describes every deployment the server hosts: identity (including
    /// the binding fingerprint, for end-to-end verification against a
    /// local [`Deployment::binding`](ldp::pipeline::Deployment::binding))
    /// and live merged counters.
    ///
    /// # Errors
    /// Any [`WireError`], including [`WireError::Remote`] server errors.
    pub fn info(&mut self) -> Result<Vec<DeploymentInfo>, WireError> {
        match self.roundtrip(&Message::Info)? {
            Message::InfoOk { deployments } => Ok(deployments),
            other => unexpected("InfoOk", &other),
        }
    }

    /// Submits one batch of privatized reports (mechanism outputs in
    /// `0..num_outputs`). Admission is atomic: the whole batch counts or
    /// none of it does.
    ///
    /// # Errors
    /// [`WireError::Remote`] with [`ErrorCode::BadBatch`]
    /// (out-of-range report — nothing counted) or
    /// [`ErrorCode::UnknownDeployment`]; any transport-level
    /// [`WireError`].
    ///
    /// [`ErrorCode::BadBatch`]: crate::wire::ErrorCode::BadBatch
    /// [`ErrorCode::UnknownDeployment`]: crate::wire::ErrorCode::UnknownDeployment
    pub fn submit(&mut self, deployment: &str, reports: &[u64]) -> Result<SubmitAck, WireError> {
        let request = Message::Submit {
            deployment: deployment.to_string(),
            reports: reports.to_vec(),
        };
        match self.roundtrip(&request)? {
            Message::SubmitOk { accepted, pending } => Ok(SubmitAck { accepted, pending }),
            other => unexpected("SubmitOk", &other),
        }
    }

    /// Answers one ad-hoc scalar query against the deployment's current
    /// merged state (the server runs a merge barrier first, so every
    /// batch acknowledged on any connection is included).
    ///
    /// # Errors
    /// [`WireError::UnencodableQuery`] for predicate queries;
    /// [`WireError::Remote`] with [`ErrorCode::BadQuery`] if the query
    /// does not resolve server-side; any transport-level [`WireError`].
    ///
    /// [`ErrorCode::BadQuery`]: crate::wire::ErrorCode::BadQuery
    pub fn answer(&mut self, deployment: &str, query: &Query) -> Result<ServeAnswer, WireError> {
        let request = Message::Query {
            deployment: deployment.to_string(),
            query: WireQuery::from_query(query)?,
        };
        match self.roundtrip(&request)? {
            Message::QueryOk {
                value,
                variance,
                stddev,
                reports,
            } => Ok(ServeAnswer {
                value,
                variance,
                stddev,
                reports,
            }),
            other => unexpected("QueryOk", &other),
        }
    }

    /// Evaluates the full deployed workload `W·x̂` at the current merged
    /// state. The bits are exactly what an in-process
    /// [`Estimate::answers`](ldp::pipeline::Estimate::answers) would
    /// produce — the wire carries `f64::to_bits`, never a decimal
    /// rendering.
    ///
    /// # Errors
    /// [`WireError::Remote`] or any transport-level [`WireError`].
    pub fn answers(&mut self, deployment: &str) -> Result<WorkloadAnswers, WireError> {
        let request = Message::Answers {
            deployment: deployment.to_string(),
        };
        match self.roundtrip(&request)? {
            Message::AnswersOk { answers, reports } => Ok(WorkloadAnswers { answers, reports }),
            other => unexpected("AnswersOk", &other),
        }
    }

    /// Merges every connection's shard and persists a durable snapshot
    /// (when the server has a snapshot directory). After the
    /// acknowledgement, a `kill -9` loses nothing up to this barrier.
    ///
    /// # Errors
    /// [`WireError::Remote`] or any transport-level [`WireError`].
    pub fn checkpoint(&mut self, deployment: &str) -> Result<CheckpointAck, WireError> {
        let request = Message::Checkpoint {
            deployment: deployment.to_string(),
        };
        match self.roundtrip(&request)? {
            Message::CheckpointOk { epoch, bytes } => Ok(CheckpointAck { epoch, bytes }),
            other => unexpected("CheckpointOk", &other),
        }
    }

    /// Submits one batch of open-domain oracle reports (raw
    /// [`SparseClient::respond`](ldp_sparse::SparseClient::respond)
    /// outputs) to a sparse deployment. Admission is atomic: every
    /// report must be well-formed for the deployment's oracle or none
    /// of the batch counts.
    ///
    /// # Errors
    /// [`WireError::Remote`] with [`ErrorCode::BadBatch`] (malformed
    /// report), [`ErrorCode::UnknownDeployment`], or
    /// [`ErrorCode::Unsupported`] (the deployment is dense); any
    /// transport-level [`WireError`].
    ///
    /// [`ErrorCode::BadBatch`]: crate::wire::ErrorCode::BadBatch
    /// [`ErrorCode::UnknownDeployment`]: crate::wire::ErrorCode::UnknownDeployment
    /// [`ErrorCode::Unsupported`]: crate::wire::ErrorCode::Unsupported
    pub fn submit_sparse(
        &mut self,
        deployment: &str,
        reports: &[u64],
    ) -> Result<SubmitAck, WireError> {
        let request = Message::SubmitSparse {
            deployment: deployment.to_string(),
            reports: reports.to_vec(),
        };
        match self.roundtrip(&request)? {
            Message::SubmitOk { accepted, pending } => Ok(SubmitAck { accepted, pending }),
            other => unexpected("SubmitOk", &other),
        }
    }

    /// Unbiased point estimate for one open-domain key — the
    /// convenience form of [`ServeClient::point_hashed`] that hashes
    /// `key` with [`ldp_sparse::key_hash`] client-side, so the raw key
    /// string never crosses the wire.
    ///
    /// # Errors
    /// As [`ServeClient::point_hashed`].
    pub fn point(&mut self, deployment: &str, key: &str) -> Result<ServeAnswer, WireError> {
        self.point_hashed(deployment, key_hash(key))
    }

    /// Unbiased point estimate for one pre-hashed open-domain key
    /// against the deployment's current merged state.
    ///
    /// # Errors
    /// [`WireError::Remote`] with [`ErrorCode::UnknownDeployment`] or
    /// [`ErrorCode::Unsupported`] (the deployment is dense); any
    /// transport-level [`WireError`].
    ///
    /// [`ErrorCode::UnknownDeployment`]: crate::wire::ErrorCode::UnknownDeployment
    /// [`ErrorCode::Unsupported`]: crate::wire::ErrorCode::Unsupported
    pub fn point_hashed(
        &mut self,
        deployment: &str,
        key_hash: u64,
    ) -> Result<ServeAnswer, WireError> {
        let request = Message::SparsePoint {
            deployment: deployment.to_string(),
            key_hash,
        };
        match self.roundtrip(&request)? {
            Message::QueryOk {
                value,
                variance,
                stddev,
                reports,
            } => Ok(ServeAnswer {
                value,
                variance,
                stddev,
                reports,
            }),
            other => unexpected("QueryOk", &other),
        }
    }

    /// Variance-aware top-k heavy hitters over an explicit candidate
    /// set (key hashes from [`ldp_sparse::key_hash`]). The server
    /// admits only candidates whose estimate clears `z · stddev` under
    /// the null, bounding false positives to the chosen z-score.
    ///
    /// # Errors
    /// [`WireError::Remote`] with [`ErrorCode::UnknownDeployment`],
    /// [`ErrorCode::Unsupported`] (dense deployment), or
    /// [`ErrorCode::BadQuery`] (non-finite `z`); any transport-level
    /// [`WireError`].
    ///
    /// [`ErrorCode::UnknownDeployment`]: crate::wire::ErrorCode::UnknownDeployment
    /// [`ErrorCode::Unsupported`]: crate::wire::ErrorCode::Unsupported
    /// [`ErrorCode::BadQuery`]: crate::wire::ErrorCode::BadQuery
    pub fn heavy_hitters(
        &mut self,
        deployment: &str,
        candidates: &[u64],
        k: usize,
        z: f64,
    ) -> Result<HeavyHittersAnswer, WireError> {
        let request = Message::HeavyHitters {
            deployment: deployment.to_string(),
            k: k as u64,
            z,
            candidates: candidates.to_vec(),
        };
        match self.roundtrip(&request)? {
            Message::HeavyHittersOk {
                reports,
                keys,
                estimates,
                stddevs,
            } => {
                let hitters = keys
                    .into_iter()
                    .zip(estimates)
                    .zip(stddevs)
                    .map(|((key_hash, estimate), stddev)| HeavyHitter {
                        key_hash,
                        estimate,
                        stddev,
                    })
                    .collect();
                Ok(HeavyHittersAnswer { hitters, reports })
            }
            other => unexpected("HeavyHittersOk", &other),
        }
    }

    /// Asks the server to shut down: stop accepting, drain connections,
    /// persist final snapshots, exit.
    ///
    /// # Errors
    /// [`WireError::Remote`] or any transport-level [`WireError`].
    pub fn shutdown(&mut self) -> Result<(), WireError> {
        match self.roundtrip(&Message::Shutdown)? {
            Message::ShutdownOk => Ok(()),
            other => unexpected("ShutdownOk", &other),
        }
    }
}

fn unexpected<T>(expected: &'static str, found: &Message) -> Result<T, WireError> {
    Err(WireError::UnexpectedKind {
        expected,
        found: found.kind_name(),
    })
}
