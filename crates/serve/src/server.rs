//! The multi-threaded TCP server hosting dense [`Deployment`]s and
//! open-domain [`SparseDeployment`]s side by side.
//!
//! # Threading model
//!
//! One acceptor thread pushes connections into a closable
//! [`WorkQueue`]; a fixed pool of connection workers pops them and
//! serves each connection to completion (frame in, frame out). Every
//! connection owns a private shard per hosted deployment — an
//! [`AggregatorShard`] for dense deployments, a [`SparseShard`] for
//! open-domain ones — so the submit fast path touches **no shared
//! lock** beyond its own shard. Checkpoint, query, answers,
//! heavy-hitter, and info requests run a *merge barrier*: every
//! connection shard is drained into the deployment's central ingestor.
//! Counts are exact integers, so the merge is commutative and the
//! result is **bit-identical** to a single connection having submitted
//! every batch — the serving extension of the repo's determinism
//! contract (asserted in `tests/server.rs`, `tests/restart.rs`, and
//! `tests/sparse_serve.rs`).
//!
//! # Durability
//!
//! With a snapshot directory configured, a checkpoint request persists
//! the deployment's `ldp-store` snapshot atomically (write to a
//! temporary file, then rename) — an `LDPS` stream record for dense
//! deployments, an `LDPS` sparse-checkpoint record for open-domain ones
//! — graceful shutdown persists a final snapshot for every hosted
//! deployment, and [`Server::host`] / [`Server::host_sparse`] resume
//! from an existing snapshot, whose binding fingerprint must match the
//! deployment or hosting fails with the store's typed
//! [`StoreError::BindingMismatch`].
//!
//! # No timeouts, by design
//!
//! The serve crate is subject to the repo's `wall-clock-free-core` lint:
//! library code takes no wall-clock readings, so sockets carry no read
//! timeouts. The daemon therefore trusts its network: an idle client
//! parks one worker until it hangs up. Front it with a proxy if exposed
//! beyond a trusted perimeter.

use std::fs;
use std::io::{BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use ldp::pipeline::{Deployment, StreamIngestor};
use ldp_core::protocol::{validate_reports, AggregatorShard};
use ldp_core::LdpError;
use ldp_parallel::WorkQueue;
use ldp_sparse::{
    decode_sparse_checkpoint, encode_sparse_checkpoint, SparseCheckpoint, SparseDeployment,
    SparseIngestor, SparseShard,
};
use ldp_store::StoreError;

use crate::wire::{read_frame, write_frame, DeploymentInfo, ErrorCode, Message};

/// Longest accepted deployment name (also used as a file stem).
const MAX_DEPLOYMENT_NAME: usize = 64;

/// Snapshot file extension under the configured directory.
const SNAPSHOT_EXT: &str = "ldpc";

/// A serving-layer failure (socket setup, hosting, persistence).
#[derive(Debug)]
pub enum ServeError {
    /// A socket or filesystem operation failed.
    Io(String),
    /// A snapshot failed to decode or bind (see [`StoreError`]).
    Store(StoreError),
    /// An aggregation operation failed (see [`LdpError`]).
    Ldp(LdpError),
    /// Two deployments were hosted under the same name.
    DuplicateDeployment(String),
    /// The deployment name is empty, too long, or contains characters
    /// outside `[A-Za-z0-9_-]` (names double as snapshot file stems).
    InvalidName(String),
    /// [`Server::run`] was called with no hosted deployment.
    NothingHosted,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(what) => write!(f, "i/o error: {what}"),
            ServeError::Store(e) => write!(f, "snapshot error: {e}"),
            ServeError::Ldp(e) => write!(f, "aggregation error: {e}"),
            ServeError::DuplicateDeployment(name) => {
                write!(f, "deployment {name:?} is already hosted")
            }
            ServeError::InvalidName(name) => write!(
                f,
                "invalid deployment name {name:?} (want 1–{MAX_DEPLOYMENT_NAME} chars of [A-Za-z0-9_-])"
            ),
            ServeError::NothingHosted => write!(f, "no deployment hosted"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Store(e) => Some(e),
            ServeError::Ldp(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e.to_string())
    }
}

impl From<StoreError> for ServeError {
    fn from(e: StoreError) -> Self {
        ServeError::Store(e)
    }
}

impl From<LdpError> for ServeError {
    fn from(e: LdpError) -> Self {
        ServeError::Ldp(e)
    }
}

/// Server construction parameters.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; use port 0 for an ephemeral port (read it back with
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Snapshot directory. `None` disables persistence: checkpoints
    /// still merge and serialize (the client gets the byte count) but
    /// nothing is written, and restarts start empty.
    pub dir: Option<PathBuf>,
    /// Connection worker threads; `0` picks a default from the compute
    /// pool's thread count. Each worker serves one connection at a time,
    /// so size this at least as large as the expected concurrent client
    /// count.
    pub workers: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            dir: None,
            workers: 0,
        }
    }
}

/// One connection's private ingestion state for one dense deployment.
#[derive(Debug)]
struct ConnShard {
    shard: AggregatorShard,
    batches: u64,
}

/// One connection's private ingestion state for one sparse deployment.
#[derive(Debug)]
struct SparseConnShard {
    shard: SparseShard,
    batches: u64,
}

/// One connection's slot for one hosted deployment, created lazily on
/// the first submit (index-parallel to `Shared::hosted`).
#[derive(Debug, Default, Clone)]
enum ConnSlot {
    /// Nothing submitted on this connection yet.
    #[default]
    Vacant,
    /// A dense deployment's private shard.
    Dense(Arc<Mutex<ConnShard>>),
    /// A sparse deployment's private shard.
    Sparse(Arc<Mutex<SparseConnShard>>),
}

/// The kind-specific half of one hosted deployment: its central
/// ingestor plus the live registry of per-connection shards the merge
/// barrier drains.
enum HostedKind {
    /// A dense (closed-domain) workload deployment.
    Dense {
        deployment: Deployment,
        central: Mutex<StreamIngestor>,
        conns: Mutex<Vec<Arc<Mutex<ConnShard>>>>,
    },
    /// An open-domain frequency-oracle deployment.
    Sparse {
        deployment: SparseDeployment,
        central: Mutex<SparseIngestor>,
        conns: Mutex<Vec<Arc<Mutex<SparseConnShard>>>>,
    },
}

/// One hosted deployment (dense or sparse) and its snapshot path.
struct Hosted {
    name: String,
    kind: HostedKind,
    path: Option<PathBuf>,
}

impl std::fmt::Debug for Hosted {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Hosted")
            .field("name", &self.name)
            .field("path", &self.path)
            .finish_non_exhaustive()
    }
}

/// Locks a serve-state mutex. A poisoned lock means a worker panicked
/// mid-merge and the aggregation state can no longer be trusted;
/// propagating the panic is the only sound option.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // ldp-lint: allow(no-unwrap-in-lib) -- poisoned state locks are
    // unrecoverable by design (see the comment above).
    m.lock().expect("serve state lock poisoned")
}

impl Hosted {
    /// Runs `f` under the dense merge barrier (central locked, every
    /// connection shard drained), or `None` if this entry is sparse.
    fn dense_barrier<R>(
        &self,
        f: impl FnOnce(&Deployment, &mut StreamIngestor) -> R,
    ) -> Option<Result<R, LdpError>> {
        let HostedKind::Dense {
            deployment,
            central,
            conns,
        } = &self.kind
        else {
            return None;
        };
        let mut central = lock(central);
        for conn in lock(conns).iter() {
            let mut conn = lock(conn);
            let batches = conn.batches;
            if let Err(e) = central.absorb(&mut conn.shard, batches) {
                return Some(Err(e));
            }
            conn.batches = 0;
        }
        Some(Ok(f(deployment, &mut central)))
    }

    /// Runs `f` under the sparse merge barrier, or `None` if this entry
    /// is dense. Sparse merges are infallible (exact `u64` addition).
    fn sparse_barrier<R>(
        &self,
        f: impl FnOnce(&SparseDeployment, &mut SparseIngestor) -> R,
    ) -> Option<R> {
        let HostedKind::Sparse {
            deployment,
            central,
            conns,
        } = &self.kind
        else {
            return None;
        };
        let mut central = lock(central);
        for conn in lock(conns).iter() {
            let mut conn = lock(conn);
            let batches = conn.batches;
            central.absorb(&mut conn.shard, batches);
            conn.batches = 0;
        }
        Some(f(deployment, &mut central))
    }

    /// Merges, serializes, and (when persistence is on) atomically
    /// writes this deployment's snapshot. Returns `(epoch, bytes)`.
    fn checkpoint(&self) -> Result<(u64, u64), ServeError> {
        let (epoch, snapshot) = match &self.kind {
            HostedKind::Dense { .. } => {
                match self.dense_barrier(|_, central| (central.epoch() + 1, central.checkpoint())) {
                    Some(Ok(pair)) => pair,
                    Some(Err(e)) => return Err(ServeError::Ldp(e)),
                    None => unreachable!("kind matched above"),
                }
            }
            HostedKind::Sparse { .. } => {
                match self.sparse_barrier(|_, central| {
                    let reports = central.reports();
                    let (epoch, batches, binding, pairs) = central.checkpoint();
                    let record = encode_sparse_checkpoint(&SparseCheckpoint {
                        epoch,
                        batches,
                        binding,
                        reports,
                        pairs,
                    });
                    (epoch, record)
                }) {
                    Some(pair) => pair,
                    None => unreachable!("kind matched above"),
                }
            }
        };
        let bytes = snapshot.len() as u64;
        if let Some(path) = &self.path {
            let tmp = path.with_extension(format!("{SNAPSHOT_EXT}.tmp"));
            fs::write(&tmp, &snapshot)?;
            fs::rename(&tmp, path)?;
        }
        Ok((epoch, bytes))
    }

    /// Identity and live merged counters. Sparse deployments report a
    /// `domain_size` / `num_outputs` / `num_queries` of zero: the domain
    /// is open and the oracle's output space is not a dense `0..m`.
    fn info(&self) -> Result<DeploymentInfo, LdpError> {
        match &self.kind {
            HostedKind::Dense { .. } => {
                match self.dense_barrier(|deployment, central| DeploymentInfo {
                    name: self.name.clone(),
                    domain_size: deployment.workload().domain_size() as u64,
                    num_outputs: deployment.mechanism().num_outputs() as u64,
                    num_queries: deployment.workload().num_queries() as u64,
                    epsilon: deployment.epsilon(),
                    binding: deployment.binding(),
                    epoch: central.epoch(),
                    batches: central.batches(),
                    reports: central.reports(),
                }) {
                    Some(result) => result,
                    None => unreachable!("kind matched above"),
                }
            }
            HostedKind::Sparse { .. } => {
                match self.sparse_barrier(|deployment, central| DeploymentInfo {
                    name: self.name.clone(),
                    domain_size: 0,
                    num_outputs: 0,
                    num_queries: 0,
                    epsilon: deployment.oracle().epsilon(),
                    binding: deployment.binding(),
                    epoch: central.epoch(),
                    batches: central.batches(),
                    reports: central.reports(),
                }) {
                    Some(info) => Ok(info),
                    None => unreachable!("kind matched above"),
                }
            }
        }
    }
}

/// Shared server state visible to every worker.
#[derive(Debug)]
struct Shared {
    hosted: Vec<Arc<Hosted>>,
    stop: AtomicBool,
    addr: SocketAddr,
}

impl Shared {
    fn find(&self, name: &str) -> Option<&Arc<Hosted>> {
        self.hosted.iter().find(|h| h.name == name)
    }
}

/// A bound, not-yet-running server: host deployments, then call
/// [`Server::run`] (blocking) or [`Server::spawn`] (background thread).
///
/// See the module docs for the threading model; the byte-level protocol
/// it speaks is specified in `docs/WIRE_PROTOCOL.md`.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    hosted: Vec<Arc<Hosted>>,
    dir: Option<PathBuf>,
    workers: usize,
}

impl Server {
    /// Binds the listening socket (creating the snapshot directory if
    /// configured) without accepting anything yet.
    ///
    /// # Errors
    /// [`ServeError::Io`] if the bind or directory creation fails.
    pub fn bind(config: ServerConfig) -> Result<Self, ServeError> {
        if let Some(dir) = &config.dir {
            fs::create_dir_all(dir)?;
        }
        let listener = TcpListener::bind(config.addr.as_str())?;
        let addr = listener.local_addr()?;
        let workers = if config.workers == 0 {
            ldp_parallel::pool().threads().max(2)
        } else {
            config.workers
        };
        Ok(Self {
            listener,
            addr,
            hosted: Vec::new(),
            dir: config.dir,
            workers,
        })
    }

    /// The bound address (the actual port when the config asked for an
    /// ephemeral one).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Validates a deployment name and returns its snapshot path.
    fn admit(&self, name: &str) -> Result<Option<PathBuf>, ServeError> {
        let valid = !name.is_empty()
            && name.len() <= MAX_DEPLOYMENT_NAME
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '-');
        if !valid {
            return Err(ServeError::InvalidName(name.to_string()));
        }
        if self.hosted.iter().any(|h| h.name == name) {
            return Err(ServeError::DuplicateDeployment(name.to_string()));
        }
        Ok(self
            .dir
            .as_ref()
            .map(|dir| dir.join(format!("{name}.{SNAPSHOT_EXT}"))))
    }

    /// Hosts `deployment` under `name`. With persistence configured and
    /// a snapshot file present, the deployment's stream resumes from it
    /// — after which answers are byte-equal to a process that never
    /// restarted. Returns `true` if a snapshot was resumed.
    ///
    /// # Errors
    /// [`ServeError::InvalidName`] / [`ServeError::DuplicateDeployment`]
    /// for bad names; any snapshot decode defect, including the typed
    /// [`StoreError::BindingMismatch`] when the file on disk was written
    /// by a *different* deployment.
    pub fn host(&mut self, name: &str, deployment: Deployment) -> Result<bool, ServeError> {
        let path = self.admit(name)?;
        let mut resumed = false;
        let central = match &path {
            Some(path) if path.exists() => {
                let bytes = fs::read(path)?;
                resumed = true;
                deployment.resume(&bytes)?
            }
            _ => deployment.stream(),
        };
        self.hosted.push(Arc::new(Hosted {
            name: name.to_string(),
            kind: HostedKind::Dense {
                deployment,
                central: Mutex::new(central),
                conns: Mutex::new(Vec::new()),
            },
            path,
        }));
        Ok(resumed)
    }

    /// Hosts an open-domain [`SparseDeployment`] under `name`, with the
    /// same persistence/resume semantics as [`Server::host`]: a sparse
    /// checkpoint found under the snapshot directory is decoded,
    /// binding-checked, and resumed. Returns `true` if a snapshot was
    /// resumed.
    ///
    /// # Errors
    /// [`ServeError::InvalidName`] / [`ServeError::DuplicateDeployment`]
    /// for bad names; any sparse-checkpoint decode defect, including the
    /// typed [`StoreError::BindingMismatch`].
    pub fn host_sparse(
        &mut self,
        name: &str,
        deployment: SparseDeployment,
    ) -> Result<bool, ServeError> {
        let path = self.admit(name)?;
        let mut resumed = false;
        let central = match &path {
            Some(path) if path.exists() => {
                let bytes = fs::read(path)?;
                let cp = decode_sparse_checkpoint(&bytes, deployment.binding())?;
                resumed = true;
                SparseIngestor::resume(cp.binding, cp.epoch, cp.batches, &cp.pairs)
            }
            _ => deployment.ingestor(),
        };
        self.hosted.push(Arc::new(Hosted {
            name: name.to_string(),
            kind: HostedKind::Sparse {
                deployment,
                central: Mutex::new(central),
                conns: Mutex::new(Vec::new()),
            },
            path,
        }));
        Ok(resumed)
    }

    /// Runs the accept loop until a client sends `Shutdown`, then drains
    /// the connection workers and persists a final snapshot for every
    /// hosted deployment. Blocking; use [`Server::spawn`] to run on a
    /// background thread.
    ///
    /// # Errors
    /// [`ServeError::NothingHosted`] if no deployment was hosted;
    /// [`ServeError::Io`] from the accept loop; persistence failures
    /// from the final checkpoints.
    pub fn run(self) -> Result<(), ServeError> {
        if self.hosted.is_empty() {
            return Err(ServeError::NothingHosted);
        }
        let shared = Arc::new(Shared {
            hosted: self.hosted,
            stop: AtomicBool::new(false),
            addr: self.addr,
        });
        let queue: Arc<WorkQueue<TcpStream>> = Arc::new(WorkQueue::new());
        let mut workers = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let queue = Arc::clone(&queue);
            let shared = Arc::clone(&shared);
            let worker = std::thread::Builder::new()
                .name(format!("ldp-serve-{i}"))
                .spawn(move || {
                    while let Some(stream) = queue.pop() {
                        serve_connection(&shared, stream);
                    }
                })?;
            workers.push(worker);
        }
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if shared.stop.load(Ordering::Acquire) {
                        // The wake-up connection a shutting-down handler
                        // opened (or a late client); refuse and stop.
                        drop(stream);
                        break;
                    }
                    if queue.push(stream).is_err() {
                        break;
                    }
                }
                Err(_) if shared.stop.load(Ordering::Acquire) => break,
                // Transient accept failure (e.g. a connection reset
                // before accept); the listener itself is still good.
                Err(_) => continue,
            }
        }
        queue.close();
        for worker in workers {
            // A worker that panicked already poisoned the state locks;
            // surface it as an error rather than silently exiting.
            if worker.join().is_err() {
                return Err(ServeError::Io("connection worker panicked".to_string()));
            }
        }
        // Final durable snapshots: a graceful shutdown leaves every
        // deployment resumable at its exact last state.
        for hosted in shared.hosted.iter().filter(|h| h.path.is_some()) {
            hosted.checkpoint()?;
        }
        Ok(())
    }

    /// Spawns [`Server::run`] on a background thread and returns a
    /// handle carrying the bound address — the in-process form the
    /// doc-tests and benches use.
    ///
    /// # Errors
    /// As [`Server::run`] for pre-flight failures (nothing hosted);
    /// runtime failures surface from [`ServerHandle::join`].
    pub fn spawn(self) -> Result<ServerHandle, ServeError> {
        if self.hosted.is_empty() {
            return Err(ServeError::NothingHosted);
        }
        let addr = self.addr;
        let thread = std::thread::Builder::new()
            .name("ldp-serve-accept".to_string())
            .spawn(move || self.run())?;
        Ok(ServerHandle { addr, thread })
    }
}

/// A running background server (from [`Server::spawn`]).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<Result<(), ServeError>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down (a client must send
    /// `Shutdown`) and returns its exit result.
    ///
    /// # Errors
    /// Whatever [`Server::run`] returned; [`ServeError::Io`] if the
    /// accept thread panicked.
    pub fn join(self) -> Result<(), ServeError> {
        match self.thread.join() {
            Ok(result) => result,
            Err(_) => Err(ServeError::Io("server accept thread panicked".to_string())),
        }
    }
}

/// Serves one connection to completion. Never panics on client input:
/// protocol defects answer with a typed error frame (when the socket
/// still writes) and close this connection only — the accept loop and
/// every other connection are unaffected.
fn serve_connection(shared: &Arc<Shared>, stream: TcpStream) {
    // Nagle off: request/response frames are small and latency-bound.
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone();
    let Ok(reader) = reader else { return };
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);
    // This connection's private shards, registered lazily per
    // deployment on first submit (index-parallel to `shared.hosted`).
    let mut shards: Vec<ConnSlot> = vec![ConnSlot::Vacant; shared.hosted.len()];
    loop {
        let request = match read_frame(&mut reader) {
            Ok(Some(request)) => request,
            // Clean hang-up at a frame boundary.
            Ok(None) => break,
            Err(defect) => {
                // Corrupt or malformed input: name the defect if the
                // socket still writes, then drop the connection — its
                // stream position is unknowable.
                let _ = write_frame(
                    &mut writer,
                    &Message::Error {
                        code: ErrorCode::Protocol,
                        message: defect.to_string(),
                    },
                );
                break;
            }
        };
        let shutdown = matches!(request, Message::Shutdown);
        let response = dispatch(shared, &mut shards, request);
        if write_frame(&mut writer, &response).is_err() {
            break;
        }
        if shutdown {
            initiate_shutdown(shared);
            break;
        }
    }
    drain_connection(shared, &shards);
}

/// Flags the stop and wakes the blocked acceptor with a throwaway
/// connection to our own listening address.
fn initiate_shutdown(shared: &Arc<Shared>) {
    shared.stop.store(true, Ordering::Release);
    drop(TcpStream::connect(shared.addr));
}

/// Final merge for a closing connection: absorb its shards and drop them
/// from the live registries so the barrier never re-visits them.
fn drain_connection(shared: &Arc<Shared>, shards: &[ConnSlot]) {
    for (hosted, slot) in shared.hosted.iter().zip(shards) {
        match (&hosted.kind, slot) {
            (HostedKind::Dense { central, conns, .. }, ConnSlot::Dense(conn)) => {
                let mut central = lock(central);
                {
                    let mut state = lock(conn);
                    let batches = state.batches;
                    // Infallible in practice: the shard was created from
                    // this deployment, so dimensions agree.
                    if central.absorb(&mut state.shard, batches).is_ok() {
                        state.batches = 0;
                    }
                }
                lock(conns).retain(|c| !Arc::ptr_eq(c, conn));
            }
            (HostedKind::Sparse { central, conns, .. }, ConnSlot::Sparse(conn)) => {
                let mut central = lock(central);
                {
                    let mut state = lock(conn);
                    let batches = state.batches;
                    central.absorb(&mut state.shard, batches);
                    state.batches = 0;
                }
                lock(conns).retain(|c| !Arc::ptr_eq(c, conn));
            }
            _ => {}
        }
    }
}

/// Builds the error frame for an aggregation failure.
fn ldp_error(code: ErrorCode, e: &LdpError) -> Message {
    Message::Error {
        code,
        message: e.to_string(),
    }
}

/// The error frame for a request that needs the *other* deployment
/// kind.
fn wrong_kind(name: &str, hint: &str) -> Message {
    Message::Error {
        code: ErrorCode::Unsupported,
        message: format!("deployment {name:?} {hint}"),
    }
}

/// Handles one request, returning the response frame to write.
fn dispatch(shared: &Arc<Shared>, shards: &mut [ConnSlot], request: Message) -> Message {
    match request {
        Message::Info => {
            let mut deployments = Vec::with_capacity(shared.hosted.len());
            for hosted in &shared.hosted {
                match hosted.info() {
                    Ok(info) => deployments.push(info),
                    Err(e) => return ldp_error(ErrorCode::Internal, &e),
                }
            }
            Message::InfoOk { deployments }
        }
        Message::Submit {
            deployment,
            reports,
        } => {
            let Some(index) = shared.hosted.iter().position(|h| h.name == deployment) else {
                return unknown_deployment(&deployment);
            };
            let hosted = &shared.hosted[index];
            let HostedKind::Dense {
                deployment: dense,
                conns,
                ..
            } = &hosted.kind
            else {
                return wrong_kind(
                    &deployment,
                    "is open-domain; submit oracle reports with SubmitSparse",
                );
            };
            let num_outputs = dense.mechanism().num_outputs();
            // Admission control before any lock: the whole batch must be
            // in range (and fit this platform's usize) or none of it
            // counts.
            let mut batch = Vec::with_capacity(reports.len());
            for &r in &reports {
                match usize::try_from(r) {
                    Ok(r) => batch.push(r),
                    Err(_) => {
                        return Message::Error {
                            code: ErrorCode::BadBatch,
                            message: format!("report {r} exceeds this platform's index width"),
                        }
                    }
                }
            }
            if let Err(e) = validate_reports(&batch, num_outputs) {
                return ldp_error(ErrorCode::BadBatch, &e);
            }
            let conn = match &mut shards[index] {
                ConnSlot::Dense(conn) => conn,
                slot => {
                    let conn = Arc::new(Mutex::new(ConnShard {
                        shard: dense.shard(),
                        batches: 0,
                    }));
                    lock(conns).push(Arc::clone(&conn));
                    *slot = ConnSlot::Dense(conn);
                    let ConnSlot::Dense(conn) = slot else {
                        unreachable!("assigned above")
                    };
                    conn
                }
            };
            let mut state = lock(conn);
            if let Err(e) = state.shard.ingest_batch(&batch) {
                return ldp_error(ErrorCode::BadBatch, &e);
            }
            state.batches += 1;
            Message::SubmitOk {
                accepted: batch.len() as u64,
                pending: state.shard.reports(),
            }
        }
        Message::SubmitSparse {
            deployment,
            reports,
        } => {
            let Some(index) = shared.hosted.iter().position(|h| h.name == deployment) else {
                return unknown_deployment(&deployment);
            };
            let hosted = &shared.hosted[index];
            let HostedKind::Sparse {
                deployment: sparse,
                conns,
                ..
            } = &hosted.kind
            else {
                return wrong_kind(
                    &deployment,
                    "is dense; submit mechanism outputs with Submit",
                );
            };
            // Admission control before any lock: every report must be
            // well-formed for the oracle or none of the batch counts.
            if let Some(&bad) = reports
                .iter()
                .find(|&&r| !sparse.oracle().validate_report(r))
            {
                return Message::Error {
                    code: ErrorCode::BadBatch,
                    message: format!(
                        "report {bad:#x} is not a valid {} oracle output",
                        sparse.oracle().name()
                    ),
                };
            }
            let conn = match &mut shards[index] {
                ConnSlot::Sparse(conn) => conn,
                slot => {
                    let conn = Arc::new(Mutex::new(SparseConnShard {
                        shard: SparseShard::new(),
                        batches: 0,
                    }));
                    lock(conns).push(Arc::clone(&conn));
                    *slot = ConnSlot::Sparse(conn);
                    let ConnSlot::Sparse(conn) = slot else {
                        unreachable!("assigned above")
                    };
                    conn
                }
            };
            let mut state = lock(conn);
            state.shard.absorb_batch(&reports);
            state.batches += 1;
            Message::SubmitOk {
                accepted: reports.len() as u64,
                pending: state.shard.reports(),
            }
        }
        Message::Query { deployment, query } => {
            let Some(hosted) = shared.find(&deployment) else {
                return unknown_deployment(&deployment);
            };
            let query = query.to_query();
            match &hosted.kind {
                HostedKind::Dense { .. } => {
                    match hosted.dense_barrier(|_, central| {
                        let reports = central.reports();
                        central.answer(&query).map(|a| (a, reports))
                    }) {
                        Some(Ok(Ok((answer, reports)))) => Message::QueryOk {
                            value: answer.value,
                            variance: answer.variance,
                            stddev: answer.stddev,
                            reports,
                        },
                        Some(Ok(Err(e))) => ldp_error(ErrorCode::BadQuery, &e),
                        Some(Err(e)) => ldp_error(ErrorCode::Internal, &e),
                        None => unreachable!("kind matched above"),
                    }
                }
                HostedKind::Sparse {
                    deployment: sparse, ..
                } => {
                    // The only query an open-domain deployment can
                    // answer is a single key condition on its attribute.
                    let Some((attribute, key)) = query.as_key_query() else {
                        return Message::Error {
                            code: ErrorCode::BadQuery,
                            message: format!(
                                "deployment {deployment:?} is open-domain; it answers \
                                 single-key queries (Query::key) and heavy hitters only"
                            ),
                        };
                    };
                    if attribute != sparse.attribute() {
                        return Message::Error {
                            code: ErrorCode::BadQuery,
                            message: format!(
                                "deployment {deployment:?} serves attribute {:?}, not {attribute:?}",
                                sparse.attribute()
                            ),
                        };
                    }
                    let key_hash = ldp_sparse::key_hash(key);
                    sparse_point(hosted, key_hash)
                }
            }
        }
        Message::SparsePoint {
            deployment,
            key_hash,
        } => {
            let Some(hosted) = shared.find(&deployment) else {
                return unknown_deployment(&deployment);
            };
            if !matches!(hosted.kind, HostedKind::Sparse { .. }) {
                return wrong_kind(&deployment, "is dense; ask point questions with Query");
            }
            sparse_point(hosted, key_hash)
        }
        Message::HeavyHitters {
            deployment,
            k,
            z,
            candidates,
        } => {
            let Some(hosted) = shared.find(&deployment) else {
                return unknown_deployment(&deployment);
            };
            if !matches!(hosted.kind, HostedKind::Sparse { .. }) {
                return wrong_kind(&deployment, "is dense; heavy hitters need an open domain");
            }
            if !z.is_finite() {
                return Message::Error {
                    code: ErrorCode::BadQuery,
                    message: format!("admission z-score must be finite, got {z}"),
                };
            }
            let k = usize::try_from(k).unwrap_or(usize::MAX);
            match hosted.sparse_barrier(|sparse, central| {
                let reports = central.reports();
                let hitters = sparse.heavy_hitters(central.pairs(), &candidates, k, z);
                let mut keys = Vec::with_capacity(hitters.len());
                let mut estimates = Vec::with_capacity(hitters.len());
                let mut stddevs = Vec::with_capacity(hitters.len());
                for h in &hitters {
                    keys.push(h.key_hash);
                    estimates.push(h.estimate);
                    stddevs.push(h.stddev);
                }
                Message::HeavyHittersOk {
                    reports,
                    keys,
                    estimates,
                    stddevs,
                }
            }) {
                Some(response) => response,
                None => unreachable!("kind matched above"),
            }
        }
        Message::Answers { deployment } => {
            let Some(hosted) = shared.find(&deployment) else {
                return unknown_deployment(&deployment);
            };
            if matches!(hosted.kind, HostedKind::Sparse { .. }) {
                return wrong_kind(
                    &deployment,
                    "is open-domain; it has no declared dense workload to evaluate",
                );
            }
            match hosted.dense_barrier(|_, central| {
                let estimate = central.estimate();
                (estimate.answers(), central.reports())
            }) {
                Some(Ok((answers, reports))) => Message::AnswersOk { answers, reports },
                Some(Err(e)) => ldp_error(ErrorCode::Internal, &e),
                None => unreachable!("kind matched above"),
            }
        }
        Message::Checkpoint { deployment } => {
            let Some(hosted) = shared.find(&deployment) else {
                return unknown_deployment(&deployment);
            };
            match hosted.checkpoint() {
                Ok((epoch, bytes)) => Message::CheckpointOk { epoch, bytes },
                Err(e) => Message::Error {
                    code: ErrorCode::Internal,
                    message: e.to_string(),
                },
            }
        }
        Message::Shutdown => Message::ShutdownOk,
        // A client sent a server-side kind: protocol breach.
        other => Message::Error {
            code: ErrorCode::Protocol,
            message: format!("unexpected {} frame from client", other.kind_name()),
        },
    }
}

/// Runs the sparse merge barrier and answers one point estimate as a
/// `QueryOk` (variance = stddev², like the dense path).
fn sparse_point(hosted: &Hosted, key_hash: u64) -> Message {
    match hosted.sparse_barrier(|sparse, central| {
        let reports = central.reports();
        let value = sparse.point(central.pairs(), key_hash);
        let stddev = sparse.oracle().stddev(reports);
        Message::QueryOk {
            value,
            variance: stddev * stddev,
            stddev,
            reports,
        }
    }) {
        Some(response) => response,
        None => unreachable!("caller matched the kind"),
    }
}

fn unknown_deployment(name: &str) -> Message {
    Message::Error {
        code: ErrorCode::UnknownDeployment,
        message: format!("no deployment named {name:?} is hosted"),
    }
}
